//! `wavesched` — command-line front end for the scheduler.
//!
//! ```text
//! wavesched gen-trace --network abilene14 --jobs 20 --seed 7 > trace.csv
//! wavesched schedule  --network abilene14 --trace trace.csv --wavelengths 4
//! wavesched ret       --network esnet     --trace trace.csv --wavelengths 2
//! wavesched simulate  --network abilene14 --trace trace.csv --policy extend
//! wavesched dot       --network esnet > esnet.dot
//! ```
//!
//! Networks: `abilene14`, `abilene20`, `esnet`, or `waxman:<nodes>:<pairs>:<seed>`.

use std::process::ExitCode;
use wavesched::core::colgen::{CgStats, ColGenConfig, PricerChoice};
use wavesched::core::controller::OverloadPolicy;
use wavesched::core::instance::{Instance, InstanceConfig};
use wavesched::core::lpdar::AdjustOrder;
use wavesched::core::pipeline::{max_throughput_pipeline, max_throughput_pipeline_colgen};
use wavesched::core::report::{job_timeline, link_utilization};
use wavesched::core::ret::{solve_ret, solve_ret_colgen, RetConfig};
use wavesched::net::{
    abilene14, abilene20, esnet, to_dot, waxman_network, Graph, PathSet, WaxmanConfig,
};
use wavesched::obs;
use wavesched::sim::{run_simulation, SimConfig};
use wavesched::workload::{parse_trace, write_trace, WorkloadConfig, WorkloadGenerator};

fn usage() -> &'static str {
    "usage: wavesched <command> [options]

commands:
  gen-trace   generate a random workload trace (CSV on stdout)
  schedule    run the two-stage pipeline + LPDAR on a trace
  ret         run the Relaxing-End-Times algorithm on a trace
  simulate    run the periodic controller simulation on a trace
  dot         print the network as Graphviz DOT
  check-report <file>    validate a JSON-lines metrics report (--report output)
  check-counters <actual> <expected> [--require-nonzero <name>]...
              compare counters in two metrics reports; fails when any
              counter listed in <expected> grew (a solver-work regression)
              or disappeared. Counters below the expectation are reported
              as improvements — refresh <expected> when they stick.
              --require-nonzero (repeatable) additionally fails when the
              named counter is missing or zero in <actual> — a liveness
              gate for paths (e.g. dual simplex) that must have run.

common options:
  --network <abilene14|abilene20|esnet|waxman:<nodes>:<pairs>:<seed>>
  --wavelengths <w>      wavelengths per 20 Gbps link (default 4)
  --trace <file>         job trace CSV (see workload::trace)
  --trace                with no value: print the observability span tree
                         to stderr after the command
  --paths <k>            allowed paths per job (default 4)
  --alpha <a>            stage-2 fairness slack (default 0.1)
  --colgen               solve through delayed column generation instead of
                         materializing every Yen column (schedule, ret)
  --pricer <reduced-cost|exhaustive>  column-generation pricing oracle
                         (default reduced-cost)
  --cg-rounds <n>        max price-resolve rounds per LP form (default 50)
  --cg-tol <t>           reduced-cost tolerance for entering columns
                         (default 1e-7)

gen-trace options:
  --jobs <n> --seed <s>  workload size and seed

simulate options:
  --policy <reject|shrink|extend>   overload action (default shrink)
  --tau <t>                          controller period in slices (default 1)
"
}

struct Args {
    command: String,
    opts: Vec<(String, String)>,
    positional: Vec<String>,
}

impl Args {
    fn parse() -> Option<Args> {
        let mut it = std::env::args().skip(1);
        let command = it.next()?;
        let mut opts = Vec::new();
        let mut positional = Vec::new();
        let mut key: Option<String> = None;
        for a in it {
            if let Some(k) = a.strip_prefix("--") {
                if let Some(prev) = key.take() {
                    opts.push((prev, String::new()));
                }
                key = Some(k.to_string());
            } else if let Some(k) = key.take() {
                opts.push((k, a));
            } else {
                positional.push(a);
            }
        }
        if let Some(k) = key.take() {
            opts.push((k, String::new()));
        }
        Some(Args {
            command,
            opts,
            positional,
        })
    }

    fn get(&self, k: &str) -> Option<&str> {
        self.opts
            .iter()
            .rev()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.as_str())
    }

    /// True when `--k` was given bare (no value) — e.g. the span-tree form
    /// of `--trace`, as opposed to `--trace <file>`.
    fn flag(&self, k: &str) -> bool {
        self.opts.iter().any(|(key, v)| key == k && v.is_empty())
    }

    /// Last non-empty value of `--k <value>`; bare `--k` flags don't count.
    fn value_of(&self, k: &str) -> Option<&str> {
        self.opts
            .iter()
            .rev()
            .find(|(key, v)| key == k && !v.is_empty())
            .map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, k: &str, default: T) -> Result<T, String> {
        match self.get(k) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad --{k} value {v:?}")),
        }
    }
}

/// Parses the column-generation knobs (`--colgen`, `--pricer`,
/// `--cg-rounds`, `--cg-tol`) into a config, or `None` when `--colgen`
/// was not requested. The knobs are accepted only alongside `--colgen`
/// so a typo'd invocation cannot silently run the monolithic pipeline
/// with pricing options ignored.
fn colgen_cfg(args: &Args) -> Result<Option<ColGenConfig>, String> {
    if !args.flag("colgen") {
        for k in ["pricer", "cg-rounds", "cg-tol"] {
            if args.get(k).is_some() {
                return Err(format!("--{k} requires --colgen"));
            }
        }
        return Ok(None);
    }
    let mut cg = ColGenConfig::default();
    cg.max_rounds = args.num("cg-rounds", cg.max_rounds)?;
    cg.tolerance = args.num("cg-tol", cg.tolerance)?;
    cg.pricer = match args.get("pricer").unwrap_or("reduced-cost") {
        "reduced-cost" => PricerChoice::ReducedCost,
        "exhaustive" => PricerChoice::Exhaustive,
        other => {
            return Err(format!(
                "unknown pricer {other:?}; supported: reduced-cost, exhaustive"
            ))
        }
    };
    Ok(Some(cg))
}

fn print_cg_stats(stats: &CgStats) {
    println!(
        "column generation: {} rounds, {} columns entered, {} pricer calls",
        stats.rounds, stats.columns_added, stats.pricer_calls
    );
}

fn build_network(spec: &str, w: u32) -> Result<Graph, String> {
    match spec {
        "abilene14" => Ok(abilene14(w).0),
        "abilene20" => Ok(abilene20(w).0),
        "esnet" => Ok(esnet(w).0),
        other => {
            if let Some(rest) = other.strip_prefix("waxman:") {
                let parts: Vec<&str> = rest.split(':').collect();
                if parts.len() != 3 {
                    return Err("waxman spec is waxman:<nodes>:<pairs>:<seed>".into());
                }
                let nodes = parts[0].parse().map_err(|_| "bad node count")?;
                let link_pairs = parts[1].parse().map_err(|_| "bad pair count")?;
                let seed = parts[2].parse().map_err(|_| "bad seed")?;
                Ok(waxman_network(&WaxmanConfig {
                    nodes,
                    link_pairs,
                    wavelengths: w,
                    alpha: 0.15,
                    seed,
                }))
            } else {
                Err(format!("unknown network {other:?}"))
            }
        }
    }
}

fn run() -> Result<(), String> {
    let Some(args) = Args::parse() else {
        return Err(usage().to_string());
    };
    if args.command == "help" || args.command == "--help" {
        println!("{}", usage());
        return Ok(());
    }

    if args.command == "check-report" {
        let path = args
            .positional
            .first()
            .map(String::as_str)
            .ok_or_else(|| "check-report needs a file path".to_string())?;
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
        let metrics =
            obs::parse_json_lines(&text).map_err(|e| format!("{path}: invalid report: {e}"))?;
        let (mut counters, mut hists, mut spans) = (0usize, 0usize, 0usize);
        let mut counter_names = Vec::new();
        for m in &metrics {
            match m {
                obs::Metric::Counter { name, .. } => {
                    counters += 1;
                    counter_names.push(name.as_str());
                }
                obs::Metric::Histogram { .. } => hists += 1,
                obs::Metric::Span { .. } => spans += 1,
            }
        }
        // Column generation reports as a counter *family*: a run that
        // priced anything records every cg.* counter in one code path,
        // so a partial family means the report schema drifted.
        if counter_names.iter().any(|n| n.starts_with("cg.")) {
            const CG_FAMILY: [&str; 6] = [
                "cg.rounds",
                "cg.columns_added",
                "cg.pricer_calls",
                "cg.pricing_ns",
                "cg.master_dual_iterations",
                "cg.master_lu_reuse_hits",
            ];
            let missing: Vec<&str> = CG_FAMILY
                .iter()
                .filter(|want| !counter_names.contains(want))
                .copied()
                .collect();
            if !missing.is_empty() {
                return Err(format!(
                    "{path}: cg.* counters present but incomplete — missing {missing:?} \
                     (a column-generation run always records the full family {CG_FAMILY:?})"
                ));
            }
        }
        // Same all-or-nothing rule for the allocation-tracking family: the
        // streamed replay emits both byte counters from one code path
        // (crates/sim stream engine), so a lone byte counter means the
        // schema drifted. Keyed on the `mem.bytes_` prefix specifically —
        // `mem.arena_reuse_hits` is recorded by instance builds on its own
        // and legitimately appears without the replay counters.
        if counter_names.iter().any(|n| n.starts_with("mem.bytes_")) {
            const MEM_FAMILY: [&str; 2] = ["mem.bytes_allocated", "mem.bytes_freed"];
            let missing: Vec<&str> = MEM_FAMILY
                .iter()
                .filter(|want| !counter_names.contains(want))
                .copied()
                .collect();
            if !missing.is_empty() {
                return Err(format!(
                    "{path}: mem.* counters present but incomplete — missing {missing:?} \
                     (a tracked replay always records the full family {MEM_FAMILY:?})"
                ));
            }
        }
        println!(
            "{path}: valid report, {} metrics ({counters} counters, {hists} histograms, {spans} spans)",
            metrics.len()
        );
        return Ok(());
    }

    if args.command == "check-counters" {
        let (actual_path, expected_path) = match args.positional.as_slice() {
            [a, e] => (a.as_str(), e.as_str()),
            _ => return Err("check-counters needs <actual> <expected> file paths".to_string()),
        };
        // `--require-nonzero <name>` (repeatable): the named counter must be
        // present AND strictly positive in <actual>. The plain comparison is
        // upper-bound only, so without this a code path that silently stops
        // running (e.g. the dual simplex never engaging) would read as an
        // "improvement" — this makes "the path actually ran" a gate.
        let required: Vec<&str> = args
            .opts
            .iter()
            .filter(|(k, v)| k == "require-nonzero" && !v.is_empty())
            .map(|(_, v)| v.as_str())
            .collect();
        let counters_of = |path: &str| -> Result<Vec<(String, u64)>, String> {
            let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
            let metrics =
                obs::parse_json_lines(&text).map_err(|e| format!("{path}: invalid report: {e}"))?;
            Ok(metrics
                .into_iter()
                .filter_map(|m| match m {
                    obs::Metric::Counter { name, value } => Some((name, value)),
                    _ => None,
                })
                .collect())
        };
        let actual = counters_of(actual_path)?;
        let expected = counters_of(expected_path)?;
        let mut regressions = Vec::new();
        let mut improvements = 0usize;
        for (name, want) in &expected {
            match actual.iter().find(|(n, _)| n == name) {
                None => regressions.push(format!("{name}: missing (expected {want})")),
                Some((_, got)) if got > want => {
                    regressions.push(format!("{name}: {got} > expected {want}"));
                }
                Some((_, got)) if got < want => {
                    println!("{name}: improved ({got} < expected {want})");
                    improvements += 1;
                }
                Some(_) => {}
            }
        }
        for name in &required {
            match actual.iter().find(|(n, _)| n == name) {
                None => regressions.push(format!("{name}: required nonzero but missing")),
                Some((_, 0)) => regressions.push(format!("{name}: required nonzero but is 0")),
                Some(_) => {}
            }
        }
        if !regressions.is_empty() {
            return Err(format!(
                "{actual_path}: {} counter regression(s) vs {expected_path}:\n  {}",
                regressions.len(),
                regressions.join("\n  ")
            ));
        }
        println!(
            "{actual_path}: {} counters within expectations ({improvements} improved, {} required nonzero)",
            expected.len(),
            required.len()
        );
        return Ok(());
    }

    // Bare `--trace` (no value) turns on the observability layer and prints
    // the span tree to stderr when the command finishes; `--trace <file>`
    // remains the job-trace input option.
    let trace_spans = args.flag("trace");
    if trace_spans {
        obs::set_enabled(true);
    }

    let w: u32 = args.num("wavelengths", 4)?;
    let net_spec = args.get("network").unwrap_or("abilene14").to_string();
    let graph = build_network(&net_spec, w)?;
    let paths_per_job: usize = args.num("paths", 4)?;
    let alpha: f64 = args.num("alpha", 0.1)?;
    let inst_cfg = InstanceConfig {
        paths_per_job,
        ..InstanceConfig::paper(w)
    };

    let load_trace = || -> Result<_, String> {
        let path = args
            .value_of("trace")
            .ok_or_else(|| "missing --trace <file>".to_string())?;
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
        parse_trace(&text, &graph).map_err(|e| e.to_string())
    };

    match args.command.as_str() {
        "gen-trace" => {
            let jobs_n: usize = args.num("jobs", 20)?;
            let seed: u64 = args.num("seed", 0)?;
            let jobs = WorkloadGenerator::new(WorkloadConfig {
                num_jobs: jobs_n,
                seed,
                ..Default::default()
            })
            .generate(&graph);
            print!("{}", write_trace(&jobs));
        }
        "schedule" => {
            let jobs = load_trace()?;
            let (inst, r) = match colgen_cfg(&args)? {
                Some(cg) => {
                    let (r, inst, stats) = max_throughput_pipeline_colgen(
                        &graph,
                        &jobs,
                        &inst_cfg,
                        alpha,
                        AdjustOrder::Paper,
                        &cg,
                    )
                    .map_err(|e| e.to_string())?;
                    print_cg_stats(&stats);
                    (inst, r)
                }
                None => {
                    let mut ps = PathSet::new(inst_cfg.paths_per_job);
                    let inst = Instance::build(&graph, &jobs, &inst_cfg, &mut ps);
                    let r = max_throughput_pipeline(&inst, alpha).map_err(|e| e.to_string())?;
                    (inst, r)
                }
            };
            let plan = r.lpdar.trim_to_demand(&inst);
            println!(
                "network {net_spec}, {} jobs, Z* = {:.3}",
                jobs.len(),
                r.z_star
            );
            if r.z_star < 1.0 {
                println!("OVERLOADED: demands shrink to each job's Z_i");
            }
            println!(
                "weighted throughput: LP {:.3}, LPD {:.3}, LPDAR {:.3}",
                r.lp_throughput, r.lpd_throughput, r.lpdar_throughput
            );
            println!();
            print!("{}", job_timeline(&inst, &plan));
            println!();
            print!("{}", link_utilization(&inst, &plan, 10));
        }
        "ret" => {
            let jobs = load_trace()?;
            let out = match colgen_cfg(&args)? {
                Some(cg) => solve_ret_colgen(&graph, &jobs, &inst_cfg, &RetConfig::default(), &cg)
                    .map_err(|e| e.to_string())?
                    .map(|(r, stats)| {
                        print_cg_stats(&stats);
                        r
                    }),
                None => solve_ret(&graph, &jobs, &inst_cfg, &RetConfig::default())
                    .map_err(|e| e.to_string())?,
            };
            match out {
                None => println!("no end-time extension up to b_max completes all jobs"),
                Some(r) => {
                    println!(
                        "minimal fractional extension b = {:.3}; integral completion at b = {:.3}",
                        r.b_lp, r.b_final
                    );
                    println!(
                        "average end time: LP {:.2}, LPDAR {:.2} slices; LPD finishes {:.0}%",
                        r.lp_avg_end_time().unwrap_or(f64::NAN),
                        r.lpdar_avg_end_time().unwrap_or(f64::NAN),
                        100.0 * r.lpd_fraction_finished()
                    );
                    println!();
                    print!("{}", job_timeline(&r.instance, &r.lpdar));
                }
            }
        }
        "simulate" => {
            let jobs = load_trace()?;
            let mut cfg = SimConfig::paper(w);
            cfg.controller.instance = inst_cfg;
            cfg.controller.alpha = alpha;
            cfg.controller.tau = args.num("tau", 1)?;
            cfg.controller.policy = match args.get("policy").unwrap_or("shrink") {
                "reject" => OverloadPolicy::Reject,
                "shrink" => OverloadPolicy::ShrinkDemands,
                "extend" => OverloadPolicy::ExtendDeadlines,
                other => return Err(format!("unknown policy {other:?}")),
            };
            let rep = run_simulation(&graph, &jobs, &cfg).map_err(|e| e.to_string())?;
            println!(
                "{} slices, {} invocations | completed {:.0}% (on time {:.0}%), rejected {:.0}%, expired {:.0}%",
                rep.slices,
                rep.invocations,
                100.0 * rep.completion_rate(),
                100.0 * rep.on_time_rate(),
                100.0 * rep.rejection_rate(),
                100.0 * rep.expiry_rate()
            );
            println!(
                "goodput {:.0}%, mean utilization {:.1}%{}",
                100.0 * rep.goodput(),
                100.0 * rep.mean_utilization,
                rep.average_end_time()
                    .map(|t| format!(", avg end time {t:.1} slices"))
                    .unwrap_or_default()
            );
        }
        "dot" => {
            print!("{}", to_dot(&graph));
        }
        other => {
            return Err(format!("unknown command {other:?}\n\n{}", usage()));
        }
    }
    if trace_spans {
        eprint!("{}", obs::render_span_tree());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
