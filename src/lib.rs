//! # wavesched — slotted wavelength scheduling for bulk transfers
//!
//! Facade crate for the reproduction of *Wang, Ranka, Xia — "Slotted
//! Wavelength Scheduling for Bulk Transfers in Research Networks"*
//! (ICPP 2009). Re-exports the workspace crates under stable module names:
//!
//! * [`lp`] — from-scratch sparse revised simplex LP solver + branch-and-bound MILP
//! * [`net`] — directed graphs, Waxman generator, Abilene topology, k-shortest paths
//! * [`workload`] — bulk-transfer job model and seeded generators
//! * [`core`] — the paper's algorithms: Stage-1 MCF, Stage-2, LPD, LPDAR, RET,
//!   admission control, periodic controller
//! * [`sim`] — discrete-event simulation of the controller loop
//! * [`obs`] — zero-dependency observability: spans, counters, histograms,
//!   JSON-lines reports
//! * [`par`] — std-only scoped work pool (`WS_THREADS`) with
//!   order-preserving, deterministic parallel map
//!
//! See the repository `README.md` for a quickstart and `DESIGN.md` for the
//! full system inventory and experiment index.

pub use wavesched_core as core;
pub use wavesched_lp as lp;
pub use wavesched_net as net;
pub use wavesched_obs as obs;
pub use wavesched_par as par;
pub use wavesched_sim as sim;
pub use wavesched_workload as workload;
