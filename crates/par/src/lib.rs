//! # wavesched-par — deterministic work-pool parallelism
//!
//! A from-scratch scoped work pool built on `std::thread::scope` — no
//! external dependencies (crates.io is unreachable in the build
//! environment, so `rayon` is not an option, and the pool's guarantees are
//! stronger than we would get from it anyway):
//!
//! * **Order-preserving, deterministic reduction.** [`par_map`] /
//!   [`par_map_indexed`] collect results into a vector indexed by *input*
//!   position, regardless of which worker computed what and in which order
//!   tasks finished. Callers fold that vector on one thread, so parallel
//!   execution never reassociates floating-point reductions — results are
//!   bit-identical to the serial fold.
//! * **Serial fallback through the same code path.** With one thread (the
//!   `WS_THREADS=1` knob, a single-core host, or a single item) the mapped
//!   closure runs inline on the calling thread — no spawn, no channels —
//!   making the serial path the trivially-correct baseline the parallel
//!   path is tested against.
//! * **Panic propagation.** A panicking task panics the calling thread with
//!   the original payload once every worker has stopped; panics are never
//!   swallowed into missing results.
//! * **Observability attachment.** Workers adopt the spawning thread's
//!   `wavesched-obs` span path ([`wavesched_obs::attach`]), so spans opened
//!   inside pool tasks aggregate under the span that spawned the work and
//!   `--report` output still folds into one tree.
//!
//! ## Thread-count resolution
//!
//! Every entry point takes an explicit thread count, with `0` meaning
//! "resolve from the environment": the `WS_THREADS` variable when set
//! (rejected loudly when unparseable or `0` — a silently misread knob would
//! invalidate a benchmark), otherwise [`available`] parallelism.
//!
//! Scheduling is dynamic (workers pull the next index from an atomic
//! counter), so uneven task costs balance automatically; determinism comes
//! from indexed result placement, not from a static assignment.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

/// The machine's available parallelism (1 when it cannot be determined).
pub fn available() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parses a `WS_THREADS`-style setting. `None` (unset) resolves to
/// `default`; garbage and `0` are errors — a thread-count knob that
/// silently fell back would make every "parallel" measurement a lie.
pub fn parse_threads(value: Option<&str>, default: usize) -> Result<usize, String> {
    match value {
        None => Ok(default),
        Some(s) => match s.parse::<usize>() {
            Ok(0) => Err(format!(
                "WS_THREADS={s:?}: thread count must be >= 1 (use 1 for the serial path)"
            )),
            Ok(n) => Ok(n),
            Err(_) => Err(format!("WS_THREADS={s:?} is not a valid thread count")),
        },
    }
}

/// The pool width requested by the environment: `WS_THREADS` when set,
/// otherwise [`available`] parallelism. Exits loudly (status 2) on an
/// unparseable or zero `WS_THREADS`, mirroring how the bench harness
/// rejects unknown CLI flags.
pub fn threads() -> usize {
    let var = std::env::var("WS_THREADS").ok();
    match parse_threads(var.as_deref(), available()) {
        Ok(n) => n,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

/// Resolves a caller-supplied thread count: `0` defers to [`threads`] (the
/// `WS_THREADS` env knob), anything else is taken as-is.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        threads()
    } else {
        requested
    }
}

/// Maps `f` over `0..n` with the environment's thread count
/// ([`threads`]), returning results in index order. See
/// [`par_map_indexed_with`].
pub fn par_map_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_indexed_with(0, n, f)
}

/// Maps `f` over `0..n` on a scoped pool of at most `threads` workers
/// (`0` = the `WS_THREADS` env knob), returning `vec![f(0), f(1), ...]`.
///
/// Results are placed by input index, so the returned vector — and any
/// fold the caller performs over it — is identical for every thread count.
/// With an effective width of 1 (or `n <= 1`) the closures run inline on
/// the calling thread: no thread is spawned.
///
/// # Panics
/// Re-raises the panic of any task on the calling thread.
pub fn par_map_indexed_with<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let width = resolve_threads(threads).min(n);
    if width <= 1 {
        // Serial fallback: same entry point, same closure, calling thread.
        return (0..n).map(f).collect();
    }
    let parent = wavesched_obs::current_span_path();
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..width)
            .map(|_| {
                let f = &f;
                let next = &next;
                let parent = parent.clone();
                scope.spawn(move || {
                    let _obs = wavesched_obs::attach(parent);
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(pairs) => {
                    for (i, r) in pairs {
                        slots[i] = Some(r);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots
        .into_iter()
        // lint: allow(lib-unwrap, reason = "invariant: the work pool writes every slot exactly once before join")
        .map(|s| s.expect("invariant: every index mapped"))
        .collect()
}

/// Maps `f` over `items` with the environment's thread count, preserving
/// input order. See [`par_map_indexed_with`].
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(0, items, f)
}

/// Maps `f` over `items` on at most `threads` workers (`0` = the
/// `WS_THREADS` env knob), preserving input order. See
/// [`par_map_indexed_with`].
pub fn par_map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed_with(threads, items.len(), |i| f(&items[i]))
}

/// Runs `workers` copies of `f` (each receiving its worker index) to
/// completion on a scoped pool — the building block for consumers that pull
/// from their own shared queue, like the MILP branch-and-bound node pool.
///
/// With `workers <= 1` the single copy runs inline on the calling thread
/// (no spawn). Worker panics propagate to the caller. As in the map entry
/// points, spawned workers adopt the caller's observability span path.
pub fn run_workers<F>(workers: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let width = resolve_threads(workers);
    if width <= 1 {
        f(0);
        return;
    }
    let parent = wavesched_obs::current_span_path();
    std::thread::scope(|scope| {
        for w in 0..width {
            let f = &f;
            let parent = parent.clone();
            // Unjoined handles: `scope` joins them and re-raises panics.
            scope.spawn(move || {
                let _obs = wavesched_obs::attach(parent);
                f(w);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;
    use std::thread::ThreadId;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = par_map_with(8, &items, |&x| x * 2);
        assert_eq!(out, (0..257).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn reduction_is_bit_identical_across_widths() {
        // A floating-point fold whose result depends on association order:
        // identical across 1, 2, 3, 8 threads because the fold happens over
        // the index-ordered vector on the calling thread.
        let xs: Vec<f64> = (1..500).map(|i| 1.0 / i as f64).collect();
        let fold = |width: usize| {
            par_map_with(width, &xs, |&x| x.sin().exp())
                .into_iter()
                .sum::<f64>()
        };
        let serial = fold(1);
        for width in [2, 3, 8] {
            assert_eq!(serial.to_bits(), fold(width).to_bits(), "width {width}");
        }
    }

    #[test]
    fn one_thread_runs_inline_without_spawning() {
        let caller = std::thread::current().id();
        let ids = par_map_indexed_with(1, 16, |_| std::thread::current().id());
        assert!(
            ids.iter().all(|&id| id == caller),
            "WS_THREADS=1 must execute on the calling thread"
        );
        // Single item also stays inline even with a wide pool.
        let ids = par_map_indexed_with(8, 1, |_| std::thread::current().id());
        assert_eq!(ids, vec![caller]);
    }

    #[test]
    fn wide_pool_actually_uses_worker_threads() {
        let caller = std::thread::current().id();
        let ids: Vec<ThreadId> = par_map_indexed_with(4, 64, |_| std::thread::current().id());
        assert!(
            ids.iter().all(|&id| id != caller),
            "a >1-wide pool must run tasks on spawned workers"
        );
    }

    #[test]
    fn dynamic_scheduling_completes_unbalanced_work() {
        // One task is 100x the others; all indices still get exactly one
        // result in place.
        let out = par_map_indexed_with(4, 40, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i * i
        });
        assert_eq!(out, (0..40).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "task 7 exploded")]
    fn worker_panic_propagates_to_caller() {
        par_map_indexed_with(4, 16, |i| {
            if i == 7 {
                panic!("task 7 exploded");
            }
            i
        });
    }

    #[test]
    #[should_panic(expected = "inline panic")]
    fn inline_panic_propagates_too() {
        par_map_indexed_with(1, 4, |i| {
            if i == 2 {
                panic!("inline panic");
            }
            i
        });
    }

    #[test]
    fn run_workers_runs_each_index_once() {
        let seen = Mutex::new(Vec::new());
        run_workers(4, |w| seen.lock().unwrap().push(w));
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn run_workers_inline_on_one() {
        let caller = std::thread::current().id();
        let id = Mutex::new(None);
        run_workers(1, |w| {
            assert_eq!(w, 0);
            *id.lock().unwrap() = Some(std::thread::current().id());
        });
        assert_eq!(id.into_inner().unwrap(), Some(caller));
    }

    #[test]
    fn parse_threads_accepts_counts_and_defaults() {
        assert_eq!(parse_threads(None, 7), Ok(7));
        assert_eq!(parse_threads(Some("1"), 7), Ok(1));
        assert_eq!(parse_threads(Some("16"), 7), Ok(16));
    }

    #[test]
    fn parse_threads_rejects_zero_and_garbage() {
        assert!(parse_threads(Some("0"), 4).is_err(), "WS_THREADS=0");
        assert!(parse_threads(Some("abc"), 4).is_err(), "WS_THREADS=abc");
        assert!(parse_threads(Some("-2"), 4).is_err(), "WS_THREADS=-2");
        assert!(parse_threads(Some("1.5"), 4).is_err(), "WS_THREADS=1.5");
        assert!(parse_threads(Some(""), 4).is_err(), "WS_THREADS=");
    }

    #[test]
    fn resolve_threads_passes_explicit_counts_through() {
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(1), 1);
        // 0 defers to the env/default path; just ensure it is >= 1.
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = par_map_indexed_with(4, 0, |_| unreachable!());
        assert!(out.is_empty());
    }
}
