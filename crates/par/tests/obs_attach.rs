//! Pool ↔ observability integration: spans opened inside pool tasks must
//! aggregate under the spawning span's path, for every pool width, so
//! `--report` span trees look the same whether the work ran serial or
//! parallel. Lives in its own integration binary because it toggles the
//! process-wide obs registry.

use wavesched_obs as obs;

#[test]
fn pool_tasks_nest_under_spawning_span() {
    obs::set_enabled(true);
    for width in [1usize, 4] {
        obs::reset();
        {
            let _sweep = obs::span("sweep");
            let out = wavesched_par::par_map_indexed_with(width, 8, |i| {
                let _point = obs::span("point");
                i * 3
            });
            assert_eq!(out, (0..8).map(|i| i * 3).collect::<Vec<_>>());
        }
        let snap = obs::snapshot();
        let count = |want: &str| {
            snap.iter().find_map(|m| match m {
                obs::Metric::Span { path, count, .. } if path == want => Some(*count),
                _ => None,
            })
        };
        assert_eq!(count("sweep"), Some(1), "width {width}");
        assert_eq!(
            count("sweep/point"),
            Some(8),
            "width {width}: task spans must fold under the spawning span"
        );
        assert!(
            !snap
                .iter()
                .any(|m| matches!(m, obs::Metric::Span { path, .. } if path == "point")),
            "width {width}: no orphan root-level task spans"
        );
    }
    obs::set_enabled(false);
    obs::reset();
}

#[test]
fn run_workers_adopts_spawning_path_too() {
    obs::set_enabled(true);
    obs::reset();
    {
        let _solve = obs::span("solve");
        wavesched_par::run_workers(3, |_w| {
            let _node = obs::span("node");
        });
    }
    let snap = obs::snapshot();
    let node = snap.iter().find_map(|m| match m {
        obs::Metric::Span { path, count, .. } if path == "solve/node" => Some(*count),
        _ => None,
    });
    assert_eq!(node, Some(3));
    obs::set_enabled(false);
    obs::reset();
}
