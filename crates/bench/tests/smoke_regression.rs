//! Default-config smoke CSV regression: the fig3/fig4 binaries' `--smoke`
//! output is pinned byte-for-byte against recorded fixtures in
//! `results/`, so structural refactors (like the column-generation
//! restructure of the solve layers) cannot silently change the default
//! pipeline's results. Wall-clock columns are masked before comparison —
//! they are the only columns allowed to differ run to run.
//!
//! Refresh a fixture after an *intentional* result change with:
//!
//! ```text
//! WS_THREADS=1 cargo run --release -p wavesched-bench --bin fig3 -- --smoke \
//!   > results/fig3_smoke.csv     # likewise fig4
//! ```

use std::process::Command;

fn fixture(name: &str) -> String {
    let path = format!("{}/../../results/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read fixture {path}: {e}"))
}

/// Runs a bench binary with `--smoke` (plus extras) at `WS_THREADS=1` —
/// the canonical serial configuration the fixtures were recorded under.
fn run_smoke(bin: &str, extra_args: &[&str]) -> String {
    let out = Command::new(bin)
        .arg("--smoke")
        .args(extra_args)
        .env("WS_THREADS", "1")
        .output()
        .expect("bench binary runs");
    assert!(
        out.status.success(),
        "{bin} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 csv")
}

/// Keeps only the comma-separated fields at `keep` on data rows (comment
/// and header lines pass through untouched) — used to strip wall-clock
/// columns, which legitimately vary run to run.
fn project_columns(csv: &str, keep: &[usize]) -> String {
    csv.lines()
        .map(|line| {
            if line.starts_with('#') || line.chars().next().is_none_or(|c| !c.is_ascii_digit()) {
                line.to_string()
            } else {
                let fields: Vec<&str> = line.split(',').collect();
                keep.iter()
                    .map(|&i| fields[i])
                    .collect::<Vec<_>>()
                    .join(",")
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn fig4_smoke_csv_matches_recorded_fixture() {
    // Every fig4 column (b̂, end times, solver-work counters) is
    // deterministic: full byte comparison.
    let actual = run_smoke(env!("CARGO_BIN_EXE_fig4"), &[]);
    assert_eq!(
        actual,
        fixture("fig4_smoke.csv"),
        "fig4 --smoke output drifted from results/fig4_smoke.csv; if the \
         change is intentional, refresh the fixture"
    );
}

#[test]
fn fig3_smoke_deterministic_columns_match_recorded_fixture() {
    // fig3 reports stage timings — wall-clock — so only the jobs column
    // and the solver-work counters (iters, phase1_iters, warm_accepted)
    // are pinned.
    const KEEP: &[usize] = &[0, 7, 8, 9];
    let actual = project_columns(&run_smoke(env!("CARGO_BIN_EXE_fig3"), &[]), KEEP);
    let expected = project_columns(&fixture("fig3_smoke.csv"), KEEP);
    assert_eq!(
        actual, expected,
        "fig3 --smoke solver-work columns drifted from results/fig3_smoke.csv; \
         if the change is intentional, refresh the fixture"
    );
}
