//! Determinism regression: the `WS_THREADS` work pool must never change
//! results — only wall-clock. Three layers are pinned bit-identical at
//! 1 vs 4 threads:
//!
//! * the fig4 binary end-to-end (subprocess, `WS_THREADS` env path): the
//!   whole CSV, including the solver-work counter columns, byte for byte;
//! * RET directly (`RetConfig::threads`): b̂, schedules, and the full
//!   [`SolveStats`] despite speculative probing;
//! * MILP directly (`MilpConfig::threads`): incumbent objective and point
//!   despite scheduling-dependent node order.
//!
//! Thread-dependent observables (wall-clock, `milp.nodes`,
//! `ret.speculative_probes`, `lp.*` counters folded in from mis-speculated
//! probes) are deliberately *not* compared.

use std::process::Command;
use wavesched_core::instance::InstanceConfig;
use wavesched_core::ret::{solve_ret, RetConfig};
use wavesched_lp::{solve_milp, MilpConfig, MilpStatus, Objective, Problem};
use wavesched_net::abilene14;
use wavesched_workload::{WorkloadConfig, WorkloadGenerator};

/// Runs a bench binary with `--smoke` under a given `WS_THREADS`, returning
/// its stdout.
fn run_smoke(bin: &str, threads: &str) -> String {
    run_smoke_args(bin, threads, &[])
}

/// [`run_smoke`] with extra CLI arguments (e.g. `--colgen`).
fn run_smoke_args(bin: &str, threads: &str, extra_args: &[&str]) -> String {
    let out = Command::new(bin)
        .arg("--smoke")
        .args(extra_args)
        .env("WS_THREADS", threads)
        .output()
        .expect("bench binary runs");
    assert!(
        out.status.success(),
        "{bin} failed under WS_THREADS={threads}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 csv")
}

#[test]
fn fig4_smoke_csv_is_bit_identical_across_thread_counts() {
    let bin = env!("CARGO_BIN_EXE_fig4");
    let serial = run_smoke(bin, "1");
    let pooled = run_smoke(bin, "4");
    // Every column — b̂, end times, LP solves, simplex iterations, warm
    // starts, cold fallbacks — must survive both sweep-level parallelism
    // and RET's speculative probes unchanged.
    assert_eq!(serial, pooled, "fig4 CSV must not depend on WS_THREADS");
    assert!(serial.lines().count() > 4, "fig4 produced no data rows");
}

#[test]
fn fig4_colgen_smoke_csv_is_bit_identical_across_thread_counts() {
    // Column generation is serial by construction (one evolving master
    // session, BTreeMap duals, tie-broken Dijkstra), so every results
    // column — pool size, census, ratio, CG round/column counters, the
    // monolithic cross-check gap — must be identical at any WS_THREADS.
    // Only the two trailing wall-clock columns (solve_secs, census_secs)
    // may differ; mask them before comparing.
    let strip_wallclock = |csv: &str| -> String {
        csv.lines()
            .map(|line| {
                if line.starts_with('#') || line.starts_with("jobs,") {
                    line.to_string()
                } else {
                    let fields: Vec<&str> = line.split(',').collect();
                    fields[..fields.len().saturating_sub(2)].join(",")
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    let bin = env!("CARGO_BIN_EXE_fig4");
    let serial = strip_wallclock(&run_smoke_args(bin, "1", &["--colgen"]));
    let pooled = strip_wallclock(&run_smoke_args(bin, "4", &["--colgen"]));
    assert_eq!(
        serial, pooled,
        "fig4 --colgen CSV must not depend on WS_THREADS"
    );
    assert!(serial.lines().count() > 4, "fig4 --colgen produced no rows");
}

#[test]
fn jobs_finished_smoke_csv_is_bit_identical_across_thread_counts() {
    let bin = env!("CARGO_BIN_EXE_jobs_finished");
    let serial = run_smoke(bin, "1");
    let pooled = run_smoke(bin, "4");
    assert_eq!(
        serial, pooled,
        "jobs_finished CSV must not depend on WS_THREADS"
    );
}

/// Runs the `stream` replay binary with a decision log, returning
/// (scheduling rows of stdout, decision log bytes). The `mem_*` stdout
/// rows are allocation telemetry — machine-dependent by design — so they
/// are stripped before comparison; the decision log contains scheduling
/// outcomes only and is compared whole.
fn run_stream(threads: &str, label: &str, extra_args: &[&str]) -> (String, Vec<u8>) {
    let log_path = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("stream_determinism_{label}.log"));
    let out = Command::new(env!("CARGO_BIN_EXE_stream"))
        .args(["--jobs", "600", "--log"])
        .arg(&log_path)
        .args(extra_args)
        .env("WS_THREADS", threads)
        .output()
        .expect("stream binary runs");
    assert!(
        out.status.success(),
        "stream failed under WS_THREADS={threads}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 csv");
    let sched: String = stdout
        .lines()
        .filter(|l| !l.starts_with("mem_"))
        .collect::<Vec<_>>()
        .join("\n");
    let log = std::fs::read(&log_path).expect("decision log written");
    assert!(!log.is_empty(), "decision log must not be empty");
    (sched, log)
}

#[test]
fn streamed_replay_log_is_bit_identical_across_thread_counts() {
    let (csv1, log1) = run_stream("1", "t1", &[]);
    let (csv4, log4) = run_stream("4", "t4", &[]);
    assert_eq!(
        log1, log4,
        "streamed decision log must not depend on WS_THREADS"
    );
    assert_eq!(
        csv1, csv4,
        "stream scheduling CSV must not depend on WS_THREADS"
    );
}

#[test]
fn streamed_replay_log_is_bit_identical_to_preloaded() {
    // Feeding the controller from the lazy stream versus from a fully
    // materialized trace must be observationally equivalent: same
    // decisions, same bytes. Only memory differs.
    let (csv_s, log_s) = run_stream("1", "streamed", &[]);
    let (csv_p, log_p) = run_stream("1", "preloaded", &["--preload"]);
    assert_eq!(
        log_s, log_p,
        "streamed and preloaded replays must produce identical decision logs"
    );
    assert_eq!(csv_s, csv_p);
}

#[test]
fn ret_search_is_bit_identical_across_probe_widths() {
    // The fig4 shape at test-friendly size: overloaded Abilene so the
    // bisection actually speculates (b_lp > 0).
    let (g, _) = abilene14(2);
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: 12,
        seed: 3000,
        size_gb: (100.0, 400.0),
        window: (2.0, 4.0),
        ..Default::default()
    })
    .generate(&g);
    let cfg = InstanceConfig::paper(2);
    let ret_at = |threads: usize| RetConfig {
        bsearch_tol: 0.05,
        b_max: 10.0,
        max_delta_steps: 120,
        threads,
        ..RetConfig::default()
    };

    let serial = solve_ret(&g, &jobs, &cfg, &ret_at(1))
        .expect("ret")
        .expect("workload must be overloaded but extensible");
    assert!(serial.b_lp > 0.0, "bisection must do real work");
    let pooled = solve_ret(&g, &jobs, &cfg, &ret_at(4))
        .expect("ret")
        .expect("workload must be overloaded but extensible");

    assert_eq!(serial.b_lp.to_bits(), pooled.b_lp.to_bits());
    assert_eq!(serial.b_final.to_bits(), pooled.b_final.to_bits());
    assert_eq!(serial.lp, pooled.lp);
    assert_eq!(serial.lpd, pooled.lpd);
    assert_eq!(serial.lpdar, pooled.lpdar);
    // Full stats: solves, iterations, phase-1 iterations, warm starts —
    // the fixed-round speculation realizes the same probes in the same
    // order at every width.
    assert_eq!(serial.stats, pooled.stats);
}

#[test]
fn milp_incumbent_is_bit_identical_across_worker_counts() {
    // A 14-variable knapsack with enough fractional branching for 4
    // workers to race on the incumbent.
    let mut state = 0xfeed_5eed_u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut p = Problem::new(Objective::Maximize);
    let mut coeffs = Vec::new();
    for _ in 0..14 {
        let c = p.add_int_col(0.0, 1.0, 1.0 + (next() * 20.0).round());
        coeffs.push((c, 1.0 + (next() * 12.0).round()));
    }
    let cap: f64 = coeffs.iter().map(|&(_, w)| w).sum::<f64>() * 0.4;
    p.add_row(f64::NEG_INFINITY, cap.round(), &coeffs);

    let solve_at = |threads: usize| {
        solve_milp(
            &p,
            &MilpConfig {
                threads,
                ..MilpConfig::default()
            },
        )
        .expect("milp")
    };
    let serial = solve_at(1);
    assert_eq!(serial.status, MilpStatus::Optimal);
    for workers in [2usize, 4] {
        let pooled = solve_at(workers);
        assert_eq!(pooled.status, MilpStatus::Optimal);
        assert_eq!(
            serial.objective.to_bits(),
            pooled.objective.to_bits(),
            "objective differs at {workers} workers"
        );
        // The lexicographic tie-break makes the incumbent *point* (not just
        // its objective) reproducible.
        assert_eq!(serial.x, pooled.x, "incumbent differs at {workers} workers");
    }
}
