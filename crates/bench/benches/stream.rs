//! Criterion benchmark for the streaming trace replay: the periodic
//! controller driven from a lazily generated job stream versus the same
//! trace preloaded into memory.
//!
//! The interesting output is not the wall-clock delta (the controller's
//! LP work dwarfs job generation either way) but the allocation profile
//! printed once at startup: early-window versus late-window mean bytes
//! allocated per invocation. Flat means the active-window grid and build
//! arenas hold — steady-state allocation is independent of how far the
//! replay has progressed. The full-scale (million-job) capture lives in
//! the `stream` *binary* (`--bin stream`), which installs the tracking
//! allocator; see EXPERIMENTS.md BENCH_8.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wavesched_core::controller::ControllerConfig;
use wavesched_net::abilene14;
use wavesched_sim::{run_simulation_streamed, SimConfig};
use wavesched_workload::{ArrivalModel, WorkloadConfig, WorkloadGenerator};

fn replay_config(jobs: usize) -> (SimConfig, WorkloadConfig) {
    let mut ctl = ControllerConfig::paper(4);
    ctl.tau = 4;
    ctl.instance.paths_per_job = 2;
    let rate = 20.0;
    let cfg = SimConfig {
        controller: ctl,
        max_slices: (jobs as f64 / rate).ceil() as usize + 500,
    };
    let wl = WorkloadConfig {
        num_jobs: jobs,
        seed: 2009,
        arrival: ArrivalModel::Poisson { rate },
        window: (4.0, 8.0),
        ..Default::default()
    };
    (cfg, wl)
}

fn bench_streamed_vs_preloaded(c: &mut Criterion) {
    let (g, _) = abilene14(4);
    let jobs = 1_000;
    let (cfg, wl) = replay_config(jobs);

    // One instrumented pass for the profile line (all-zero deltas here —
    // the bench harness does not install the tracking allocator — but
    // peak_active and the slice/invocation counts are real).
    let r = run_simulation_streamed(
        &g,
        WorkloadGenerator::new(wl.clone()).stream(&g),
        &cfg,
        None,
    )
    .expect("replay");
    eprintln!(
        "# stream replay: {} jobs, {} invocations, {} slices, peak_active {}, \
         alloc/invocation early {:.0} B late {:.0} B",
        r.jobs_seen,
        r.invocations,
        r.slices,
        r.peak_active,
        r.mem.early_mean_alloc_bytes,
        r.mem.late_mean_alloc_bytes,
    );

    let mut group = c.benchmark_group("stream_replay");
    group.sample_size(10);
    group.bench_function("streamed", |b| {
        b.iter(|| {
            black_box(
                run_simulation_streamed(
                    &g,
                    WorkloadGenerator::new(wl.clone()).stream(&g),
                    &cfg,
                    None,
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("preloaded", |b| {
        b.iter(|| {
            let all = WorkloadGenerator::new(wl.clone()).generate(&g);
            black_box(run_simulation_streamed(&g, all, &cfg, None).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_streamed_vs_preloaded);
criterion_main!(benches);
