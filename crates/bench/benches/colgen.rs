//! Criterion benchmarks for delayed column generation: the restricted
//! master (seed + price–resolve) against the monolithic build-then-solve
//! on the same instances, at the path budgets where the difference shows.
//! With the paper's `k = 4` the two are close; at `k = 16` the monolithic
//! side materializes 4x the columns while the pool barely grows — the
//! scaling argument of the colgen refactor at micro scale (the full-size
//! version is `fig4 --colgen`, recorded in BENCH_6.json).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wavesched_core::colgen::{CgMaster, ColGenConfig, PricerChoice};
use wavesched_core::instance::{Instance, InstanceConfig};
use wavesched_core::stage1::{solve_stage1, solve_stage1_colgen};
use wavesched_net::{abilene20, Graph, PathSet};
use wavesched_workload::{Job, WorkloadConfig, WorkloadGenerator};

fn setup(n_jobs: usize, paths_per_job: usize) -> (Graph, Vec<Job>, InstanceConfig) {
    let w = 4;
    let (g, _) = abilene20(w);
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: n_jobs,
        seed: 9,
        window: (4.0, 10.0),
        ..Default::default()
    })
    .generate(&g);
    let cfg = InstanceConfig {
        paths_per_job,
        ..InstanceConfig::paper(w)
    };
    (g, jobs, cfg)
}

fn solve_monolithic(g: &Graph, jobs: &[Job], cfg: &InstanceConfig) -> f64 {
    let mut ps = PathSet::new(cfg.paths_per_job);
    let inst = Instance::build(g, jobs, cfg, &mut ps);
    solve_stage1(&inst).unwrap().z_star
}

fn solve_colgen(g: &Graph, jobs: &[Job], cfg: &InstanceConfig, pricer: PricerChoice) -> f64 {
    let demands: Vec<f64> = jobs.iter().map(|j| cfg.demand_units(j.size_gb)).collect();
    let cg = ColGenConfig {
        pricer,
        ..ColGenConfig::default()
    };
    let mut master = CgMaster::build(g, jobs, demands, cfg, &cg).unwrap();
    let mut p = pricer.build(cfg.paths_per_job);
    solve_stage1_colgen(&mut master, p.as_mut()).unwrap()
}

fn bench_stage1(c: &mut Criterion) {
    for &k in &[4usize, 16] {
        let (g, jobs, cfg) = setup(30, k);
        let mut group = c.benchmark_group(format!("colgen_stage1_abilene_30jobs_k{k}"));
        group.sample_size(10);
        group.bench_function("monolithic", |b| {
            b.iter(|| black_box(solve_monolithic(&g, &jobs, &cfg)))
        });
        group.bench_function("cg_exhaustive", |b| {
            b.iter(|| black_box(solve_colgen(&g, &jobs, &cfg, PricerChoice::Exhaustive)))
        });
        group.bench_function("cg_reduced_cost", |b| {
            b.iter(|| black_box(solve_colgen(&g, &jobs, &cfg, PricerChoice::ReducedCost)))
        });
        group.finish();
    }
}

fn bench_master_build(c: &mut Criterion) {
    // Model construction alone: the restricted master seeds one shortest
    // path per job; the monolithic build enumerates the whole Yen grid.
    let (g, jobs, cfg) = setup(30, 16);
    let demands: Vec<f64> = jobs.iter().map(|j| cfg.demand_units(j.size_gb)).collect();
    let cg = ColGenConfig::default();
    let mut group = c.benchmark_group("colgen_build_abilene_30jobs_k16");
    group.bench_function("monolithic_instance", |b| {
        b.iter(|| {
            let mut ps = PathSet::new(cfg.paths_per_job);
            black_box(Instance::build(&g, &jobs, &cfg, &mut ps))
        })
    });
    group.bench_function("cg_master_seed", |b| {
        b.iter(|| black_box(CgMaster::build(&g, &jobs, demands.clone(), &cfg, &cg).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_stage1, bench_master_build);
criterion_main!(benches);
