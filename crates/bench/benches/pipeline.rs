//! Criterion benchmarks for the scheduling pipeline pieces on Abilene-sized
//! instances: Stage-1 MCF, Stage-2, LPD truncation, and the LPDAR greedy
//! adjustment (the paper's Fig. 3 at micro scale: the LP solve dominates,
//! the discretization steps are noise).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wavesched_core::instance::{Instance, InstanceConfig};
use wavesched_core::lpdar::{adjust_rates, truncate, AdjustOrder};
use wavesched_core::stage1::solve_stage1;
use wavesched_core::stage2::solve_stage2;
use wavesched_net::{abilene20, PathSet};
use wavesched_workload::{WorkloadConfig, WorkloadGenerator};

fn abilene_instance(n_jobs: usize) -> Instance {
    let w = 4;
    let (g, _) = abilene20(w);
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: n_jobs,
        seed: 9,
        window: (4.0, 10.0),
        ..Default::default()
    })
    .generate(&g);
    let cfg = InstanceConfig::paper(w);
    let mut ps = PathSet::new(cfg.paths_per_job);
    Instance::build(&g, &jobs, &cfg, &mut ps)
}

fn bench_stages(c: &mut Criterion) {
    let inst = abilene_instance(30);
    let s1 = solve_stage1(&inst).unwrap();
    let s2 = solve_stage2(&inst, s1.z_star, 0.1).unwrap();
    let lpd = truncate(&inst, &s2.schedule);

    let mut group = c.benchmark_group("pipeline_abilene_30jobs");
    group.sample_size(10);
    group.bench_function("stage1_mcf", |b| {
        b.iter(|| black_box(solve_stage1(&inst).unwrap()))
    });
    group.bench_function("stage2_lp", |b| {
        b.iter(|| black_box(solve_stage2(&inst, s1.z_star, 0.1).unwrap()))
    });
    group.bench_function("lpd_truncate", |b| {
        b.iter(|| black_box(truncate(&inst, &s2.schedule)))
    });
    group.bench_function("lpdar_adjust", |b| {
        b.iter(|| black_box(adjust_rates(&inst, &lpd, AdjustOrder::Paper)))
    });
    group.finish();
}

fn bench_instance_build(c: &mut Criterion) {
    c.bench_function("instance_build_abilene_30jobs", |b| {
        b.iter(|| black_box(abilene_instance(30)))
    });
}

criterion_group!(benches, bench_stages, bench_instance_build);
criterion_main!(benches);
