//! Criterion micro-benchmarks for the LP solver itself: the sparse revised
//! simplex against the dense oracle on synthetic LPs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use wavesched_lp::dense::solve_dense;
use wavesched_lp::{solve, Objective, Problem};

/// Random sparse LP with `n` vars and `m` rows.
fn random_lp(n: usize, m: usize, seed: u64) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Problem::new(Objective::Maximize);
    let cols: Vec<_> = (0..n)
        .map(|_| p.add_col(0.0, rng.random_range(1.0..10.0), rng.random_range(0.0..5.0)))
        .collect();
    for _ in 0..m {
        let mut coeffs = Vec::new();
        for &c in &cols {
            if rng.random_range(0..100) < 40 {
                coeffs.push((c, rng.random_range(0.5..3.0)));
            }
        }
        p.add_row(f64::NEG_INFINITY, rng.random_range(5.0..30.0), &coeffs);
    }
    p
}

fn bench_revised_vs_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_solvers");
    for &size in &[10usize, 30, 60] {
        let p = random_lp(size, size, 7);
        group.bench_with_input(BenchmarkId::new("revised", size), &p, |b, p| {
            b.iter(|| black_box(solve(p).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("dense", size), &p, |b, p| {
            b.iter(|| black_box(solve_dense(p).unwrap()))
        });
    }
    group.finish();
}

fn bench_revised_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("revised_scaling");
    group.sample_size(10);
    for &size in &[100usize, 200, 400] {
        let p = random_lp(size, size, 11);
        group.bench_with_input(BenchmarkId::from_parameter(size), &p, |b, p| {
            b.iter(|| black_box(solve(p).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_revised_vs_dense, bench_revised_scaling);
criterion_main!(benches);
