//! Criterion benchmarks for the `wavesched-par` work pool: fixed thread
//! counts (not `WS_THREADS`) so the serial and pooled variants of the same
//! work are compared directly.
//!
//! Groups:
//!
//! * `pool_dispatch` — raw overhead of `par_map_indexed_with` on trivial
//!   items, width 1 (inline path, no spawn) vs width 4.
//! * `sweep_width` — a fig1-style sweep of independent pipeline solves,
//!   mapped at widths 1 / 2 / 4. On a multi-core host the wall-clock ratio
//!   is the harness speedup quoted in EXPERIMENTS.md; results are
//!   bit-identical at every width.
//! * `ret_width` — the Fig. 4 RET search with speculative probes at widths
//!   1 / 2 / 4 (`RetConfig::threads`); b̂ and the work counters are
//!   width-independent by construction.
//! * `milp_workers` — branch-and-bound on a 16-variable knapsack with 1 vs
//!   4 workers (`MilpConfig::threads`); the incumbent is identical, node
//!   order is not.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wavesched_bench::{build_instance, fig_workload, paper_random_network};
use wavesched_core::instance::InstanceConfig;
use wavesched_core::pipeline::max_throughput_pipeline;
use wavesched_core::ret::{solve_ret, RetConfig};
use wavesched_lp::{solve_milp, MilpConfig, Objective, Problem};
use wavesched_net::abilene14;
use wavesched_workload::{WorkloadConfig, WorkloadGenerator};

const WIDTHS: [usize; 3] = [1, 2, 4];

fn bench_pool_dispatch(c: &mut Criterion) {
    let items: Vec<u64> = (0..256).collect();
    let mut group = c.benchmark_group("pool_dispatch");
    for width in [1usize, 4] {
        group.bench_function(format!("width{width}"), |b| {
            b.iter(|| {
                black_box(wavesched_par::par_map_with(width, &items, |&x| {
                    x.wrapping_mul(0x9e3779b97f4a7c15)
                }))
            })
        });
    }
    group.finish();
}

fn bench_sweep_width(c: &mut Criterion) {
    // Four independent sweep points, as fig1 runs them: small random
    // networks so a bench iteration stays under a second.
    std::env::set_var("WS_QUICK", "1");
    let points: Vec<u64> = (0..4).collect();
    let solve = |&seed: &u64| {
        let g = paper_random_network(4, 42 + seed);
        let jobs = fig_workload(&g, 30, 1000 + seed);
        let inst = build_instance(&g, &jobs, 4, 4);
        let r = max_throughput_pipeline(&inst, 0.1).expect("pipeline");
        r.z_star
    };
    let serial = wavesched_par::par_map_with(1, &points, solve);

    let mut group = c.benchmark_group("sweep_width");
    group.sample_size(10);
    for width in WIDTHS {
        let pooled = wavesched_par::par_map_with(width, &points, solve);
        assert_eq!(serial, pooled, "sweep must be width-independent");
        group.bench_function(format!("width{width}"), |b| {
            b.iter(|| black_box(wavesched_par::par_map_with(width, &points, solve)))
        });
    }
    group.finish();
}

fn bench_ret_width(c: &mut Criterion) {
    // The Fig. 4 shape at bench-friendly size (see benches/warm.rs): an
    // overloaded Abilene so the bisection speculates over real probes.
    let (g, _) = abilene14(2);
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: 15,
        seed: 3000,
        size_gb: (100.0, 400.0),
        window: (2.0, 4.0),
        ..Default::default()
    })
    .generate(&g);
    let cfg = InstanceConfig::paper(2);
    let ret_at = |threads: usize| RetConfig {
        bsearch_tol: 0.05,
        b_max: 10.0,
        max_delta_steps: 120,
        threads,
        ..RetConfig::default()
    };
    let serial = solve_ret(&g, &jobs, &cfg, &ret_at(1))
        .expect("ret")
        .expect("overloaded");

    let mut group = c.benchmark_group("ret_width");
    group.sample_size(10);
    for width in WIDTHS {
        let r = solve_ret(&g, &jobs, &cfg, &ret_at(width))
            .expect("ret")
            .expect("overloaded");
        assert_eq!(serial.b_final.to_bits(), r.b_final.to_bits());
        assert_eq!(
            serial.stats, r.stats,
            "work counters must be width-independent"
        );
        group.bench_function(format!("width{width}"), |b| {
            b.iter(|| black_box(solve_ret(&g, &jobs, &cfg, &ret_at(width)).unwrap()))
        });
    }
    group.finish();
}

/// A 16-variable 0/1 knapsack with two capacity rows — enough branching to
/// keep 4 workers busy (same xorshift family as the milp unit tests).
fn knapsack() -> Problem {
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut p = Problem::new(Objective::Maximize);
    let n = 16;
    let mut cols = Vec::new();
    let mut weights = Vec::new();
    for _ in 0..n {
        let value = 1.0 + (next() * 20.0).round();
        cols.push(p.add_int_col(0.0, 1.0, value));
        weights.push(1.0 + (next() * 12.0).round());
    }
    let coeffs: Vec<_> = cols.iter().copied().zip(weights.iter().copied()).collect();
    let cap: f64 = weights.iter().sum::<f64>() * 0.4;
    p.add_row(f64::NEG_INFINITY, cap.round(), &coeffs);
    let alt: Vec<_> = cols
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, 1.0 + (i % 3) as f64))
        .collect();
    p.add_row(f64::NEG_INFINITY, (n as f64 * 0.8).round(), &alt);
    p
}

fn bench_milp_workers(c: &mut Criterion) {
    let p = knapsack();
    let cfg_at = |threads: usize| MilpConfig {
        threads,
        ..MilpConfig::default()
    };
    let serial = solve_milp(&p, &cfg_at(1)).expect("milp");

    let mut group = c.benchmark_group("milp_workers");
    group.sample_size(10);
    for width in [1usize, 4] {
        let sol = solve_milp(&p, &cfg_at(width)).expect("milp");
        assert_eq!(serial.objective.to_bits(), sol.objective.to_bits());
        group.bench_function(format!("workers{width}"), |b| {
            b.iter(|| black_box(solve_milp(&p, &cfg_at(width)).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pool_dispatch,
    bench_sweep_width,
    bench_ret_width,
    bench_milp_workers
);
criterion_main!(benches);
