//! Criterion benchmarks for warm-started re-solves: RET with session-based
//! probes versus per-probe cold solves, and Stage 2 warm-started from the
//! Stage-1 basis versus solved cold.
//!
//! Besides wall-clock, each group prints the solver work counters once at
//! startup (iterations, warm starts accepted, cold fallbacks) so the
//! iteration savings of warm starting are visible directly — the RET
//! comparison is the paper-scale Fig. 4 workload at bench-friendly size.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wavesched_core::instance::InstanceConfig;
use wavesched_core::ret::{
    probe_sequence_stats, solve_ret, ProbeResolveMode, RetConfig, RetResult,
};
use wavesched_core::stage1::solve_stage1;
use wavesched_core::stage2::{
    solve_stage2_weighted_with_start, stage2_basis_from_stage1, WeightPolicy,
};
use wavesched_lp::SimplexConfig;
use wavesched_net::{abilene14, Graph, PathSet};
use wavesched_workload::{Job, WorkloadConfig, WorkloadGenerator};

/// The Fig. 4 shape at bench-friendly size: an overloaded Abilene so RET's
/// bisection and δ-growth both do real work.
fn fig4_workload() -> (Graph, Vec<Job>, InstanceConfig, RetConfig) {
    let (g, _) = abilene14(2);
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: 15,
        seed: 3000,
        size_gb: (100.0, 400.0),
        window: (2.0, 4.0),
        ..Default::default()
    })
    .generate(&g);
    let cfg = InstanceConfig::paper(2);
    let ret_cfg = RetConfig {
        bsearch_tol: 0.05,
        b_max: 10.0,
        max_delta_steps: 120,
        ..RetConfig::default()
    };
    (g, jobs, cfg, ret_cfg)
}

fn run_ret(g: &Graph, jobs: &[Job], cfg: &InstanceConfig, ret_cfg: &RetConfig) -> RetResult {
    solve_ret(g, jobs, cfg, ret_cfg)
        .expect("ret solve")
        .expect("workload must be overloaded but extensible")
}

fn bench_ret_cold_vs_warm(c: &mut Criterion) {
    let (g, jobs, cfg, warm_cfg) = fig4_workload();
    let cold_cfg = RetConfig {
        warm_start: false,
        ..warm_cfg.clone()
    };

    // One instrumented run of each mode: same b̂ and schedules by
    // construction, different work.
    let cold = run_ret(&g, &jobs, &cfg, &cold_cfg);
    let warm = run_ret(&g, &jobs, &cfg, &warm_cfg);
    assert_eq!(cold.b_final.to_bits(), warm.b_final.to_bits());
    eprintln!(
        "# ret cold: {} solves, {} iters ({} phase-1), {} warm accepted, {} fallbacks",
        cold.stats.solves,
        cold.stats.iterations,
        cold.stats.phase1_iterations,
        cold.stats.warm_starts_accepted,
        cold.stats.warm_start_fallbacks,
    );
    eprintln!(
        "# ret warm: {} solves, {} iters ({} phase-1), {} warm accepted, {} fallbacks",
        warm.stats.solves,
        warm.stats.iterations,
        warm.stats.phase1_iterations,
        warm.stats.warm_starts_accepted,
        warm.stats.warm_start_fallbacks,
    );
    eprintln!(
        "# ret warm saves {:.1}% of simplex iterations",
        100.0 * (1.0 - warm.stats.iterations as f64 / cold.stats.iterations as f64)
    );

    let mut group = c.benchmark_group("ret_cold_vs_warm");
    group.sample_size(10);
    group.bench_function("cold", |b| {
        b.iter(|| black_box(run_ret(&g, &jobs, &cfg, &cold_cfg)))
    });
    group.bench_function("warm", |b| {
        b.iter(|| black_box(run_ret(&g, &jobs, &cfg, &warm_cfg)))
    });
    group.finish();
}

/// The RET probe sequence in isolation (no δ-growth, no LPDAR): the serial
/// bisection replayed under three re-solve strategies. `Cold` pays a full
/// solve per probe, `PrimalWarm` is the pre-dual session layer (re-fed
/// basis forces the primal warm ladder), `SessionWarm` lets the session
/// take the dual path on the bound-only edits. All three ask the same LP
/// question per trial `b`, so b̂ is asserted bit-identical and the counter
/// deltas are attributable purely to the re-solve strategy.
fn bench_ret_probe_paths(c: &mut Criterion) {
    let (g, jobs, cfg, ret_cfg) = fig4_workload();
    let run = |mode: ProbeResolveMode| {
        probe_sequence_stats(&g, &jobs, &cfg, &ret_cfg, mode)
            .expect("probe sequence solve")
            .expect("workload must be extensible within b_max")
    };

    let (b_cold, cold) = run(ProbeResolveMode::Cold);
    let (b_primal, primal) = run(ProbeResolveMode::PrimalWarm);
    let (b_dual, dual) = run(ProbeResolveMode::SessionWarm);
    assert_eq!(b_cold.to_bits(), b_primal.to_bits());
    assert_eq!(b_cold.to_bits(), b_dual.to_bits());
    for (name, s) in [("cold", &cold), ("primal-warm", &primal), ("dual", &dual)] {
        eprintln!(
            "# ret probes {name}: {} solves, {} iters ({} phase-1, {} dual, {} flips), \
             {} warm accepted, {} fallbacks",
            s.solves,
            s.iterations + s.dual_iterations,
            s.phase1_iterations,
            s.dual_iterations,
            s.dual_bound_flips,
            s.warm_starts_accepted,
            s.warm_start_fallbacks,
        );
    }
    eprintln!(
        "# ret probes dual vs primal-warm: {:.2}x fewer simplex iterations",
        (primal.iterations + primal.dual_iterations) as f64
            / (dual.iterations + dual.dual_iterations) as f64
    );

    let mut group = c.benchmark_group("ret_probe_paths");
    group.sample_size(10);
    for (name, mode) in [
        ("cold", ProbeResolveMode::Cold),
        ("primal_warm", ProbeResolveMode::PrimalWarm),
        ("session_dual", ProbeResolveMode::SessionWarm),
    ] {
        group.bench_function(name, |b| b.iter(|| black_box(run(mode))));
    }
    group.finish();
}

fn bench_stage2_cold_vs_warm(c: &mut Criterion) {
    let (g, _) = abilene14(4);
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: 20,
        seed: 11,
        ..Default::default()
    })
    .generate(&g);
    let icfg = InstanceConfig::paper(4);
    let mut ps = PathSet::new(icfg.paths_per_job);
    let inst = wavesched_core::instance::Instance::build(&g, &jobs, &icfg, &mut ps);
    let lp = SimplexConfig::default();
    let s1 = solve_stage1(&inst).expect("stage 1");
    let start = s1
        .basis
        .as_ref()
        .and_then(|b| stage2_basis_from_stage1(b, inst.vars.len()));

    let cold = solve_stage2_weighted_with_start(
        &inst,
        s1.z_star,
        0.1,
        &WeightPolicy::DemandProportional,
        &lp,
        None,
    )
    .expect("stage 2 cold");
    let warm = solve_stage2_weighted_with_start(
        &inst,
        s1.z_star,
        0.1,
        &WeightPolicy::DemandProportional,
        &lp,
        start.as_ref(),
    )
    .expect("stage 2 warm");
    eprintln!(
        "# stage2 cold: {} iters ({} phase-1); warm: {} iters ({} phase-1), {} accepted",
        cold.stats.iterations,
        cold.stats.phase1_iterations,
        warm.stats.iterations,
        warm.stats.phase1_iterations,
        warm.stats.warm_starts_accepted,
    );

    let mut group = c.benchmark_group("stage2_cold_vs_warm");
    group.sample_size(10);
    group.bench_function("cold", |b| {
        b.iter(|| {
            black_box(
                solve_stage2_weighted_with_start(
                    &inst,
                    s1.z_star,
                    0.1,
                    &WeightPolicy::DemandProportional,
                    &lp,
                    None,
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("warm", |b| {
        b.iter(|| {
            black_box(
                solve_stage2_weighted_with_start(
                    &inst,
                    s1.z_star,
                    0.1,
                    &WeightPolicy::DemandProportional,
                    &lp,
                    start.as_ref(),
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ret_cold_vs_warm,
    bench_ret_probe_paths,
    bench_stage2_cold_vs_warm
);
criterion_main!(benches);
