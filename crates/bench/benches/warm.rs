//! Criterion benchmarks for warm-started re-solves: RET with session-based
//! probes versus per-probe cold solves, Stage 2 warm-started from the
//! Stage-1 basis versus solved cold, and a column-generation master
//! re-aim sequence with the basis factorization carried across solves
//! versus refactored at every entry.
//!
//! Besides wall-clock, each group prints the solver work counters once at
//! startup (iterations, warm starts accepted, cold fallbacks) so the
//! iteration savings of warm starting are visible directly — the RET
//! comparison is the paper-scale Fig. 4 workload at bench-friendly size.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use wavesched_core::instance::InstanceConfig;
use wavesched_core::ret::{
    probe_sequence_stats, solve_ret, ProbeResolveMode, RetConfig, RetResult,
};
use wavesched_core::stage1::solve_stage1;
use wavesched_core::stage2::{
    solve_stage2_weighted_with_start, stage2_basis_from_stage1, WeightPolicy,
};
use wavesched_lp::{
    NewColumn, NewRow, Objective, Problem, RefactorPolicy, Row, SimplexConfig, SolveStats,
    SolverSession, Status,
};
use wavesched_net::{abilene14, Graph, PathSet};
use wavesched_workload::{Job, WorkloadConfig, WorkloadGenerator};

/// The Fig. 4 shape at bench-friendly size: an overloaded Abilene so RET's
/// bisection and δ-growth both do real work.
fn fig4_workload() -> (Graph, Vec<Job>, InstanceConfig, RetConfig) {
    let (g, _) = abilene14(2);
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: 15,
        seed: 3000,
        size_gb: (100.0, 400.0),
        window: (2.0, 4.0),
        ..Default::default()
    })
    .generate(&g);
    let cfg = InstanceConfig::paper(2);
    let ret_cfg = RetConfig {
        bsearch_tol: 0.05,
        b_max: 10.0,
        max_delta_steps: 120,
        ..RetConfig::default()
    };
    (g, jobs, cfg, ret_cfg)
}

fn run_ret(g: &Graph, jobs: &[Job], cfg: &InstanceConfig, ret_cfg: &RetConfig) -> RetResult {
    solve_ret(g, jobs, cfg, ret_cfg)
        .expect("ret solve")
        .expect("workload must be overloaded but extensible")
}

fn bench_ret_cold_vs_warm(c: &mut Criterion) {
    let (g, jobs, cfg, warm_cfg) = fig4_workload();
    let cold_cfg = RetConfig {
        warm_start: false,
        ..warm_cfg.clone()
    };

    // One instrumented run of each mode: same b̂ and schedules by
    // construction, different work.
    let cold = run_ret(&g, &jobs, &cfg, &cold_cfg);
    let warm = run_ret(&g, &jobs, &cfg, &warm_cfg);
    assert_eq!(cold.b_final.to_bits(), warm.b_final.to_bits());
    eprintln!(
        "# ret cold: {} solves, {} iters ({} phase-1), {} warm accepted, {} fallbacks",
        cold.stats.solves,
        cold.stats.iterations,
        cold.stats.phase1_iterations,
        cold.stats.warm_starts_accepted,
        cold.stats.warm_start_fallbacks,
    );
    eprintln!(
        "# ret warm: {} solves, {} iters ({} phase-1), {} warm accepted, {} fallbacks",
        warm.stats.solves,
        warm.stats.iterations,
        warm.stats.phase1_iterations,
        warm.stats.warm_starts_accepted,
        warm.stats.warm_start_fallbacks,
    );
    eprintln!(
        "# ret warm saves {:.1}% of simplex iterations",
        100.0 * (1.0 - warm.stats.iterations as f64 / cold.stats.iterations as f64)
    );

    let mut group = c.benchmark_group("ret_cold_vs_warm");
    group.sample_size(10);
    group.bench_function("cold", |b| {
        b.iter(|| black_box(run_ret(&g, &jobs, &cfg, &cold_cfg)))
    });
    group.bench_function("warm", |b| {
        b.iter(|| black_box(run_ret(&g, &jobs, &cfg, &warm_cfg)))
    });
    group.finish();
}

/// The RET probe sequence in isolation (no δ-growth, no LPDAR): the serial
/// bisection replayed under three re-solve strategies. `Cold` pays a full
/// solve per probe, `PrimalWarm` is the pre-dual session layer (re-fed
/// basis forces the primal warm ladder), `SessionWarm` lets the session
/// take the dual path on the bound-only edits. All three ask the same LP
/// question per trial `b`, so b̂ is asserted bit-identical and the counter
/// deltas are attributable purely to the re-solve strategy.
fn bench_ret_probe_paths(c: &mut Criterion) {
    let (g, jobs, cfg, ret_cfg) = fig4_workload();
    let run = |mode: ProbeResolveMode| {
        probe_sequence_stats(&g, &jobs, &cfg, &ret_cfg, mode)
            .expect("probe sequence solve")
            .expect("workload must be extensible within b_max")
    };

    let (b_cold, cold) = run(ProbeResolveMode::Cold);
    let (b_primal, primal) = run(ProbeResolveMode::PrimalWarm);
    let (b_dual, dual) = run(ProbeResolveMode::SessionWarm);
    assert_eq!(b_cold.to_bits(), b_primal.to_bits());
    assert_eq!(b_cold.to_bits(), b_dual.to_bits());
    for (name, s) in [("cold", &cold), ("primal-warm", &primal), ("dual", &dual)] {
        eprintln!(
            "# ret probes {name}: {} solves, {} iters ({} phase-1, {} dual, {} flips), \
             {} warm accepted, {} fallbacks",
            s.solves,
            s.iterations + s.dual_iterations,
            s.phase1_iterations,
            s.dual_iterations,
            s.dual_bound_flips,
            s.warm_starts_accepted,
            s.warm_start_fallbacks,
        );
    }
    eprintln!(
        "# ret probes dual vs primal-warm: {:.2}x fewer simplex iterations",
        (primal.iterations + primal.dual_iterations) as f64
            / (dual.iterations + dual.dual_iterations) as f64
    );

    let mut group = c.benchmark_group("ret_probe_paths");
    group.sample_size(10);
    for (name, mode) in [
        ("cold", ProbeResolveMode::Cold),
        ("primal_warm", ProbeResolveMode::PrimalWarm),
        ("session_dual", ProbeResolveMode::SessionWarm),
    ] {
        group.bench_function(name, |b| b.iter(|| black_box(run(mode))));
    }
    group.finish();
}

fn bench_stage2_cold_vs_warm(c: &mut Criterion) {
    let (g, _) = abilene14(4);
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: 20,
        seed: 11,
        ..Default::default()
    })
    .generate(&g);
    let icfg = InstanceConfig::paper(4);
    let mut ps = PathSet::new(icfg.paths_per_job);
    let inst = wavesched_core::instance::Instance::build(&g, &jobs, &icfg, &mut ps);
    let lp = SimplexConfig::default();
    let s1 = solve_stage1(&inst).expect("stage 1");
    let start = s1
        .basis
        .as_ref()
        .and_then(|b| stage2_basis_from_stage1(b, inst.vars.len()));

    let cold = solve_stage2_weighted_with_start(
        &inst,
        s1.z_star,
        0.1,
        &WeightPolicy::DemandProportional,
        &lp,
        None,
    )
    .expect("stage 2 cold");
    let warm = solve_stage2_weighted_with_start(
        &inst,
        s1.z_star,
        0.1,
        &WeightPolicy::DemandProportional,
        &lp,
        start.as_ref(),
    )
    .expect("stage 2 warm");
    eprintln!(
        "# stage2 cold: {} iters ({} phase-1); warm: {} iters ({} phase-1), {} accepted",
        cold.stats.iterations,
        cold.stats.phase1_iterations,
        warm.stats.iterations,
        warm.stats.phase1_iterations,
        warm.stats.warm_starts_accepted,
    );

    let mut group = c.benchmark_group("stage2_cold_vs_warm");
    group.sample_size(10);
    group.bench_function("cold", |b| {
        b.iter(|| {
            black_box(
                solve_stage2_weighted_with_start(
                    &inst,
                    s1.z_star,
                    0.1,
                    &WeightPolicy::DemandProportional,
                    &lp,
                    None,
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("warm", |b| {
        b.iter(|| {
            black_box(
                solve_stage2_weighted_with_start(
                    &inst,
                    s1.z_star,
                    0.1,
                    &WeightPolicy::DemandProportional,
                    &lp,
                    start.as_ref(),
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

/// A CG-master-shaped LP: demand rows, one expensive fallback column per
/// row (so every cover state stays feasible), and a pool of cheap "path"
/// columns each covering a handful of rows — the shape
/// `wavesched_core::colgen` re-solves after every pricing round.
fn cg_master_problem(rng: &mut StdRng, rows: usize, pool: usize) -> Problem {
    let mut p = Problem::new(Objective::Minimize);
    for i in 0..rows {
        let r = p.add_row(1.0, f64::INFINITY, &[]);
        let c = p.add_col(0.0, f64::INFINITY, 50.0);
        p.set_coeff(r, c, 1.0);
        debug_assert_eq!(r.index(), i);
    }
    for _ in 0..pool {
        let c = p.add_col(0.0, f64::INFINITY, rng.random_range(1i32..=9) as f64);
        let k = rng.random_range(3..=6usize);
        let mut seen = vec![false; rows];
        for _ in 0..k {
            let i = rng.random_range(0..rows);
            if !seen[i] {
                seen[i] = true;
                p.set_coeff(Row::from_index(i), c, 1.0);
            }
        }
    }
    p
}

/// One leg of the master re-aim replay: `Cold` rebuilds and solves the
/// LP from scratch every step (what `CgMaster` did before sessions),
/// the session legs re-solve in place under the named refactor policy.
#[derive(Clone, Copy)]
enum ReaimMode {
    Cold,
    Session(RefactorPolicy),
}

/// Replays the master re-aim sequence: per step a block of row demands
/// moves, every eighth step splices fresh columns and every sixteenth a
/// coupling row, exactly like a CG round. Returns the summed objectives
/// (the answer checksum every leg must agree on) and the accumulated
/// work counters.
fn run_cg_reaim(base: &Problem, mode: ReaimMode, steps: usize) -> (f64, SolveStats) {
    let rows = base.num_rows();
    let mut p = base.clone();
    let mut sess = match mode {
        ReaimMode::Cold => None,
        ReaimMode::Session(policy) => {
            let cfg = SimplexConfig {
                refactor_policy: policy,
                ..SimplexConfig::default()
            };
            Some(SolverSession::with_config(base, &cfg).expect("session"))
        }
    };
    let mut cold_stats = SolveStats::default();
    let mut resolve = |p: &Problem, sess: &mut Option<SolverSession>| match sess {
        Some(s) => s.solve().expect("re-aim master solve"),
        None => {
            let s = wavesched_lp::solve(p).expect("cold master solve");
            cold_stats.merge(&s.stats);
            s
        }
    };

    let mut rng = StdRng::seed_from_u64(777);
    let mut acc = 0.0;
    let s = resolve(&p, &mut sess);
    assert_eq!(s.status, Status::Optimal);
    acc += s.objective;
    for step in 0..steps {
        for k in 0..6 {
            let r = Row::from_index((step * 13 + k * 19) % rows);
            let demand = 1.0 + ((step + k) % 4) as f64;
            p.set_row_bounds(r, demand, f64::INFINITY);
            if let Some(s) = sess.as_mut() {
                s.set_row_bounds(r, demand, f64::INFINITY);
            }
        }
        if step % 8 == 3 {
            let mut news = Vec::new();
            for _ in 0..2 {
                let mut entries = Vec::new();
                let k = rng.random_range(3..=6usize);
                let mut seen = vec![false; rows];
                for _ in 0..k {
                    let i = rng.random_range(0..rows);
                    if !seen[i] {
                        seen[i] = true;
                        entries.push((Row::from_index(i), 1.0));
                    }
                }
                news.push(NewColumn {
                    lower: 0.0,
                    upper: f64::INFINITY,
                    cost: rng.random_range(1i32..=6) as f64,
                    entries,
                });
            }
            if let Some(s) = sess.as_mut() {
                s.add_columns(&news);
            }
            for nc in &news {
                let c = p.add_col(nc.lower, nc.upper, nc.cost);
                for &(r, v) in &nc.entries {
                    p.set_coeff(r, c, v);
                }
            }
        }
        if step % 16 == 11 {
            // A coupling row over a few existing columns: keeps the
            // product-form row extension on the benched path too.
            let entries: Vec<(wavesched_lp::Col, f64)> = (0..6)
                .map(|j| (wavesched_lp::Col::from_index(rows + j * 7), 1.0))
                .collect();
            if let Some(s) = sess.as_mut() {
                s.add_rows(&[NewRow {
                    lower: f64::NEG_INFINITY,
                    upper: 200.0,
                    entries: entries.clone(),
                }]);
            }
            p.add_row(f64::NEG_INFINITY, 200.0, &entries);
        }
        let s = resolve(&p, &mut sess);
        assert_eq!(s.status, Status::Optimal, "step {step}");
        acc += s.objective;
    }
    let stats = match sess {
        Some(s) => s.stats(),
        None => cold_stats,
    };
    (acc, stats)
}

fn bench_cg_master_reaim(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4242);
    let base = cg_master_problem(&mut rng, 120, 360);
    const STEPS: usize = 50;

    // Instrumented replay of each leg: identical answers by the warm
    // invariant, different factorization work.
    let (acc_cold, st_cold) = run_cg_reaim(&base, ReaimMode::Cold, STEPS);
    let (acc_always, st_always) =
        run_cg_reaim(&base, ReaimMode::Session(RefactorPolicy::Always), STEPS);
    let (acc_reuse, st_reuse) =
        run_cg_reaim(&base, ReaimMode::Session(RefactorPolicy::CostModel), STEPS);
    let tol = 1e-9 * (1.0 + acc_cold.abs());
    assert!(
        (acc_cold - acc_reuse).abs() <= tol && (acc_always - acc_reuse).abs() <= tol,
        "legs disagree on answers: cold {acc_cold}, always {acc_always}, reuse {acc_reuse}"
    );
    eprintln!(
        "# cg_master_reaim cold: {} solves, {} refactorizations, {} iters ({} phase-1)",
        st_cold.solves, st_cold.refactorizations, st_cold.iterations, st_cold.phase1_iterations,
    );
    eprintln!(
        "# cg_master_reaim always: {} solves, {} refactorizations, {} iters, {} reuse hits",
        st_always.solves, st_always.refactorizations, st_always.iterations, st_always.lu_reuse_hits,
    );
    eprintln!(
        "# cg_master_reaim reuse: {} solves, {} refactorizations ({} cost-model), {} iters, {} reuse hits, {} lu updates, {} rejected",
        st_reuse.solves,
        st_reuse.refactorizations,
        st_reuse.refactor_cost_model,
        st_reuse.iterations,
        st_reuse.lu_reuse_hits,
        st_reuse.lu_updates,
        st_reuse.refactor_reuse_rejected,
    );

    let mut group = c.benchmark_group("cg_master_reaim");
    group.sample_size(10);
    group.bench_function("cold", |b| {
        b.iter(|| black_box(run_cg_reaim(&base, ReaimMode::Cold, STEPS).0))
    });
    group.bench_function("refactor_always", |b| {
        b.iter(|| {
            black_box(run_cg_reaim(&base, ReaimMode::Session(RefactorPolicy::Always), STEPS).0)
        })
    });
    group.bench_function("reuse_cost_model", |b| {
        b.iter(|| {
            black_box(run_cg_reaim(&base, ReaimMode::Session(RefactorPolicy::CostModel), STEPS).0)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ret_cold_vs_warm,
    bench_ret_probe_paths,
    bench_stage2_cold_vs_warm,
    bench_cg_master_reaim
);
criterion_main!(benches);
