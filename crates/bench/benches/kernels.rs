//! Criterion benchmarks for the hypersparse simplex kernels.
//!
//! Two Stage-1 models, both the Fig. 4 workload shape (random network,
//! W = 2, 100–400 GB jobs, 2–4 h windows):
//!
//! * `fig4_instance` — the paper-default 100-node random network with the
//!   topmost fig4 sweep point (100 jobs), ~1.1k rows. Used for the
//!   cold-solve / warm-re-solve Criterion medians.
//! * `fig4_scale_instance` — the same workload on the paper's largest
//!   random-network scale (400 nodes, 400 jobs), ~4.6k rows. Used for the
//!   per-pivot kernel measurements: this is the regime the hypersparse
//!   kernels exist for.
//!
//! Kernel time is measured directly: a [`PivotProbe`] parks the engine
//! mid-solve (150 steady-state pivots in, mid refactorization cycle) and
//! sweeps every FTRAN (one per nonbasic column) and every BTRAN (one unit
//! vector per row) through the kernel stack — triangular solves plus the
//! eta file — once with the sparse kernels (default config) and once with
//! the dense kernels forced (`kernel_density_threshold: 0.0`). Both modes
//! produce bit-identical results (see `tests/kernels_differential.rs`), so
//! the ratio is a pure kernel-speed comparison. A pivot performs one FTRAN
//! and one BTRAN, so "per-pivot kernel time" is the sum of the two
//! medians; whole-pivot windows (kernels + pricing + ratio test + update)
//! are also timed for context.
//!
//! The medians and ratios are printed as `#` comment lines; `BENCH_5.json`
//! records them (see EXPERIMENTS.md for the capture command).
//!
//! Expected shape of the results: at 100-node scale FTRAN/BTRAN results
//! are still moderately dense, so the sparse kernels roughly break even —
//! the win there is allocation-free scratch and the pruned eta file. At
//! 400-node scale the kernels are hypersparse and the sparse path is
//! several times faster on both solves.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use wavesched_core::instance::{Instance, InstanceConfig};
use wavesched_core::stage1::{build_stage1_problem, solve_stage1_with, solve_stage1_with_start};
use wavesched_lp::{PivotProbe, Problem, SimplexConfig};
use wavesched_net::{waxman_network, PathSet, WaxmanConfig};
use wavesched_workload::{WorkloadConfig, WorkloadGenerator};

/// Steady-state pivots taken before the kernels are measured. 150 parks
/// the engine mid refactorization cycle (~50 etas at the default interval
/// of 100), so the eta-file share of BTRAN is representative.
const WARMUP_PIVOTS: u64 = 150;
/// Kernel-sweep repetitions per mode; the median is reported.
const SAMPLES: usize = 9;
/// Pivots per whole-pivot context window.
const WINDOW_PIVOTS: u64 = 200;

/// The Fig. 4 workload on a random network: `nodes` nodes with 2×`nodes`
/// link pairs, W = 2, one job per node.
fn fig4_workload_instance(nodes: usize) -> Instance {
    let g = waxman_network(&WaxmanConfig {
        nodes,
        link_pairs: 2 * nodes,
        wavelengths: 2,
        alpha: 0.15,
        seed: 42,
    });
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: nodes,
        seed: 3000,
        size_gb: (100.0, 400.0),
        window: (2.0, 4.0),
        ..Default::default()
    })
    .generate(&g);
    let cfg = InstanceConfig::paper(2);
    let mut ps = PathSet::new(cfg.paths_per_job);
    Instance::build(&g, &jobs, &cfg, &mut ps)
}

/// The topmost fig4 sweep point: paper-default 100-node network, 100 jobs.
fn fig4_instance() -> Instance {
    fig4_workload_instance(100)
}

/// The fig4 workload at the paper's largest random-network scale.
fn fig4_scale_instance() -> Instance {
    fig4_workload_instance(400)
}

fn dense_cfg() -> SimplexConfig {
    SimplexConfig {
        kernel_density_threshold: 0.0,
        ..SimplexConfig::default()
    }
}

struct KernelMedians {
    ftran_ns: f64,
    btran_ns: f64,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Median ns per FTRAN/BTRAN over [`SAMPLES`] full sweeps of a parked
/// probe. Sweeps only touch engine scratch, so one probe serves them all.
fn kernel_sweep_ns(p: &Problem, cfg: &SimplexConfig) -> KernelMedians {
    let mut probe = PivotProbe::new_with(p, WARMUP_PIVOTS, cfg);
    let mut ftran = Vec::with_capacity(SAMPLES);
    let mut btran = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t = Instant::now();
        let n = probe.ftran_sweep();
        ftran.push(t.elapsed().as_nanos() as f64 / n as f64);
        let t = Instant::now();
        let m = probe.btran_sweep();
        btran.push(t.elapsed().as_nanos() as f64 / m as f64);
    }
    KernelMedians {
        ftran_ns: median(&mut ftran),
        btran_ns: median(&mut btran),
    }
}

/// Median ns per whole pivot (kernels + pricing + ratio test + update)
/// over [`SAMPLES`] fresh probe windows.
fn whole_pivot_ns(p: &Problem, cfg: &SimplexConfig) -> f64 {
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let mut probe = PivotProbe::new_with(p, WARMUP_PIVOTS, cfg);
        probe.reserve(WINDOW_PIVOTS as usize + 8);
        let t = Instant::now();
        let ran = probe.pivots(WINDOW_PIVOTS);
        let dt = t.elapsed();
        assert_eq!(ran, WINDOW_PIVOTS, "probe LP too small for the window");
        samples.push(dt.as_nanos() as f64 / ran as f64);
    }
    median(&mut samples)
}

fn report_kernels(label: &str, p: &Problem) {
    let sparse = kernel_sweep_ns(p, &SimplexConfig::default());
    let dense = kernel_sweep_ns(p, &dense_cfg());
    let sparse_pivot = sparse.ftran_ns + sparse.btran_ns;
    let dense_pivot = dense.ftran_ns + dense.btran_ns;
    eprintln!(
        "# {label} ftran: sparse {:.0} ns vs dense {:.0} ns ({:.2}x)",
        sparse.ftran_ns,
        dense.ftran_ns,
        dense.ftran_ns / sparse.ftran_ns
    );
    eprintln!(
        "# {label} btran: sparse {:.0} ns vs dense {:.0} ns ({:.2}x)",
        sparse.btran_ns,
        dense.btran_ns,
        dense.btran_ns / sparse.btran_ns
    );
    eprintln!(
        "# {label} per-pivot kernel time (1 ftran + 1 btran): sparse {:.0} ns vs dense {:.0} ns ({:.2}x)",
        sparse_pivot,
        dense_pivot,
        dense_pivot / sparse_pivot
    );
}

fn bench_stage1_cold_vs_warm(c: &mut Criterion) {
    let inst = fig4_instance();
    let lp = SimplexConfig::default();
    let first = solve_stage1_with(&inst, &lp).expect("stage 1 solve");
    let basis = first.basis.clone().expect("stage 1 returns a basis");
    eprintln!(
        "# fig4 stage1 cold: {} iters, {} refactors, {} ftran fallbacks / {} ops",
        first.stats.iterations,
        first.stats.refactorizations,
        first.stats.ftran_dense_fallbacks,
        first.stats.ftran_ops,
    );

    let mut group = c.benchmark_group("kernels_stage1");
    group.sample_size(10);
    group.bench_function("cold", |b| {
        b.iter(|| black_box(solve_stage1_with(&inst, &lp).unwrap()))
    });
    group.bench_function("warm", |b| {
        b.iter(|| black_box(solve_stage1_with_start(&inst, &lp, Some(&basis)).unwrap()))
    });
    group.finish();
}

fn bench_per_pivot_kernels(c: &mut Criterion) {
    let p100 = build_stage1_problem(&fig4_instance());
    eprintln!(
        "# fig4 LP: {} rows x {} cols",
        p100.num_rows(),
        p100.num_cols()
    );
    report_kernels("fig4(100-node)", &p100);

    let p400 = build_stage1_problem(&fig4_scale_instance());
    eprintln!(
        "# fig4-scale LP: {} rows x {} cols",
        p400.num_rows(),
        p400.num_cols()
    );
    report_kernels("fig4-scale(400-node)", &p400);
    let sparse_pivot = whole_pivot_ns(&p400, &SimplexConfig::default());
    let dense_pivot = whole_pivot_ns(&p400, &dense_cfg());
    eprintln!(
        "# fig4-scale(400-node) whole pivot: sparse {sparse_pivot:.0} ns vs dense {dense_pivot:.0} ns ({:.2}x)",
        dense_pivot / sparse_pivot
    );
    // Whole-pivot and whole-solve with candidate-list pricing
    // (`WS_PRICING=partial`). These time-expanded LPs are degenerate enough
    // that the candidate sublist's narrower pivot choices inflate the
    // iteration count, so partial pricing is expected to be at best neutral
    // here — the lines below keep that trade-off measured rather than
    // assumed (see DESIGN.md "Dual simplex & partial pricing").
    let partial_cfg = SimplexConfig {
        partial_pricing: true,
        ..SimplexConfig::default()
    };
    let partial_pivot = whole_pivot_ns(&p400, &partial_cfg);
    eprintln!(
        "# fig4-scale(400-node) whole pivot: full pricing {sparse_pivot:.0} ns vs partial {partial_pivot:.0} ns ({:.2}x)",
        sparse_pivot / partial_pivot
    );
    for (name, cfg) in [
        ("full", SimplexConfig::default()),
        ("partial", partial_cfg.clone()),
    ] {
        let t = Instant::now();
        let sol = wavesched_lp::solve_with(&p400, &cfg).expect("stage1 solve");
        let dt = t.elapsed();
        eprintln!(
            "# fig4-scale(400-node) whole solve, {name} pricing: {:.2}s, obj {:.6}, {} iters, {} refreshes, {} candidates scanned",
            dt.as_secs_f64(),
            sol.objective,
            sol.stats.iterations,
            sol.stats.partial_refreshes,
            sol.stats.pricing_candidates_scanned,
        );
    }

    // The whole-pivot window through Criterion as well (probe construction
    // — standardization plus the warmup solve — is inside the closure, so
    // this is coarser than the `#` medians above).
    let mut group = c.benchmark_group("kernels_pivot_window");
    group.sample_size(10);
    group.bench_function("sparse", |b| {
        b.iter(|| {
            let mut probe = PivotProbe::new_with(&p400, WARMUP_PIVOTS, &SimplexConfig::default());
            probe.reserve(WINDOW_PIVOTS as usize + 8);
            black_box(probe.pivots(WINDOW_PIVOTS))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stage1_cold_vs_warm, bench_per_pivot_kernels);
criterion_main!(benches);
