//! # wavesched-bench — experiment harness
//!
//! One binary per figure/table of the paper's evaluation (Section III),
//! plus ablations. Every binary prints a CSV table to stdout whose rows
//! correspond to the series in the paper; EXPERIMENTS.md records
//! paper-vs-measured values.
//!
//! Binaries accept their scale knobs from environment variables so a quick
//! smoke run and the full reproduction use the same code:
//!
//! * `WS_JOBS` — override the job count(s)
//! * `WS_SEEDS` — number of workload seeds to average over (default 3)
//! * `WS_QUICK=1` — shrink everything for a fast smoke run
//! * `WS_THREADS` — work-pool width for seed replications and sweep
//!   points ([`par_seeds`] / [`par_points`]; default: available cores,
//!   `1` = exact serial). Results are bit-identical at any width — only
//!   wall-clock columns vary (see `tests/determinism.rs`).
//!
//! Every binary also accepts two CLI flags (parsed by [`bench_opts`]):
//!
//! * `--smoke` — same as `WS_QUICK=1`
//! * `--report <path>` — enable the `wavesched-obs` layer and dump a
//!   JSON-lines metrics snapshot (span durations, solver counters,
//!   histograms) to `path` on exit

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::time::Duration;
use wavesched_core::instance::{Instance, InstanceConfig};
use wavesched_net::{waxman_network, Graph, PathSet, WaxmanConfig};
use wavesched_workload::{Job, WorkloadConfig, WorkloadGenerator};

/// Reads a `usize` environment knob with a default: unset resolves to
/// `default`, anything set must parse. (`Err` carries the usage message.)
/// A knob that silently fell back to its default would run the wrong
/// experiment and label the output with the right one — every misparse is
/// an error.
pub fn try_env_usize(name: &str, default: usize) -> Result<usize, String> {
    match std::env::var(name) {
        Err(_) => Ok(default),
        Ok(v) => v
            .parse()
            .map_err(|_| format!("{name}={v:?} is not a valid unsigned integer")),
    }
}

/// Reads a `usize` environment knob with a default, exiting loudly
/// (status 2, like unknown CLI flags) when the variable is set but
/// unparseable.
pub fn env_usize(name: &str, default: usize) -> usize {
    match try_env_usize(name, default) {
        Ok(n) => n,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

/// Runs `f` once per seed across the `WS_THREADS` work pool, returning
/// results in seed order — replications are independent by construction,
/// and the order-preserving pool keeps every downstream mean/CSV row
/// bit-identical to the serial loop ([`wavesched_par::par_map`]).
pub fn par_seeds<R, F>(seeds: &[u64], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    wavesched_par::par_map(seeds, |&s| f(s))
}

/// Maps independent sweep points (job counts, alphas, orders, …) across
/// the `WS_THREADS` work pool, preserving input order. See [`par_seeds`].
pub fn par_points<T, R, F>(points: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    wavesched_par::par_map(points, f)
}

static SMOKE: AtomicBool = AtomicBool::new(false);

/// True when `WS_QUICK=1` (env) or `--smoke` (CLI, via [`bench_opts`]) asks
/// for a smoke-scale run.
pub fn quick() -> bool {
    SMOKE.load(Relaxed) || std::env::var("WS_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// CLI options shared by every bench binary.
#[derive(Debug, Default)]
pub struct BenchOpts {
    /// Where to write the JSON-lines metrics report, if requested.
    pub report: Option<String>,
    /// Solve through the delayed column-generation pipeline instead of the
    /// monolithic builds (binaries that support it document what changes;
    /// the default-config outputs stay byte-identical because the flag is
    /// strictly opt-in).
    pub colgen: bool,
}

/// Parses the common bench CLI (`--smoke`, `--report <path>`, `--colgen`),
/// turning on the observability layer when a report is requested. Exits
/// with a usage message on unknown arguments, so typos fail loudly instead
/// of silently running the full-scale experiment.
pub fn bench_opts() -> BenchOpts {
    let mut opts = BenchOpts::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => SMOKE.store(true, Relaxed),
            "--colgen" => opts.colgen = true,
            "--report" => match args.next() {
                Some(path) => opts.report = Some(path),
                None => {
                    eprintln!("--report needs a file path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "unknown argument {other:?}; supported: --smoke, --colgen, --report <path>"
                );
                std::process::exit(2);
            }
        }
    }
    if opts.report.is_some() {
        wavesched_obs::set_enabled(true);
    }
    opts
}

/// Writes the JSON-lines metrics snapshot to the `--report` path, if one
/// was given. Call at the end of `main`.
pub fn write_report(opts: &BenchOpts) {
    let Some(path) = &opts.report else {
        return;
    };
    let text = wavesched_obs::to_json_lines(&wavesched_obs::snapshot());
    if let Err(e) = std::fs::write(path, &text) {
        eprintln!("failed to write report {path:?}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {} metric lines to {path}", text.lines().count());
}

/// The paper's random evaluation network: 100 nodes, 200 link pairs,
/// average node degree 4, 20 Gbps links split into `w` wavelengths.
pub fn paper_random_network(w: u32, seed: u64) -> Graph {
    let mut cfg = WaxmanConfig::paper_default(seed);
    cfg.wavelengths = w;
    if quick() {
        cfg.nodes = 30;
        cfg.link_pairs = 60;
    }
    waxman_network(&cfg)
}

/// The batch workload used by the figure experiments: `n` jobs, sizes
/// uniform [1, 100] GB, windows uniform [4, 10] slices (chosen so the
/// 100-node instances sit at/near overload — see EXPERIMENTS.md).
pub fn fig_workload(g: &Graph, n: usize, seed: u64) -> Vec<Job> {
    WorkloadGenerator::new(WorkloadConfig {
        num_jobs: n,
        seed,
        size_gb: (1.0, 100.0),
        window: (4.0, 10.0),
        ..Default::default()
    })
    .generate(g)
}

/// Builds the instance for `w` wavelengths per link (capacity constant at
/// 20 Gbps, paper Figs. 1–2).
pub fn build_instance(g: &Graph, jobs: &[Job], w: u32, paths_per_job: usize) -> Instance {
    let cfg = InstanceConfig {
        paths_per_job,
        ..InstanceConfig::paper(w)
    };
    let mut ps = PathSet::new(cfg.paths_per_job);
    Instance::build(g, jobs, &cfg, &mut ps)
}

/// Seconds as a fixed-point string for CSV output.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        f64::NAN
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_helper_respects_quick() {
        // Without WS_QUICK the paper shape is produced (env not set in tests
        // unless exported); just exercise the builder.
        let g = paper_random_network(4, 1);
        assert!(g.num_nodes() == 100 || g.num_nodes() == 30);
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn workload_helper() {
        let g = paper_random_network(4, 1);
        let jobs = fig_workload(&g, 20, 5);
        assert_eq!(jobs.len(), 20);
        assert!(jobs.iter().all(|j| j.size_gb <= 100.0));
    }

    #[test]
    fn mean_and_env() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert!(mean(&[]).is_nan());
        assert_eq!(env_usize("WS_SURELY_UNSET_VAR", 7), 7);
    }

    #[test]
    fn env_knobs_fail_loudly_on_garbage() {
        // Unset -> default; set-but-unparseable -> Err (env_usize exits).
        assert_eq!(try_env_usize("WS_TEST_UNSET_KNOB", 3), Ok(3));
        std::env::set_var("WS_TEST_GARBAGE_KNOB", "12abc");
        assert!(try_env_usize("WS_TEST_GARBAGE_KNOB", 3).is_err());
        std::env::set_var("WS_TEST_GARBAGE_KNOB", "-4");
        assert!(try_env_usize("WS_TEST_GARBAGE_KNOB", 3).is_err());
        std::env::set_var("WS_TEST_GARBAGE_KNOB", "");
        assert!(try_env_usize("WS_TEST_GARBAGE_KNOB", 3).is_err());
        std::env::set_var("WS_TEST_GARBAGE_KNOB", "42");
        assert_eq!(try_env_usize("WS_TEST_GARBAGE_KNOB", 3), Ok(42));
        std::env::remove_var("WS_TEST_GARBAGE_KNOB");
        // WS_THREADS itself goes through the same loud-failure policy,
        // with 0 additionally rejected (crates/par owns that parse).
        assert!(wavesched_par::parse_threads(Some("0"), 4).is_err());
        assert!(wavesched_par::parse_threads(Some("two"), 4).is_err());
        assert_eq!(wavesched_par::parse_threads(Some("2"), 4), Ok(2));
    }

    #[test]
    fn par_helpers_preserve_order() {
        let seeds: Vec<u64> = (100..140).collect();
        let out = par_seeds(&seeds, |s| s * 7);
        assert_eq!(out, seeds.iter().map(|s| s * 7).collect::<Vec<_>>());
        let points = [5usize, 1, 9, 2];
        let out = par_points(&points, |&p| p + 1);
        assert_eq!(out, vec![6, 2, 10, 3]);
    }
}
