//! # wavesched-bench — experiment harness
//!
//! One binary per figure/table of the paper's evaluation (Section III),
//! plus ablations. Every binary prints a CSV table to stdout whose rows
//! correspond to the series in the paper; EXPERIMENTS.md records
//! paper-vs-measured values.
//!
//! Binaries accept their scale knobs from environment variables so a quick
//! smoke run and the full reproduction use the same code:
//!
//! * `WS_JOBS` — override the job count(s)
//! * `WS_SEEDS` — number of workload seeds to average over (default 3)
//! * `WS_QUICK=1` — shrink everything for a fast smoke run
//!
//! Every binary also accepts two CLI flags (parsed by [`bench_opts`]):
//!
//! * `--smoke` — same as `WS_QUICK=1`
//! * `--report <path>` — enable the `wavesched-obs` layer and dump a
//!   JSON-lines metrics snapshot (span durations, solver counters,
//!   histograms) to `path` on exit

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::time::Duration;
use wavesched_core::instance::{Instance, InstanceConfig};
use wavesched_net::{waxman_network, Graph, PathSet, WaxmanConfig};
use wavesched_workload::{Job, WorkloadConfig, WorkloadGenerator};

/// Reads a `usize` environment knob with a default.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

static SMOKE: AtomicBool = AtomicBool::new(false);

/// True when `WS_QUICK=1` (env) or `--smoke` (CLI, via [`bench_opts`]) asks
/// for a smoke-scale run.
pub fn quick() -> bool {
    SMOKE.load(Relaxed) || std::env::var("WS_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// CLI options shared by every bench binary.
#[derive(Debug, Default)]
pub struct BenchOpts {
    /// Where to write the JSON-lines metrics report, if requested.
    pub report: Option<String>,
}

/// Parses the common bench CLI (`--smoke`, `--report <path>`), turning on
/// the observability layer when a report is requested. Exits with a usage
/// message on unknown arguments, so typos fail loudly instead of silently
/// running the full-scale experiment.
pub fn bench_opts() -> BenchOpts {
    let mut opts = BenchOpts::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => SMOKE.store(true, Relaxed),
            "--report" => match args.next() {
                Some(path) => opts.report = Some(path),
                None => {
                    eprintln!("--report needs a file path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument {other:?}; supported: --smoke, --report <path>");
                std::process::exit(2);
            }
        }
    }
    if opts.report.is_some() {
        wavesched_obs::set_enabled(true);
    }
    opts
}

/// Writes the JSON-lines metrics snapshot to the `--report` path, if one
/// was given. Call at the end of `main`.
pub fn write_report(opts: &BenchOpts) {
    let Some(path) = &opts.report else {
        return;
    };
    let text = wavesched_obs::to_json_lines(&wavesched_obs::snapshot());
    if let Err(e) = std::fs::write(path, &text) {
        eprintln!("failed to write report {path:?}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {} metric lines to {path}", text.lines().count());
}

/// The paper's random evaluation network: 100 nodes, 200 link pairs,
/// average node degree 4, 20 Gbps links split into `w` wavelengths.
pub fn paper_random_network(w: u32, seed: u64) -> Graph {
    let mut cfg = WaxmanConfig::paper_default(seed);
    cfg.wavelengths = w;
    if quick() {
        cfg.nodes = 30;
        cfg.link_pairs = 60;
    }
    waxman_network(&cfg)
}

/// The batch workload used by the figure experiments: `n` jobs, sizes
/// uniform [1, 100] GB, windows uniform [4, 10] slices (chosen so the
/// 100-node instances sit at/near overload — see EXPERIMENTS.md).
pub fn fig_workload(g: &Graph, n: usize, seed: u64) -> Vec<Job> {
    WorkloadGenerator::new(WorkloadConfig {
        num_jobs: n,
        seed,
        size_gb: (1.0, 100.0),
        window: (4.0, 10.0),
        ..Default::default()
    })
    .generate(g)
}

/// Builds the instance for `w` wavelengths per link (capacity constant at
/// 20 Gbps, paper Figs. 1–2).
pub fn build_instance(g: &Graph, jobs: &[Job], w: u32, paths_per_job: usize) -> Instance {
    let cfg = InstanceConfig {
        paths_per_job,
        ..InstanceConfig::paper(w)
    };
    let mut ps = PathSet::new(cfg.paths_per_job);
    Instance::build(g, jobs, &cfg, &mut ps)
}

/// Seconds as a fixed-point string for CSV output.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        f64::NAN
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_helper_respects_quick() {
        // Without WS_QUICK the paper shape is produced (env not set in tests
        // unless exported); just exercise the builder.
        let g = paper_random_network(4, 1);
        assert!(g.num_nodes() == 100 || g.num_nodes() == 30);
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn workload_helper() {
        let g = paper_random_network(4, 1);
        let jobs = fig_workload(&g, 20, 5);
        assert_eq!(jobs.len(), 20);
        assert!(jobs.iter().all(|j| j.size_gb <= 100.0));
    }

    #[test]
    fn mean_and_env() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert!(mean(&[]).is_nan());
        assert_eq!(env_usize("WS_SURELY_UNSET_VAR", 7), 7);
    }
}
