//! **Ablation A4** — LPDAR versus the exact integer optimum, on instances
//! small enough for branch-and-bound. The paper could not run this
//! comparison ("practically impossible to get the optimal integer
//! solutions"); our own MILP solver makes it possible at toy scale and
//! quantifies LPDAR's true optimality gap.
//!
//! ```text
//! cargo run --release -p wavesched-bench --bin ablation_exact
//! ```

use wavesched_bench::{env_usize, par_seeds};
use wavesched_core::instance::{Instance, InstanceConfig};
use wavesched_core::lpdar::{lpdar, AdjustOrder};
use wavesched_core::stage1::solve_stage1;
use wavesched_core::stage2::solve_stage2;
use wavesched_lp::{solve_milp, MilpConfig, MilpStatus, Objective, Problem};
use wavesched_net::{Graph, PathSet};
use wavesched_workload::{WorkloadConfig, WorkloadGenerator};

/// Builds the Stage-2 *integer* program for a small instance. `fairness =
/// None` drops eq. 9 (LPDAR does not guarantee it, so the unconstrained
/// ILP is the honest upper bound; see tests/milp_crosscheck.rs).
fn stage2_milp(inst: &Instance, fairness: Option<(f64, f64)>) -> Problem {
    let total = inst.total_demand();
    let mut p = Problem::new(Objective::Maximize);
    let mut cols = Vec::new();
    for (_, job, path, slice) in inst.vars.iter() {
        let bn = inst.paths[job][path].bottleneck_wavelengths(&inst.graph) as f64;
        let c = p.add_int_col(0.0, bn, inst.grid.len_of(slice) / total);
        cols.push(c);
    }
    if let Some((z_star, alpha)) = fairness {
        for i in 0..inst.num_jobs() {
            let coeffs: Vec<_> = inst
                .vars
                .job_range(i)
                .map(|v| {
                    let (_, _, s) = inst.vars.triple(v);
                    (cols[v], inst.grid.len_of(s))
                })
                .collect();
            p.add_row(
                (1.0 - alpha) * z_star * inst.demands[i],
                f64::INFINITY,
                &coeffs,
            );
        }
    }
    let mut keys: Vec<_> = inst.capacity_groups.keys().collect();
    keys.sort();
    for key in keys {
        let cap = inst.graph.wavelengths(wavesched_net::EdgeId(key.0)) as f64;
        let coeffs: Vec<_> = inst.capacity_groups[key]
            .iter()
            .map(|&v| (cols[v as usize], 1.0))
            .collect();
        p.add_row(f64::NEG_INFINITY, cap, &coeffs);
    }
    p
}

fn main() {
    let opts = wavesched_bench::bench_opts();
    let trials = env_usize("WS_SEEDS", 5);
    println!("# Ablation A4: LPDAR vs exact ILP (tiny ring networks, W=2)");
    println!("trial,jobs,lp_obj,ilp_obj,ilp_fair_obj,lpdar_obj,lpdar_over_ilp,nodes_explored");
    // Trials run across the WS_THREADS pool; each trial's MILP solves also
    // use the pool (MilpConfig.threads defaults to WS_THREADS). Objectives
    // are deterministic at any thread count; nodes_explored is
    // scheduling-dependent when the branch-and-bound runs parallel.
    let trial_ids: Vec<u64> = (0..trials as u64).collect();
    let rows = par_seeds(&trial_ids, |trial| {
        // A 6-node ring with 2 wavelengths per link; 6 jobs, tiny windows.
        let mut g = Graph::new();
        let ns = g.add_nodes(6);
        for i in 0..6 {
            g.add_link_pair(ns[i], ns[(i + 1) % 6], 2);
        }
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: 6,
            seed: 100 + trial,
            size_gb: (40.0, 160.0),
            window: (2.0, 5.0),
            ..Default::default()
        })
        .generate(&g);
        let cfg = InstanceConfig::paper(2);
        let mut ps = PathSet::new(3);
        let inst = Instance::build(
            &g,
            &jobs,
            &InstanceConfig {
                paths_per_job: 3,
                ..cfg
            },
            &mut ps,
        );

        let s1 = solve_stage1(&inst).expect("stage1");
        let s2 = solve_stage2(&inst, s1.z_star, 0.1).expect("stage2");
        let lp_obj = s2.schedule.weighted_throughput(&inst);
        let heur = lpdar(&inst, &s2.schedule, AdjustOrder::Paper);
        let heur_obj = heur.weighted_throughput(&inst);

        let cfg_milp = MilpConfig {
            max_nodes: 200_000,
            ..MilpConfig::default()
        };
        let sol = solve_milp(&stage2_milp(&inst, None), &cfg_milp).expect("milp");
        let (ilp_obj, nodes) = match sol.status {
            MilpStatus::Optimal => (sol.objective, sol.nodes),
            _ => (f64::NAN, sol.nodes),
        };
        let fair =
            solve_milp(&stage2_milp(&inst, Some((s1.z_star, 0.1))), &cfg_milp).expect("milp");
        let fair_obj = match fair.status {
            MilpStatus::Optimal => fair.objective,
            _ => f64::NAN,
        };
        format!(
            "{trial},{},{lp_obj:.4},{ilp_obj:.4},{fair_obj:.4},{heur_obj:.4},{:.4},{nodes}",
            inst.num_jobs(),
            heur_obj / ilp_obj
        )
    });
    for row in rows {
        println!("{row}");
    }

    wavesched_bench::write_report(&opts);
}
