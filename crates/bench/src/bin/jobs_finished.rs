//! **§III-B.1 (table in text)** — Fraction of jobs finished under
//! Algorithm 2's end-time extension, for LP, LPD and LPDAR, across
//! scenarios on the random network and Abilene.
//!
//! Paper's result: at the final extension `b̂`, LP and LPDAR finish 100% of
//! the jobs (by construction of Algorithm 2) while LPD finishes "a very
//! small fraction (typically zero)"; LPDAR's `b̂` equals or slightly
//! exceeds the minimum `b` for which the LP can finish everything.
//!
//! ```text
//! cargo run --release -p wavesched-bench --bin jobs_finished
//! ```

use wavesched_bench::{env_usize, paper_random_network, par_seeds, quick};
use wavesched_core::instance::InstanceConfig;
use wavesched_core::ret::{solve_ret, RetConfig};
use wavesched_net::abilene20;
use wavesched_workload::{WorkloadConfig, WorkloadGenerator};

fn main() {
    let opts = wavesched_bench::bench_opts();
    let seeds = env_usize("WS_SEEDS", if quick() { 1 } else { 3 });
    println!("# §III-B.1: fraction of jobs finished at the final RET extension");
    println!("network,seed,jobs,b_lp,b_final,lp_frac,lpd_frac,lpdar_frac");

    let ret_cfg = RetConfig {
        bsearch_tol: 0.05,
        ..RetConfig::default()
    };

    // Seed replications run across the WS_THREADS pool; each seed returns
    // its two scenario rows as strings, printed afterwards in seed order.
    let seed_list: Vec<u64> = (0..seeds as u64).collect();
    let row_fmt =
        |net: &str, seed: u64, n: usize, r: Option<&wavesched_core::ret::RetResult>| match r {
            Some(r) => format!(
                "{net},{seed},{n},{:.3},{:.3},{:.3},{:.3},{:.3}",
                r.b_lp,
                r.b_final,
                r.lp_fraction_finished(),
                r.lpd_fraction_finished(),
                r.lpdar_fraction_finished()
            ),
            None => format!("{net},{seed},{n},NA,NA,NA,NA,NA"),
        };
    let lines = par_seeds(&seed_list, |seed| {
        // Random network scenario.
        let w = 2;
        let n = if quick() { 15 } else { 50 };
        let g = paper_random_network(w, 42 + seed);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: n,
            seed: 4000 + seed,
            size_gb: (100.0, 400.0),
            window: (2.0, 4.0),
            ..Default::default()
        })
        .generate(&g);
        let cfg = InstanceConfig::paper(w);
        let r = solve_ret(&g, &jobs, &cfg, &ret_cfg).expect("ret");
        let random_row = row_fmt("random100", seed, n, r.as_ref());

        // Abilene scenario.
        let (ga, _) = abilene20(w);
        let na = if quick() { 10 } else { 30 };
        let jobs_a = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: na,
            seed: 5000 + seed,
            size_gb: (100.0, 400.0),
            window: (2.0, 4.0),
            ..Default::default()
        })
        .generate(&ga);
        let ra = solve_ret(&ga, &jobs_a, &cfg, &ret_cfg).expect("ret");
        [random_row, row_fmt("abilene20", seed, na, ra.as_ref())]
    });
    for [random_row, abilene_row] in lines {
        println!("{random_row}");
        println!("{abilene_row}");
    }

    wavesched_bench::write_report(&opts);
}
