//! **§III-B.1 (table in text)** — Fraction of jobs finished under
//! Algorithm 2's end-time extension, for LP, LPD and LPDAR, across
//! scenarios on the random network and Abilene.
//!
//! Paper's result: at the final extension `b̂`, LP and LPDAR finish 100% of
//! the jobs (by construction of Algorithm 2) while LPD finishes "a very
//! small fraction (typically zero)"; LPDAR's `b̂` equals or slightly
//! exceeds the minimum `b` for which the LP can finish everything.
//!
//! ```text
//! cargo run --release -p wavesched-bench --bin jobs_finished
//! ```

use wavesched_bench::{env_usize, paper_random_network, quick};
use wavesched_core::instance::InstanceConfig;
use wavesched_core::ret::{solve_ret, RetConfig};
use wavesched_net::abilene20;
use wavesched_workload::{WorkloadConfig, WorkloadGenerator};

fn main() {
    let opts = wavesched_bench::bench_opts();
    let seeds = env_usize("WS_SEEDS", if quick() { 1 } else { 3 });
    println!("# §III-B.1: fraction of jobs finished at the final RET extension");
    println!("network,seed,jobs,b_lp,b_final,lp_frac,lpd_frac,lpdar_frac");

    let ret_cfg = RetConfig {
        bsearch_tol: 0.05,
        ..RetConfig::default()
    };

    for seed in 0..seeds as u64 {
        // Random network scenario.
        let w = 2;
        let n = if quick() { 15 } else { 50 };
        let g = paper_random_network(w, 42 + seed);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: n,
            seed: 4000 + seed,
            size_gb: (100.0, 400.0),
            window: (2.0, 4.0),
            ..Default::default()
        })
        .generate(&g);
        let cfg = InstanceConfig::paper(w);
        if let Some(r) = solve_ret(&g, &jobs, &cfg, &ret_cfg).expect("ret") {
            println!(
                "random100,{seed},{n},{:.3},{:.3},{:.3},{:.3},{:.3}",
                r.b_lp,
                r.b_final,
                r.lp_fraction_finished(),
                r.lpd_fraction_finished(),
                r.lpdar_fraction_finished()
            );
        } else {
            println!("random100,{seed},{n},NA,NA,NA,NA,NA");
        }

        // Abilene scenario.
        let (ga, _) = abilene20(w);
        let na = if quick() { 10 } else { 30 };
        let jobs_a = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: na,
            seed: 5000 + seed,
            size_gb: (100.0, 400.0),
            window: (2.0, 4.0),
            ..Default::default()
        })
        .generate(&ga);
        if let Some(r) = solve_ret(&ga, &jobs_a, &cfg, &ret_cfg).expect("ret") {
            println!(
                "abilene20,{seed},{na},{:.3},{:.3},{:.3},{:.3},{:.3}",
                r.b_lp,
                r.b_final,
                r.lp_fraction_finished(),
                r.lpd_fraction_finished(),
                r.lpdar_fraction_finished()
            );
        } else {
            println!("abilene20,{seed},{na},NA,NA,NA,NA,NA");
        }
    }

    wavesched_bench::write_report(&opts);
}
