//! **Ablation A5** — approximate vs exact Stage 1. The Garg–Könemann /
//! Fleischer multiplicative-weights scheme (`wavesched_core::gkflow`)
//! trades a `(1 - O(epsilon))` factor of `Z*` for a combinatorial solve
//! that avoids the simplex entirely.
//!
//! ```text
//! cargo run --release -p wavesched-bench --bin ablation_gk
//! ```

use std::time::Instant;
use wavesched_bench::{build_instance, env_usize, fig_workload, paper_random_network, quick, secs};
use wavesched_core::gkflow::{approx_stage1, GkConfig};
use wavesched_core::stage1::solve_stage1;

fn main() {
    let opts = wavesched_bench::bench_opts();
    let jobs_n = env_usize("WS_JOBS", if quick() { 25 } else { 100 });
    let w = 4;
    let g = paper_random_network(w, 42);
    let jobs = fig_workload(&g, jobs_n, 1000);
    let inst = build_instance(&g, &jobs, w, 4);

    let t = Instant::now();
    let exact = solve_stage1(&inst).expect("stage1");
    let exact_time = t.elapsed();

    println!("# Ablation A5: approximate (Garg-Konemann) vs exact Stage 1");
    println!(
        "# random network, W={w}, jobs={jobs_n}; exact Z*={:.4} in {}s",
        exact.z_star,
        secs(exact_time)
    );
    println!("method,epsilon,z,z_over_exact,phases,time_s");
    println!(
        "simplex,0,{:.4},1.0000,0,{}",
        exact.z_star,
        secs(exact_time)
    );
    for eps in [0.5, 0.2, 0.1, 0.05] {
        let t = Instant::now();
        let gk = approx_stage1(
            &inst,
            &GkConfig {
                epsilon: eps,
                ..Default::default()
            },
        );
        println!(
            "gk,{eps},{:.4},{:.4},{},{}",
            gk.z_lower,
            gk.z_lower / exact.z_star,
            gk.phases,
            secs(t.elapsed())
        );
    }

    wavesched_bench::write_report(&opts);
}
