//! **Ablation A5** — approximate vs exact Stage 1. The Garg–Könemann /
//! Fleischer multiplicative-weights scheme (`wavesched_core::gkflow`)
//! trades a `(1 - O(epsilon))` factor of `Z*` for a combinatorial solve
//! that avoids the simplex entirely.
//!
//! ```text
//! cargo run --release -p wavesched-bench --bin ablation_gk
//! ```

use std::time::Instant;
use wavesched_bench::{
    build_instance, env_usize, fig_workload, paper_random_network, par_points, quick, secs,
};
use wavesched_core::gkflow::{approx_stage1, GkConfig};
use wavesched_core::stage1::solve_stage1;

fn main() {
    let opts = wavesched_bench::bench_opts();
    let jobs_n = env_usize("WS_JOBS", if quick() { 25 } else { 100 });
    let w = 4;
    let g = paper_random_network(w, 42);
    let jobs = fig_workload(&g, jobs_n, 1000);
    let inst = build_instance(&g, &jobs, w, 4);

    let t = Instant::now();
    let exact = solve_stage1(&inst).expect("stage1");
    let exact_time = t.elapsed();

    println!("# Ablation A5: approximate (Garg-Konemann) vs exact Stage 1");
    println!(
        "# random network, W={w}, jobs={jobs_n}; exact Z*={:.4} in {}s",
        exact.z_star,
        secs(exact_time)
    );
    println!("method,epsilon,z,z_over_exact,phases,time_s");
    println!(
        "simplex,0,{:.4},1.0000,0,{}",
        exact.z_star,
        secs(exact_time)
    );
    // Epsilon sweep points share the instance and run across the
    // WS_THREADS pool; time_s shares cores at WS_THREADS>1.
    let epsilons = [0.5, 0.2, 0.1, 0.05];
    let rows = par_points(&epsilons, |&eps| {
        let t = Instant::now();
        let gk = approx_stage1(
            &inst,
            &GkConfig {
                epsilon: eps,
                ..Default::default()
            },
        );
        format!(
            "gk,{eps},{:.4},{:.4},{},{}",
            gk.z_lower,
            gk.z_lower / exact.z_star,
            gk.phases,
            secs(t.elapsed())
        )
    });
    for row in rows {
        println!("{row}");
    }

    wavesched_bench::write_report(&opts);
}
