//! **Fig. 2** — Throughput of LP, LPD and LPDAR (normalized to LP) versus
//! wavelengths per link on the Abilene backbone (11 nodes, 20 link pairs
//! in the paper's instance; see DESIGN.md for the 20-pair variant).
//!
//! Paper's result: LPD ≈ 0.6·LP at 2 wavelengths; LPDAR nearly identical
//! to LP at every wavelength count.
//!
//! ```text
//! cargo run --release -p wavesched-bench --bin fig2
//! ```

use wavesched_bench::{env_usize, mean, par_points, quick};
use wavesched_core::instance::{Instance, InstanceConfig};
use wavesched_core::pipeline::max_throughput_pipeline;
use wavesched_net::{abilene20, PathSet};
use wavesched_workload::{WorkloadConfig, WorkloadGenerator};

fn main() {
    let opts = wavesched_bench::bench_opts();
    let jobs_n = env_usize("WS_JOBS", if quick() { 20 } else { 150 });
    let seeds = env_usize("WS_SEEDS", if quick() { 1 } else { 3 });
    let wavelengths: &[u32] = if quick() {
        &[2, 8, 32]
    } else {
        &[2, 4, 8, 16, 32]
    };

    println!("# Fig. 2: throughput vs wavelengths per link (Abilene, 11 nodes / 20 link pairs)");
    println!("# jobs={jobs_n} seeds={seeds} alpha=0.1 paths/job=4");
    println!("wavelengths,lp_norm,lpd_norm,lpdar_norm,z_star,lp_throughput");
    // Flatten the (wavelength, seed) grid across the WS_THREADS pool and
    // fold per wavelength in input order (same pattern as fig1) — every
    // mean and CSV row is bit-identical to the serial double loop.
    let grid: Vec<(u32, u64)> = wavelengths
        .iter()
        .flat_map(|&w| (0..seeds as u64).map(move |seed| (w, seed)))
        .collect();
    let cells = par_points(&grid, |&(w, seed)| {
        let (g, _) = abilene20(w);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: jobs_n,
            seed: 2000 + seed,
            size_gb: (1.0, 100.0),
            window: (3.0, 8.0),
            ..Default::default()
        })
        .generate(&g);
        let cfg = InstanceConfig::paper(w);
        let mut ps = PathSet::new(cfg.paths_per_job);
        let inst = Instance::build(&g, &jobs, &cfg, &mut ps);
        let r = max_throughput_pipeline(&inst, 0.1).expect("pipeline");
        (
            r.lpd_normalized(),
            r.lpdar_normalized(),
            r.z_star,
            r.lp_throughput,
        )
    });
    for (wi, &w) in wavelengths.iter().enumerate() {
        let rows = &cells[wi * seeds..(wi + 1) * seeds];
        let col = |f: fn(&(f64, f64, f64, f64)) -> f64| rows.iter().map(f).collect::<Vec<_>>();
        println!(
            "{w},1.000,{:.3},{:.3},{:.3},{:.3}",
            mean(&col(|r| r.0)),
            mean(&col(|r| r.1)),
            mean(&col(|r| r.2)),
            mean(&col(|r| r.3))
        );
    }

    wavesched_bench::write_report(&opts);
}
