//! **Fig. 2** — Throughput of LP, LPD and LPDAR (normalized to LP) versus
//! wavelengths per link on the Abilene backbone (11 nodes, 20 link pairs
//! in the paper's instance; see DESIGN.md for the 20-pair variant).
//!
//! Paper's result: LPD ≈ 0.6·LP at 2 wavelengths; LPDAR nearly identical
//! to LP at every wavelength count.
//!
//! ```text
//! cargo run --release -p wavesched-bench --bin fig2
//! ```

use wavesched_bench::{env_usize, mean, quick};
use wavesched_core::instance::{Instance, InstanceConfig};
use wavesched_core::pipeline::max_throughput_pipeline;
use wavesched_net::{abilene20, PathSet};
use wavesched_workload::{WorkloadConfig, WorkloadGenerator};

fn main() {
    let opts = wavesched_bench::bench_opts();
    let jobs_n = env_usize("WS_JOBS", if quick() { 20 } else { 150 });
    let seeds = env_usize("WS_SEEDS", if quick() { 1 } else { 3 });
    let wavelengths: &[u32] = if quick() {
        &[2, 8, 32]
    } else {
        &[2, 4, 8, 16, 32]
    };

    println!("# Fig. 2: throughput vs wavelengths per link (Abilene, 11 nodes / 20 link pairs)");
    println!("# jobs={jobs_n} seeds={seeds} alpha=0.1 paths/job=4");
    println!("wavelengths,lp_norm,lpd_norm,lpdar_norm,z_star,lp_throughput");
    for &w in wavelengths {
        let mut lpd = Vec::new();
        let mut lpdar = Vec::new();
        let mut zs = Vec::new();
        let mut lps = Vec::new();
        for seed in 0..seeds as u64 {
            let (g, _) = abilene20(w);
            let jobs = WorkloadGenerator::new(WorkloadConfig {
                num_jobs: jobs_n,
                seed: 2000 + seed,
                size_gb: (1.0, 100.0),
                window: (3.0, 8.0),
                ..Default::default()
            })
            .generate(&g);
            let cfg = InstanceConfig::paper(w);
            let mut ps = PathSet::new(cfg.paths_per_job);
            let inst = Instance::build(&g, &jobs, &cfg, &mut ps);
            let r = max_throughput_pipeline(&inst, 0.1).expect("pipeline");
            lpd.push(r.lpd_normalized());
            lpdar.push(r.lpdar_normalized());
            zs.push(r.z_star);
            lps.push(r.lp_throughput);
        }
        println!(
            "{w},1.000,{:.3},{:.3},{:.3},{:.3}",
            mean(&lpd),
            mean(&lpdar),
            mean(&zs),
            mean(&lps)
        );
    }

    wavesched_bench::write_report(&opts);
}
