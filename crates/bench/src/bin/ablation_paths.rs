//! **Ablation A3** — allowed paths per job. The paper reports that 4–8
//! paths per job capture most of the attainable performance.
//!
//! ```text
//! cargo run --release -p wavesched-bench --bin ablation_paths
//! ```

use std::time::Instant;
use wavesched_bench::{
    build_instance, env_usize, fig_workload, paper_random_network, par_points, quick, secs,
};
use wavesched_core::pipeline::max_throughput_pipeline;

fn main() {
    let opts = wavesched_bench::bench_opts();
    let jobs_n = env_usize("WS_JOBS", if quick() { 25 } else { 100 });
    let w = 4;
    let g = paper_random_network(w, 42);
    let jobs = fig_workload(&g, jobs_n, 1000);

    println!("# Ablation A3: paths per job (random network, W={w}, jobs={jobs_n})");
    println!("paths_per_job,z_star,lp_throughput,lpdar_norm,lp_time_s");
    // Path-budget sweep points run across the WS_THREADS pool; the timing
    // column shares cores at WS_THREADS>1 (use 1 for clean absolute times).
    let ks = [1usize, 2, 4, 8];
    let rows = par_points(&ks, |&k| {
        let inst = build_instance(&g, &jobs, w, k);
        let t = Instant::now();
        let r = max_throughput_pipeline(&inst, 0.1).expect("pipeline");
        format!(
            "{k},{:.3},{:.3},{:.4},{}",
            r.z_star,
            r.lp_throughput,
            r.lpdar_normalized(),
            secs(t.elapsed())
        )
    });
    for row in rows {
        println!("{row}");
    }

    wavesched_bench::write_report(&opts);
}
