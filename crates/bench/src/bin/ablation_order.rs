//! **Ablation A1** — LPDAR visit order. The paper fixes the greedy
//! adjustment's visit order only implicitly ("for each time slice, for each
//! job, for each path"). How much does the order matter?
//!
//! ```text
//! cargo run --release -p wavesched-bench --bin ablation_order
//! ```

use wavesched_bench::{
    build_instance, env_usize, fig_workload, paper_random_network, par_points, quick,
};
use wavesched_core::lpdar::{adjust_rates, truncate, AdjustOrder};
use wavesched_core::stage1::solve_stage1;
use wavesched_core::stage2::solve_stage2;

fn main() {
    let opts = wavesched_bench::bench_opts();
    let jobs_n = env_usize("WS_JOBS", if quick() { 30 } else { 150 });
    let w = 2;
    let g = paper_random_network(w, 42);
    let jobs = fig_workload(&g, jobs_n, 1000);
    let inst = build_instance(&g, &jobs, w, 4);

    let s1 = solve_stage1(&inst).expect("stage1");
    let s2 = solve_stage2(&inst, s1.z_star, 0.1).expect("stage2");
    let lp_thru = s2.schedule.weighted_throughput(&inst);
    let lpd = truncate(&inst, &s2.schedule);

    println!("# Ablation A1: LPDAR visit order (random network, W={w}, jobs={jobs_n})");
    println!("# lp_throughput={lp_thru:.3}");
    println!("order,lpdar_norm,min_job_throughput");
    // Each visit order re-adjusts the same truncated schedule; the five
    // variants are independent, so they run across the WS_THREADS pool.
    let orders = [
        ("paper", AdjustOrder::Paper),
        ("largest_first", AdjustOrder::LargestJobFirst),
        ("smallest_first", AdjustOrder::SmallestJobFirst),
        ("random_a", AdjustOrder::Random(1)),
        ("random_b", AdjustOrder::Random(2)),
    ];
    let rows = par_points(&orders, |&(name, order)| {
        let s = adjust_rates(&inst, &lpd, order);
        let norm = s.weighted_throughput(&inst) / lp_thru;
        let min_z = (0..inst.num_jobs())
            .map(|i| s.throughput(&inst, i))
            .fold(f64::INFINITY, f64::min);
        format!("{name},{norm:.4},{min_z:.4}")
    });
    for row in rows {
        println!("{row}");
    }

    wavesched_bench::write_report(&opts);
}
