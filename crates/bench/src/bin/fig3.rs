//! **Fig. 3** — Computation time of LP, LPD and LPDAR versus the number of
//! jobs on the 100-node random network.
//!
//! Paper's result: the three curves nearly coincide — the LP solve
//! dominates, truncation and the greedy adjustment add negligible time.
//! Absolute values differ from the paper (our own simplex vs CPLEX on
//! 2009 hardware); the claim is the *relative* shape.
//!
//! ```text
//! cargo run --release -p wavesched-bench --bin fig3
//! ```

use wavesched_bench::{
    build_instance, env_usize, fig_workload, paper_random_network, par_points, quick, secs,
};
use wavesched_core::pipeline::max_throughput_pipeline;

fn main() {
    let opts = wavesched_bench::bench_opts();
    let job_counts: Vec<usize> = if quick() {
        vec![20, 40]
    } else {
        let max = env_usize("WS_JOBS", 250);
        (1..=5).map(|k| k * max / 5).collect()
    };
    let w = 4;

    println!("# Fig. 3: computation time vs number of jobs (random network, W={w})");
    println!("# times in seconds; lpX_time includes every stage up to X (paper convention)");
    println!("# solver-work columns: simplex iterations (phase 1 of those) and warm starts");
    println!("# accepted across the two stages (Stage 2 warm-starts from Stage 1's basis)");
    println!("jobs,stage1_s,lp_s,lpd_s,lpdar_s,lpd_extra_s,lpdar_extra_s,iters,phase1_iters,warm_accepted");
    // Sweep points run across the WS_THREADS pool; solver-work columns are
    // deterministic, but the wall-clock columns share cores, so run with
    // WS_THREADS=1 when the absolute times matter.
    let rows = par_points(&job_counts, |&n| {
        let g = paper_random_network(w, 42);
        let jobs = fig_workload(&g, n, 1000);
        let inst = build_instance(&g, &jobs, w, 4);
        let r = max_throughput_pipeline(&inst, 0.1).expect("pipeline");
        format!(
            "{n},{},{},{},{},{},{},{},{},{}",
            secs(r.stage1_time),
            secs(r.lp_time),
            secs(r.lpd_time),
            secs(r.lpdar_time),
            secs(r.lpd_time - r.lp_time),
            secs(r.lpdar_time - r.lpd_time),
            r.stats.iterations,
            r.stats.phase1_iterations,
            r.stats.warm_starts_accepted,
        )
    });
    for row in rows {
        println!("{row}");
    }

    wavesched_bench::write_report(&opts);
}
