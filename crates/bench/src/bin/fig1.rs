//! **Fig. 1** — Throughput of LP, LPD and LPDAR (normalized to LP) versus
//! the number of wavelengths per link, capacity held constant at 20 Gbps.
//! Random Waxman network with 100 nodes and 200 link pairs.
//!
//! Paper's result: LPD ≈ 0.5·LP at 2 wavelengths, improving with more
//! wavelengths; LPDAR ≈ 0.9·LP at 2 wavelengths and ≥ 0.95 from 4 up.
//!
//! ```text
//! cargo run --release -p wavesched-bench --bin fig1
//! ```

use wavesched_bench::{
    build_instance, env_usize, fig_workload, mean, paper_random_network, par_points, quick,
};
use wavesched_core::pipeline::max_throughput_pipeline;

fn main() {
    let opts = wavesched_bench::bench_opts();
    let jobs_n = env_usize("WS_JOBS", if quick() { 40 } else { 250 });
    let seeds = env_usize("WS_SEEDS", if quick() { 1 } else { 2 });
    let wavelengths: &[u32] = if quick() {
        &[2, 8, 32]
    } else {
        &[2, 4, 8, 16, 32]
    };

    println!("# Fig. 1: throughput vs wavelengths per link (random network)");
    println!("# jobs={jobs_n} seeds={seeds} alpha=0.1 paths/job=4");
    println!("wavelengths,lp_norm,lpd_norm,lpdar_norm,z_star,lp_throughput");
    // Every (wavelength, seed) cell is independent: flatten the grid across
    // the WS_THREADS pool, then fold per wavelength in input order — means
    // and rows are bit-identical to the serial double loop.
    let grid: Vec<(u32, u64)> = wavelengths
        .iter()
        .flat_map(|&w| (0..seeds as u64).map(move |seed| (w, seed)))
        .collect();
    let cells = par_points(&grid, |&(w, seed)| {
        let g = paper_random_network(w, 42 + seed);
        let jobs = fig_workload(&g, jobs_n, 1000 + seed);
        let inst = build_instance(&g, &jobs, w, 4);
        let r = max_throughput_pipeline(&inst, 0.1).expect("pipeline");
        (
            r.lpd_normalized(),
            r.lpdar_normalized(),
            r.z_star,
            r.lp_throughput,
        )
    });
    for (wi, &w) in wavelengths.iter().enumerate() {
        let rows = &cells[wi * seeds..(wi + 1) * seeds];
        let col = |f: fn(&(f64, f64, f64, f64)) -> f64| rows.iter().map(f).collect::<Vec<_>>();
        println!(
            "{w},1.000,{:.3},{:.3},{:.3},{:.3}",
            mean(&col(|r| r.0)),
            mean(&col(|r| r.1)),
            mean(&col(|r| r.2)),
            mean(&col(|r| r.3))
        );
    }

    wavesched_bench::write_report(&opts);
}
