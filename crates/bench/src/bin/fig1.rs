//! **Fig. 1** — Throughput of LP, LPD and LPDAR (normalized to LP) versus
//! the number of wavelengths per link, capacity held constant at 20 Gbps.
//! Random Waxman network with 100 nodes and 200 link pairs.
//!
//! Paper's result: LPD ≈ 0.5·LP at 2 wavelengths, improving with more
//! wavelengths; LPDAR ≈ 0.9·LP at 2 wavelengths and ≥ 0.95 from 4 up.
//!
//! ```text
//! cargo run --release -p wavesched-bench --bin fig1
//! ```

use wavesched_bench::{build_instance, env_usize, fig_workload, mean, paper_random_network, quick};
use wavesched_core::pipeline::max_throughput_pipeline;

fn main() {
    let opts = wavesched_bench::bench_opts();
    let jobs_n = env_usize("WS_JOBS", if quick() { 40 } else { 250 });
    let seeds = env_usize("WS_SEEDS", if quick() { 1 } else { 2 });
    let wavelengths: &[u32] = if quick() {
        &[2, 8, 32]
    } else {
        &[2, 4, 8, 16, 32]
    };

    println!("# Fig. 1: throughput vs wavelengths per link (random network)");
    println!("# jobs={jobs_n} seeds={seeds} alpha=0.1 paths/job=4");
    println!("wavelengths,lp_norm,lpd_norm,lpdar_norm,z_star,lp_throughput");
    for &w in wavelengths {
        let mut lpd = Vec::new();
        let mut lpdar = Vec::new();
        let mut zs = Vec::new();
        let mut lps = Vec::new();
        for seed in 0..seeds as u64 {
            let g = paper_random_network(w, 42 + seed);
            let jobs = fig_workload(&g, jobs_n, 1000 + seed);
            let inst = build_instance(&g, &jobs, w, 4);
            let r = max_throughput_pipeline(&inst, 0.1).expect("pipeline");
            lpd.push(r.lpd_normalized());
            lpdar.push(r.lpdar_normalized());
            zs.push(r.z_star);
            lps.push(r.lp_throughput);
        }
        println!(
            "{w},1.000,{:.3},{:.3},{:.3},{:.3}",
            mean(&lpd),
            mean(&lpdar),
            mean(&zs),
            mean(&lps)
        );
    }

    wavesched_bench::write_report(&opts);
}
