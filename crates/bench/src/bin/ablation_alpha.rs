//! **Ablation A2** — the fairness slack α (paper Remark 1: a larger α
//! leaves more room for integral solutions and raises total throughput at
//! the cost of per-job fairness).
//!
//! ```text
//! cargo run --release -p wavesched-bench --bin ablation_alpha
//! ```

use wavesched_bench::{env_usize, par_points, quick};
use wavesched_core::instance::{Instance, InstanceConfig};
use wavesched_core::pipeline::max_throughput_pipeline;
use wavesched_net::{abilene20, PathSet};
use wavesched_workload::{WorkloadConfig, WorkloadGenerator};

fn main() {
    let opts = wavesched_bench::bench_opts();
    let jobs_n = env_usize("WS_JOBS", if quick() { 20 } else { 120 });
    let w = 2;
    let (g, _) = abilene20(w);
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: jobs_n,
        seed: 2000,
        size_gb: (1.0, 100.0),
        window: (3.0, 8.0),
        ..Default::default()
    })
    .generate(&g);
    let cfg = InstanceConfig::paper(w);
    let mut ps = PathSet::new(cfg.paths_per_job);
    let inst = Instance::build(&g, &jobs, &cfg, &mut ps);

    println!("# Ablation A2: fairness slack alpha (Abilene-20, W={w}, jobs={jobs_n})");
    println!("alpha,z_star,lp_throughput,lpdar_norm,lp_min_job_z,lpdar_min_job_z");
    // Alpha sweep points share the (read-only) instance and run across the
    // WS_THREADS pool; rows print afterwards in sweep order.
    let alphas = [0.0, 0.05, 0.1, 0.2, 0.4, 0.8];
    let rows = par_points(&alphas, |&alpha| {
        let r = max_throughput_pipeline(&inst, alpha).expect("pipeline");
        let min_lpdar = (0..inst.num_jobs())
            .map(|i| r.lpdar.throughput(&inst, i))
            .fold(f64::INFINITY, f64::min);
        let min_lp = (0..inst.num_jobs())
            .map(|i| r.lp.throughput(&inst, i))
            .fold(f64::INFINITY, f64::min);
        format!(
            "{alpha},{:.3},{:.3},{:.4},{:.4},{:.4}",
            r.z_star,
            r.lp_throughput,
            r.lpdar_normalized(),
            min_lp,
            min_lpdar
        )
    });
    for row in rows {
        println!("{row}");
    }

    wavesched_bench::write_report(&opts);
}
