//! **Fig. 4** — RET: average end time (in slices) of the LP and LPDAR
//! solutions versus the number of jobs, on the random network, with the
//! Quick-Finish objective.
//!
//! Paper's result: LP has slightly smaller average end times (no
//! integrality constraint); LPDAR is nearly as good; both increase with
//! the number of jobs (the network is fixed). LPD is omitted in the paper
//! because it finishes almost no job; we report its fraction finished
//! instead.
//!
//! ```text
//! cargo run --release -p wavesched-bench --bin fig4
//! ```
//!
//! With `--colgen` the binary instead runs the delayed-column-generation
//! scaling sweep (EXPERIMENTS.md, BENCH_6): the two-stage pipeline on a
//! 1000-node Waxman network, reporting the restricted master's column
//! count against the exhaustive Yen column census it avoided
//! materializing.

use wavesched_bench::{env_usize, paper_random_network, par_points, quick, secs, BenchOpts};
use wavesched_core::colgen::{ColGenConfig, PricerChoice};
use wavesched_core::instance::InstanceConfig;
use wavesched_core::ret::{solve_ret, solve_ret_colgen, RetConfig};
use wavesched_net::{waxman_network, PathSet, WaxmanConfig};
use wavesched_workload::{WorkloadConfig, WorkloadGenerator};

/// Column-generation scaling sweep (`--colgen`): the fig. 4 RET search at
/// the ROADMAP's 1000-node scale, never materializing the exhaustive
/// `(job, path, slice)` variable grid — the restricted master starts from
/// one shortest path per job and prices the rest in. The
/// `exhaustive_cols` column is a census (Yen paths x window slices at the
/// final deadline extension) computed without building that LP, so the
/// ratio measures exactly what the refactor avoids. The sweep prices over
/// the Yen universe (`PricerChoice::Exhaustive`, which enters only
/// columns that pass the exact reduced-cost test) so pool and census draw
/// from the same path set, with a deliberately generous `WS_PATHS` budget
/// (default 16) — the regime the monolithic build cannot afford. At sweep
/// points small enough to afford the monolithic build (`jobs <= 100`) the
/// `b_gap` column cross-checks the CG fractional extension against
/// [`solve_ret`]; elsewhere it is `NA` (that infeasibility is the point —
/// the differential suite covers objective agreement at paper scale).
fn colgen_sweep(opts: &BenchOpts) {
    let (nodes, pairs) = if quick() { (100, 200) } else { (1000, 2000) };
    let job_counts: Vec<usize> = if quick() {
        vec![20, 50]
    } else {
        let max = env_usize("WS_JOBS", 10_000);
        (1..=4).map(|k| k * max / 4).collect()
    };
    let paths_per_job = env_usize("WS_PATHS", 16);
    let size_hi = env_usize("WS_SIZE_GB", 100) as f64;
    let w = 2;

    println!(
        "# Fig. 4 --colgen: RET under delayed column generation \
         ({nodes}-node Waxman, W={w}, jobs 1-{size_hi} GB)"
    );
    println!("# pool_cols: (path, slice) variables the restricted master ended with;");
    println!("# exhaustive_cols: what the monolithic build would materialize (Yen census);");
    println!("# b_gap: CG b_lp minus monolithic b_lp (NA when the monolithic build is too big)");
    println!(
        "jobs,b_lp,b_final,lp_avg_end,lpdar_avg_end,pool_cols,exhaustive_cols,col_ratio,\
         cg_rounds,cg_cols_added,cg_pricer_calls,b_gap,solve_secs,census_secs"
    );
    let rows = par_points(&job_counts, |&n| {
        let g = waxman_network(&WaxmanConfig {
            nodes,
            link_pairs: pairs,
            wavelengths: w,
            alpha: 0.15,
            seed: 42,
        });
        // The figs. 1-2 workload shape (4-10 slice windows), with the job
        // size ceiling on a knob (`WS_SIZE_GB`, default the standard
        // 100 GB). The dedicated fig. 4 overload workload (100-400 GB,
        // 2-4 slices) deliberately saturates the network, and certifying
        // an *infeasible* bisection probe prices in most of the path
        // universe — correct, but it measures overload certification, not
        // scaling. The network is fixed across the sweep, so at the
        // 10k-job scale points even 1-100 GB jobs bury it; the BENCH_6
        // capture sets `WS_SIZE_GB` so aggregate demand stays in the
        // contended-but-extensible regime where the RET search exercises
        // every master form instead of grinding out one giant
        // infeasibility certificate per probe.
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: n,
            seed: 3000,
            size_gb: (1.0, size_hi),
            window: (4.0, 10.0),
            ..Default::default()
        })
        .generate(&g);
        let cfg = InstanceConfig {
            paths_per_job,
            ..InstanceConfig::paper(w)
        };
        let ret_cfg = RetConfig {
            bsearch_tol: 0.05,
            b_max: 10.0,
            max_delta_steps: 120,
            ..RetConfig::default()
        };
        let cg = ColGenConfig {
            pricer: PricerChoice::Exhaustive,
            ..ColGenConfig::default()
        };
        // lint: allow(wallclock, reason = "bench wall-clock column; results columns stay deterministic")
        let t0 = std::time::Instant::now();
        let out = solve_ret_colgen(&g, &jobs, &cfg, &ret_cfg, &cg).expect("ret colgen");
        let solve = t0.elapsed();
        let Some((r, cg_stats)) = out else {
            let row = format!("{n},NA,NA,NA,NA,NA,NA,NA,NA,NA,NA,NA,{},NA", secs(solve));
            eprintln!("# done {row}");
            return row;
        };
        // The census the restricted master never paid for: every Yen path
        // times every window slice at the final extension.
        // lint: allow(wallclock, reason = "bench wall-clock column; results columns stay deterministic")
        let t1 = std::time::Instant::now();
        let mut ps = PathSet::new(cfg.paths_per_job);
        let exhaustive: usize = jobs
            .iter()
            .enumerate()
            .map(|(i, j)| ps.paths(&g, j.src, j.dst).len() * r.instance.vars.window(i).len())
            .sum();
        let census = t1.elapsed();
        let pool = r.instance.vars.len();
        let b_gap = if n <= 100 {
            match solve_ret(&g, &jobs, &cfg, &ret_cfg).expect("ret monolithic") {
                Some(mono) => format!("{:.4}", r.b_lp - mono.b_lp),
                None => "NA".to_string(),
            }
        } else {
            "NA".to_string()
        };
        let row = format!(
            "{n},{:.3},{:.3},{:.3},{:.3},{pool},{exhaustive},{:.4},{},{},{},{b_gap},{},{}",
            r.b_lp,
            r.b_final,
            r.lp_avg_end_time().unwrap_or(f64::NAN),
            r.lpdar_avg_end_time().unwrap_or(f64::NAN),
            pool as f64 / exhaustive as f64,
            cg_stats.rounds,
            cg_stats.columns_added,
            cg_stats.pricer_calls,
            secs(solve),
            secs(census),
        );
        // Sweep points at full scale run for minutes; stream each finished
        // row to stderr so long runs are observable (stdout stays the
        // ordered CSV the determinism tests pin).
        eprintln!("# done {row}");
        row
    });
    for row in rows {
        println!("{row}");
    }

    wavesched_bench::write_report(opts);
}

fn main() {
    let opts = wavesched_bench::bench_opts();
    if opts.colgen {
        colgen_sweep(&opts);
        return;
    }
    let job_counts: Vec<usize> = if quick() {
        vec![10, 20]
    } else {
        let max = env_usize("WS_JOBS", 100);
        (1..=4).map(|k| k * max / 4).collect()
    };
    let w = 2;

    println!(
        "# Fig. 4: RET average end time vs number of jobs (random network, W={w}, QF objective)"
    );
    println!("# solver-work columns: total LP solves, simplex iterations (phase 1 of those),");
    println!("# warm starts accepted, and cold fallbacks across the bisection and delta growth");
    println!("jobs,b_lp,b_final,lp_avg_end,lpdar_avg_end,lpd_frac_finished,lp_solves,iters,phase1_iters,warm_accepted,cold_fallbacks");
    // Job-count sweep points run across the WS_THREADS pool. Each point's
    // RET search also speculates probes on the same knob (RetConfig.threads
    // defaults to WS_THREADS), and every column — including the solver-work
    // counters — is bit-identical at any thread count (see
    // tests/determinism.rs).
    let rows = par_points(&job_counts, |&n| {
        let g = paper_random_network(w, 42);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: n,
            seed: 3000,
            size_gb: (100.0, 400.0),
            window: (2.0, 4.0),
            ..Default::default()
        })
        .generate(&g);
        let cfg = InstanceConfig::paper(w);
        let ret_cfg = RetConfig {
            bsearch_tol: 0.05,
            b_max: 10.0,
            max_delta_steps: 120,
            ..RetConfig::default()
        };
        match solve_ret(&g, &jobs, &cfg, &ret_cfg).expect("ret") {
            Some(r) => format!(
                "{n},{:.3},{:.3},{:.3},{:.3},{:.3},{},{},{},{},{}",
                r.b_lp,
                r.b_final,
                r.lp_avg_end_time().unwrap_or(f64::NAN),
                r.lpdar_avg_end_time().unwrap_or(f64::NAN),
                r.lpd_fraction_finished(),
                r.lp_solves(),
                r.stats.iterations,
                r.stats.phase1_iterations,
                r.stats.warm_starts_accepted,
                r.stats.warm_start_fallbacks,
            ),
            None => format!("{n},NA,NA,NA,NA,NA,NA,NA,NA,NA,NA"),
        }
    });
    for row in rows {
        println!("{row}");
    }

    wavesched_bench::write_report(&opts);
}
