//! **Fig. 4** — RET: average end time (in slices) of the LP and LPDAR
//! solutions versus the number of jobs, on the random network, with the
//! Quick-Finish objective.
//!
//! Paper's result: LP has slightly smaller average end times (no
//! integrality constraint); LPDAR is nearly as good; both increase with
//! the number of jobs (the network is fixed). LPD is omitted in the paper
//! because it finishes almost no job; we report its fraction finished
//! instead.
//!
//! ```text
//! cargo run --release -p wavesched-bench --bin fig4
//! ```

use wavesched_bench::{env_usize, paper_random_network, par_points, quick};
use wavesched_core::instance::InstanceConfig;
use wavesched_core::ret::{solve_ret, RetConfig};
use wavesched_workload::{WorkloadConfig, WorkloadGenerator};

fn main() {
    let opts = wavesched_bench::bench_opts();
    let job_counts: Vec<usize> = if quick() {
        vec![10, 20]
    } else {
        let max = env_usize("WS_JOBS", 100);
        (1..=4).map(|k| k * max / 4).collect()
    };
    let w = 2;

    println!(
        "# Fig. 4: RET average end time vs number of jobs (random network, W={w}, QF objective)"
    );
    println!("# solver-work columns: total LP solves, simplex iterations (phase 1 of those),");
    println!("# warm starts accepted, and cold fallbacks across the bisection and delta growth");
    println!("jobs,b_lp,b_final,lp_avg_end,lpdar_avg_end,lpd_frac_finished,lp_solves,iters,phase1_iters,warm_accepted,cold_fallbacks");
    // Job-count sweep points run across the WS_THREADS pool. Each point's
    // RET search also speculates probes on the same knob (RetConfig.threads
    // defaults to WS_THREADS), and every column — including the solver-work
    // counters — is bit-identical at any thread count (see
    // tests/determinism.rs).
    let rows = par_points(&job_counts, |&n| {
        let g = paper_random_network(w, 42);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: n,
            seed: 3000,
            size_gb: (100.0, 400.0),
            window: (2.0, 4.0),
            ..Default::default()
        })
        .generate(&g);
        let cfg = InstanceConfig::paper(w);
        let ret_cfg = RetConfig {
            bsearch_tol: 0.05,
            b_max: 10.0,
            max_delta_steps: 120,
            ..RetConfig::default()
        };
        match solve_ret(&g, &jobs, &cfg, &ret_cfg).expect("ret") {
            Some(r) => format!(
                "{n},{:.3},{:.3},{:.3},{:.3},{:.3},{},{},{},{},{}",
                r.b_lp,
                r.b_final,
                r.lp_avg_end_time().unwrap_or(f64::NAN),
                r.lpdar_avg_end_time().unwrap_or(f64::NAN),
                r.lpd_fraction_finished(),
                r.lp_solves(),
                r.stats.iterations,
                r.stats.phase1_iterations,
                r.stats.warm_starts_accepted,
                r.stats.warm_start_fallbacks,
            ),
            None => format!("{n},NA,NA,NA,NA,NA,NA,NA,NA,NA,NA"),
        }
    });
    for row in rows {
        println!("{row}");
    }

    wavesched_bench::write_report(&opts);
}
