//! **Streaming replay** — end-to-end memory benchmark: feed a synthetic
//! (or recorded) trace of up to a million jobs through the periodic
//! controller without ever materializing the whole trace, and record the
//! per-invocation allocation profile (EXPERIMENTS.md, BENCH_8).
//!
//! ```text
//! cargo run --release -p wavesched-bench --bin stream -- --jobs 1000000
//! cargo run --release -p wavesched-bench --bin stream -- --smoke \
//!     --report stream_report.jsonl --log stream_decisions.log
//! ```
//!
//! The binary installs [`wavesched_obs::mem::TrackingAlloc`] as the global
//! allocator, so the `mem.*` counter family in `--report` output carries
//! real byte counts. The quantity under test is flatness: the mean bytes
//! allocated per controller invocation over an early window must match the
//! mean over the last window, no matter how long the replay ran — that is
//! the active-window grid and build-arena work paying off. Stdout is a
//! small `key,value` CSV so CI can diff it; `--log` captures the decision
//! log whose bytes must not depend on `WS_THREADS` or on `--preload`.
//!
//! Flags (beyond the common `--smoke` / `--report <path>`):
//!
//! * `--jobs <n>` — trace length (default 1 000 000; smoke: 2 000)
//! * `--rate <r>` — Poisson arrivals per slice (default 20)
//! * `--tau <t>` — controller period in slices (default 4)
//! * `--wavelengths <w>` — per-link wavelength count (default 4)
//! * `--paths <k>` — candidate paths per job (default 2)
//! * `--seed <s>` — workload seed (default 2009)
//! * `--log <path>` — write the decision log
//! * `--preload` — collect the whole trace in memory first, then replay
//!   (the baseline the streaming path is measured against)
//! * `--trace <path>` — replay a recorded CSV trace instead of the
//!   synthetic workload (streamed off disk via `TraceReader`)

use std::io::BufWriter;
use wavesched_core::controller::ControllerConfig;
use wavesched_net::abilene14;
use wavesched_obs as obs;
use wavesched_sim::{run_simulation_streamed, SimConfig, StreamReport};
use wavesched_workload::{ArrivalModel, Job, TraceReader, WorkloadConfig, WorkloadGenerator};

#[global_allocator]
static ALLOC: obs::mem::TrackingAlloc = obs::mem::TrackingAlloc;

struct Opts {
    jobs: usize,
    rate: f64,
    tau: usize,
    wavelengths: u32,
    paths: usize,
    seed: u64,
    report: Option<String>,
    log: Option<String>,
    preload: bool,
    trace: Option<String>,
}

fn parse_opts() -> Opts {
    let mut o = Opts {
        jobs: 1_000_000,
        rate: 20.0,
        tau: 4,
        wavelengths: 4,
        paths: 2,
        seed: 2009,
        report: None,
        log: None,
        preload: false,
        trace: None,
    };
    let mut jobs_set = false;
    let mut args = std::env::args().skip(1);
    let need = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        })
    };
    let parse = |flag: &str, v: String| -> f64 {
        v.parse().unwrap_or_else(|_| {
            eprintln!("{flag}={v:?} is not a number");
            std::process::exit(2);
        })
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => {
                if !jobs_set {
                    o.jobs = 2_000;
                }
            }
            "--jobs" => {
                o.jobs = parse("--jobs", need(&mut args, "--jobs")) as usize;
                jobs_set = true;
            }
            "--rate" => o.rate = parse("--rate", need(&mut args, "--rate")),
            "--tau" => o.tau = parse("--tau", need(&mut args, "--tau")) as usize,
            "--wavelengths" => {
                o.wavelengths = parse("--wavelengths", need(&mut args, "--wavelengths")) as u32;
            }
            "--paths" => o.paths = parse("--paths", need(&mut args, "--paths")) as usize,
            "--seed" => o.seed = parse("--seed", need(&mut args, "--seed")) as u64,
            "--report" => o.report = Some(need(&mut args, "--report")),
            "--log" => o.log = Some(need(&mut args, "--log")),
            "--preload" => o.preload = true,
            "--trace" => o.trace = Some(need(&mut args, "--trace")),
            other => {
                eprintln!(
                    "unknown argument {other:?}; supported: --smoke --jobs --rate --tau \
                     --wavelengths --paths --seed --report <path> --log <path> --preload \
                     --trace <path>"
                );
                std::process::exit(2);
            }
        }
    }
    if o.tau == 0 {
        eprintln!("--tau must be positive");
        std::process::exit(2);
    }
    o
}

fn main() {
    let o = parse_opts();
    if o.report.is_some() {
        obs::set_enabled(true);
    }
    let (g, _) = abilene14(o.wavelengths);
    let mut ctl = ControllerConfig::paper(o.wavelengths);
    ctl.tau = o.tau;
    ctl.instance.paths_per_job = o.paths;
    let wl = WorkloadConfig {
        num_jobs: o.jobs,
        seed: o.seed,
        arrival: ArrivalModel::Poisson { rate: o.rate },
        // Short windows keep the active set (and each invocation's LP)
        // bounded: the workload is a conveyor belt, not a pile-up.
        window: (4.0, 8.0),
        ..Default::default()
    };
    let cfg = SimConfig {
        controller: ctl,
        // Arrivals span ~jobs/rate slices; generous slack for the tail.
        max_slices: (o.jobs as f64 / o.rate).ceil() as usize + 500,
    };

    let mut log_file = o.log.as_ref().map(|p| {
        BufWriter::new(std::fs::File::create(p).unwrap_or_else(|e| {
            eprintln!("cannot create {p:?}: {e}");
            std::process::exit(1);
        }))
    });
    let log = log_file.as_mut().map(|w| w as &mut dyn std::io::Write);

    let run =
        |log: Option<&mut dyn std::io::Write>| -> Result<StreamReport, wavesched_lp::SolveError> {
            if let Some(path) = &o.trace {
                let f = std::fs::File::open(path).unwrap_or_else(|e| {
                    eprintln!("cannot open {path:?}: {e}");
                    std::process::exit(1);
                });
                let reader = TraceReader::new(std::io::BufReader::new(f), &g);
                let jobs = reader.map(|r| {
                    r.unwrap_or_else(|e| {
                        eprintln!("{path}: {e}");
                        std::process::exit(1);
                    })
                });
                if o.preload {
                    let all: Vec<Job> = jobs.collect();
                    run_simulation_streamed(&g, all, &cfg, log)
                } else {
                    run_simulation_streamed(&g, jobs, &cfg, log)
                }
            } else {
                let generator = WorkloadGenerator::new(wl.clone());
                if o.preload {
                    let mut generator = generator;
                    let all = generator.generate(&g);
                    run_simulation_streamed(&g, all, &cfg, log)
                } else {
                    run_simulation_streamed(&g, generator.stream(&g), &cfg, log)
                }
            }
        };
    let r = run(log).unwrap_or_else(|e| {
        eprintln!("replay failed: {e:?}");
        std::process::exit(1);
    });
    if let Some(mut w) = log_file {
        use std::io::Write as _;
        if let Err(e) = w.flush() {
            eprintln!("flushing decision log: {e}");
            std::process::exit(1);
        }
    }

    // key,value CSV: stable, diffable, greppable.
    println!("metric,value");
    println!("jobs_seen,{}", r.jobs_seen);
    println!("completed,{}", r.completed);
    println!("on_time,{}", r.on_time);
    println!("rejected,{}", r.rejected);
    println!("expired,{}", r.expired);
    println!("unfinished,{}", r.unfinished);
    println!("invocations,{}", r.invocations);
    println!("slices,{}", r.slices);
    println!("peak_active,{}", r.peak_active);
    println!("volume_moved,{:.3}", r.volume_moved);
    println!("volume_requested,{:.3}", r.volume_requested);
    println!("goodput,{:.4}", r.goodput());
    // Allocation profile rows are machine-dependent (allocator, libc);
    // byte-compared artifacts must use `--log`, never this stdout block.
    println!("mem_samples,{}", r.mem.samples);
    println!(
        "mem_early_mean_alloc_bytes,{:.0}",
        r.mem.early_mean_alloc_bytes
    );
    println!(
        "mem_late_mean_alloc_bytes,{:.0}",
        r.mem.late_mean_alloc_bytes
    );
    println!("mem_peak_live_bytes,{}", r.mem.peak_live_bytes);

    if let Some(path) = &o.report {
        let text = obs::to_json_lines(&obs::snapshot());
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("failed to write report {path:?}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {} metric lines to {path}", text.lines().count());
    }
}
