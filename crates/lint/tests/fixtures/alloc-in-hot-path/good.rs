// Known-good: allocation happens at construction time; the hot functions
// only reuse the preallocated scratch arena.
pub struct Engine {
    scratch: Vec<f64>,
}

impl Engine {
    pub fn new(n: usize) -> Engine {
        Engine {
            scratch: vec![0.0; n],
        }
    }

    pub fn pivot(&mut self, xs: &[f64]) -> f64 {
        self.scratch.clear();
        self.scratch.extend_from_slice(xs);
        let mut acc = 0.0;
        for v in &self.scratch {
            acc += v;
        }
        acc
    }
}

pub fn setup(n: usize) -> Vec<f64> {
    // Cold path: allocating here is fine.
    vec![1.0; n]
}
