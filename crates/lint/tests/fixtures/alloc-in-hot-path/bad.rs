// Known-bad: heap allocation inside simplex hot-path functions; reuse a
// preallocated scratch arena instead.
pub fn pivot(n: usize) -> Vec<f64> {
    let mut scratch = vec![0.0; n];
    scratch.push(1.0);
    scratch
}

pub fn ftran_sparse(xs: &[f64]) -> Vec<f64> {
    xs.to_vec()
}

pub fn price_full(xs: &[f64]) -> Vec<f64> {
    xs.iter().map(|x| x + 1.0).collect()
}

pub fn ratio_test(b: f64) -> Box<f64> {
    Box::new(b)
}

pub fn dual_loop(n: usize) -> Vec<u32> {
    let ids = Vec::with_capacity(n);
    ids
}
