// Known-bad: exact float comparisons a tolerance should replace.
pub fn at_origin(x: f64) -> bool {
    x == 0.0
}

pub fn not_half(y: f64) -> bool {
    y != 0.5
}

pub fn is_nan_wrong(z: f64) -> bool {
    z == f64::NAN
}
