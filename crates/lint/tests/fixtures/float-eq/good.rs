// Known-good: tolerance-based comparisons and non-float equality.
pub fn at_origin(x: f64) -> bool {
    x.abs() <= 1e-9
}

pub fn near_half(y: f64) -> bool {
    (y - 0.5).abs() <= 1e-9
}

pub fn is_nan_right(z: f64) -> bool {
    z.is_nan()
}

pub fn same_index(a: usize, b: usize) -> bool {
    a == b
}
