// Known-good: typed errors instead of panics.
pub fn first(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

pub fn parse(s: &str) -> Result<u32, String> {
    s.parse().map_err(|e| format!("bad number: {e}"))
}

pub fn settle(x: Option<u32>) -> u32 {
    x.unwrap_or_default()
}
