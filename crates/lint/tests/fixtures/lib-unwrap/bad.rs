// Known-bad: panicking escape hatches in library code.
pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn parse(s: &str) -> u32 {
    s.parse().expect("a number")
}

pub fn explode() {
    panic!("boom");
}
