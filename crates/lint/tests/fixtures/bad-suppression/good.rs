// Known-good: well-formed suppressions silencing a real finding, with a
// non-empty reason — standalone (covers the next code line) and trailing
// (covers its own line).
pub fn unset(x: f64) -> bool {
    // lint: allow(float-eq, reason = "exact zero means the field was never set")
    x == 0.0
}

pub fn cleared(y: f64) -> bool {
    y == 0.0 // lint: allow(float-eq, reason = "exact zero means the field was cleared")
}
