// Known-bad: malformed suppressions (missing reason, unknown rule, empty
// reason).
// lint: allow(float-eq)
pub fn a() {}

// lint: allow(no-such-rule, reason = "x")
pub fn b() {}

// lint: allow(lib-unwrap, reason = "")
pub fn c() {}
