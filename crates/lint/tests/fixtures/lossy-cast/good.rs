// Known-good: widening casts, casts of a plain value, and casts of a call
// result are all outside the rule.
pub fn widen(i: usize, j: usize) -> u64 {
    (i + j) as u64
}

pub fn plain(i: usize) -> u32 {
    i as u32
}

pub fn call_result(xs: &[f64]) -> u32 {
    xs.len() as u32
}
