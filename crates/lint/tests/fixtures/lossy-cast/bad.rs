// Known-bad: narrowing casts on index arithmetic silently truncate on
// overflow; bounds-check first or keep the arithmetic in the wide type.
pub fn flat_index(i: usize, j: usize, stride: usize) -> u32 {
    (i * stride + j) as u32
}

pub fn offset(base: usize, delta: usize) -> u16 {
    (base + delta) as u16
}
