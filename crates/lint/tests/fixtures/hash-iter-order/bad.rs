// Known-bad: hashed collections in an ordering-sensitive crate.
use std::collections::HashMap;
use std::collections::HashSet;

pub fn tally(xs: &[u32]) -> HashMap<u32, usize> {
    let mut m = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}

pub fn distinct(xs: &[u32]) -> HashSet<u32> {
    xs.iter().copied().collect()
}
