// Known-good: ordered collections with deterministic iteration.
use std::collections::BTreeMap;
use std::collections::BTreeSet;

pub fn tally(xs: &[u32]) -> BTreeMap<u32, usize> {
    let mut m = BTreeMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}

pub fn distinct(xs: &[u32]) -> BTreeSet<u32> {
    xs.iter().copied().collect()
}
