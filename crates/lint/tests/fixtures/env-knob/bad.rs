// Known-bad: ad-hoc environment knobs.
pub fn threads() -> usize {
    std::env::var("THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

pub fn flag() -> bool {
    std::env::var_os("FAST").is_some()
}
