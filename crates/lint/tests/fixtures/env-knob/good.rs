// Known-good: knobs arrive through configuration; compile-time env! is
// fine (resolved before the program runs).
pub struct Config {
    pub threads: usize,
}

pub fn threads(cfg: &Config) -> usize {
    cfg.threads
}

pub const MANIFEST: &str = env!("CARGO_MANIFEST_DIR");
