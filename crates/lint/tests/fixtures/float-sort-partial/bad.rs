// Known-bad: `partial_cmp` comparators are not total orders — a NaN makes
// the comparator panic or the sort order undefined. Use `total_cmp`.
pub fn sort_desc(xs: &mut [f64]) {
    xs.sort_by(|a, b| b.partial_cmp(a).unwrap());
}

pub fn best(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().max_by(|a, b| a.partial_cmp(b).unwrap())
}
