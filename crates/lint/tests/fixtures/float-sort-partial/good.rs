// Known-good: `total_cmp` is a total order over all floats, NaN included.
pub fn sort_desc(xs: &mut [f64]) {
    xs.sort_by(|a, b| b.total_cmp(a));
}

pub fn best(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().max_by(|a, b| a.total_cmp(b))
}

pub fn sort_keys(ks: &mut [u32]) {
    // Integer comparators are total; the rule only cares about
    // `partial_cmp`.
    ks.sort_by(|a, b| b.cmp(a));
}
