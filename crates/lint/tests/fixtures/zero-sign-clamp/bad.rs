// Known-bad: zero-clamps whose result sign is unspecified; route through
// `wavesched_lp::pos_or_zero` so debug and release builds agree.
pub fn clamp_step(t: f64) -> f64 {
    t.max(0.0)
}

pub fn qualified(a: f64) -> f64 {
    f64::max(a, 0.0)
}

pub fn negative_zero_min(d: f64) -> f64 {
    d.min(-0.0)
}

/// The literal PR 7 hazard: optimized and unoptimized builds are allowed to
/// disagree on the sign of this result, and a `-0.0` leaking into a
/// `total_cmp`-ordered candidate sort changes pivot selection.
pub fn pr7_pattern() -> f64 {
    f64::max(-0.0, 0.0)
}
