// Known-good: deterministic clamps and clamps against nonzero bounds.
pub fn pos_or_zero(t: f64) -> f64 {
    if t > 0.0 {
        t
    } else {
        0.0
    }
}

pub fn clamp_step(t: f64) -> f64 {
    pos_or_zero(t)
}

pub fn at_least_one(v: f64) -> f64 {
    v.max(1.0)
}

pub fn no_more_than_zero(v: f64) -> f64 {
    // `.min(+0.0)` cannot produce a positive value with the wrong sign of
    // zero mattering downstream; only `.min(-0.0)` is flagged.
    v.min(0.0)
}

pub fn fold_min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}
