// Known-bad: wall-clock reads in the decision path.
use std::time::{Instant, SystemTime};

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn epoch() -> SystemTime {
    SystemTime::now()
}
