// Known-good: time flows in as simulated slice indices, never read from
// the host clock.
pub fn deadline_passed(now_slices: f64, end: f64) -> bool {
    now_slices > end
}
