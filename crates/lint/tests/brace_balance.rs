//! Workspace-wide lexer/tree soundness gate: every `.rs` file in the repo
//! must produce a perfectly balanced scope tree. A single mislexed
//! delimiter — a char literal `'{'` or byte literal `b'}'` read as
//! punctuation, a string scanned short — shows up here as brace debt, so
//! this test settles the lexer-disambiguation question empirically over
//! the entire codebase rather than by enumeration.

use wavesched_lint::lexer::{lex, TokKind};
use wavesched_lint::tree::ScopeTree;

#[test]
fn every_workspace_file_has_zero_brace_debt() {
    let root = wavesched_lint::workspace_root();
    let files = wavesched_lint::collect_files(&root).expect("walk workspace");
    assert!(files.len() > 20, "suspiciously few files: {files:?}");
    let mut bad = Vec::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel)).expect("read source");
        let code: Vec<_> = lex(&src)
            .into_iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        let tree = ScopeTree::build(&src, &code);
        let (extra, unclosed) = tree.brace_debt();
        if extra != 0 || unclosed != 0 {
            bad.push(format!("{rel}: {extra} extra closers, {unclosed} unclosed"));
        }
    }
    assert!(bad.is_empty(), "brace debt found:\n{}", bad.join("\n"));
}
