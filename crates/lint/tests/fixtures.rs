//! Fixture-driven end-to-end tests: every rule has a known-bad snippet that
//! must fire and a known-good twin that must stay silent, plus baseline
//! round-trip and staleness coverage.

use std::path::{Path, PathBuf};
use wavesched_lint::baseline::{Baseline, Json};
use wavesched_lint::rules::{lint_source, Finding, RULE_NAMES};

/// Synthetic path each rule's snippets are linted under. `crates/core/src/`
/// is in scope for almost every rule, which makes it the canonical drop
/// target — except `alloc-in-hot-path`, which is deliberately lp-only
/// (core's column-generation `Pricer` methods are literally named `price`
/// and legitimately allocate), so its snippets drop into `crates/lp`.
fn drop_path(rule: &str) -> String {
    let krate = if rule == "alloc-in-hot-path" {
        "lp"
    } else {
        "core"
    };
    format!("crates/{krate}/src/fixture_under_test.rs")
}

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture(rule: &str, which: &str) -> String {
    let path = fixture_dir().join(rule).join(format!("{which}.rs"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn rules_hit(rule: &str, src: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = lint_source(&drop_path(rule), src)
        .iter()
        .map(|f| f.rule)
        .collect();
    rules.dedup();
    rules
}

#[test]
fn every_rule_has_fixtures() {
    for rule in RULE_NAMES {
        for which in ["good", "bad"] {
            let path = fixture_dir().join(rule).join(format!("{which}.rs"));
            assert!(path.is_file(), "missing fixture {}", path.display());
        }
    }
}

#[test]
fn known_bad_fixtures_fire_their_rule() {
    for rule in RULE_NAMES {
        let hits = rules_hit(rule, &fixture(rule, "bad"));
        assert!(
            hits.contains(&rule),
            "bad fixture for {rule} fired {hits:?}, expected it to include {rule}"
        );
    }
}

#[test]
fn known_good_fixtures_are_clean() {
    for rule in RULE_NAMES {
        let findings = lint_source(&drop_path(rule), &fixture(rule, "good"));
        assert!(
            findings.is_empty(),
            "good fixture for {rule} produced findings: {findings:?}"
        );
    }
}

/// All findings from every bad fixture, filed under distinct synthetic
/// paths so baseline keys don't collide between fixtures.
fn all_bad_findings() -> Vec<Finding> {
    let mut findings = Vec::new();
    for rule in RULE_NAMES {
        let krate = if rule == "alloc-in-hot-path" {
            "lp"
        } else {
            "core"
        };
        let path = format!("crates/{krate}/src/fixture_{}.rs", rule.replace('-', "_"));
        findings.extend(lint_source(&path, &fixture(rule, "bad")));
    }
    findings.sort();
    findings
}

#[test]
fn update_baseline_roundtrip() {
    let findings = all_bad_findings();
    assert!(findings.len() >= RULE_NAMES.len());

    // `--update-baseline` writes `from_findings(...).to_json()`; a later run
    // parses it back and diffs. The cycle must be lossless: nothing new,
    // nothing stale, and re-serialization byte-identical (stable ordering).
    let base = Baseline::from_findings(&findings);
    let json = base.to_json();
    let reparsed = Baseline::parse(&json).expect("own output must parse");
    assert_eq!(reparsed.to_json(), json, "serialization must round-trip");

    let diff = reparsed.diff(&findings);
    assert!(
        diff.new.is_empty(),
        "round-trip invented findings: {:?}",
        diff.new
    );
    assert!(
        diff.stale.is_empty(),
        "round-trip lost entries: {:?}",
        diff.stale
    );
    assert_eq!(diff.matched, findings.len());
}

#[test]
fn stale_baseline_entries_are_reported_not_fatal() {
    let findings = all_bad_findings();
    let base = Baseline::from_findings(&findings);

    // The code got fixed (no findings any more): every entry is stale debt
    // that --update-baseline should shrink away, but nothing is "new" — a
    // stale baseline must never fail the build.
    let diff = base.diff(&[]);
    assert!(diff.new.is_empty());
    assert_eq!(diff.matched, 0);
    assert_eq!(
        diff.stale.iter().map(|e| e.count).sum::<usize>(),
        findings.len(),
        "every baselined finding must resurface as stale"
    );

    // Partially fixed: only the float-eq fixture's findings remain. The
    // rest are stale; the survivors still match.
    let survivors: Vec<Finding> = findings
        .iter()
        .filter(|f| f.rule == "float-eq")
        .cloned()
        .collect();
    let diff = base.diff(&survivors);
    assert!(diff.new.is_empty());
    assert_eq!(diff.matched, survivors.len());
    assert!(!diff.stale.is_empty());
}

#[test]
fn dropped_in_bad_snippet_fails_against_checked_in_baseline() {
    // The acceptance scenario: copy the repo's sources plus one bad snippet
    // into a scratch tree, lint it against the real checked-in baseline,
    // and require NEW findings (non-zero exit in the CLI).
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");

    let scratch = std::env::temp_dir().join(format!("wavesched-lint-drop-{}", std::process::id()));
    let dst = scratch.join("crates/core/src");
    std::fs::create_dir_all(&dst).unwrap();
    std::fs::write(dst.join("dropped.rs"), fixture("float-eq", "bad")).unwrap();

    let findings = wavesched_lint::lint_workspace(&scratch).unwrap();
    let baseline_text = std::fs::read_to_string(root.join("lint-baseline.json")).unwrap();
    let base = Baseline::parse(&baseline_text).unwrap();
    let diff = base.diff(&findings);
    assert!(
        !diff.new.is_empty(),
        "a dropped-in bad snippet must produce findings the baseline does not cover"
    );

    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn pr7_zero_sign_pattern_is_caught() {
    // Regression guard for the PR 7 hazard the rule exists for: the bad
    // fixture carries the literal `f64::max(-0.0, 0.0)` pattern and
    // `zero-sign-clamp` must flag that exact line.
    let src = fixture("zero-sign-clamp", "bad");
    assert!(
        src.contains("f64::max(-0.0, 0.0)"),
        "fixture lost the literal PR 7 pattern"
    );
    let findings = lint_source(&drop_path("zero-sign-clamp"), &src);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "zero-sign-clamp" && f.snippet.contains("f64::max(-0.0, 0.0)")),
        "zero-sign-clamp missed the PR 7 pattern: {findings:#?}"
    );
}

#[test]
fn json_report_round_trips_with_schema_version_and_sorted_order() {
    // Unsorted input on purpose: render_json must impose (file, line, rule)
    // order itself.
    let mut findings = all_bad_findings();
    findings.reverse();
    let text = wavesched_lint::render_json(&findings, 3, 1);

    // The report must parse with the same minimal JSON parser the baseline
    // uses — CI consumers get one grammar for both artifacts.
    let parsed = Json::parse(&text).expect("report must be valid JSON");
    let obj = match &parsed {
        Json::Object(m) => m,
        other => panic!("report root must be an object, got {other:?}"),
    };
    assert_eq!(
        obj.get("schema_version"),
        Some(&Json::Number(wavesched_lint::JSON_SCHEMA_VERSION as f64))
    );
    assert_eq!(obj.get("matched"), Some(&Json::Number(3.0)));
    assert_eq!(obj.get("stale"), Some(&Json::Number(1.0)));

    // `schema_version` leads the report so consumers can dispatch on it
    // before reading anything shape-dependent.
    let first_key = text.lines().nth(1).unwrap_or_default();
    assert!(
        first_key.contains("\"schema_version\""),
        "schema_version must be the first field: {first_key}"
    );

    let new = match obj.get("new") {
        Some(Json::Array(a)) => a,
        other => panic!("`new` must be an array, got {other:?}"),
    };
    assert_eq!(new.len(), findings.len());
    let keys: Vec<(String, f64, String)> = new
        .iter()
        .map(|f| {
            let m = match f {
                Json::Object(m) => m,
                other => panic!("finding must be an object, got {other:?}"),
            };
            let s = |k: &str| match m.get(k) {
                Some(Json::String(s)) => s.clone(),
                other => panic!("finding field {k} must be a string, got {other:?}"),
            };
            let line = match m.get("line") {
                Some(Json::Number(n)) => *n,
                other => panic!("finding field line must be a number, got {other:?}"),
            };
            (s("file"), line, s("rule"))
        })
        .collect();
    let mut sorted = keys.clone();
    sorted.sort_by(|a, b| {
        (a.0.as_str(), a.1 as u64, a.2.as_str()).cmp(&(b.0.as_str(), b.1 as u64, b.2.as_str()))
    });
    assert_eq!(keys, sorted, "report findings must be sorted");
}

#[test]
fn checked_in_baseline_covers_the_tree_exactly() {
    // The repo itself must lint clean against its own baseline: no new
    // findings (CI gate) and no stale entries (the ratchet is tight).
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let findings = wavesched_lint::lint_workspace(root).unwrap();
    let base = Baseline::parse(&std::fs::read_to_string(root.join("lint-baseline.json")).unwrap())
        .unwrap();
    let diff = base.diff(&findings);
    assert!(diff.new.is_empty(), "new findings: {:#?}", diff.new);
    assert!(diff.stale.is_empty(), "stale entries: {:#?}", diff.stale);
}
