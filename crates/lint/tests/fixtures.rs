//! Fixture-driven end-to-end tests: every rule has a known-bad snippet that
//! must fire and a known-good twin that must stay silent, plus baseline
//! round-trip and staleness coverage.

use std::path::{Path, PathBuf};
use wavesched_lint::baseline::Baseline;
use wavesched_lint::rules::{lint_source, Finding, RULE_NAMES};

/// A path on which **all** rules apply: `crates/core/src/` is in scope for
/// float-eq, hash-iter-order, lib-unwrap, wallclock, and env-knob alike,
/// which is what makes it the canonical drop target for bad snippets.
const DROP_PATH: &str = "crates/core/src/fixture_under_test.rs";

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture(rule: &str, which: &str) -> String {
    let path = fixture_dir().join(rule).join(format!("{which}.rs"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn rules_hit(src: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = lint_source(DROP_PATH, src).iter().map(|f| f.rule).collect();
    rules.dedup();
    rules
}

#[test]
fn every_rule_has_fixtures() {
    for rule in RULE_NAMES {
        for which in ["good", "bad"] {
            let path = fixture_dir().join(rule).join(format!("{which}.rs"));
            assert!(path.is_file(), "missing fixture {}", path.display());
        }
    }
}

#[test]
fn known_bad_fixtures_fire_their_rule() {
    for rule in RULE_NAMES {
        let hits = rules_hit(&fixture(rule, "bad"));
        assert!(
            hits.contains(&rule),
            "bad fixture for {rule} fired {hits:?}, expected it to include {rule}"
        );
    }
}

#[test]
fn known_good_fixtures_are_clean() {
    for rule in RULE_NAMES {
        let findings = lint_source(DROP_PATH, &fixture(rule, "good"));
        assert!(
            findings.is_empty(),
            "good fixture for {rule} produced findings: {findings:?}"
        );
    }
}

/// All findings from every bad fixture, filed under distinct synthetic
/// paths so baseline keys don't collide between fixtures.
fn all_bad_findings() -> Vec<Finding> {
    let mut findings = Vec::new();
    for rule in RULE_NAMES {
        let path = format!("crates/core/src/fixture_{}.rs", rule.replace('-', "_"));
        findings.extend(lint_source(&path, &fixture(rule, "bad")));
    }
    findings.sort();
    findings
}

#[test]
fn update_baseline_roundtrip() {
    let findings = all_bad_findings();
    assert!(findings.len() >= RULE_NAMES.len());

    // `--update-baseline` writes `from_findings(...).to_json()`; a later run
    // parses it back and diffs. The cycle must be lossless: nothing new,
    // nothing stale, and re-serialization byte-identical (stable ordering).
    let base = Baseline::from_findings(&findings);
    let json = base.to_json();
    let reparsed = Baseline::parse(&json).expect("own output must parse");
    assert_eq!(reparsed.to_json(), json, "serialization must round-trip");

    let diff = reparsed.diff(&findings);
    assert!(
        diff.new.is_empty(),
        "round-trip invented findings: {:?}",
        diff.new
    );
    assert!(
        diff.stale.is_empty(),
        "round-trip lost entries: {:?}",
        diff.stale
    );
    assert_eq!(diff.matched, findings.len());
}

#[test]
fn stale_baseline_entries_are_reported_not_fatal() {
    let findings = all_bad_findings();
    let base = Baseline::from_findings(&findings);

    // The code got fixed (no findings any more): every entry is stale debt
    // that --update-baseline should shrink away, but nothing is "new" — a
    // stale baseline must never fail the build.
    let diff = base.diff(&[]);
    assert!(diff.new.is_empty());
    assert_eq!(diff.matched, 0);
    assert_eq!(
        diff.stale.iter().map(|e| e.count).sum::<usize>(),
        findings.len(),
        "every baselined finding must resurface as stale"
    );

    // Partially fixed: only the float-eq fixture's findings remain. The
    // rest are stale; the survivors still match.
    let survivors: Vec<Finding> = findings
        .iter()
        .filter(|f| f.rule == "float-eq")
        .cloned()
        .collect();
    let diff = base.diff(&survivors);
    assert!(diff.new.is_empty());
    assert_eq!(diff.matched, survivors.len());
    assert!(!diff.stale.is_empty());
}

#[test]
fn dropped_in_bad_snippet_fails_against_checked_in_baseline() {
    // The acceptance scenario: copy the repo's sources plus one bad snippet
    // into a scratch tree, lint it against the real checked-in baseline,
    // and require NEW findings (non-zero exit in the CLI).
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");

    let scratch = std::env::temp_dir().join(format!("wavesched-lint-drop-{}", std::process::id()));
    let dst = scratch.join("crates/core/src");
    std::fs::create_dir_all(&dst).unwrap();
    std::fs::write(dst.join("dropped.rs"), fixture("float-eq", "bad")).unwrap();

    let findings = wavesched_lint::lint_workspace(&scratch).unwrap();
    let baseline_text = std::fs::read_to_string(root.join("lint-baseline.json")).unwrap();
    let base = Baseline::parse(&baseline_text).unwrap();
    let diff = base.diff(&findings);
    assert!(
        !diff.new.is_empty(),
        "a dropped-in bad snippet must produce findings the baseline does not cover"
    );

    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn checked_in_baseline_covers_the_tree_exactly() {
    // The repo itself must lint clean against its own baseline: no new
    // findings (CI gate) and no stale entries (the ratchet is tight).
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let findings = wavesched_lint::lint_workspace(root).unwrap();
    let base = Baseline::parse(&std::fs::read_to_string(root.join("lint-baseline.json")).unwrap())
        .unwrap();
    let diff = base.diff(&findings);
    assert!(diff.new.is_empty(), "new findings: {:#?}", diff.new);
    assert!(diff.stale.is_empty(), "stale entries: {:#?}", diff.stale);
}
