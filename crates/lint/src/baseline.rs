//! The baseline ratchet: known debt is checked in, new debt is rejected.
//!
//! A baseline entry keys a finding group by `(rule, file, snippet)` — the
//! *trimmed text* of the offending line rather than its number — so pure
//! line churn (code moving up or down a file) neither hides a violation
//! nor invents one. `count` is how many findings share that key.
//!
//! Comparing a run against the baseline yields three buckets:
//!
//! * **new** — findings beyond the baselined count for their key (or with
//!   no entry at all). These fail the build.
//! * **matched** — findings covered by the baseline; reported only in
//!   summaries.
//! * **stale** — baseline entries (or surplus counts) with no matching
//!   finding anymore: debt that was paid down. Reported so the baseline
//!   can be re-shrunk with `--update-baseline`; never a failure.
//!
//! The file format is plain JSON written and parsed by the tiny
//! self-contained implementation below (the linter is dependency-free on
//! purpose). Entries are sorted, one per line, so diffs review cleanly.

use crate::rules::Finding;
use std::collections::BTreeMap;

/// One unit of accepted debt.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Entry {
    /// Rule name.
    pub rule: String,
    /// Workspace-relative file.
    pub file: String,
    /// Trimmed text of the offending line.
    pub snippet: String,
    /// Number of findings sharing this (rule, file, snippet) key.
    pub count: usize,
}

/// A parsed baseline file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Accepted debt, sorted by (rule, file, snippet).
    pub entries: Vec<Entry>,
}

/// Result of checking findings against a [`Baseline`].
#[derive(Debug, Default)]
pub struct Diff {
    /// Findings not covered by the baseline — these fail the run.
    pub new: Vec<Finding>,
    /// Number of findings absorbed by baseline entries.
    pub matched: usize,
    /// Baseline entries that no longer match anything (count = surplus).
    pub stale: Vec<Entry>,
}

impl Baseline {
    /// Builds a baseline that exactly covers `findings`.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut counts: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for f in findings {
            *counts
                .entry((f.rule.to_string(), f.file.clone(), f.snippet.clone()))
                .or_default() += 1;
        }
        Baseline {
            entries: counts
                .into_iter()
                .map(|((rule, file, snippet), count)| Entry {
                    rule,
                    file,
                    snippet,
                    count,
                })
                .collect(),
        }
    }

    /// Splits `findings` into new / matched / stale relative to `self`.
    pub fn diff(&self, findings: &[Finding]) -> Diff {
        let mut budget: BTreeMap<(&str, &str, &str), usize> = self
            .entries
            .iter()
            .map(|e| {
                (
                    (e.rule.as_str(), e.file.as_str(), e.snippet.as_str()),
                    e.count,
                )
            })
            .collect();
        let mut out = Diff::default();
        for f in findings {
            let key = (f.rule, f.file.as_str(), f.snippet.as_str());
            match budget.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    out.matched += 1;
                }
                _ => out.new.push(f.clone()),
            }
        }
        for e in &self.entries {
            let left = budget[&(e.rule.as_str(), e.file.as_str(), e.snippet.as_str())];
            if left > 0 {
                out.stale.push(Entry {
                    count: left,
                    ..e.clone()
                });
            }
        }
        out
    }

    /// Serializes to the on-disk JSON format (sorted, one entry per line).
    pub fn to_json(&self) -> String {
        let mut entries = self.entries.clone();
        entries.sort();
        let mut s = String::from("{\n  \"version\": 1,\n  \"entries\": [\n");
        for (i, e) in entries.iter().enumerate() {
            s.push_str("    {\"rule\": ");
            json_string(&mut s, &e.rule);
            s.push_str(", \"file\": ");
            json_string(&mut s, &e.file);
            s.push_str(", \"count\": ");
            s.push_str(&e.count.to_string());
            s.push_str(", \"snippet\": ");
            json_string(&mut s, &e.snippet);
            s.push('}');
            if i + 1 < entries.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses the on-disk format. Field order inside an entry is free; an
    /// unknown field, wrong type, or malformed JSON is an error (a baseline
    /// that silently dropped entries would let new debt through).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let value = Json::parse(text)?;
        let obj = value.as_object().ok_or("baseline root must be an object")?;
        match obj.get("version") {
            Some(Json::Number(v)) if *v == 1.0 => {}
            _ => return Err("unsupported or missing baseline `version`".to_string()),
        }
        let entries = obj
            .get("entries")
            .and_then(Json::as_array)
            .ok_or("baseline must have an `entries` array")?;
        let mut out = Vec::with_capacity(entries.len());
        for e in entries {
            let eo = e.as_object().ok_or("each entry must be an object")?;
            let get_str = |k: &str| -> Result<String, String> {
                match eo.get(k) {
                    Some(Json::String(s)) => Ok(s.clone()),
                    _ => Err(format!("entry is missing string field `{k}`")),
                }
            };
            let count = match eo.get("count") {
                Some(Json::Number(n)) if *n >= 1.0 && n.fract() == 0.0 => *n as usize,
                _ => return Err("entry `count` must be a positive integer".to_string()),
            };
            out.push(Entry {
                rule: get_str("rule")?,
                file: get_str("file")?,
                snippet: get_str("snippet")?,
                count,
            });
        }
        out.sort();
        Ok(Baseline { entries: out })
    }
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A minimal JSON value — just what the baseline format needs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64; baseline counts are small integers).
    Number(f64),
    /// String with standard escapes.
    String(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with string keys (sorted map: parse order is irrelevant).
    Object(BTreeMap<String, Json>),
}

impl Json {
    fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Parses `text` as a single JSON value (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            s: text.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.s.len() {
            return Err(format!("trailing garbage at byte {}", p.i));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char,
                self.i,
                self.peek().map(|c| c as char).unwrap_or('∅')
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected `{}` at byte {}",
                other.map(|c| c as char).unwrap_or('∅'),
                self.i
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.i))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        while let Some(c) = self.peek() {
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            self.i += 4;
                            // Surrogate pairs are not needed for source
                            // snippets; map unpaired surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                c => {
                    // Collect the full UTF-8 sequence.
                    let start = self.i - 1;
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    self.i = start + len;
                    let chunk = self
                        .s
                        .get(start..self.i)
                        .and_then(|b| std::str::from_utf8(b).ok())
                        .ok_or("invalid UTF-8 in string")?;
                    out.push_str(chunk);
                }
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, snippet: &str, line: u32) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule,
            snippet: snippet.to_string(),
            message: String::new(),
        }
    }

    #[test]
    fn roundtrip_preserves_entries() {
        let findings = vec![
            finding("lib-unwrap", "crates/lp/src/a.rs", "x.unwrap()", 10),
            finding("lib-unwrap", "crates/lp/src/a.rs", "x.unwrap()", 90),
            finding("float-eq", "crates/core/src/b.rs", "if a == 0.0 {", 4),
        ];
        let b = Baseline::from_findings(&findings);
        assert_eq!(b.entries.len(), 2);
        let parsed = Baseline::parse(&b.to_json()).unwrap();
        assert_eq!(parsed, b);
        // A second serialize is byte-identical (stable, sorted format).
        assert_eq!(parsed.to_json(), b.to_json());
    }

    #[test]
    fn diff_buckets_new_matched_stale() {
        let old = vec![
            finding("lib-unwrap", "a.rs", "x.unwrap()", 1),
            finding("lib-unwrap", "a.rs", "x.unwrap()", 2),
            finding("float-eq", "b.rs", "a == 0.0", 3),
        ];
        let base = Baseline::from_findings(&old);
        // One unwrap fixed, float-eq untouched, a brand-new wallclock hit.
        let now = vec![
            finding("lib-unwrap", "a.rs", "x.unwrap()", 2),
            finding("float-eq", "b.rs", "a == 0.0", 3),
            finding("wallclock", "c.rs", "Instant::now()", 9),
        ];
        let d = base.diff(&now);
        assert_eq!(d.matched, 2);
        assert_eq!(d.new.len(), 1);
        assert_eq!(d.new[0].rule, "wallclock");
        assert_eq!(d.stale.len(), 1);
        assert_eq!(d.stale[0].rule, "lib-unwrap");
        assert_eq!(d.stale[0].count, 1);
    }

    #[test]
    fn snippet_keys_survive_line_churn() {
        let base = Baseline::from_findings(&[finding("lib-unwrap", "a.rs", "x.unwrap()", 10)]);
        // Same line content, wildly different line number: still matched.
        let d = base.diff(&[finding("lib-unwrap", "a.rs", "x.unwrap()", 500)]);
        assert!(d.new.is_empty());
        assert_eq!(d.matched, 1);
        assert!(d.stale.is_empty());
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Baseline::parse("not json").is_err());
        assert!(Baseline::parse("{}").is_err(), "missing version");
        assert!(Baseline::parse("{\"version\": 2, \"entries\": []}").is_err());
        assert!(
            Baseline::parse("{\"version\": 1, \"entries\": [{\"rule\": \"x\", \"file\": \"y\"}]}")
                .is_err(),
            "entry missing fields"
        );
        let ok = Baseline::parse("{\"version\": 1, \"entries\": []}").unwrap();
        assert!(ok.entries.is_empty());
    }

    #[test]
    fn json_escapes_roundtrip() {
        let f = finding("float-eq", "a.rs", "s == \"quo\\te\"", 1);
        let b = Baseline::from_findings(&[f]);
        let parsed = Baseline::parse(&b.to_json()).unwrap();
        assert_eq!(parsed.entries[0].snippet, "s == \"quo\\te\"");
    }
}
