//! CLI for `wavesched-lint`.
//!
//! ```text
//! cargo run -p wavesched-lint -- [--baseline <path>] [--update-baseline]
//!                                [--json] [--root <dir>] [--list-rules]
//! ```
//!
//! Exit codes: `0` clean (every finding covered by the baseline), `1` new
//! findings, `2` usage or I/O error. Stale baseline entries (debt that was
//! paid down) are reported on stderr but do not fail the run; shrink the
//! file with `--update-baseline`.

use std::path::PathBuf;
use std::process::ExitCode;
use wavesched_lint::baseline::Baseline;
use wavesched_lint::rules::{Finding, RULE_DESCRIPTIONS, RULE_NAMES};

struct Opts {
    root: PathBuf,
    baseline: PathBuf,
    update: bool,
    json: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: wavesched-lint [--baseline <path>] [--update-baseline] [--json] \
         [--root <dir>] [--list-rules]"
    );
    std::process::exit(2)
}

fn parse_args() -> Opts {
    let mut root = wavesched_lint::workspace_root();
    let mut baseline = None;
    let mut update = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--baseline" => baseline = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--update-baseline" => update = true,
            "--json" => json = true,
            "--root" => root = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--list-rules" => {
                for (name, desc) in RULE_NAMES.iter().zip(RULE_DESCRIPTIONS) {
                    println!("{name:16} {desc}");
                }
                std::process::exit(0);
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage()
            }
        }
    }
    let baseline = baseline.unwrap_or_else(|| root.join("lint-baseline.json"));
    Opts {
        root,
        baseline,
        update,
        json,
    }
}

fn print_finding(f: &Finding) {
    eprintln!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    eprintln!("    {}", f.snippet);
}

fn main() -> ExitCode {
    let opts = parse_args();
    let findings = match wavesched_lint::lint_workspace(&opts.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("wavesched-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.update {
        let base = Baseline::from_findings(&findings);
        if let Err(e) = std::fs::write(&opts.baseline, base.to_json()) {
            eprintln!("wavesched-lint: writing {}: {e}", opts.baseline.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "wavesched-lint: wrote {} ({} entries covering {} findings)",
            opts.baseline.display(),
            base.entries.len(),
            findings.len()
        );
        return ExitCode::SUCCESS;
    }

    let base = if opts.baseline.exists() {
        match std::fs::read_to_string(&opts.baseline)
            .map_err(|e| e.to_string())
            .and_then(|t| Baseline::parse(&t))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("wavesched-lint: {}: {e}", opts.baseline.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Baseline::default()
    };

    let diff = base.diff(&findings);
    if opts.json {
        print!(
            "{}",
            wavesched_lint::render_json(&diff.new, diff.matched, diff.stale.len())
        );
    } else {
        for f in &diff.new {
            print_finding(f);
        }
        for e in &diff.stale {
            eprintln!(
                "stale baseline entry ({}x): [{}] {} — `{}` no longer matches; \
                 run --update-baseline to shrink the baseline",
                e.count, e.rule, e.file, e.snippet
            );
        }
        eprintln!(
            "wavesched-lint: {} new, {} baselined, {} stale baseline entr{}",
            diff.new.len(),
            diff.matched,
            diff.stale.len(),
            if diff.stale.len() == 1 { "y" } else { "ies" }
        );
    }
    if diff.new.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
