//! # wavesched-lint — project-specific static analysis
//!
//! A std-only, dependency-free static analyzer enforcing the invariants
//! this workspace's guarantees rest on: bit-identical output across thread
//! counts, tolerance-aware float decisions in the solver, and panic-free
//! library hot paths. PR 3 made those guarantees; this crate makes them
//! *stay* made.
//!
//! Pipeline: a comment/string/char-literal-aware lexer ([`lexer`]) feeds a
//! rule engine ([`rules`]) with inline
//! `// lint: allow(<rule>, reason = "...")` suppressions; findings are
//! ratcheted against a checked-in baseline ([`baseline`],
//! `lint-baseline.json` at the workspace root) so pre-existing debt is
//! tracked and burned down rather than blocking every change.
//!
//! Run it as `cargo run -p wavesched-lint` (see the binary for flags), or
//! drive the library directly:
//!
//! ```
//! use wavesched_lint::rules::lint_source;
//! let findings = lint_source(
//!     "crates/lp/src/example.rs",
//!     "fn f(x: f64) -> bool { x == 0.5 }",
//! );
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "float-eq");
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod tree;

use rules::Finding;
use std::path::{Path, PathBuf};

/// Version stamped into the `--json` report. Bump on any change to the
/// report's shape so CI consumers can hard-fail on drift instead of
/// misparsing.
pub const JSON_SCHEMA_VERSION: u64 = 1;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the `--json` report: a stable `schema_version`, the diff
/// counts, and the new findings sorted by (file, line, rule) — the order
/// is re-imposed here so the report is deterministic regardless of how
/// the caller assembled the slice.
pub fn render_json(new: &[Finding], matched: usize, stale: usize) -> String {
    let mut new: Vec<&Finding> = new.iter().collect();
    new.sort();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema_version\": {JSON_SCHEMA_VERSION},\n"));
    out.push_str(&format!("  \"matched\": {matched},\n"));
    out.push_str(&format!("  \"stale\": {stale},\n"));
    out.push_str("  \"new\": [\n");
    for (i, f) in new.iter().enumerate() {
        let comma = if i + 1 < new.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"snippet\": \"{}\", \
             \"message\": \"{}\"}}{comma}\n",
            json_escape(&f.file),
            f.line,
            f.rule,
            json_escape(&f.snippet),
            json_escape(&f.message)
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// The workspace root, resolved at compile time from this crate's location
/// (`crates/lint` → two levels up). Callers can override with `--root`.
pub fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .unwrap_or(manifest)
        .to_path_buf()
}

/// Directory names never descended into. `fixtures` holds the linter's own
/// deliberately-bad test snippets; `vendor` is third-party stand-in code.
const SKIP_DIRS: [&str; 6] = [
    "target",
    "vendor",
    ".git",
    "results",
    "fixtures",
    "node_modules",
];

/// Top-level directories that contain lintable Rust sources.
const TOP_DIRS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// Collects every lintable `.rs` file under `root`, as workspace-relative
/// forward-slash paths, sorted (scan order never affects output).
pub fn collect_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    for top in TOP_DIRS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(root, &dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Lints the whole workspace under `root`; findings are sorted by
/// (file, line, rule). I/O errors abort (a skipped file is a silent pass).
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let files = collect_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut findings = Vec::new();
    for rel in &files {
        let src =
            std::fs::read_to_string(root.join(rel)).map_err(|e| format!("reading {rel}: {e}"))?;
        findings.extend(rules::lint_source(rel, &src));
    }
    findings.sort();
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_is_a_cargo_workspace() {
        let root = workspace_root();
        let manifest = std::fs::read_to_string(root.join("Cargo.toml")).unwrap();
        assert!(manifest.contains("[workspace]"), "{}", root.display());
    }

    #[test]
    fn collect_finds_this_crate_but_not_fixtures_or_vendor() {
        let root = workspace_root();
        let files = collect_files(&root).unwrap();
        assert!(files.iter().any(|f| f == "crates/lint/src/lib.rs"));
        assert!(
            files.iter().all(|f| !f.contains("/fixtures/")),
            "fixtures leaked"
        );
        assert!(
            files.iter().all(|f| !f.starts_with("vendor/")),
            "vendor leaked"
        );
        assert!(
            files.iter().all(|f| !f.contains("/target/")),
            "target leaked"
        );
        // Sorted, so runs are reproducible byte for byte.
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }
}
