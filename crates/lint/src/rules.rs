//! The rule engine: per-rule scoping, token-pattern matching, test-code
//! detection, and inline `// lint: allow(...)` suppressions.
//!
//! Every rule encodes an invariant this workspace actually depends on (see
//! DESIGN.md "Static analysis"):
//!
//! * `float-eq` — no `==`/`!=` against float expressions in `crates/lp`
//!   and `crates/core` library code. Exact float comparison at a tolerance
//!   boundary is how two runs of the same LP diverge; use the tolerance
//!   helpers or suppress with a reason explaining why exactness is correct.
//! * `hash-iter-order` — no `HashMap`/`HashSet` in the output- and
//!   ordering-sensitive crates (`bench`, `sim`, `net`, `core`). Their
//!   iteration order is randomized per process, which breaks the
//!   bit-identical-output guarantee the moment one feeds a CSV row, a
//!   schedule, or a float reduction. Use `BTreeMap`/`BTreeSet` or sort.
//! * `lib-unwrap` — no `unwrap()` / `expect()` / `panic!` in non-test,
//!   non-binary library code. Library hot paths return typed errors;
//!   genuine invariants use `expect("invariant: ...")` plus a suppression
//!   carrying the reason.
//! * `wallclock` — no `Instant::now` / `SystemTime` outside `crates/obs`
//!   and the bench binaries. Wall-clock reads in the decision path break
//!   replay determinism.
//! * `env-knob` — no raw `std::env::var` outside the sanctioned helpers
//!   (`wavesched-par`'s `WS_THREADS` reader, `wavesched-bench`'s
//!   `try_env_usize`). Ad-hoc env reads are knobs no one can discover, and
//!   silently-misread knobs mislabel experiments.
//! * `bad-suppression` — a `// lint: allow(...)` comment that is malformed,
//!   names an unknown rule, or lacks a non-empty `reason = "..."`. A
//!   suppression without a reason is just a hidden violation.

use crate::lexer::{lex, Tok, TokKind};
use std::collections::BTreeMap;

/// Names of all rules, in report order.
pub const RULE_NAMES: [&str; 6] = [
    "float-eq",
    "hash-iter-order",
    "lib-unwrap",
    "wallclock",
    "env-knob",
    "bad-suppression",
];

/// One-line description per rule, aligned with [`RULE_NAMES`].
pub const RULE_DESCRIPTIONS: [&str; 6] = [
    "no ==/!= against float expressions in crates/lp and crates/core library code",
    "no HashMap/HashSet in ordering-sensitive crates (bench, sim, net, core)",
    "no unwrap()/expect()/panic! in non-test, non-binary library code",
    "no Instant::now/SystemTime outside crates/obs and bench binaries",
    "no raw std::env::var outside the sanctioned par/bench helpers",
    "malformed or reason-less `// lint: allow(...)` comment",
];

/// One violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (one of [`RULE_NAMES`]).
    pub rule: &'static str,
    /// The trimmed source line the finding sits on — also the baseline key.
    pub snippet: String,
    /// Human-readable explanation.
    pub message: String,
}

/// The crate a workspace-relative path belongs to, e.g. `Some("lp")` for
/// `crates/lp/src/revised.rs`; `None` for the root package and other files.
fn crate_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    rest.split('/').next()
}

/// Binary / entry-point code: `src/bin/**`, any `src/main.rs`, benches and
/// examples. The panic-freedom rule does not apply there (a CLI aborting
/// with a message is fine); the determinism rules mostly still do.
fn is_bin(path: &str) -> bool {
    path.contains("/src/bin/") || path.ends_with("src/main.rs") || is_bench_or_example(path)
}

fn is_bench_or_example(path: &str) -> bool {
    path.contains("/benches/") || path.starts_with("examples/") || path.contains("/examples/")
}

/// Integration-test code (a `tests/` directory at any crate root).
fn is_test_file(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/")
}

/// Library source: a crate's (or the root package's) `src/` tree minus
/// binary entry points.
fn is_lib_source(path: &str) -> bool {
    (path.starts_with("src/") || path.contains("/src/")) && !is_bin(path) && !is_test_file(path)
}

fn float_eq_applies(path: &str) -> bool {
    matches!(crate_of(path), Some("lp") | Some("core")) && is_lib_source(path)
}

fn hash_iter_applies(path: &str) -> bool {
    // Binaries included on purpose: the bench bins are exactly where CSV
    // rows get printed. Tests excluded (assertions don't ship output).
    matches!(
        crate_of(path),
        Some("bench") | Some("sim") | Some("net") | Some("core")
    ) && !is_test_file(path)
        && !is_bench_or_example(path)
}

fn lib_unwrap_applies(path: &str) -> bool {
    is_lib_source(path)
}

fn wallclock_applies(path: &str) -> bool {
    !matches!(crate_of(path), Some("obs") | Some("bench"))
        && !is_bench_or_example(path)
        && !is_test_file(path)
}

fn env_knob_applies(path: &str) -> bool {
    !matches!(path, "crates/par/src/lib.rs" | "crates/bench/src/lib.rs")
}

/// Byte ranges of `#[cfg(test)]` items and `#[test]` functions: rules do
/// not fire inside them (unit tests unwrap and compare exactly by design).
fn test_ranges(src: &str, toks: &[Tok]) -> Vec<(usize, usize)> {
    let code: Vec<&Tok> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if code[i].text(src) == "#"
            && i + 1 < code.len()
            && code[i + 1].text(src) == "["
            && attr_mentions_test(src, &code, i + 1)
        {
            let attr_start = code[i].start;
            // Skip this attribute and any further ones, then the item body.
            let mut j = skip_attr(src, &code, i + 1);
            while j + 1 < code.len() && code[j].text(src) == "#" && code[j + 1].text(src) == "[" {
                j = skip_attr(src, &code, j + 1);
            }
            // Find the item's opening brace (or a terminating `;`).
            let mut depth = 0i32;
            let mut end = None;
            let mut k = j;
            while k < code.len() {
                match code[k].text(src) {
                    "{" => {
                        depth += 1;
                    }
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            end = Some(code[k].end);
                            break;
                        }
                    }
                    ";" if depth == 0 => {
                        end = Some(code[k].end);
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            let end = end.unwrap_or(src.len());
            ranges.push((attr_start, end));
            i = k.max(i + 1);
        } else {
            i += 1;
        }
    }
    ranges
}

/// Does the attribute whose `[` is at `open` contain the bare word `test`
/// (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`)?
fn attr_mentions_test(src: &str, code: &[&Tok], open: usize) -> bool {
    let mut depth = 0i32;
    for t in &code[open..] {
        match t.text(src) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            "test" if t.kind == TokKind::Ident => return true,
            _ => {}
        }
    }
    false
}

/// Index one past the `]` closing the attribute whose `[` is at `open`.
fn skip_attr(src: &str, code: &[&Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in code.iter().enumerate().skip(open) {
        match t.text(src) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            _ => {}
        }
    }
    code.len()
}

/// Parsed `// lint: allow(rule, reason = "...")` suppressions, mapped to
/// the line they silence, plus findings for malformed ones.
struct Suppressions {
    /// line -> rules silenced on that line.
    by_line: BTreeMap<u32, Vec<String>>,
}

impl Suppressions {
    fn allows(&self, line: u32, rule: &str) -> bool {
        self.by_line
            .get(&line)
            .is_some_and(|rs| rs.iter().any(|r| r == rule))
    }
}

/// Extracts suppressions from comment tokens. A trailing comment silences
/// its own line; a standalone comment line silences the next line that
/// carries a non-comment token (stacked comments accumulate).
fn collect_suppressions(path: &str, src: &str, toks: &[Tok]) -> (Suppressions, Vec<Finding>) {
    let mut by_line: BTreeMap<u32, Vec<String>> = BTreeMap::new();
    let mut bad = Vec::new();
    for (idx, t) in toks.iter().enumerate() {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let text = t.text(src);
        let Some(rest) = text
            .trim_start_matches('/')
            .trim_start()
            .strip_prefix("lint:")
        else {
            continue;
        };
        let target_line = if line_has_code_before(src, t.start) {
            t.line
        } else {
            // Standalone: applies to the next non-comment token's line.
            toks[idx + 1..]
                .iter()
                .find(|n| !matches!(n.kind, TokKind::LineComment | TokKind::BlockComment))
                .map(|n| n.line)
                .unwrap_or(t.line)
        };
        match parse_allow(rest.trim()) {
            Ok(rule) => by_line.entry(target_line).or_default().push(rule),
            Err(msg) => bad.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: "bad-suppression",
                snippet: snippet_at(src, t.start),
                message: msg,
            }),
        }
    }
    (Suppressions { by_line }, bad)
}

/// Is there non-whitespace source before byte `pos` on its own line?
fn line_has_code_before(src: &str, pos: usize) -> bool {
    src[..pos]
        .bytes()
        .rev()
        .take_while(|&b| b != b'\n')
        .any(|b| !b.is_ascii_whitespace())
}

/// Parses `allow(rule, reason = "...")`. Returns the rule name or an error
/// message describing what is wrong.
fn parse_allow(s: &str) -> Result<String, String> {
    let Some(inner) = s
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('('))
        .and_then(|r| r.rfind(')').map(|i| &r[..i]))
    else {
        return Err(format!(
            "unparseable lint comment (expected `lint: allow(<rule>, reason = \"...\")`): `{s}`"
        ));
    };
    let Some((rule, reason_part)) = inner.split_once(',') else {
        return Err("suppression is missing `reason = \"...\"`".to_string());
    };
    let rule = rule.trim();
    if !RULE_NAMES.contains(&rule) {
        return Err(format!("unknown rule `{rule}` in suppression"));
    }
    let reason_part = reason_part.trim();
    let Some(reason) = reason_part
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim_start)
    else {
        return Err("suppression is missing `reason = \"...\"`".to_string());
    };
    let reason = reason.trim_matches('"').trim();
    if reason.is_empty() {
        return Err("suppression reason must be non-empty".to_string());
    }
    Ok(rule.to_string())
}

/// The trimmed text of the line containing byte `pos` — the baseline key.
fn snippet_at(src: &str, pos: usize) -> String {
    let start = src[..pos].rfind('\n').map(|i| i + 1).unwrap_or(0);
    let end = src[pos..].find('\n').map(|i| pos + i).unwrap_or(src.len());
    src[start..end].trim().to_string()
}

/// Lints one file's source. `path` must be workspace-relative with forward
/// slashes — rule scoping keys off it. Suppressed findings are dropped;
/// malformed suppressions surface as `bad-suppression` findings.
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    let toks = lex(src);
    let tests = test_ranges(src, &toks);
    let in_test = |pos: usize| tests.iter().any(|&(a, b)| pos >= a && pos < b);
    let (supp, mut findings) = collect_suppressions(path, src, &toks);

    let code: Vec<Tok> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .copied()
        .collect();

    let push = |rule: &'static str, tok: &Tok, message: String, findings: &mut Vec<Finding>| {
        if !supp.allows(tok.line, rule) {
            findings.push(Finding {
                file: path.to_string(),
                line: tok.line,
                rule,
                snippet: snippet_at(src, tok.start),
                message,
            });
        }
    };

    let float_eq = float_eq_applies(path);
    let hash_iter = hash_iter_applies(path);
    let lib_unwrap = lib_unwrap_applies(path);
    let wallclock = wallclock_applies(path);
    let env_knob = env_knob_applies(path);

    for (i, t) in code.iter().enumerate() {
        if in_test(t.start) {
            continue;
        }
        let text = t.text(src);
        match t.kind {
            TokKind::Punct
                if float_eq
                    && (text == "==" || text == "!=")
                    && comparison_involves_float(src, &code, i) =>
            {
                push(
                    "float-eq",
                    t,
                    format!(
                        "exact float `{text}` comparison; compare against a tolerance \
                         (e.g. `(a - b).abs() <= tol`) or suppress with the reason \
                         exactness is intended"
                    ),
                    &mut findings,
                );
            }
            TokKind::Ident if hash_iter && (text == "HashMap" || text == "HashSet") => {
                push(
                    "hash-iter-order",
                    t,
                    format!(
                        "`{text}` in an ordering-sensitive crate: iteration order is \
                         per-process random and breaks bit-identical output; use \
                         `BTreeMap`/`BTreeSet` or collect-and-sort"
                    ),
                    &mut findings,
                );
            }
            TokKind::Ident if lib_unwrap && matches!(text, "unwrap" | "expect" | "panic") => {
                let next = code.get(i + 1).map(|n| n.text(src));
                let prev = i.checked_sub(1).map(|p| code[p].text(src));
                let hit = match text {
                    "unwrap" | "expect" => prev == Some(".") && next == Some("("),
                    _ => next == Some("!"), // panic
                };
                if hit {
                    push(
                        "lib-unwrap",
                        t,
                        format!(
                            "`{text}` in library code: return a typed error, or document \
                             the invariant with `expect(\"invariant: ...\")` plus a \
                             suppression carrying the reason"
                        ),
                        &mut findings,
                    );
                }
            }
            TokKind::Ident if wallclock && text == "Instant" => {
                let is_now = code.get(i + 1).map(|n| n.text(src)) == Some("::")
                    && code.get(i + 2).map(|n| n.text(src)) == Some("now");
                if is_now {
                    push(
                        "wallclock",
                        t,
                        "`Instant::now` outside obs/bench: wall-clock reads in the \
                         decision path break replay determinism"
                            .to_string(),
                        &mut findings,
                    );
                }
            }
            TokKind::Ident if wallclock && text == "SystemTime" => {
                push(
                    "wallclock",
                    t,
                    "`SystemTime` outside obs/bench: wall-clock reads in the decision \
                     path break replay determinism"
                        .to_string(),
                    &mut findings,
                );
            }
            TokKind::Ident if env_knob && text == "env" => {
                let is_var = code.get(i + 1).map(|n| n.text(src)) == Some("::")
                    && code
                        .get(i + 2)
                        .is_some_and(|n| n.text(src).starts_with("var"));
                // `env!` / `option_env!` are compile-time and fine.
                if is_var {
                    push(
                        "env-knob",
                        t,
                        "raw `std::env::var`: route knobs through the sanctioned \
                         helpers (`wavesched_par::threads`, `wavesched_bench::\
                         try_env_usize`) so misreads fail loudly"
                            .to_string(),
                        &mut findings,
                    );
                }
            }
            _ => {}
        }
    }

    // Suppressed `bad-suppression` findings make no sense; everything else
    // was filtered at push time. Sort for stable output.
    findings.sort();
    findings
}

/// Does the `==`/`!=` at `code[i]` have a float literal (or a float
/// constant like `f64::NAN`) as either operand? Purely lexical: it cannot
/// see types, so `a == b` between two `f64` bindings is out of scope — the
/// rule catches the dominant pattern (comparison against a literal).
fn comparison_involves_float(src: &str, code: &[Tok], i: usize) -> bool {
    // Left operand: the token immediately before the operator.
    if let Some(p) = i.checked_sub(1) {
        if operand_is_float(src, code, p, true) {
            return true;
        }
    }
    // Right operand: skip unary minus / parens.
    let mut j = i + 1;
    while j < code.len() && matches!(code[j].text(src), "-" | "(") {
        j += 1;
    }
    if j < code.len() && operand_is_float(src, code, j, false) {
        return true;
    }
    false
}

const FLOAT_CONSTS: [&str; 5] = ["NAN", "INFINITY", "NEG_INFINITY", "EPSILON", "MAX"];

fn operand_is_float(src: &str, code: &[Tok], j: usize, left: bool) -> bool {
    let t = &code[j];
    match t.kind {
        TokKind::Float => true,
        TokKind::Ident => {
            // `f64::NAN`-style constants: ident preceded by `f64`/`f32` + `::`
            // on the left side, or ident followed by `::` + const on the right.
            let text = t.text(src);
            if left {
                FLOAT_CONSTS.contains(&text)
                    && j >= 2
                    && code[j - 1].text(src) == "::"
                    && matches!(code[j - 2].text(src), "f64" | "f32")
            } else {
                matches!(text, "f64" | "f32")
                    && j + 2 < code.len()
                    && code[j + 1].text(src) == "::"
                    && FLOAT_CONSTS.contains(&code[j + 2].text(src))
            }
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
        lint_source(path, src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn float_eq_scoped_to_lp_and_core() {
        let bad = "fn f(x: f64) -> bool { x == 0.0 }";
        assert_eq!(rules_hit("crates/lp/src/a.rs", bad), ["float-eq"]);
        assert_eq!(rules_hit("crates/core/src/a.rs", bad), ["float-eq"]);
        assert!(rules_hit("crates/net/src/a.rs", bad).is_empty());
        // Both operand sides and NaN constants.
        assert_eq!(
            rules_hit("crates/lp/src/a.rs", "fn f(x: f64) -> bool { 0.5 != x }"),
            ["float-eq"]
        );
        assert_eq!(
            rules_hit(
                "crates/lp/src/a.rs",
                "fn f(x: f64) -> bool { x == f64::NAN }"
            ),
            ["float-eq"]
        );
        // Integer comparison does not fire.
        assert!(rules_hit("crates/lp/src/a.rs", "fn f(x: u32) -> bool { x == 0 }").is_empty());
    }

    #[test]
    fn hash_iter_scoped_and_caught_in_bins() {
        let bad = "use std::collections::HashMap;";
        assert_eq!(rules_hit("crates/sim/src/a.rs", bad), ["hash-iter-order"]);
        assert_eq!(
            rules_hit("crates/bench/src/bin/fig9.rs", bad),
            ["hash-iter-order"]
        );
        assert!(rules_hit("crates/lp/src/a.rs", bad).is_empty());
        assert!(rules_hit("crates/net/tests/t.rs", bad).is_empty());
    }

    #[test]
    fn lib_unwrap_spares_tests_and_bins() {
        let bad = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(rules_hit("crates/net/src/a.rs", bad), ["lib-unwrap"]);
        assert!(rules_hit("crates/bench/src/bin/fig1.rs", bad).is_empty());
        assert!(rules_hit("crates/net/tests/t.rs", bad).is_empty());
        let in_test_mod = "#[cfg(test)]\nmod tests { fn g() { None::<u8>.unwrap(); } }";
        assert!(rules_hit("crates/net/src/a.rs", in_test_mod).is_empty());
        let test_fn = "#[test]\nfn t() { None::<u8>.unwrap(); }";
        assert!(rules_hit("crates/net/src/a.rs", test_fn).is_empty());
        // Code after the test module is linted again.
        let after = "#[cfg(test)]\nmod tests { }\nfn g(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(rules_hit("crates/net/src/a.rs", after), ["lib-unwrap"]);
        // unwrap_or_else is fine; panic! and expect are not.
        assert!(rules_hit(
            "crates/net/src/a.rs",
            "fn f(x: Option<u8>) -> u8 { x.unwrap_or_else(|| 0) }"
        )
        .is_empty());
        assert_eq!(
            rules_hit("crates/net/src/a.rs", "fn f() { panic!(\"boom\"); }"),
            ["lib-unwrap"]
        );
    }

    #[test]
    fn wallclock_and_env_scoping() {
        let now = "fn f() { let _t = std::time::Instant::now(); }";
        assert_eq!(rules_hit("crates/core/src/a.rs", now), ["wallclock"]);
        assert!(rules_hit("crates/obs/src/lib.rs", now).is_empty());
        assert!(rules_hit("crates/bench/src/bin/fig1.rs", now).is_empty());
        // `use std::time::Instant;` alone is fine — only `::now` is flagged.
        assert!(rules_hit("crates/core/src/a.rs", "use std::time::Instant;").is_empty());

        let env = "fn f() { let _ = std::env::var(\"X\"); }";
        assert_eq!(rules_hit("crates/core/src/a.rs", env), ["env-knob"]);
        assert!(rules_hit("crates/par/src/lib.rs", env).is_empty());
        assert!(rules_hit("crates/bench/src/lib.rs", env).is_empty());
        // Compile-time env! is fine.
        assert!(rules_hit("crates/core/src/a.rs", "const X: &str = env!(\"PATH\");").is_empty());
    }

    #[test]
    fn suppressions_silence_same_and_next_line() {
        let trailing = "fn f(x: f64) -> bool { x == 0.0 } // lint: allow(float-eq, reason = \"exact zero skip\")";
        assert!(rules_hit("crates/lp/src/a.rs", trailing).is_empty());
        let standalone = "// lint: allow(float-eq, reason = \"exact zero skip\")\nfn f(x: f64) -> bool { x == 0.0 }";
        assert!(rules_hit("crates/lp/src/a.rs", standalone).is_empty());
        // A suppression for a different rule does not silence.
        let wrong = "// lint: allow(lib-unwrap, reason = \"x\")\nfn f(x: f64) -> bool { x == 0.0 }";
        assert_eq!(rules_hit("crates/lp/src/a.rs", wrong), ["float-eq"]);
    }

    #[test]
    fn malformed_suppressions_are_findings() {
        let no_reason = "// lint: allow(float-eq)\nfn f() {}";
        assert_eq!(
            rules_hit("crates/lp/src/a.rs", no_reason),
            ["bad-suppression"]
        );
        let unknown = "// lint: allow(no-such-rule, reason = \"x\")\nfn f() {}";
        assert_eq!(
            rules_hit("crates/lp/src/a.rs", unknown),
            ["bad-suppression"]
        );
        let empty = "// lint: allow(float-eq, reason = \"\")\nfn f() {}";
        assert_eq!(rules_hit("crates/lp/src/a.rs", empty), ["bad-suppression"]);
    }

    #[test]
    fn comments_and_strings_never_fire() {
        let src =
            "// HashMap unwrap() Instant::now\nfn f() -> &'static str { \"panic!(HashMap)\" }";
        assert!(rules_hit("crates/sim/src/a.rs", src).is_empty());
    }
}
