//! The rule engine: per-rule scoping, token-pattern matching, test-code
//! detection, and inline `// lint: allow(...)` suppressions.
//!
//! Every rule encodes an invariant this workspace actually depends on (see
//! DESIGN.md "Static analysis"):
//!
//! * `float-eq` — no `==`/`!=` against float expressions in `crates/lp`
//!   and `crates/core` library code. Exact float comparison at a tolerance
//!   boundary is how two runs of the same LP diverge; use the tolerance
//!   helpers or suppress with a reason explaining why exactness is correct.
//! * `hash-iter-order` — no `HashMap`/`HashSet` in the output- and
//!   ordering-sensitive crates (`bench`, `sim`, `net`, `core`). Their
//!   iteration order is randomized per process, which breaks the
//!   bit-identical-output guarantee the moment one feeds a CSV row, a
//!   schedule, or a float reduction. Use `BTreeMap`/`BTreeSet` or sort.
//! * `lib-unwrap` — no `unwrap()` / `expect()` / `panic!` in non-test,
//!   non-binary library code. Library hot paths return typed errors;
//!   genuine invariants use `expect("invariant: ...")` plus a suppression
//!   carrying the reason.
//! * `wallclock` — no `Instant::now` / `SystemTime` outside `crates/obs`
//!   and the bench binaries. Wall-clock reads in the decision path break
//!   replay determinism.
//! * `env-knob` — no raw `std::env::var` outside the sanctioned helpers
//!   (`wavesched-par`'s `WS_THREADS` reader, `wavesched-bench`'s
//!   `try_env_usize`). Ad-hoc env reads are knobs no one can discover, and
//!   silently-misread knobs mislabel experiments.
//! * `zero-sign-clamp` — no `.max(0.0)` / `f64::max(…, 0.0)` / `.min(-0.0)`
//!   zero clamps outside `pos_or_zero` in `crates/lp`/`crates/core` library
//!   code. `f64::max` leaves the sign of a zero result unspecified, and a
//!   `-0.0` leaking into a `total_cmp`-ordered pivot sort sends debug and
//!   release builds down different degenerate paths (the PR 7 bug class).
//! * `alloc-in-hot-path` — no heap-allocating calls (`Vec::new`, `vec!`,
//!   `collect`, `to_vec`, `clone`, `Box::new`, `with_capacity`, …) inside
//!   the configured simplex hot-function list in `crates/lp`. Steady-state
//!   pivots reuse engine-owned arenas; the runtime counting-allocator test
//!   enforces this dynamically, this rule makes it visible statically.
//! * `float-sort-partial` — no `sort_by` / `max_by` / `min_by` comparator
//!   built on `partial_cmp` in the determinism-sensitive crates: NaN makes
//!   `partial_cmp` panic-or-lie territory and its zero handling differs
//!   from `total_cmp`, which is the workspace's ordering primitive.
//! * `lossy-cast` — no narrowing `as` cast (`usize`, `u32`, smaller) of a
//!   parenthesized arithmetic expression in `crates/lp`/`crates/core`
//!   library code: `(a * b + c) as u32` silently truncates on overflow;
//!   hoist the expression behind a checked or documented conversion.
//! * `bad-suppression` — a `// lint: allow(...)` comment that is malformed,
//!   names an unknown rule, or lacks a non-empty `reason = "..."`. A
//!   suppression without a reason is just a hidden violation.

use crate::lexer::{lex, Tok, TokKind};
use crate::tree::ScopeTree;
use std::collections::BTreeMap;

/// Names of all rules, in report order.
pub const RULE_NAMES: [&str; 10] = [
    "float-eq",
    "hash-iter-order",
    "lib-unwrap",
    "wallclock",
    "env-knob",
    "zero-sign-clamp",
    "alloc-in-hot-path",
    "float-sort-partial",
    "lossy-cast",
    "bad-suppression",
];

/// One-line description per rule, aligned with [`RULE_NAMES`].
pub const RULE_DESCRIPTIONS: [&str; 10] = [
    "no ==/!= against float expressions in crates/lp and crates/core library code",
    "no HashMap/HashSet in ordering-sensitive crates (bench, sim, net, core)",
    "no unwrap()/expect()/panic! in non-test, non-binary library code",
    "no Instant::now/SystemTime outside crates/obs and bench binaries",
    "no raw std::env::var outside the sanctioned par/bench helpers",
    "no .max(0.0)/f64::max(..,0.0)/.min(-0.0) zero clamps outside pos_or_zero (lp/core lib)",
    "no heap-allocating calls inside the simplex hot-function list (lp lib)",
    "no sort_by/max_by/min_by comparator built on partial_cmp (use total_cmp)",
    "no narrowing `as` cast of parenthesized arithmetic (lp/core lib)",
    "malformed or reason-less `// lint: allow(...)` comment",
];

/// The simplex hot-function list for `alloc-in-hot-path`: the pivot loop
/// and every kernel it calls per iteration. A `price_`/`ftran_`/`btran_`
/// prefix covers variants (sparse/dense twins, future pricing modes).
const HOT_FNS: [&str; 12] = [
    "pivot",
    "apply_pivot",
    "apply_bound_flip",
    "ratio_test",
    "dual_loop",
    "update_reduced_and_weights",
    "push_row_cols",
    "scan_candidates",
    "refresh_candidates",
    "price",
    "ftran",
    "btran",
];

fn is_hot_fn(name: &str) -> bool {
    HOT_FNS.contains(&name)
        || name.starts_with("price_")
        || name.starts_with("ftran_")
        || name.starts_with("btran_")
}

/// One violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (one of [`RULE_NAMES`]).
    pub rule: &'static str,
    /// The trimmed source line the finding sits on — also the baseline key.
    pub snippet: String,
    /// Human-readable explanation.
    pub message: String,
}

/// The crate a workspace-relative path belongs to, e.g. `Some("lp")` for
/// `crates/lp/src/revised.rs`; `None` for the root package and other files.
fn crate_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    rest.split('/').next()
}

/// Binary / entry-point code: `src/bin/**`, any `src/main.rs`, benches and
/// examples. The panic-freedom rule does not apply there (a CLI aborting
/// with a message is fine); the determinism rules mostly still do.
fn is_bin(path: &str) -> bool {
    path.contains("/src/bin/") || path.ends_with("src/main.rs") || is_bench_or_example(path)
}

fn is_bench_or_example(path: &str) -> bool {
    path.contains("/benches/") || path.starts_with("examples/") || path.contains("/examples/")
}

/// Integration-test code (a `tests/` directory at any crate root).
fn is_test_file(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/")
}

/// Library source: a crate's (or the root package's) `src/` tree minus
/// binary entry points.
fn is_lib_source(path: &str) -> bool {
    (path.starts_with("src/") || path.contains("/src/")) && !is_bin(path) && !is_test_file(path)
}

fn float_eq_applies(path: &str) -> bool {
    matches!(crate_of(path), Some("lp") | Some("core")) && is_lib_source(path)
}

fn hash_iter_applies(path: &str) -> bool {
    // Binaries included on purpose: the bench bins are exactly where CSV
    // rows get printed. Tests excluded (assertions don't ship output).
    matches!(
        crate_of(path),
        Some("bench") | Some("sim") | Some("net") | Some("core")
    ) && !is_test_file(path)
        && !is_bench_or_example(path)
}

fn lib_unwrap_applies(path: &str) -> bool {
    is_lib_source(path)
}

fn wallclock_applies(path: &str) -> bool {
    !matches!(crate_of(path), Some("obs") | Some("bench"))
        && !is_bench_or_example(path)
        && !is_test_file(path)
}

fn env_knob_applies(path: &str) -> bool {
    !matches!(path, "crates/par/src/lib.rs" | "crates/bench/src/lib.rs")
}

fn zero_sign_applies(path: &str) -> bool {
    matches!(crate_of(path), Some("lp") | Some("core")) && is_lib_source(path)
}

fn alloc_hot_applies(path: &str) -> bool {
    crate_of(path) == Some("lp") && is_lib_source(path)
}

fn float_sort_applies(path: &str) -> bool {
    matches!(
        crate_of(path),
        Some("lp") | Some("core") | Some("net") | Some("sim")
    ) && is_lib_source(path)
}

fn lossy_cast_applies(path: &str) -> bool {
    matches!(crate_of(path), Some("lp") | Some("core")) && is_lib_source(path)
}

/// Byte ranges of `#[cfg(test)]` items and `#[test]` functions: rules do
/// not fire inside them (unit tests unwrap and compare exactly by design).
fn test_ranges(src: &str, toks: &[Tok]) -> Vec<(usize, usize)> {
    let code: Vec<&Tok> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if code[i].text(src) == "#"
            && i + 1 < code.len()
            && code[i + 1].text(src) == "["
            && attr_mentions_test(src, &code, i + 1)
        {
            let attr_start = code[i].start;
            // Skip this attribute and any further ones, then the item body.
            let mut j = skip_attr(src, &code, i + 1);
            while j + 1 < code.len() && code[j].text(src) == "#" && code[j + 1].text(src) == "[" {
                j = skip_attr(src, &code, j + 1);
            }
            // Find the item's opening brace (or a terminating `;`).
            let mut depth = 0i32;
            let mut end = None;
            let mut k = j;
            while k < code.len() {
                match code[k].text(src) {
                    "{" => {
                        depth += 1;
                    }
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            end = Some(code[k].end);
                            break;
                        }
                    }
                    ";" if depth == 0 => {
                        end = Some(code[k].end);
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            let end = end.unwrap_or(src.len());
            ranges.push((attr_start, end));
            i = k.max(i + 1);
        } else {
            i += 1;
        }
    }
    ranges
}

/// Does the attribute whose `[` is at `open` contain the bare word `test`
/// (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`)?
fn attr_mentions_test(src: &str, code: &[&Tok], open: usize) -> bool {
    let mut depth = 0i32;
    for t in &code[open..] {
        match t.text(src) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            "test" if t.kind == TokKind::Ident => return true,
            _ => {}
        }
    }
    false
}

/// Index one past the `]` closing the attribute whose `[` is at `open`.
fn skip_attr(src: &str, code: &[&Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in code.iter().enumerate().skip(open) {
        match t.text(src) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            _ => {}
        }
    }
    code.len()
}

/// Parsed `// lint: allow(rule, reason = "...")` suppressions, mapped to
/// the line they silence, plus findings for malformed ones.
struct Suppressions {
    /// line -> rules silenced on that line.
    by_line: BTreeMap<u32, Vec<String>>,
}

impl Suppressions {
    fn allows(&self, line: u32, rule: &str) -> bool {
        self.by_line
            .get(&line)
            .is_some_and(|rs| rs.iter().any(|r| r == rule))
    }
}

/// Extracts suppressions from comment tokens. A trailing comment silences
/// its own line; a standalone comment line silences the next line that
/// carries a non-comment token (stacked comments accumulate).
fn collect_suppressions(path: &str, src: &str, toks: &[Tok]) -> (Suppressions, Vec<Finding>) {
    let mut by_line: BTreeMap<u32, Vec<String>> = BTreeMap::new();
    let mut bad = Vec::new();
    for (idx, t) in toks.iter().enumerate() {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let text = t.text(src);
        let Some(rest) = text
            .trim_start_matches('/')
            .trim_start()
            .strip_prefix("lint:")
        else {
            continue;
        };
        let target_line = if line_has_code_before(src, t.start) {
            t.line
        } else {
            // Standalone: applies to the next non-comment token's line.
            toks[idx + 1..]
                .iter()
                .find(|n| !matches!(n.kind, TokKind::LineComment | TokKind::BlockComment))
                .map(|n| n.line)
                .unwrap_or(t.line)
        };
        match parse_allow(rest.trim()) {
            Ok(rule) => by_line.entry(target_line).or_default().push(rule),
            Err(msg) => bad.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: "bad-suppression",
                snippet: snippet_at(src, t.start),
                message: msg,
            }),
        }
    }
    (Suppressions { by_line }, bad)
}

/// Is there non-whitespace source before byte `pos` on its own line?
fn line_has_code_before(src: &str, pos: usize) -> bool {
    src[..pos]
        .bytes()
        .rev()
        .take_while(|&b| b != b'\n')
        .any(|b| !b.is_ascii_whitespace())
}

/// Parses `allow(rule, reason = "...")`. Returns the rule name or an error
/// message describing what is wrong.
fn parse_allow(s: &str) -> Result<String, String> {
    let Some(inner) = s
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('('))
        .and_then(|r| r.rfind(')').map(|i| &r[..i]))
    else {
        return Err(format!(
            "unparseable lint comment (expected `lint: allow(<rule>, reason = \"...\")`): `{s}`"
        ));
    };
    let Some((rule, reason_part)) = inner.split_once(',') else {
        return Err("suppression is missing `reason = \"...\"`".to_string());
    };
    let rule = rule.trim();
    if !RULE_NAMES.contains(&rule) {
        return Err(format!("unknown rule `{rule}` in suppression"));
    }
    let reason_part = reason_part.trim();
    let Some(reason) = reason_part
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim_start)
    else {
        return Err("suppression is missing `reason = \"...\"`".to_string());
    };
    let reason = reason.trim_matches('"').trim();
    if reason.is_empty() {
        return Err("suppression reason must be non-empty".to_string());
    }
    Ok(rule.to_string())
}

/// The trimmed text of the line containing byte `pos` — the baseline key.
fn snippet_at(src: &str, pos: usize) -> String {
    let start = src[..pos].rfind('\n').map(|i| i + 1).unwrap_or(0);
    let end = src[pos..].find('\n').map(|i| pos + i).unwrap_or(src.len());
    src[start..end].trim().to_string()
}

/// Lints one file's source. `path` must be workspace-relative with forward
/// slashes — rule scoping keys off it. Suppressed findings are dropped;
/// malformed suppressions surface as `bad-suppression` findings.
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    let toks = lex(src);
    let tests = test_ranges(src, &toks);
    let in_test = |pos: usize| tests.iter().any(|&(a, b)| pos >= a && pos < b);
    let (supp, mut findings) = collect_suppressions(path, src, &toks);

    let code: Vec<Tok> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .copied()
        .collect();
    let tree = ScopeTree::build(src, &code);

    let push = |rule: &'static str, tok: &Tok, message: String, findings: &mut Vec<Finding>| {
        if !supp.allows(tok.line, rule) {
            findings.push(Finding {
                file: path.to_string(),
                line: tok.line,
                rule,
                snippet: snippet_at(src, tok.start),
                message,
            });
        }
    };

    let float_eq = float_eq_applies(path);
    let hash_iter = hash_iter_applies(path);
    let lib_unwrap = lib_unwrap_applies(path);
    let wallclock = wallclock_applies(path);
    let env_knob = env_knob_applies(path);
    let zero_sign = zero_sign_applies(path);
    let alloc_hot = alloc_hot_applies(path);
    let float_sort = float_sort_applies(path);
    let lossy_cast = lossy_cast_applies(path);

    for (i, t) in code.iter().enumerate() {
        if in_test(t.start) {
            continue;
        }
        let text = t.text(src);
        match t.kind {
            TokKind::Punct
                if float_eq
                    && (text == "==" || text == "!=")
                    && comparison_involves_float(src, &code, i) =>
            {
                push(
                    "float-eq",
                    t,
                    format!(
                        "exact float `{text}` comparison; compare against a tolerance \
                         (e.g. `(a - b).abs() <= tol`) or suppress with the reason \
                         exactness is intended"
                    ),
                    &mut findings,
                );
            }
            TokKind::Ident if hash_iter && (text == "HashMap" || text == "HashSet") => {
                push(
                    "hash-iter-order",
                    t,
                    format!(
                        "`{text}` in an ordering-sensitive crate: iteration order is \
                         per-process random and breaks bit-identical output; use \
                         `BTreeMap`/`BTreeSet` or collect-and-sort"
                    ),
                    &mut findings,
                );
            }
            TokKind::Ident if lib_unwrap && matches!(text, "unwrap" | "expect" | "panic") => {
                let next = code.get(i + 1).map(|n| n.text(src));
                let prev = i.checked_sub(1).map(|p| code[p].text(src));
                let hit = match text {
                    "unwrap" | "expect" => prev == Some(".") && next == Some("("),
                    _ => next == Some("!"), // panic
                };
                if hit {
                    push(
                        "lib-unwrap",
                        t,
                        format!(
                            "`{text}` in library code: return a typed error, or document \
                             the invariant with `expect(\"invariant: ...\")` plus a \
                             suppression carrying the reason"
                        ),
                        &mut findings,
                    );
                }
            }
            TokKind::Ident if wallclock && text == "Instant" => {
                let is_now = code.get(i + 1).map(|n| n.text(src)) == Some("::")
                    && code.get(i + 2).map(|n| n.text(src)) == Some("now");
                if is_now {
                    push(
                        "wallclock",
                        t,
                        "`Instant::now` outside obs/bench: wall-clock reads in the \
                         decision path break replay determinism"
                            .to_string(),
                        &mut findings,
                    );
                }
            }
            TokKind::Ident if wallclock && text == "SystemTime" => {
                push(
                    "wallclock",
                    t,
                    "`SystemTime` outside obs/bench: wall-clock reads in the decision \
                     path break replay determinism"
                        .to_string(),
                    &mut findings,
                );
            }
            TokKind::Ident if zero_sign && matches!(text, "max" | "min") => {
                if let Some(form) = zero_clamp_form(src, &code, i) {
                    // Scope-aware: the one function allowed to spell a zero
                    // clamp is the deterministic helper itself.
                    if tree.enclosing_fn(i) != Some("pos_or_zero") {
                        push(
                            "zero-sign-clamp",
                            t,
                            format!(
                                "`{form}` clamps against a zero whose result sign \
                                 `f64::{text}` leaves unspecified; a `-0.0` leaking into a \
                                 `total_cmp`-ordered pivot sort diverges between builds — \
                                 route through `pos_or_zero`"
                            ),
                            &mut findings,
                        );
                    }
                }
            }
            // Guard on the *form*, not just the crate: the arms of this
            // match are exclusive, and a broad guard here would swallow
            // identifiers later arms need (`as`, `env`, `Instant`, …).
            TokKind::Ident if alloc_hot && alloc_call_form(src, &code, i).is_some() => {
                if let Some(hot) = tree.enclosing_fn(i).filter(|f| is_hot_fn(f)) {
                    let hot = hot.to_string();
                    let what = alloc_call_form(src, &code, i).unwrap_or_default();
                    push(
                        "alloc-in-hot-path",
                        t,
                        format!(
                            "heap allocation (`{what}`) inside hot function `{hot}`: \
                             steady-state pivots must reuse engine-owned arenas \
                             (see crates/lp/tests/alloc.rs)"
                        ),
                        &mut findings,
                    );
                }
            }
            TokKind::Ident
                if float_sort
                    && matches!(
                        text,
                        "sort_by" | "sort_unstable_by" | "max_by" | "min_by" | "binary_search_by"
                    ) =>
            {
                let prev = i.checked_sub(1).map(|p| code[p].text(src));
                let next_open = code.get(i + 1).map(|n| n.text(src)) == Some("(");
                if prev == Some(".") && next_open {
                    if let Some(close) = matching_close(src, &code, i + 1) {
                        let uses_partial = code[i + 2..close]
                            .iter()
                            .any(|a| a.kind == TokKind::Ident && a.text(src) == "partial_cmp");
                        if uses_partial {
                            push(
                                "float-sort-partial",
                                t,
                                format!(
                                    "`{text}` comparator built on `partial_cmp`: NaN breaks \
                                     the ordering and its zero handling differs across \
                                     platforms — use `total_cmp`"
                                ),
                                &mut findings,
                            );
                        }
                    }
                }
            }
            TokKind::Ident if lossy_cast && text == "as" => {
                if let Some(ty) = narrowing_cast_of_arithmetic(src, &code, i) {
                    push(
                        "lossy-cast",
                        t,
                        format!(
                            "`as {ty}` narrowing cast of an arithmetic expression silently \
                             truncates on overflow; compute in the wide type and convert \
                             through a checked/documented conversion"
                        ),
                        &mut findings,
                    );
                }
            }
            TokKind::Ident if env_knob && text == "env" => {
                let is_var = code.get(i + 1).map(|n| n.text(src)) == Some("::")
                    && code
                        .get(i + 2)
                        .is_some_and(|n| n.text(src).starts_with("var"));
                // `env!` / `option_env!` are compile-time and fine.
                if is_var {
                    push(
                        "env-knob",
                        t,
                        "raw `std::env::var`: route knobs through the sanctioned \
                         helpers (`wavesched_par::threads`, `wavesched_bench::\
                         try_env_usize`) so misreads fail loudly"
                            .to_string(),
                        &mut findings,
                    );
                }
            }
            _ => {}
        }
    }

    // Suppressed `bad-suppression` findings make no sense; everything else
    // was filtered at push time. Sort for stable output.
    findings.sort();
    findings
}

/// Does the `==`/`!=` at `code[i]` have a float literal (or a float
/// constant like `f64::NAN`) as either operand? Purely lexical: it cannot
/// see types, so `a == b` between two `f64` bindings is out of scope — the
/// rule catches the dominant pattern (comparison against a literal).
fn comparison_involves_float(src: &str, code: &[Tok], i: usize) -> bool {
    // Left operand: the token immediately before the operator.
    if let Some(p) = i.checked_sub(1) {
        if operand_is_float(src, code, p, true) {
            return true;
        }
    }
    // Right operand: skip unary minus / parens.
    let mut j = i + 1;
    while j < code.len() && matches!(code[j].text(src), "-" | "(") {
        j += 1;
    }
    if j < code.len() && operand_is_float(src, code, j, false) {
        return true;
    }
    false
}

const FLOAT_CONSTS: [&str; 5] = ["NAN", "INFINITY", "NEG_INFINITY", "EPSILON", "MAX"];

fn operand_is_float(src: &str, code: &[Tok], j: usize, left: bool) -> bool {
    let t = &code[j];
    match t.kind {
        TokKind::Float => true,
        TokKind::Ident => {
            // `f64::NAN`-style constants: ident preceded by `f64`/`f32` + `::`
            // on the left side, or ident followed by `::` + const on the right.
            let text = t.text(src);
            if left {
                FLOAT_CONSTS.contains(&text)
                    && j >= 2
                    && code[j - 1].text(src) == "::"
                    && matches!(code[j - 2].text(src), "f64" | "f32")
            } else {
                matches!(text, "f64" | "f32")
                    && j + 2 < code.len()
                    && code[j + 1].text(src) == "::"
                    && FLOAT_CONSTS.contains(&code[j + 2].text(src))
            }
        }
        _ => false,
    }
}

/// Index of the `)` matching the `(` at `open` (same depth), if any.
fn matching_close(src: &str, code: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in code.iter().enumerate().skip(open) {
        match t.text(src) {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Index of the `(` matching the `)` at `close` (same depth), if any.
fn matching_open(src: &str, code: &[Tok], close: usize) -> Option<usize> {
    let mut depth = 0i32;
    for k in (0..=close).rev() {
        match code[k].text(src) {
            ")" => depth += 1,
            "(" => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Is the float literal token's numeric value exactly zero (`0.0`, `0.`,
/// `0f64`, `0.0_f32`, …)?
fn float_literal_is_zero(text: &str) -> bool {
    let digits: String = text.chars().filter(|c| *c != '_').collect();
    let trimmed = digits
        .strip_suffix("f64")
        .or_else(|| digits.strip_suffix("f32"))
        .unwrap_or(&digits);
    trimmed.parse::<f64>().map(|v| v == 0.0).unwrap_or(false)
}

/// Do the tokens in `code[lo..hi]` form a bare (possibly negated) float
/// zero? Returns `Some(negated)` if so.
fn bare_zero(src: &str, code: &[Tok], lo: usize, hi: usize) -> Option<bool> {
    let args = &code[lo..hi];
    match args {
        [z] if z.kind == TokKind::Float && float_literal_is_zero(z.text(src)) => Some(false),
        [m, z]
            if m.text(src) == "-"
                && z.kind == TokKind::Float
                && float_literal_is_zero(z.text(src)) =>
        {
            Some(true)
        }
        _ => None,
    }
}

/// Detects a zero clamp at the `max`/`min` ident `code[i]`: method form
/// `.max(0.0)` / `.min(-0.0)`, or qualified `f64::max(a, 0.0)` with a bare
/// zero as either argument. `max` fires on a zero of either sign (the
/// result sign is unspecified whenever the other operand can be `-0.0` or
/// the zero argument wins); `min` only on `-0.0` (clamping *up to* `-0.0`
/// manufactures negative zeros). Returns a display form for the message.
fn zero_clamp_form(src: &str, code: &[Tok], i: usize) -> Option<String> {
    let name = code[i].text(src);
    let prev = i.checked_sub(1).map(|p| code[p].text(src));
    if code.get(i + 1).map(|n| n.text(src)) != Some("(") {
        return None;
    }
    let close = matching_close(src, code, i + 1)?;
    let polarity_hit = |neg: bool| name == "max" || neg;
    if prev == Some(".") {
        let neg = bare_zero(src, code, i + 2, close)?;
        if polarity_hit(neg) {
            let sign = if neg { "-" } else { "" };
            return Some(format!(".{name}({sign}0.0)"));
        }
        return None;
    }
    if prev == Some("::") && i >= 2 && matches!(code[i - 2].text(src), "f64" | "f32") {
        // Split the two top-level arguments at the comma.
        let mut depth = 0i32;
        let mut cut = None;
        for (k, tok) in code.iter().enumerate().take(close).skip(i + 2) {
            match tok.text(src) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "," if depth == 0 => {
                    cut = Some(k);
                    break;
                }
                _ => {}
            }
        }
        let cut = cut?;
        for (lo, hi) in [(i + 2, cut), (cut + 1, close)] {
            if let Some(neg) = bare_zero(src, code, lo, hi) {
                if polarity_hit(neg) {
                    let sign = if neg { "-" } else { "" };
                    return Some(format!("{}::{name}(…, {sign}0.0)", code[i - 2].text(src)));
                }
            }
        }
    }
    None
}

/// Detects a heap-allocating call at ident `code[i]`; returns its display
/// form. Covers the constructors (`Vec::new`, `Box::new`,
/// `…::with_capacity`, `Vec::from`), the `vec!` macro, and the allocating
/// method calls (`.collect()`, `.to_vec()`, `.clone()`, …).
fn alloc_call_form(src: &str, code: &[Tok], i: usize) -> Option<String> {
    let text = code[i].text(src);
    let prev = i.checked_sub(1).map(|p| code[p].text(src));
    let next = code.get(i + 1).map(|n| n.text(src));
    if text == "vec" && next == Some("!") {
        return Some("vec!".to_string());
    }
    const ALLOC_TYPES: [&str; 7] = [
        "Vec", "Box", "String", "VecDeque", "BTreeMap", "BTreeSet", "HashMap",
    ];
    if matches!(text, "new" | "with_capacity" | "from")
        && prev == Some("::")
        && i >= 2
        && ALLOC_TYPES.contains(&code[i - 2].text(src))
    {
        return Some(format!("{}::{text}", code[i - 2].text(src)));
    }
    if matches!(
        text,
        "collect" | "to_vec" | "clone" | "cloned" | "to_owned" | "to_string"
    ) && prev == Some(".")
        && next == Some("(")
    {
        return Some(format!(".{text}()"));
    }
    None
}

/// Narrow integer targets for `lossy-cast`. `u64`/`i64`/floats are exempt
/// (the workspace's index arithmetic is done in `usize`-width or wider).
const NARROW_INTS: [&str; 8] = ["usize", "isize", "u32", "i32", "u16", "i16", "u8", "i8"];

/// Detects `( …arith… ) as <narrow>` at the `as` ident `code[i]`: the cast
/// operand is a *parenthesized group* (not a call — a token before the `(`
/// that could be a callee disqualifies it) containing a top-level binary
/// arithmetic operator. Returns the target type name.
fn narrowing_cast_of_arithmetic<'a>(src: &'a str, code: &[Tok], i: usize) -> Option<&'a str> {
    let ty = code.get(i + 1)?.text(src);
    if !NARROW_INTS.contains(&ty) {
        return None;
    }
    if i == 0 || code[i - 1].text(src) != ")" {
        return None;
    }
    let open = matching_open(src, code, i - 1)?;
    if open > 0 {
        let before = &code[open - 1];
        // `f(...)`, `x[...](...)` , `collect::<_>(...)`: a call, not a
        // grouped expression — the arithmetic inside is the callee's args.
        if before.kind == TokKind::Ident || matches!(before.text(src), ")" | "]" | ">") {
            return None;
        }
    }
    let mut depth = 0i32;
    for k in open..i - 1 {
        let t = code[k].text(src);
        match t {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "+" | "-" | "*" | "/" | "%" if depth == 1 => {
                // Binary only: a unary minus follows an opener or another
                // operator, a binary operator follows a value.
                let p = &code[k - 1];
                let binary = matches!(p.kind, TokKind::Ident | TokKind::Int | TokKind::Float)
                    || matches!(p.text(src), ")" | "]");
                if binary {
                    return Some(ty);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
        lint_source(path, src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn float_eq_scoped_to_lp_and_core() {
        let bad = "fn f(x: f64) -> bool { x == 0.0 }";
        assert_eq!(rules_hit("crates/lp/src/a.rs", bad), ["float-eq"]);
        assert_eq!(rules_hit("crates/core/src/a.rs", bad), ["float-eq"]);
        assert!(rules_hit("crates/net/src/a.rs", bad).is_empty());
        // Both operand sides and NaN constants.
        assert_eq!(
            rules_hit("crates/lp/src/a.rs", "fn f(x: f64) -> bool { 0.5 != x }"),
            ["float-eq"]
        );
        assert_eq!(
            rules_hit(
                "crates/lp/src/a.rs",
                "fn f(x: f64) -> bool { x == f64::NAN }"
            ),
            ["float-eq"]
        );
        // Integer comparison does not fire.
        assert!(rules_hit("crates/lp/src/a.rs", "fn f(x: u32) -> bool { x == 0 }").is_empty());
    }

    #[test]
    fn hash_iter_scoped_and_caught_in_bins() {
        let bad = "use std::collections::HashMap;";
        assert_eq!(rules_hit("crates/sim/src/a.rs", bad), ["hash-iter-order"]);
        assert_eq!(
            rules_hit("crates/bench/src/bin/fig9.rs", bad),
            ["hash-iter-order"]
        );
        assert!(rules_hit("crates/lp/src/a.rs", bad).is_empty());
        assert!(rules_hit("crates/net/tests/t.rs", bad).is_empty());
    }

    #[test]
    fn lib_unwrap_spares_tests_and_bins() {
        let bad = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(rules_hit("crates/net/src/a.rs", bad), ["lib-unwrap"]);
        assert!(rules_hit("crates/bench/src/bin/fig1.rs", bad).is_empty());
        assert!(rules_hit("crates/net/tests/t.rs", bad).is_empty());
        let in_test_mod = "#[cfg(test)]\nmod tests { fn g() { None::<u8>.unwrap(); } }";
        assert!(rules_hit("crates/net/src/a.rs", in_test_mod).is_empty());
        let test_fn = "#[test]\nfn t() { None::<u8>.unwrap(); }";
        assert!(rules_hit("crates/net/src/a.rs", test_fn).is_empty());
        // Code after the test module is linted again.
        let after = "#[cfg(test)]\nmod tests { }\nfn g(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(rules_hit("crates/net/src/a.rs", after), ["lib-unwrap"]);
        // unwrap_or_else is fine; panic! and expect are not.
        assert!(rules_hit(
            "crates/net/src/a.rs",
            "fn f(x: Option<u8>) -> u8 { x.unwrap_or_else(|| 0) }"
        )
        .is_empty());
        assert_eq!(
            rules_hit("crates/net/src/a.rs", "fn f() { panic!(\"boom\"); }"),
            ["lib-unwrap"]
        );
    }

    #[test]
    fn wallclock_and_env_scoping() {
        let now = "fn f() { let _t = std::time::Instant::now(); }";
        assert_eq!(rules_hit("crates/core/src/a.rs", now), ["wallclock"]);
        assert!(rules_hit("crates/obs/src/lib.rs", now).is_empty());
        assert!(rules_hit("crates/bench/src/bin/fig1.rs", now).is_empty());
        // `use std::time::Instant;` alone is fine — only `::now` is flagged.
        assert!(rules_hit("crates/core/src/a.rs", "use std::time::Instant;").is_empty());

        let env = "fn f() { let _ = std::env::var(\"X\"); }";
        assert_eq!(rules_hit("crates/core/src/a.rs", env), ["env-knob"]);
        assert!(rules_hit("crates/par/src/lib.rs", env).is_empty());
        assert!(rules_hit("crates/bench/src/lib.rs", env).is_empty());
        // Compile-time env! is fine.
        assert!(rules_hit("crates/core/src/a.rs", "const X: &str = env!(\"PATH\");").is_empty());
    }

    #[test]
    fn suppressions_silence_same_and_next_line() {
        let trailing = "fn f(x: f64) -> bool { x == 0.0 } // lint: allow(float-eq, reason = \"exact zero skip\")";
        assert!(rules_hit("crates/lp/src/a.rs", trailing).is_empty());
        let standalone = "// lint: allow(float-eq, reason = \"exact zero skip\")\nfn f(x: f64) -> bool { x == 0.0 }";
        assert!(rules_hit("crates/lp/src/a.rs", standalone).is_empty());
        // A suppression for a different rule does not silence.
        let wrong = "// lint: allow(lib-unwrap, reason = \"x\")\nfn f(x: f64) -> bool { x == 0.0 }";
        assert_eq!(rules_hit("crates/lp/src/a.rs", wrong), ["float-eq"]);
    }

    #[test]
    fn malformed_suppressions_are_findings() {
        let no_reason = "// lint: allow(float-eq)\nfn f() {}";
        assert_eq!(
            rules_hit("crates/lp/src/a.rs", no_reason),
            ["bad-suppression"]
        );
        let unknown = "// lint: allow(no-such-rule, reason = \"x\")\nfn f() {}";
        assert_eq!(
            rules_hit("crates/lp/src/a.rs", unknown),
            ["bad-suppression"]
        );
        let empty = "// lint: allow(float-eq, reason = \"\")\nfn f() {}";
        assert_eq!(rules_hit("crates/lp/src/a.rs", empty), ["bad-suppression"]);
    }

    #[test]
    fn zero_sign_clamp_scoped_by_function_and_crate() {
        let bad = "fn clamp(t: f64) -> f64 { t.max(0.0) }";
        assert_eq!(rules_hit("crates/lp/src/a.rs", bad), ["zero-sign-clamp"]);
        assert_eq!(rules_hit("crates/core/src/a.rs", bad), ["zero-sign-clamp"]);
        assert!(rules_hit("crates/net/src/a.rs", bad).is_empty());
        // The deterministic helper itself is the one allowed spelling.
        let inside = "fn pos_or_zero(t: f64) -> f64 { t.max(0.0) }";
        assert!(rules_hit("crates/lp/src/a.rs", inside).is_empty());
        // Qualified form, either argument; the literal PR 7 shape.
        assert_eq!(
            rules_hit(
                "crates/lp/src/a.rs",
                "fn f(a: f64) -> f64 { f64::max(a, 0.0) }"
            ),
            ["zero-sign-clamp"]
        );
        assert_eq!(
            rules_hit(
                "crates/lp/src/a.rs",
                "fn f() -> f64 { f64::max(-0.0, 0.0) }"
            ),
            ["zero-sign-clamp"]
        );
        // `.min(-0.0)` manufactures negative zeros; `.min(0.0)` does not.
        assert_eq!(
            rules_hit("crates/lp/src/a.rs", "fn f(t: f64) -> f64 { t.min(-0.0) }"),
            ["zero-sign-clamp"]
        );
        assert!(rules_hit("crates/lp/src/a.rs", "fn f(t: f64) -> f64 { t.min(0.0) }").is_empty());
        // Non-zero clamps are fine.
        assert!(rules_hit("crates/lp/src/a.rs", "fn f(t: f64) -> f64 { t.max(1.0) }").is_empty());
        // `f64::min` passed as a function value (no call parens) is fine.
        assert!(rules_hit(
            "crates/lp/src/a.rs",
            "fn f(v: &[f64]) -> f64 { v.iter().copied().fold(0.5, f64::min) }"
        )
        .is_empty());
    }

    #[test]
    fn alloc_in_hot_path_scoped_by_function_list() {
        // Inside a hot function: fires.
        let bad = "fn ratio_test(&self) { let v = Vec::new(); }";
        assert_eq!(rules_hit("crates/lp/src/a.rs", bad), ["alloc-in-hot-path"]);
        // Same allocation in a cold function: silent.
        let cold = "fn setup(&self) { let v = Vec::new(); }";
        assert!(rules_hit("crates/lp/src/a.rs", cold).is_empty());
        // Prefix wildcard covers kernel variants.
        let pfx = "fn ftran_entering(&mut self) { let w = x.to_vec(); }";
        assert_eq!(rules_hit("crates/lp/src/a.rs", pfx), ["alloc-in-hot-path"]);
        // Closures inside a hot fn are still inside it.
        let clo = "fn price_full(&mut self) { let f = || cols.iter().collect(); }";
        assert_eq!(rules_hit("crates/lp/src/a.rs", clo), ["alloc-in-hot-path"]);
        // Outside crates/lp: out of scope.
        assert!(rules_hit("crates/core/src/a.rs", bad).is_empty());
        // vec! and Box::new forms.
        assert_eq!(
            rules_hit(
                "crates/lp/src/a.rs",
                "fn apply_pivot(&mut self) { let v = vec![0.0; m]; }"
            ),
            ["alloc-in-hot-path"]
        );
        assert_eq!(
            rules_hit(
                "crates/lp/src/a.rs",
                "fn dual_loop(&mut self) { let b = Box::new(0); }"
            ),
            ["alloc-in-hot-path"]
        );
    }

    #[test]
    fn float_sort_partial_requires_total_cmp() {
        let bad = "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        let hits = rules_hit("crates/sim/src/a.rs", bad);
        assert!(hits.contains(&"float-sort-partial"), "{hits:?}");
        let good = "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.total_cmp(b)); }";
        assert!(rules_hit("crates/sim/src/a.rs", good).is_empty());
        // min_by / binary_search_by too; a partial_cmp *definition* (an Ord
        // impl) never fires.
        let min = "fn f(v: &[f64]) { let _ = v.iter().min_by(|a, b| a.partial_cmp(b).unwrap()); }";
        assert!(rules_hit("crates/net/src/a.rs", min).contains(&"float-sort-partial"));
        let def =
            "impl PartialOrd for S { fn partial_cmp(&self, o: &S) -> Option<Ordering> { None } }";
        assert!(rules_hit("crates/net/src/a.rs", def).is_empty());
    }

    #[test]
    fn lossy_cast_flags_grouped_arithmetic_only() {
        let bad = "fn f(i: usize, m: usize) -> u32 { (i * m + 1) as u32 }";
        assert_eq!(rules_hit("crates/lp/src/a.rs", bad), ["lossy-cast"]);
        // A plain value cast is fine; so is a call result.
        assert!(rules_hit("crates/lp/src/a.rs", "fn f(n: u64) -> u32 { n as u32 }").is_empty());
        assert!(rules_hit(
            "crates/lp/src/a.rs",
            "fn f(v: &[u8]) -> u32 { v.len() as u32 }"
        )
        .is_empty());
        // `g(a + b) as u32` is a call — the arithmetic is the callee's args.
        assert!(rules_hit(
            "crates/lp/src/a.rs",
            "fn f(a: usize, b: usize) -> u32 { g(a + b) as u32 }"
        )
        .is_empty());
        // Widening casts are exempt.
        assert!(rules_hit(
            "crates/lp/src/a.rs",
            "fn f(a: u32, b: u32) -> u64 { (a + b) as u64 }"
        )
        .is_empty());
        // Out of scope crates.
        assert!(rules_hit("crates/net/src/a.rs", bad).is_empty());
    }

    #[test]
    fn comments_and_strings_never_fire() {
        let src =
            "// HashMap unwrap() Instant::now\nfn f() -> &'static str { \"panic!(HashMap)\" }";
        assert!(rules_hit("crates/sim/src/a.rs", src).is_empty());
    }
}
