//! Brace-matched scope tree over the lexer's token stream.
//!
//! This is the v2 "structural pass": not a Rust parser, just enough
//! bookkeeping over [`crate::lexer`] output to answer, for any token,
//! *which function am I in* and *which module path am I under*. Rules use
//! it to scope findings to functions (`alloc-in-hot-path` fires only
//! inside the configured hot list; `zero-sign-clamp` is exempt inside
//! `pos_or_zero` itself).
//!
//! Mechanics: a single forward walk over the non-comment tokens maintains
//! a stack of brace scopes. An `fn name` or `mod name` header seen at the
//! current nesting becomes *pending* and is attached to the next `{` that
//! opens at header depth zero (parens/brackets inside the signature are
//! tracked so a `;` in `[u8; N]` doesn't cancel the header, and a `;` at
//! depth zero — a trait method declaration or `mod m;` — does). Every
//! other `{` (blocks, closures, `match` arms, struct literals, `use`
//! groups, macro bodies) opens an anonymous block scope, which is exactly
//! right for the queries above: a closure stays inside its enclosing
//! function.
//!
//! The walk also records brace debt — `}` without a matching `{`, and
//! scopes still open at end of input — which the workspace-wide test uses
//! to prove the lexer never mislexes a delimiter (a char literal `'{'`
//! or byte literal `b'}'` read as punctuation would show up here).

use crate::lexer::{Tok, TokKind};

/// Scope kinds distinguished by the tree. Only `Fn` and `Mod` carry names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeKind {
    /// The file itself.
    Root,
    /// A `fn` body (free function, method, or nested fn).
    Fn,
    /// An inline `mod name { … }` body.
    Mod,
    /// Any other braced region: blocks, closures, `impl`/`trait`/`struct`
    /// bodies, match arms, struct literals, macro bodies.
    Block,
}

#[derive(Debug)]
struct Scope {
    parent: u32,
    kind: ScopeKind,
    /// `fn` / `mod` name; empty for root and anonymous blocks.
    name: String,
}

/// The scope tree for one file, plus a per-token map into it.
#[derive(Debug)]
pub struct ScopeTree {
    scopes: Vec<Scope>,
    /// Innermost scope containing each code token (index-parallel to the
    /// token slice the tree was built over).
    scope_of: Vec<u32>,
    /// `}` tokens with no matching `{` (0 in well-formed input).
    extra_closers: usize,
    /// Scopes still open at end of input (0 in well-formed input).
    unclosed: usize,
}

/// Header state while between `fn name` / `mod name` and its body brace.
struct Pending {
    kind: ScopeKind,
    name: String,
    /// Paren/bracket depth accumulated inside the header signature.
    depth: u32,
}

impl ScopeTree {
    /// Builds the tree over `code`, which must be the **comment-filtered**
    /// token stream of `src` (the same filtering the rule engine applies).
    pub fn build(src: &str, code: &[Tok]) -> ScopeTree {
        let mut scopes = vec![Scope {
            parent: 0,
            kind: ScopeKind::Root,
            name: String::new(),
        }];
        let mut stack: Vec<u32> = vec![0];
        let mut scope_of = Vec::with_capacity(code.len());
        let mut pending: Option<Pending> = None;
        let mut extra_closers = 0usize;

        for (i, t) in code.iter().enumerate() {
            let top = *stack.last().unwrap_or(&0);
            scope_of.push(top);
            let text = t.text(src);
            match t.kind {
                TokKind::Ident => match text {
                    // `fn` introduces a named function header only when a
                    // name follows (`fn(u8)` is a fn-pointer type). A
                    // header already pending (e.g. `-> impl Fn…` inside a
                    // signature) is never clobbered.
                    "fn" if pending.is_none() => {
                        if let Some(next) = code.get(i + 1) {
                            if next.kind == TokKind::Ident {
                                pending = Some(Pending {
                                    kind: ScopeKind::Fn,
                                    name: next.text(src).to_string(),
                                    depth: 0,
                                });
                            }
                        }
                    }
                    "mod" if pending.is_none() => {
                        if let Some(next) = code.get(i + 1) {
                            if next.kind == TokKind::Ident {
                                pending = Some(Pending {
                                    kind: ScopeKind::Mod,
                                    name: next.text(src).to_string(),
                                    depth: 0,
                                });
                            }
                        }
                    }
                    _ => {}
                },
                TokKind::Punct => match text {
                    "(" | "[" => {
                        if let Some(p) = pending.as_mut() {
                            p.depth += 1;
                        }
                    }
                    ")" | "]" => {
                        if let Some(p) = pending.as_mut() {
                            p.depth = p.depth.saturating_sub(1);
                        }
                    }
                    // A `;` at header depth zero cancels the pending item:
                    // `mod m;`, or a trait method without a body.
                    ";" if pending.as_ref().is_some_and(|p| p.depth == 0) => {
                        pending = None;
                    }
                    "{" => {
                        let (kind, name) = match pending.take() {
                            Some(p) if p.depth == 0 => (p.kind, p.name),
                            // Brace inside a signature (`[u8; { N }]`):
                            // anonymous, header stays pending.
                            Some(p) => {
                                pending = Some(p);
                                (ScopeKind::Block, String::new())
                            }
                            None => (ScopeKind::Block, String::new()),
                        };
                        let id = scopes.len() as u32;
                        scopes.push(Scope {
                            parent: top,
                            kind,
                            name,
                        });
                        stack.push(id);
                    }
                    "}" => {
                        if stack.len() > 1 {
                            stack.pop();
                        } else {
                            extra_closers += 1;
                        }
                    }
                    _ => {}
                },
                _ => {}
            }
        }
        let unclosed = stack.len() - 1;
        ScopeTree {
            scopes,
            scope_of,
            extra_closers,
            unclosed,
        }
    }

    /// Name of the innermost enclosing `fn` of code token `i` (closures and
    /// blocks are transparent), or `None` at item level.
    pub fn enclosing_fn(&self, i: usize) -> Option<&str> {
        let mut s = *self.scope_of.get(i)?;
        loop {
            let sc = &self.scopes[s as usize];
            if sc.kind == ScopeKind::Fn {
                return Some(&sc.name);
            }
            if s == 0 {
                return None;
            }
            s = sc.parent;
        }
    }

    /// Inline-module path of code token `i` (`"a::b"`), empty at file level.
    pub fn module_path(&self, i: usize) -> String {
        let mut parts = Vec::new();
        let mut s = match self.scope_of.get(i) {
            Some(&s) => s,
            None => return String::new(),
        };
        loop {
            let sc = &self.scopes[s as usize];
            if sc.kind == ScopeKind::Mod {
                parts.push(sc.name.as_str());
            }
            if s == 0 {
                break;
            }
            s = sc.parent;
        }
        parts.reverse();
        parts.join("::")
    }

    /// Brace debt: (`}` without a `{`, scopes left open at end of input).
    /// Both are zero for every well-lexed, well-formed file — the
    /// workspace-wide test gates on it.
    pub fn brace_debt(&self) -> (usize, usize) {
        (self.extra_closers, self.unclosed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> (Vec<Tok>, ScopeTree) {
        let code: Vec<Tok> = lex(src)
            .into_iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        let t = ScopeTree::build(src, &code);
        (code, t)
    }

    fn fn_at_ident<'a>(src: &str, code: &[Tok], t: &'a ScopeTree, ident: &str) -> Option<&'a str> {
        let i = code
            .iter()
            .position(|k| k.text(src) == ident)
            .unwrap_or_else(|| panic!("ident {ident} not found"));
        t.enclosing_fn(i)
    }

    #[test]
    fn functions_and_modules_are_named() {
        let src = "mod outer { fn alpha() { let x = 1; } fn beta() { inner(); } }";
        let (code, t) = tree(src);
        assert_eq!(fn_at_ident(src, &code, &t, "x"), Some("alpha"));
        assert_eq!(fn_at_ident(src, &code, &t, "inner"), Some("beta"));
        let i = code.iter().position(|k| k.text(src) == "x").unwrap();
        assert_eq!(t.module_path(i), "outer");
        assert_eq!(t.brace_debt(), (0, 0));
    }

    #[test]
    fn closures_and_blocks_stay_inside_their_fn() {
        let src = "fn f() { let g = |a: u8| { a + 1 }; if true { nested(); } }";
        let (code, t) = tree(src);
        assert_eq!(fn_at_ident(src, &code, &t, "nested"), Some("f"));
        // The closure body too.
        let plus = code.iter().position(|k| k.text(src) == "+").unwrap();
        assert_eq!(t.enclosing_fn(plus), Some("f"));
    }

    #[test]
    fn impl_and_trait_methods_resolve_to_the_method() {
        let src = "impl<'a> Foo<'a> { fn get(&'a self) -> &'a str { self.body } }\n\
                   trait T { fn sig(&self) -> u8; fn with_default(&self) { dflt(); } }";
        let (code, t) = tree(src);
        assert_eq!(fn_at_ident(src, &code, &t, "body"), Some("get"));
        assert_eq!(fn_at_ident(src, &code, &t, "dflt"), Some("with_default"));
        assert_eq!(t.brace_debt(), (0, 0));
    }

    #[test]
    fn fn_pointer_types_and_sig_semicolons_do_not_open_scopes() {
        // `fn(u8)` is a type, not a header; `fn sig(…);` has no body; the
        // `;` inside `[u8; 3]` must not cancel the real header.
        let src = "struct S { cb: fn(u8) -> u8 }\nfn real(x: [u8; 3]) { use_it(x); }";
        let (code, t) = tree(src);
        assert_eq!(fn_at_ident(src, &code, &t, "use_it"), Some("real"));
        assert_eq!(t.brace_debt(), (0, 0));
    }

    #[test]
    fn item_level_tokens_have_no_enclosing_fn() {
        let src = "const X: f64 = 0.0; fn f() {}";
        let (code, t) = tree(src);
        let i = code.iter().position(|k| k.text(src) == "X").unwrap();
        assert_eq!(t.enclosing_fn(i), None);
    }

    #[test]
    fn nested_fns_resolve_innermost() {
        let src = "fn outer() { fn inner() { deep(); } inner(); shallow(); }";
        let (code, t) = tree(src);
        assert_eq!(fn_at_ident(src, &code, &t, "deep"), Some("inner"));
        assert_eq!(fn_at_ident(src, &code, &t, "shallow"), Some("outer"));
    }

    #[test]
    fn char_and_byte_literal_braces_do_not_unbalance() {
        // A mislexed '{' / b'}' would corrupt the tree; these must all be
        // opaque Char tokens.
        let src = "fn f(c: char) -> bool { matches!(c, '{' | '}') || c == '\\'' }\n\
                   fn g(b: u8) -> bool { b == b'{' || b == b'}' || b == b'\\'' }";
        let (_, t) = tree(src);
        assert_eq!(t.brace_debt(), (0, 0));
    }

    #[test]
    fn lifetimes_near_braces_do_not_unbalance() {
        let src = "fn f<'a>(s: &'a str) -> &'a str { let r: &'static str = \"x\"; s }\n\
                   fn g() { 'label: loop { break 'label; } }";
        let (code, t) = tree(src);
        assert_eq!(t.brace_debt(), (0, 0));
        assert_eq!(fn_at_ident(src, &code, &t, "r"), Some("f"));
    }

    #[test]
    fn brace_debt_reports_malformed_input() {
        let (_, t) = tree("fn f() { }");
        assert_eq!(t.brace_debt(), (0, 0));
        let (_, t) = tree("fn f() { ");
        assert_eq!(t.brace_debt(), (0, 1));
        let (_, t) = tree("} }");
        assert_eq!(t.brace_debt(), (2, 0));
    }
}
