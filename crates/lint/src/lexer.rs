//! A hand-rolled, comment/string/char-literal-aware Rust lexer.
//!
//! This is *not* a full Rust lexer — it produces just enough token
//! structure for the rules in [`crate::rules`] to fire only on real code:
//! comments and every string/char literal form are single opaque tokens, so
//! a `HashMap` mentioned in a doc comment or an `unwrap()` inside a string
//! never triggers a finding. Handled literal forms: line and (nested) block
//! comments, `"…"` / `b"…"` / `c"…"` with escapes, raw strings
//! `r"…"` / `r#"…"#` / `br#"…"#` with any hash depth, char and byte-char
//! literals (disambiguated from lifetimes), raw identifiers `r#ident`, and
//! int/float numeric literals with suffixes, underscores, and exponents.

/// What a token is. Rules mostly care about `Ident`, `Punct`, `Float`, and
/// the comment kinds (for suppression comments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers).
    Ident,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// Integer literal (any base, any suffix except `f32`/`f64`).
    Int,
    /// Float literal (`1.0`, `1.`, `2e-3`, `1f64`, …).
    Float,
    /// String literal of any form (`"…"`, `r#"…"#`, `b"…"`, …).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Punctuation, possibly multi-character (`==`, `::`, `..=`, …).
    Punct,
    /// `// …` comment (text includes the slashes).
    LineComment,
    /// `/* … */` comment, nesting-aware.
    BlockComment,
}

/// One token: kind plus byte span and the 1-based line it starts on.
#[derive(Debug, Clone, Copy)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based source line of `start`.
    pub line: u32,
}

impl Tok {
    /// The token's text within `src` (the same source passed to [`lex`]).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenizes `src`. Never fails: malformed input degrades to single-byte
/// punct tokens rather than aborting, so a half-edited file still lints.
pub fn lex(src: &str) -> Vec<Tok> {
    let s = src.as_bytes();
    let n = s.len();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    // Shebang line (scripts / fixtures).
    if s.starts_with(b"#!") {
        while i < n && s[i] != b'\n' {
            i += 1;
        }
    }

    while i < n {
        let start = i;
        let start_line = line;
        let c = s[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < n && s[i + 1] == b'/' => {
                while i < n && s[i] != b'\n' {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::LineComment,
                    start,
                    end: i,
                    line: start_line,
                });
            }
            b'/' if i + 1 < n && s[i + 1] == b'*' => {
                i += 2;
                let mut depth = 1usize;
                while i < n && depth > 0 {
                    if s[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if s[i] == b'/' && i + 1 < n && s[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if s[i] == b'*' && i + 1 < n && s[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::BlockComment,
                    start,
                    end: i,
                    line: start_line,
                });
            }
            b'"' => {
                i = scan_string(s, i, &mut line);
                toks.push(Tok {
                    kind: TokKind::Str,
                    start,
                    end: i,
                    line: start_line,
                });
            }
            b'\'' => {
                let (end, kind) = scan_quote(s, i);
                i = end;
                line += count_newlines(&s[start..end]);
                toks.push(Tok {
                    kind,
                    start,
                    end,
                    line: start_line,
                });
            }
            b'0'..=b'9' => {
                let (end, kind) = scan_number(s, i);
                i = end;
                toks.push(Tok {
                    kind,
                    start,
                    end,
                    line: start_line,
                });
            }
            c if is_ident_start(c) => {
                let mut j = i + 1;
                while j < n && is_ident_continue(s[j]) {
                    j += 1;
                }
                let word = &s[i..j];
                // String-literal prefixes: r"", r#""#, b"", br#""#, c"", cr"".
                let is_prefix = matches!(word, b"r" | b"b" | b"c" | b"br" | b"rb" | b"cr");
                if is_prefix && j < n && (s[j] == b'"' || s[j] == b'#') {
                    let raw = word.contains(&b'r');
                    if s[j] == b'"' {
                        i = if raw {
                            scan_raw_string(s, j, 0, &mut line)
                        } else {
                            scan_string(s, j, &mut line)
                        };
                        toks.push(Tok {
                            kind: TokKind::Str,
                            start,
                            end: i,
                            line: start_line,
                        });
                        continue;
                    }
                    // '#': raw string with hashes, or raw identifier r#foo.
                    let mut hashes = 0usize;
                    let mut k = j;
                    while k < n && s[k] == b'#' {
                        hashes += 1;
                        k += 1;
                    }
                    if raw && k < n && s[k] == b'"' {
                        i = scan_raw_string(s, k, hashes, &mut line);
                        toks.push(Tok {
                            kind: TokKind::Str,
                            start,
                            end: i,
                            line: start_line,
                        });
                        continue;
                    }
                    if word == b"r" && hashes == 1 && k < n && is_ident_start(s[k]) {
                        // Raw identifier r#foo.
                        let mut e = k + 1;
                        while e < n && is_ident_continue(s[e]) {
                            e += 1;
                        }
                        i = e;
                        toks.push(Tok {
                            kind: TokKind::Ident,
                            start,
                            end: i,
                            line: start_line,
                        });
                        continue;
                    }
                }
                if word == b"b" && j < n && s[j] == b'\'' {
                    // Byte-char literal b'x'.
                    let (end, _) = scan_quote(s, j);
                    i = end;
                    toks.push(Tok {
                        kind: TokKind::Char,
                        start,
                        end: i,
                        line: start_line,
                    });
                    continue;
                }
                i = j;
                toks.push(Tok {
                    kind: TokKind::Ident,
                    start,
                    end: i,
                    line: start_line,
                });
            }
            _ => {
                i += punct_len(&s[i..]);
                toks.push(Tok {
                    kind: TokKind::Punct,
                    start,
                    end: i,
                    line: start_line,
                });
            }
        }
    }
    toks
}

fn count_newlines(bytes: &[u8]) -> u32 {
    bytes.iter().filter(|&&b| b == b'\n').count() as u32
}

/// Scans a `"…"` string with escapes; `i` points at the opening quote.
/// Returns the offset one past the closing quote (or end of input).
fn scan_string(s: &[u8], i: usize, line: &mut u32) -> usize {
    let n = s.len();
    let mut j = i + 1;
    while j < n {
        match s[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            b'\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    n
}

/// Scans a raw string whose opening quote is at `i` with `hashes` hash
/// signs; returns the offset one past the full closing delimiter.
fn scan_raw_string(s: &[u8], i: usize, hashes: usize, line: &mut u32) -> usize {
    let n = s.len();
    let mut j = i + 1;
    while j < n {
        if s[j] == b'\n' {
            *line += 1;
            j += 1;
            continue;
        }
        if s[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < n && seen < hashes && s[k] == b'#' {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k;
            }
        }
        j += 1;
    }
    n
}

/// Disambiguates a `'` at offset `i`: char literal vs lifetime.
fn scan_quote(s: &[u8], i: usize) -> (usize, TokKind) {
    let n = s.len();
    let j = i + 1;
    if j >= n {
        return (n, TokKind::Punct);
    }
    if s[j] == b'\\' {
        // Escaped char literal: scan to the closing quote.
        let mut k = j;
        while k < n && s[k] != b'\'' {
            if s[k] == b'\\' {
                k += 2;
            } else {
                k += 1;
            }
        }
        return ((k + 1).min(n), TokKind::Char);
    }
    if is_ident_start(s[j]) {
        // `'a'` is a char, `'a` / `'static` is a lifetime.
        let mut k = j + 1;
        while k < n && is_ident_continue(s[k]) {
            k += 1;
        }
        if k < n && s[k] == b'\'' {
            return (k + 1, TokKind::Char);
        }
        return (k, TokKind::Lifetime);
    }
    // Non-identifier char literal: '(' , '0' , ' ' …
    let mut k = j;
    while k < n && s[k] != b'\'' && s[k] != b'\n' {
        k += 1;
    }
    if k < n && s[k] == b'\'' {
        (k + 1, TokKind::Char)
    } else {
        (j, TokKind::Punct)
    }
}

/// Scans a numeric literal starting at `i` (a digit). Returns (end, kind).
fn scan_number(s: &[u8], i: usize) -> (usize, TokKind) {
    let n = s.len();
    let mut j = i;
    if s[j] == b'0' && j + 1 < n && matches!(s[j + 1], b'x' | b'o' | b'b') {
        j += 2;
        while j < n && (s[j].is_ascii_alphanumeric() || s[j] == b'_') {
            j += 1;
        }
        return (j, TokKind::Int);
    }
    let mut float = false;
    while j < n && (s[j].is_ascii_digit() || s[j] == b'_') {
        j += 1;
    }
    if j < n && s[j] == b'.' {
        let after = s.get(j + 1).copied();
        match after {
            // `1..4` (range) or `1.abs()`-style method syntax: the dot is
            // not part of the number.
            Some(b'.') => {}
            Some(b) if is_ident_start(b) => {}
            // `1.0`, `1.`, `1.,` …
            _ => {
                float = true;
                j += 1;
                while j < n && (s[j].is_ascii_digit() || s[j] == b'_') {
                    j += 1;
                }
            }
        }
    }
    if j < n && matches!(s[j], b'e' | b'E') {
        // Exponent only counts with digits (or sign+digits) after it;
        // otherwise `e` starts an identifier-like suffix handled below.
        let mut k = j + 1;
        if k < n && matches!(s[k], b'+' | b'-') {
            k += 1;
        }
        if k < n && s[k].is_ascii_digit() {
            float = true;
            j = k;
            while j < n && (s[j].is_ascii_digit() || s[j] == b'_') {
                j += 1;
            }
        }
    }
    // Type suffix (`u32`, `f64`, …): an `f` suffix makes it a float.
    if j < n && is_ident_start(s[j]) {
        if s[j] == b'f' {
            float = true;
        }
        while j < n && is_ident_continue(s[j]) {
            j += 1;
        }
    }
    (j, if float { TokKind::Float } else { TokKind::Int })
}

/// Length of the punctuation token starting the slice (3, 2, or 1 bytes).
fn punct_len(s: &[u8]) -> usize {
    const THREE: [&[u8]; 4] = [b"..=", b"<<=", b">>=", b"..."];
    const TWO: [&[u8]; 18] = [
        b"==", b"!=", b"::", b"->", b"=>", b"<=", b">=", b"&&", b"||", b"+=", b"-=", b"*=", b"/=",
        b"%=", b"^=", b"&=", b"|=", b"..",
    ];
    if s.len() >= 3 && THREE.contains(&&s[..3]) {
        return 3;
    }
    if s.len() >= 2 && (TWO.contains(&&s[..2]) || matches!(&s[..2], b"<<" | b">>")) {
        return 2;
    }
    1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let src = r##"// HashMap in a comment
let s = "unwrap() inside"; /* == 0.0 nested /* deeper */ done */
let r = r#"panic!("x")"#;"##;
        let ks = kinds(src);
        assert!(ks
            .iter()
            .all(|(k, t)| !(matches!(k, TokKind::Ident) && t == "HashMap")));
        assert!(ks
            .iter()
            .all(|(k, t)| !(matches!(k, TokKind::Ident) && t == "unwrap")));
        assert_eq!(
            ks.iter().filter(|(k, _)| *k == TokKind::Str).count(),
            2,
            "{ks:?}"
        );
        assert_eq!(
            ks.iter()
                .filter(|(k, _)| *k == TokKind::BlockComment)
                .count(),
            1
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let ks = kinds(src);
        assert_eq!(
            ks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 1);
        let src2 = r"let c = '\n'; let b = b'\''; let p = '(';";
        let ks2 = kinds(src2);
        assert_eq!(ks2.iter().filter(|(k, _)| *k == TokKind::Char).count(), 3);
    }

    #[test]
    fn numbers_classify_int_vs_float() {
        let src = "let a = 1; let b = 1.0; let c = 1.; let d = 2e-3; let e = 1f64; \
                   let f = 0x1f; let g = 1_000u64; let h = 3.5f32; for i in 0..n {}";
        let ks = kinds(src);
        let floats: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokKind::Float)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, ["1.0", "1.", "2e-3", "1f64", "3.5f32"]);
        let ints: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokKind::Int)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ints, ["1", "0x1f", "1_000u64", "0"]);
    }

    #[test]
    fn multi_char_punct_is_one_token() {
        let src = "a == b; c != d; e..=f; g::h; i -> j";
        let puncts: Vec<String> = lex(src)
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text(src).to_string())
            .collect();
        assert!(puncts.contains(&"==".to_string()));
        assert!(puncts.contains(&"!=".to_string()));
        assert!(puncts.contains(&"..=".to_string()));
        assert!(puncts.contains(&"::".to_string()));
        assert!(puncts.contains(&"->".to_string()));
    }

    #[test]
    fn raw_identifiers_and_tuple_access() {
        let src = "let r#fn = x.0; let y = e.1.abs();";
        let ks = kinds(src);
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Ident && t == "r#fn"));
        // Tuple field access stays Int + dot, not a float.
        assert!(ks.iter().all(|(k, _)| *k != TokKind::Float));
    }

    #[test]
    fn quote_disambiguation_byte_chars_lifetimes_and_delimiters() {
        // Byte-char literals, including escaped quote/backslash and brace
        // payloads: each must be one opaque Char token, never punctuation.
        let src = r"let a = b'{'; let b = b'}'; let c = b'\''; let d = b'\\'; let e = b'x';";
        let ks = kinds(src);
        assert_eq!(
            ks.iter().filter(|(k, _)| *k == TokKind::Char).count(),
            5,
            "{ks:?}"
        );
        assert!(ks
            .iter()
            .all(|(k, t)| !(*k == TokKind::Punct && (t == "{" || t == "}"))));

        // Plain char literals with delimiter payloads.
        let src = "let p = '('; let q = ')'; let r = '{'; let s = '}'; let t = '\\'';";
        let ks = kinds(src);
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 5);
        assert!(ks.iter().all(|(k, t)| !(*k == TokKind::Punct
            && matches!(t.as_str(), "(" | ")" | "{" | "}"))
            || t == "="),);

        // Lifetimes hard against punctuation, loop labels, and `'_` vs `'_'`.
        let src = "fn f<'a,'b:'a>(x:&'a str,y:&'b str)->&'a str{x}\n\
                   fn g(){'outer:loop{break 'outer;}}\n\
                   fn h(c:&'_ str)->char{'_'}";
        let ks = kinds(src);
        let lifetimes: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(
            lifetimes,
            ["'a", "'b", "'a", "'a", "'b", "'a", "'outer", "'outer", "'_"]
        );
        assert_eq!(
            ks.iter().filter(|(k, _)| *k == TokKind::Char).count(),
            1,
            "only '_' is a char: {ks:?}"
        );

        // Char ranges in match arms: both endpoints are chars, `..=` is one
        // punct, and the arm braces still balance.
        let src = "fn d(c: char) -> u8 { match c { 'a'..='z' => 1, _ => 0 } }";
        let ks = kinds(src);
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Punct && t == "..="));
    }

    #[test]
    fn byte_and_raw_strings_are_opaque() {
        let src = r###"let a = b"{ not a brace }"; let b = br#"also " not { one"#; let c = r"plain raw }";"###;
        let ks = kinds(src);
        assert_eq!(
            ks.iter().filter(|(k, _)| *k == TokKind::Str).count(),
            3,
            "{ks:?}"
        );
        assert!(ks
            .iter()
            .all(|(k, t)| !(*k == TokKind::Punct && (t == "{" || t == "}"))));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nlines\"\n/* b\n */ c";
        let toks = lex(src);
        let c = toks.last().unwrap();
        assert_eq!(c.text(src), "c");
        assert_eq!(c.line, 5);
    }
}
