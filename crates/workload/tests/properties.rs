//! Property tests for workload generation and normalization.

use proptest::prelude::*;
use wavesched_net::{waxman_network, WaxmanConfig};
use wavesched_workload::{
    gb_per_wavelength_slice, normalized_demand, ArrivalModel, LinkRate, WorkloadConfig,
    WorkloadGenerator,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_jobs_respect_config(
        seed in any::<u64>(),
        n in 1usize..60,
        lo in 1.0f64..50.0,
        span in 0.0f64..100.0,
        wlo in 1.0f64..10.0,
        wspan in 0.0f64..20.0,
    ) {
        let g = waxman_network(&WaxmanConfig {
            nodes: 12,
            link_pairs: 20,
            wavelengths: 2,
            alpha: 0.15,
            seed: 1,
        });
        let cfg = WorkloadConfig {
            num_jobs: n,
            seed,
            size_gb: (lo, lo + span),
            window: (wlo, wlo + wspan),
            arrival: ArrivalModel::Batch,
            start_offset: (0.0, 2.0),
        };
        let jobs = WorkloadGenerator::new(cfg).generate(&g);
        prop_assert_eq!(jobs.len(), n);
        for (i, j) in jobs.iter().enumerate() {
            prop_assert_eq!(j.id.index(), i);
            prop_assert!(j.size_gb >= lo && j.size_gb <= lo + span + 1e-9);
            prop_assert!(j.window() >= wlo - 1e-9 && j.window() <= wlo + wspan + 1e-9);
            prop_assert!(j.arrival <= j.start && j.start <= j.end);
            prop_assert!(j.src != j.dst);
            prop_assert!(j.src.index() < g.num_nodes() && j.dst.index() < g.num_nodes());
        }
    }

    #[test]
    fn poisson_arrivals_strictly_ordered(seed in any::<u64>(), rate in 0.01f64..10.0) {
        let g = waxman_network(&WaxmanConfig {
            nodes: 6,
            link_pairs: 8,
            wavelengths: 2,
            alpha: 0.15,
            seed: 2,
        });
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: 40,
            seed,
            arrival: ArrivalModel::Poisson { rate },
            ..Default::default()
        })
        .generate(&g);
        for w in jobs.windows(2) {
            prop_assert!(w[1].arrival >= w[0].arrival);
        }
        prop_assert!(jobs[0].arrival > 0.0);
    }

    #[test]
    fn normalization_is_linear_and_consistent(
        size in 0.001f64..10_000.0,
        gbps in 0.1f64..400.0,
        w in 1u32..64,
        slice in 0.1f64..3600.0,
    ) {
        let rate = LinkRate { total_gbps: gbps, wavelengths: w };
        let unit = gb_per_wavelength_slice(rate, slice);
        prop_assert!(unit > 0.0);
        let d = normalized_demand(size, rate, slice);
        // Linear in size.
        let d2 = normalized_demand(2.0 * size, rate, slice);
        prop_assert!((d2 - 2.0 * d).abs() <= 1e-9 * d2.abs().max(1.0));
        // demand * unit == size (round trip).
        prop_assert!((d * unit - size).abs() <= 1e-9 * size.max(1.0));
        // More wavelengths at constant capacity => proportionally more units.
        let rate2 = LinkRate { total_gbps: gbps, wavelengths: 2 * w };
        let dd = normalized_demand(size, rate2, slice);
        prop_assert!((dd - 2.0 * d).abs() <= 1e-6 * dd.abs().max(1.0));
    }
}
