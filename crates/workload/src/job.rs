//! The bulk-transfer job request tuple.

use wavesched_net::NodeId;

/// Handle to a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u32);

impl JobId {
    /// Index of the job in its workload.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// A bulk-transfer request: the paper's 6-tuple
/// `(A_i, s_i, d_i, D_i, S_i, E_i)`.
///
/// All times are in *slice units*: the scheduling grid's slice length is the
/// time unit, so slice `j` covers `[j, j+1)` on the default uniform grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Job identity (`i`).
    pub id: JobId,
    /// Arrival time of the request (`A_i`).
    pub arrival: f64,
    /// Source node (`s_i`).
    pub src: NodeId,
    /// Destination node (`d_i`).
    pub dst: NodeId,
    /// Raw file size in gigabytes (`D_i` before normalization).
    pub size_gb: f64,
    /// Requested start time (`S_i >= A_i`).
    pub start: f64,
    /// Requested end time (`E_i >= S_i`).
    pub end: f64,
}

impl Job {
    /// Creates a job, validating the time ordering `A <= S <= E` and a
    /// positive size.
    ///
    /// # Panics
    /// Panics on violated invariants.
    pub fn new(
        id: JobId,
        arrival: f64,
        src: NodeId,
        dst: NodeId,
        size_gb: f64,
        start: f64,
        end: f64,
    ) -> Self {
        assert!(size_gb > 0.0, "job size must be positive");
        assert!(src != dst, "source and destination must differ");
        assert!(
            arrival <= start && start <= end,
            "job times must satisfy A <= S <= E (got {arrival}, {start}, {end})"
        );
        Job {
            id,
            arrival,
            src,
            dst,
            size_gb,
            start,
            end,
        }
    }

    /// Length of the requested transfer window, in slice units.
    pub fn window(&self) -> f64 {
        self.end - self.start
    }

    /// Returns a copy with the end time extended by the factor `1 + b`
    /// (the RET relaxation `I((1+b) E_i)` operates on this).
    pub fn with_extended_end(&self, b: f64) -> Job {
        assert!(b >= 0.0, "extension factor must be nonnegative");
        let mut j = self.clone();
        j.end = self.end * (1.0 + b);
        j
    }

    /// Returns a copy with the start-to-end window stretched by the factor
    /// `1 + b` (the alternative deadline relaxation mentioned in the
    /// paper's Section II-C remark: intervals, not absolute end times, are
    /// scaled).
    pub fn with_stretched_window(&self, b: f64) -> Job {
        assert!(b >= 0.0, "stretch factor must be nonnegative");
        let mut j = self.clone();
        j.end = self.start + (self.end - self.start) * (1.0 + b);
        j
    }

    /// Returns a copy with the size scaled by `z` (the Stage-2 demand
    /// reduction applies `Z_i < 1`).
    pub fn with_scaled_size(&self, z: f64) -> Job {
        assert!(z > 0.0, "scale must be positive");
        let mut j = self.clone();
        j.size_gb = self.size_gb * z;
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> Job {
        Job::new(JobId(0), 0.0, NodeId(0), NodeId(1), 50.0, 1.0, 9.0)
    }

    #[test]
    fn window_and_scaling() {
        let j = mk();
        assert_eq!(j.window(), 8.0);
        let e = j.with_extended_end(0.5);
        assert!((e.end - 13.5).abs() < 1e-12);
        assert_eq!(e.start, j.start);
        let s = j.with_scaled_size(0.5);
        assert!((s.size_gb - 25.0).abs() < 1e-12);
    }

    #[test]
    fn window_stretch() {
        let j = mk(); // start 1, end 9, window 8
        let w = j.with_stretched_window(0.5);
        assert_eq!(w.start, 1.0);
        assert!((w.end - 13.0).abs() < 1e-12); // 1 + 8 * 1.5
        assert!((w.window() - 12.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "A <= S <= E")]
    fn bad_times_panic() {
        Job::new(JobId(0), 5.0, NodeId(0), NodeId(1), 1.0, 1.0, 9.0);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn same_endpoints_panic() {
        Job::new(JobId(0), 0.0, NodeId(0), NodeId(0), 1.0, 1.0, 9.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_panics() {
        Job::new(JobId(0), 0.0, NodeId(0), NodeId(1), 0.0, 1.0, 9.0);
    }
}
