//! Workload traces: CSV persistence for job lists.
//!
//! Lets experiments be pinned to an exact request sequence (rather than a
//! generator seed), and lets real request logs be replayed. The format is
//! one header line plus one line per job:
//!
//! ```text
//! id,arrival,src,dst,size_gb,start,end
//! 0,0.0,3,7,42.5,0.0,12.0
//! ```
//!
//! `src`/`dst` are node indices into the target network's node order.

use crate::job::{Job, JobId};
use std::fmt::Write as _;
use wavesched_net::{Graph, NodeId};

/// Error type for trace parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

/// Header written/expected by this module.
pub const HEADER: &str = "id,arrival,src,dst,size_gb,start,end";

/// Serializes jobs to the CSV trace format.
pub fn write_trace(jobs: &[Job]) -> String {
    let mut out = String::with_capacity(32 * (jobs.len() + 1));
    out.push_str(HEADER);
    out.push('\n');
    for j in jobs {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{}",
            j.id.0, j.arrival, j.src.0, j.dst.0, j.size_gb, j.start, j.end
        );
    }
    out
}

/// Parses a CSV trace, validating node indices against `g` and the job
/// invariants (`A <= S <= E`, positive size, distinct endpoints).
pub fn parse_trace(text: &str, g: &Graph) -> Result<Vec<Job>, TraceError> {
    let mut jobs = Vec::new();
    let mut lines = text.lines().enumerate();

    // Header (tolerate surrounding whitespace and BOM).
    let header = loop {
        match lines.next() {
            Some((i, l)) => {
                let t = l.trim_start_matches('\u{feff}').trim();
                if t.is_empty() || t.starts_with('#') {
                    continue;
                }
                break (i, t);
            }
            None => {
                return Err(TraceError {
                    line: 0,
                    message: "empty trace".into(),
                })
            }
        }
    };
    if header.1 != HEADER {
        return Err(TraceError {
            line: header.0 + 1,
            message: format!("bad header {:?}, expected {HEADER:?}", header.1),
        });
    }

    for (i, l) in lines {
        let line = i + 1;
        let t = l.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = t.split(',').map(str::trim).collect();
        if fields.len() != 7 {
            return Err(TraceError {
                line,
                message: format!("expected 7 fields, got {}", fields.len()),
            });
        }
        let err = |message: String| TraceError { line, message };
        let id: u32 = fields[0]
            .parse()
            .map_err(|_| err(format!("bad id {:?}", fields[0])))?;
        let num = |k: usize, name: &str| -> Result<f64, TraceError> {
            fields[k]
                .parse::<f64>()
                .map_err(|_| err(format!("bad {name} {:?}", fields[k])))
        };
        let arrival = num(1, "arrival")?;
        let src: u32 = fields[2]
            .parse()
            .map_err(|_| err(format!("bad src {:?}", fields[2])))?;
        let dst: u32 = fields[3]
            .parse()
            .map_err(|_| err(format!("bad dst {:?}", fields[3])))?;
        let size_gb = num(4, "size_gb")?;
        let start = num(5, "start")?;
        let end = num(6, "end")?;

        if (src as usize) >= g.num_nodes() || (dst as usize) >= g.num_nodes() {
            return Err(err(format!(
                "node index out of range (network has {} nodes)",
                g.num_nodes()
            )));
        }
        if src == dst {
            return Err(err("src == dst".into()));
        }
        if size_gb <= 0.0 || size_gb.is_nan() {
            return Err(err(format!("non-positive size {size_gb}")));
        }
        if !(arrival <= start && start <= end) {
            return Err(err(format!(
                "times must satisfy A <= S <= E, got {arrival}, {start}, {end}"
            )));
        }
        jobs.push(Job::new(
            JobId(id),
            arrival,
            NodeId(src),
            NodeId(dst),
            size_gb,
            start,
            end,
        ));
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{WorkloadConfig, WorkloadGenerator};
    use wavesched_net::abilene14;

    #[test]
    fn roundtrip() {
        let (g, _) = abilene14(4);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: 25,
            seed: 7,
            ..Default::default()
        })
        .generate(&g);
        let text = write_trace(&jobs);
        let back = parse_trace(&text, &g).unwrap();
        assert_eq!(jobs, back);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let (g, _) = abilene14(4);
        let text = format!("# a comment\n\n{HEADER}\n# another\n0,0,0,1,5,0,4\n\n");
        let jobs = parse_trace(&text, &g).unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].size_gb, 5.0);
    }

    #[test]
    fn rejects_bad_header() {
        let (g, _) = abilene14(4);
        let e = parse_trace("id,nope\n", &g).unwrap_err();
        assert!(e.message.contains("bad header"));
    }

    #[test]
    fn rejects_out_of_range_node() {
        let (g, _) = abilene14(4);
        let text = format!("{HEADER}\n0,0,0,99,5,0,4\n");
        let e = parse_trace(&text, &g).unwrap_err();
        assert!(e.message.contains("out of range"));
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_bad_times_and_sizes() {
        let (g, _) = abilene14(4);
        let text = format!("{HEADER}\n0,5,0,1,5,0,4\n");
        assert!(parse_trace(&text, &g).is_err()); // arrival > start
        let text = format!("{HEADER}\n0,0,0,1,-5,0,4\n");
        assert!(parse_trace(&text, &g).is_err()); // negative size
        let text = format!("{HEADER}\n0,0,0,1,5,0\n");
        assert!(parse_trace(&text, &g).is_err()); // missing field
        let text = format!("{HEADER}\n0,0,0,1,5,0,abc\n");
        let e = parse_trace(&text, &g).unwrap_err();
        assert!(e.message.contains("bad end"));
    }

    #[test]
    fn empty_trace_error() {
        let (g, _) = abilene14(4);
        assert!(parse_trace("", &g).is_err());
        // Header only is a valid empty workload.
        let jobs = parse_trace(&format!("{HEADER}\n"), &g).unwrap();
        assert!(jobs.is_empty());
    }
}
