//! Workload traces: CSV persistence for job lists.
//!
//! Lets experiments be pinned to an exact request sequence (rather than a
//! generator seed), and lets real request logs be replayed. The format is
//! one header line plus one line per job:
//!
//! ```text
//! id,arrival,src,dst,size_gb,start,end
//! 0,0.0,3,7,42.5,0.0,12.0
//! ```
//!
//! `src`/`dst` are node indices into the target network's node order.
//!
//! Two entry points share one validator: [`TraceReader`] parses records
//! line by line from any [`BufRead`] — a million-job replay never holds
//! more than one line and one [`Job`] in memory — and [`parse_trace`]
//! collects a full in-memory string through the same reader, so both
//! report identical [`TraceError`] line numbers.

use crate::job::{Job, JobId};
use std::io::BufRead;
use wavesched_net::{Graph, NodeId};

/// Error type for trace parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

/// Header written/expected by this module.
pub const HEADER: &str = "id,arrival,src,dst,size_gb,start,end";

fn write_row(out: &mut impl std::fmt::Write, j: &Job) {
    let _ = writeln!(
        out,
        "{},{},{},{},{},{},{}",
        j.id.0, j.arrival, j.src.0, j.dst.0, j.size_gb, j.start, j.end
    );
}

/// A byte-counting `fmt::Write` sink for the sizing pass of
/// [`write_trace`].
struct CountingWriter(usize);

impl std::fmt::Write for CountingWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.0 += s.len();
        Ok(())
    }
}

/// Serializes jobs to the CSV trace format.
///
/// Two passes: a formatting dry-run measures the exact output length, then
/// the string is built in a buffer of exactly that capacity — the write
/// path never reallocates, regardless of how wide the ids and times print.
pub fn write_trace(jobs: &[Job]) -> String {
    let mut measure = CountingWriter(HEADER.len() + 1);
    for j in jobs {
        write_row(&mut measure, j);
    }
    let mut out = String::with_capacity(measure.0);
    out.push_str(HEADER);
    out.push('\n');
    for j in jobs {
        write_row(&mut out, j);
    }
    debug_assert_eq!(out.len(), measure.0, "sizing pass disagrees with write");
    out
}

/// Validates and parses one record line (already trimmed, non-empty,
/// non-comment). `line` is 1-based for error reporting.
fn parse_record(line: usize, t: &str, num_nodes: usize) -> Result<Job, TraceError> {
    let mut fields = [""; 7];
    let mut n = 0usize;
    for f in t.split(',') {
        if n == 7 {
            n += 1;
            break;
        }
        fields[n] = f.trim();
        n += 1;
    }
    if n != 7 {
        return Err(TraceError {
            line,
            message: format!(
                "expected 7 fields, got {}",
                if n > 7 { t.split(',').count() } else { n }
            ),
        });
    }
    let err = |message: String| TraceError { line, message };
    let id: u32 = fields[0]
        .parse()
        .map_err(|_| err(format!("bad id {:?}", fields[0])))?;
    let num = |k: usize, name: &str| -> Result<f64, TraceError> {
        fields[k]
            .parse::<f64>()
            .map_err(|_| err(format!("bad {name} {:?}", fields[k])))
    };
    let arrival = num(1, "arrival")?;
    let src: u32 = fields[2]
        .parse()
        .map_err(|_| err(format!("bad src {:?}", fields[2])))?;
    let dst: u32 = fields[3]
        .parse()
        .map_err(|_| err(format!("bad dst {:?}", fields[3])))?;
    let size_gb = num(4, "size_gb")?;
    let start = num(5, "start")?;
    let end = num(6, "end")?;

    if (src as usize) >= num_nodes || (dst as usize) >= num_nodes {
        return Err(err(format!(
            "node index out of range (network has {num_nodes} nodes)"
        )));
    }
    if src == dst {
        return Err(err("src == dst".into()));
    }
    if size_gb <= 0.0 || size_gb.is_nan() {
        return Err(err(format!("non-positive size {size_gb}")));
    }
    if !(arrival <= start && start <= end) {
        return Err(err(format!(
            "times must satisfy A <= S <= E, got {arrival}, {start}, {end}"
        )));
    }
    Ok(Job::new(
        JobId(id),
        arrival,
        NodeId(src),
        NodeId(dst),
        size_gb,
        start,
        end,
    ))
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReaderState {
    /// Still looking for the header line.
    Header,
    /// Header consumed; yielding records.
    Records,
    /// EOF or error reached; the iterator is exhausted.
    Done,
}

/// Streaming trace parser: an iterator of `Result<Job, TraceError>` over
/// any [`BufRead`] source.
///
/// Performs exactly the validation of [`parse_trace`] with the same
/// 1-based error line numbers — [`parse_trace`] *is* this reader plus a
/// `collect` — while holding only one line buffer regardless of trace
/// length. The first error ends the stream (subsequent `next` calls return
/// `None`).
pub struct TraceReader<R> {
    reader: R,
    num_nodes: usize,
    /// 1-based number of the last line read.
    line: usize,
    buf: String,
    state: ReaderState,
}

impl<R: BufRead> TraceReader<R> {
    /// Creates a reader validating node indices against `g`.
    pub fn new(reader: R, g: &Graph) -> Self {
        TraceReader {
            reader,
            num_nodes: g.num_nodes(),
            line: 0,
            buf: String::new(),
            state: ReaderState::Header,
        }
    }
}

impl<R: BufRead> Iterator for TraceReader<R> {
    type Item = Result<Job, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.state == ReaderState::Done {
                return None;
            }
            self.buf.clear();
            let n = match self.reader.read_line(&mut self.buf) {
                Ok(n) => n,
                Err(e) => {
                    self.state = ReaderState::Done;
                    return Some(Err(TraceError {
                        line: self.line + 1,
                        message: format!("read error: {e}"),
                    }));
                }
            };
            if n == 0 {
                // EOF. A trace that never produced a header is an error, as
                // in the in-memory parser.
                let missing_header = self.state == ReaderState::Header;
                self.state = ReaderState::Done;
                if missing_header {
                    return Some(Err(TraceError {
                        line: 0,
                        message: "empty trace".into(),
                    }));
                }
                return None;
            }
            self.line += 1;
            let t = self.buf.trim_start_matches('\u{feff}').trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            if self.state == ReaderState::Header {
                if t != HEADER {
                    self.state = ReaderState::Done;
                    return Some(Err(TraceError {
                        line: self.line,
                        message: format!("bad header {t:?}, expected {HEADER:?}"),
                    }));
                }
                self.state = ReaderState::Records;
                continue;
            }
            let rec = parse_record(self.line, t, self.num_nodes);
            if rec.is_err() {
                self.state = ReaderState::Done;
            }
            return Some(rec);
        }
    }
}

/// Parses a CSV trace, validating node indices against `g` and the job
/// invariants (`A <= S <= E`, positive size, distinct endpoints).
///
/// A collect-wrapper around [`TraceReader`]; the output vector is
/// pre-sized from the text's line count so the parse path performs one
/// jobs allocation.
pub fn parse_trace(text: &str, g: &Graph) -> Result<Vec<Job>, TraceError> {
    // One job per line at most; the header accounts for the -1.
    let lines = text.as_bytes().iter().filter(|&&b| b == b'\n').count() + 1;
    let mut jobs = Vec::with_capacity(lines.saturating_sub(1));
    for rec in TraceReader::new(text.as_bytes(), g) {
        jobs.push(rec?);
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{WorkloadConfig, WorkloadGenerator};
    use wavesched_net::abilene14;

    #[test]
    fn roundtrip() {
        let (g, _) = abilene14(4);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: 25,
            seed: 7,
            ..Default::default()
        })
        .generate(&g);
        let text = write_trace(&jobs);
        let back = parse_trace(&text, &g).unwrap();
        assert_eq!(jobs, back);
    }

    #[test]
    fn write_path_never_reallocates() {
        // The sizing pass must be exact: the output fills its initial
        // capacity to the byte (a reallocation would leave the usual
        // doubling headroom behind).
        let (g, _) = abilene14(4);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: 200,
            seed: 11,
            ..Default::default()
        })
        .generate(&g);
        let text = write_trace(&jobs);
        assert_eq!(text.len(), text.capacity());
        // And it still round-trips.
        assert_eq!(parse_trace(&text, &g).unwrap(), jobs);
    }

    #[test]
    fn streaming_matches_in_memory() {
        let (g, _) = abilene14(4);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: 40,
            seed: 13,
            ..Default::default()
        })
        .generate(&g);
        let text = write_trace(&jobs);
        let streamed: Result<Vec<Job>, TraceError> =
            TraceReader::new(text.as_bytes(), &g).collect();
        assert_eq!(streamed.unwrap(), jobs);
    }

    #[test]
    fn streaming_error_line_numbers_match() {
        let (g, _) = abilene14(4);
        for bad in [
            format!("{HEADER}\n0,0,0,99,5,0,4\n"), // bad node, line 2
            format!("# c\n\n{HEADER}\n# x\n0,5,0,1,5,0,4\n"), // bad times, line 5
            format!("{HEADER}\n0,0,0,1,5,0,4\nnot,a,row\n"), // line 3
            "id,nope\n".to_string(),               // bad header, line 1
            String::new(),                         // empty trace, line 0
        ] {
            let want = parse_trace(&bad, &g).unwrap_err();
            let got = TraceReader::new(bad.as_bytes(), &g)
                .find_map(|r| r.err())
                .expect("streaming reader must surface the same error");
            assert_eq!(got, want, "trace {bad:?}");
        }
    }

    #[test]
    fn streaming_stops_after_error() {
        let (g, _) = abilene14(4);
        let text = format!("{HEADER}\nbad\n0,0,0,1,5,0,4\n");
        let items: Vec<_> = TraceReader::new(text.as_bytes(), &g).collect();
        assert_eq!(items.len(), 1, "stream must end at the first error");
        assert!(items[0].is_err());
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let (g, _) = abilene14(4);
        let text = format!("# a comment\n\n{HEADER}\n# another\n0,0,0,1,5,0,4\n\n");
        let jobs = parse_trace(&text, &g).unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].size_gb, 5.0);
    }

    #[test]
    fn rejects_bad_header() {
        let (g, _) = abilene14(4);
        let e = parse_trace("id,nope\n", &g).unwrap_err();
        assert!(e.message.contains("bad header"));
    }

    #[test]
    fn rejects_out_of_range_node() {
        let (g, _) = abilene14(4);
        let text = format!("{HEADER}\n0,0,0,99,5,0,4\n");
        let e = parse_trace(&text, &g).unwrap_err();
        assert!(e.message.contains("out of range"));
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_bad_times_and_sizes() {
        let (g, _) = abilene14(4);
        let text = format!("{HEADER}\n0,5,0,1,5,0,4\n");
        assert!(parse_trace(&text, &g).is_err()); // arrival > start
        let text = format!("{HEADER}\n0,0,0,1,-5,0,4\n");
        assert!(parse_trace(&text, &g).is_err()); // negative size
        let text = format!("{HEADER}\n0,0,0,1,5,0\n");
        assert!(parse_trace(&text, &g).is_err()); // missing field
        let text = format!("{HEADER}\n0,0,0,1,5,0,abc\n");
        let e = parse_trace(&text, &g).unwrap_err();
        assert!(e.message.contains("bad end"));
    }

    #[test]
    fn rejects_too_many_fields() {
        let (g, _) = abilene14(4);
        let text = format!("{HEADER}\n0,0,0,1,5,0,4,9\n");
        let e = parse_trace(&text, &g).unwrap_err();
        assert!(e.message.contains("expected 7 fields, got 8"), "{e}");
    }

    #[test]
    fn empty_trace_error() {
        let (g, _) = abilene14(4);
        assert!(parse_trace("", &g).is_err());
        // Header only is a valid empty workload.
        let jobs = parse_trace(&format!("{HEADER}\n"), &g).unwrap();
        assert!(jobs.is_empty());
    }
}
