//! Seeded random workload generation.
//!
//! Matches the paper's evaluation setup: job sizes uniform on [1, 100] GB,
//! uniformly random distinct (source, destination) pairs. The paper does
//! not state the start/end-window distribution; the defaults here (batch
//! arrivals at time 0, window lengths uniform on [8, 24] slices) are chosen
//! so instances straddle the overloaded regime (`Z* ≲ 1`) the paper studies,
//! and are recorded per experiment in EXPERIMENTS.md.

use crate::job::{Job, JobId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use wavesched_net::{Graph, NodeId};

/// When job requests arrive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// All requests known at time 0 — one scheduling instance, as in the
    /// paper's Figs. 1–4.
    Batch,
    /// Poisson arrivals with the given rate (requests per slice unit), for
    /// the periodic-controller simulations.
    Poisson {
        /// Mean arrivals per slice unit.
        rate: f64,
    },
}

/// Parameters for [`WorkloadGenerator`].
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of jobs to generate.
    pub num_jobs: usize,
    /// RNG seed.
    pub seed: u64,
    /// Job size range in GB, inclusive (paper: `[1, 100]`).
    pub size_gb: (f64, f64),
    /// Arrival process.
    pub arrival: ArrivalModel,
    /// Offset of the requested start after arrival, in slices (uniform).
    pub start_offset: (f64, f64),
    /// Window length `E_i - S_i` in slices (uniform).
    pub window: (f64, f64),
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            num_jobs: 50,
            seed: 0,
            size_gb: (1.0, 100.0),
            arrival: ArrivalModel::Batch,
            start_offset: (0.0, 0.0),
            window: (8.0, 24.0),
        }
    }
}

/// Deterministic workload generator over a network's nodes.
#[derive(Debug)]
pub struct WorkloadGenerator {
    cfg: WorkloadConfig,
    rng: StdRng,
}

impl WorkloadGenerator {
    /// Creates a generator for the given configuration.
    pub fn new(cfg: WorkloadConfig) -> Self {
        assert!(cfg.size_gb.0 > 0.0 && cfg.size_gb.0 <= cfg.size_gb.1);
        assert!(cfg.start_offset.0 >= 0.0 && cfg.start_offset.0 <= cfg.start_offset.1);
        assert!(cfg.window.0 > 0.0 && cfg.window.0 <= cfg.window.1);
        let rng = StdRng::seed_from_u64(cfg.seed);
        WorkloadGenerator { cfg, rng }
    }

    /// Generates the configured number of jobs over the nodes of `g`.
    pub fn generate(&mut self, g: &Graph) -> Vec<Job> {
        let nodes: Vec<NodeId> = g.nodes().collect();
        assert!(nodes.len() >= 2, "need at least two nodes");
        let mut jobs = Vec::with_capacity(self.cfg.num_jobs);
        let mut clock = 0.0_f64;
        for i in 0..self.cfg.num_jobs {
            jobs.push(self.gen_one(&nodes, i, &mut clock));
        }
        jobs
    }

    /// Turns the generator into a lazily-evaluated job stream over the
    /// nodes of `g`, producing exactly the sequence [`generate`] would —
    /// same seed, same jobs — one at a time.
    ///
    /// [`generate`]: WorkloadGenerator::generate
    pub fn stream(self, g: &Graph) -> JobStream {
        let nodes: Vec<NodeId> = g.nodes().collect();
        assert!(nodes.len() >= 2, "need at least two nodes");
        JobStream {
            generator: self,
            nodes,
            clock: 0.0,
            next: 0,
        }
    }

    /// Draws job `i`. The per-job RNG consumption order is the sequence
    /// contract shared by [`generate`](WorkloadGenerator::generate) and
    /// [`JobStream`]: arrival uniform (Poisson only), src, dst (rejection
    /// loop), size, start offset, window.
    fn gen_one(&mut self, nodes: &[NodeId], i: usize, clock: &mut f64) -> Job {
        let arrival = match self.cfg.arrival {
            ArrivalModel::Batch => 0.0,
            ArrivalModel::Poisson { rate } => {
                assert!(rate > 0.0, "Poisson rate must be positive");
                // Exponential inter-arrival via inverse transform.
                let u: f64 = self.rng.random_range(f64::MIN_POSITIVE..1.0);
                *clock += -u.ln() / rate;
                *clock
            }
        };
        let src = nodes[self.rng.random_range(0..nodes.len())];
        let dst = loop {
            let d = nodes[self.rng.random_range(0..nodes.len())];
            if d != src {
                break d;
            }
        };
        let size_gb = self
            .rng
            .random_range(self.cfg.size_gb.0..=self.cfg.size_gb.1);
        let start = arrival + self.uniform(self.cfg.start_offset);
        let end = start + self.uniform(self.cfg.window);
        Job::new(JobId(i as u32), arrival, src, dst, size_gb, start, end)
    }

    fn uniform(&mut self, (lo, hi): (f64, f64)) -> f64 {
        if lo == hi {
            lo
        } else {
            self.rng.random_range(lo..=hi)
        }
    }
}

/// A lazily-evaluated workload: yields the jobs of
/// [`WorkloadGenerator::generate`] one at a time, so a million-job replay
/// never materializes the full trace.
///
/// Created by [`WorkloadGenerator::stream`].
#[derive(Debug)]
pub struct JobStream {
    generator: WorkloadGenerator,
    nodes: Vec<NodeId>,
    clock: f64,
    next: usize,
}

impl Iterator for JobStream {
    type Item = Job;

    fn next(&mut self) -> Option<Job> {
        if self.next >= self.generator.cfg.num_jobs {
            return None;
        }
        let i = self.next;
        self.next += 1;
        let mut clock = self.clock;
        let job = self.generator.gen_one(&self.nodes, i, &mut clock);
        self.clock = clock;
        Some(job)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.generator.cfg.num_jobs - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for JobStream {}

#[cfg(test)]
mod tests {
    use super::*;
    use wavesched_net::abilene14;

    fn gen_jobs(cfg: WorkloadConfig) -> Vec<Job> {
        let (g, _) = abilene14(4);
        WorkloadGenerator::new(cfg).generate(&g)
    }

    #[test]
    fn batch_defaults() {
        let jobs = gen_jobs(WorkloadConfig::default());
        assert_eq!(jobs.len(), 50);
        for j in &jobs {
            assert_eq!(j.arrival, 0.0);
            assert!(j.size_gb >= 1.0 && j.size_gb <= 100.0);
            assert!(j.window() >= 8.0 && j.window() <= 24.0);
            assert_ne!(j.src, j.dst);
            assert!(j.arrival <= j.start && j.start <= j.end);
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let a = gen_jobs(WorkloadConfig {
            seed: 9,
            ..Default::default()
        });
        let b = gen_jobs(WorkloadConfig {
            seed: 9,
            ..Default::default()
        });
        assert_eq!(a, b);
        let c = gen_jobs(WorkloadConfig {
            seed: 10,
            ..Default::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_arrivals_increase() {
        let jobs = gen_jobs(WorkloadConfig {
            num_jobs: 30,
            arrival: ArrivalModel::Poisson { rate: 0.5 },
            ..Default::default()
        });
        for w in jobs.windows(2) {
            assert!(w[1].arrival >= w[0].arrival, "arrivals must be monotone");
        }
        assert!(jobs.last().unwrap().arrival > 0.0);
    }

    #[test]
    fn poisson_mean_roughly_matches_rate() {
        let jobs = gen_jobs(WorkloadConfig {
            num_jobs: 2000,
            arrival: ArrivalModel::Poisson { rate: 2.0 },
            ..Default::default()
        });
        let span = jobs.last().unwrap().arrival;
        let rate = jobs.len() as f64 / span;
        assert!(
            (rate - 2.0).abs() < 0.2,
            "empirical rate {rate} far from 2.0"
        );
    }

    #[test]
    fn stream_matches_generate() {
        let (g, _) = abilene14(4);
        for arrival in [ArrivalModel::Batch, ArrivalModel::Poisson { rate: 1.5 }] {
            let cfg = WorkloadConfig {
                num_jobs: 120,
                seed: 42,
                arrival,
                start_offset: (1.0, 3.0),
                ..Default::default()
            };
            let batch = WorkloadGenerator::new(cfg.clone()).generate(&g);
            let stream = WorkloadGenerator::new(cfg).stream(&g);
            assert_eq!(stream.len(), 120);
            let streamed: Vec<Job> = stream.collect();
            assert_eq!(streamed, batch, "stream must replay generate ({arrival:?})");
        }
    }

    #[test]
    fn stream_is_exhausted_after_num_jobs() {
        let (g, _) = abilene14(4);
        let mut s = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: 3,
            ..Default::default()
        })
        .stream(&g);
        assert_eq!(s.by_ref().count(), 3);
        assert!(s.next().is_none());
    }

    #[test]
    fn start_offsets_respected() {
        let jobs = gen_jobs(WorkloadConfig {
            start_offset: (2.0, 5.0),
            ..Default::default()
        });
        for j in &jobs {
            let off = j.start - j.arrival;
            assert!((2.0..=5.0).contains(&off));
        }
    }
}
