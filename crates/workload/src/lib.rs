//! # wavesched-workload — bulk-transfer job model and generators
//!
//! The paper models each request as a 6-tuple `(A_i, s_i, d_i, D_i, S_i,
//! E_i)`: arrival time, source, destination, size, requested start time and
//! requested end time. This crate provides:
//!
//! * [`Job`] — the request tuple, with times in *slice units* (the length of
//!   one scheduling time slice is the time unit).
//! * [`normalize`] — conversion of gigabyte file sizes into the normalized
//!   demand units used by the integer programs (wavelength·slices), given
//!   the per-wavelength data rate and the slice length.
//! * [`generator`] — seeded random workloads matching the paper's setup
//!   (sizes uniform on [1, 100] GB, random source/destination pairs,
//!   Poisson or batch arrivals).

#![warn(missing_docs)]

pub mod generator;
pub mod job;
pub mod normalize;
pub mod trace;

pub use generator::{ArrivalModel, JobStream, WorkloadConfig, WorkloadGenerator};
pub use job::{Job, JobId};
pub use normalize::{gb_per_wavelength_slice, normalized_demand, LinkRate};
pub use trace::{parse_trace, write_trace, TraceError, TraceReader};
