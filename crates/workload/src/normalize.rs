//! Demand normalization.
//!
//! The Stage-2 formulation states: "all the demands `D_i` are normalized by
//! the capacity per wavelength". With wavelength assignments `x_i(p, j)` in
//! whole wavelengths and slice lengths `LEN(j)` in slice units, the natural
//! demand unit is the amount of data one wavelength moves in one slice.
//! This module performs that conversion from gigabytes.

/// A link's aggregate rate and its division into wavelengths.
///
/// The paper's Fig. 1/2 sweeps vary the number of wavelengths per link
/// *while holding the link capacity constant*, so the per-wavelength rate is
/// `total_gbps / wavelengths`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkRate {
    /// Aggregate link rate in Gbit/s (20 Gbps in all the paper's runs).
    pub total_gbps: f64,
    /// Number of wavelengths the link is divided into.
    pub wavelengths: u32,
}

impl LinkRate {
    /// The paper's standard link: 20 Gbps split into `w` wavelengths.
    pub fn paper(w: u32) -> Self {
        LinkRate {
            total_gbps: 20.0,
            wavelengths: w,
        }
    }

    /// Rate of a single wavelength, Gbit/s.
    pub fn per_wavelength_gbps(&self) -> f64 {
        assert!(self.wavelengths > 0, "a link needs at least one wavelength");
        self.total_gbps / self.wavelengths as f64
    }
}

/// Gigabytes moved by one wavelength in one slice of `slice_secs` seconds.
pub fn gb_per_wavelength_slice(rate: LinkRate, slice_secs: f64) -> f64 {
    assert!(slice_secs > 0.0, "slice length must be positive");
    rate.per_wavelength_gbps() * slice_secs / 8.0
}

/// Converts a file size in gigabytes into normalized demand units
/// (wavelength·slices): the `D_i` appearing in the formulations.
pub fn normalized_demand(size_gb: f64, rate: LinkRate, slice_secs: f64) -> f64 {
    size_gb / gb_per_wavelength_slice(rate, slice_secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_wavelength_rate() {
        let r = LinkRate::paper(4);
        assert!((r.per_wavelength_gbps() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn gb_per_slice() {
        // 5 Gbps wavelength, 60 s slice: 5 * 60 / 8 = 37.5 GB per slice.
        let r = LinkRate::paper(4);
        assert!((gb_per_wavelength_slice(r, 60.0) - 37.5).abs() < 1e-12);
    }

    #[test]
    fn demand_roundtrip() {
        let r = LinkRate::paper(2); // 10 Gbps per wavelength
                                    // 100 GB at 10 Gbps = 80 s = 2 slices of 40 s => demand 2.0.
        let d = normalized_demand(100.0, r, 40.0);
        assert!((d - 2.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_constant_sweep() {
        // Doubling wavelengths at constant capacity doubles the demand units
        // but also doubles the available wavelengths: total work constant.
        let slice = 60.0;
        let d2 = normalized_demand(100.0, LinkRate::paper(2), slice);
        let d4 = normalized_demand(100.0, LinkRate::paper(4), slice);
        assert!((d4 / d2 - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one wavelength")]
    fn zero_wavelengths_panics() {
        LinkRate {
            total_gbps: 20.0,
            wavelengths: 0,
        }
        .per_wavelength_gbps();
    }
}
