//! Sparse two-phase revised simplex.
//!
//! This is the default LP solver of the crate. Key design points, following
//! standard practice for production simplex codes:
//!
//! * **Bounded-variable simplex** over the standardized form
//!   `A z = 0, l <= z <= u` (see `stdform`), so range rows and general
//!   bounds need no row/column blowup.
//! * **Two phases with signed artificials**: the initial basis is diagonal
//!   (row activity variables where feasible, artificials elsewhere); phase 1
//!   minimizes the total artificial magnitude, phase 2 the true objective.
//!   An artificial that leaves the basis is immediately fixed at zero and
//!   never priced again.
//! * **Product-form basis updates**: FTRAN/BTRAN go through a sparse LU
//!   factorization (Gilbert–Peierls left-looking, partial pivoting,
//!   sparsest-column-first ordering) plus an eta file, refactorized
//!   periodically and on numerical drift.
//! * **Dantzig pricing with a Bland fallback** after a run of degenerate
//!   pivots, guaranteeing termination in the presence of degeneracy (the
//!   MCF-style scheduling LPs of the paper are massively degenerate).
//! * **Two-pass (Harris-style) ratio test**: pass one finds the best step
//!   with a relaxed feasibility tolerance, pass two picks the numerically
//!   largest pivot among the near-blocking rows.

mod lu;

use crate::model::Problem;
use crate::solution::{Solution, SolveError, SolveStats, Status};
use crate::stdform::{standardize, ColKind, StdForm};
use crate::{FEAS_TOL, OPT_TOL, PIVOT_TOL};

use lu::Lu;

/// Tunable parameters of the revised simplex.
#[derive(Debug, Clone)]
pub struct SimplexConfig {
    /// Hard cap on total simplex iterations (both phases). `0` means the
    /// solver picks `50 * (rows + cols) + 10_000`.
    pub max_iterations: u64,
    /// Primal feasibility tolerance.
    pub feas_tol: f64,
    /// Reduced-cost optimality tolerance.
    pub opt_tol: f64,
    /// Minimum acceptable pivot magnitude.
    pub pivot_tol: f64,
    /// Refactorize after this many eta updates.
    pub refactor_interval: usize,
    /// Consecutive degenerate pivots before switching to Bland's rule.
    pub degeneracy_threshold: u64,
}

impl Default for SimplexConfig {
    fn default() -> Self {
        SimplexConfig {
            max_iterations: 0,
            feas_tol: FEAS_TOL,
            opt_tol: OPT_TOL,
            pivot_tol: PIVOT_TOL,
            refactor_interval: 100,
            degeneracy_threshold: 400,
        }
    }
}

/// Solves `p` with the sparse revised simplex under default settings.
pub fn solve(p: &Problem) -> Result<Solution, SolveError> {
    solve_with(p, &SimplexConfig::default())
}

/// Solves `p` with explicit [`SimplexConfig`] settings.
pub fn solve_with(p: &Problem, cfg: &SimplexConfig) -> Result<Solution, SolveError> {
    let std = standardize(p)?;
    let mut engine = Engine::new(std, cfg.clone());
    engine.run()
}

/// Where a nonbasic variable rests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarState {
    Basic(u32),
    AtLower,
    AtUpper,
    /// Free nonbasic, resting at zero.
    Free,
    /// Fixed (`l == u`) or retired artificial; never priced.
    Fixed,
}

struct Engine {
    std: StdForm,
    cfg: SimplexConfig,
    /// Column occupying each basis position.
    basis: Vec<usize>,
    /// State per standardized column.
    state: Vec<VarState>,
    /// Current value per standardized column (basic entries mirrored from
    /// `xb` on demand).
    xval: Vec<f64>,
    /// Basic values by basis position.
    xb: Vec<f64>,
    /// Phase-dependent cost vector.
    cost: Vec<f64>,
    lu: Option<Lu>,
    etas: Vec<Eta>,
    stats: SolveStats,
    /// Consecutive degenerate pivots; triggers Bland's rule.
    degen_run: u64,
    bland: bool,
    /// Scratch: dense vector indexed by basis position.
    work_pos: Vec<f64>,
    /// Scratch: dense vector indexed by row.
    work_row: Vec<f64>,
    /// Reduced costs, updated incrementally per pivot and recomputed at
    /// every refactorization.
    d: Vec<f64>,
    /// Devex reference weights.
    weights: Vec<f64>,
    /// Row-major copy of the constraint matrix: per row, its `(col, val)`
    /// entries. Lets the pivotal-row pass touch only columns intersecting
    /// the (sparse) BTRAN result.
    csr: Vec<Vec<(u32, f64)>>,
}

/// One product-form update: `B_new = B_old * E` where `E` is the identity
/// with column `pos` replaced by `w = B_old^{-1} a_q`.
struct Eta {
    pos: u32,
    /// Sparse entries of `w` (basis-position indexed), including `pos`.
    entries: Vec<(u32, f64)>,
    /// `w[pos]`, the pivot element.
    pivot: f64,
}

enum PhaseOutcome {
    Optimal,
    Unbounded,
    IterationLimit,
}

impl Engine {
    fn new(std: StdForm, mut cfg: SimplexConfig) -> Self {
        let m = std.nrows;
        let ncols = std.ncols();
        if cfg.max_iterations == 0 {
            cfg.max_iterations = 50 * (m as u64 + ncols as u64) + 10_000;
        }
        let mut csr: Vec<Vec<(u32, f64)>> = vec![Vec::new(); m];
        for j in 0..std.a.ncols() {
            let (rows, vals) = std.a.col(j);
            for (&r, &v) in rows.iter().zip(vals) {
                csr[r as usize].push((j as u32, v));
            }
        }
        Engine {
            cost: vec![0.0; ncols],
            state: vec![VarState::Fixed; ncols],
            xval: vec![0.0; ncols],
            basis: Vec::with_capacity(m),
            xb: vec![0.0; m],
            lu: None,
            etas: Vec::new(),
            stats: SolveStats::default(),
            degen_run: 0,
            bland: false,
            work_pos: vec![0.0; m],
            work_row: vec![0.0; m],
            d: vec![0.0; ncols],
            weights: vec![1.0; ncols],
            csr,
            std,
            cfg,
        }
    }

    /// Builds the crash basis: activity variable where its natural value is
    /// feasible, signed artificial otherwise. Sets phase-1 costs.
    fn crash(&mut self) {
        let m = self.std.nrows;
        // Rest all structural and activity columns; fix unused artificials.
        for j in 0..self.std.ncols() {
            let (l, u) = (self.std.lower[j], self.std.upper[j]);
            self.state[j] = if self.std.kind[j] == ColKind::Artificial || l == u {
                VarState::Fixed
            } else if l.is_finite() && (u.is_infinite() || l.abs() <= u.abs()) {
                VarState::AtLower
            } else if u.is_finite() {
                VarState::AtUpper
            } else {
                VarState::Free
            };
            self.xval[j] = self.std.resting_value(j);
        }
        // Row activities of the structural block at the resting point.
        let act = {
            let mut act = vec![0.0; m];
            for j in 0..self.std.nstruct {
                let xj = self.xval[j];
                if xj != 0.0 {
                    self.std.a.col_axpy(j, xj, &mut act);
                }
            }
            act
        };
        self.basis.clear();
        #[allow(clippy::needless_range_loop)] // parallel arrays, index is clearest
        for i in 0..m {
            let s = self.std.activity_col(i);
            let (sl, su) = (self.std.lower[s], self.std.upper[s]);
            let v = act[i];
            let tol = self.cfg.feas_tol;
            if v >= sl - tol && v <= su + tol {
                // Activity variable basic and feasible: no artificial needed.
                self.basis.push(s);
                self.state[s] = VarState::Basic(i as u32);
                self.xb[i] = v;
            } else {
                // Rest the activity at its nearest bound, make the signed
                // artificial basic with the residual.
                let srest = if v < sl { sl } else { su };
                self.xval[s] = srest;
                self.state[s] = if srest == sl {
                    VarState::AtLower
                } else {
                    VarState::AtUpper
                };
                let a = self.std.artificial_col(i);
                // Row equation: act - s + a = 0  =>  a = s - act.
                let aval = srest - v;
                if aval >= 0.0 {
                    self.std.lower[a] = 0.0;
                    self.std.upper[a] = f64::INFINITY;
                    self.cost[a] = 1.0;
                } else {
                    self.std.lower[a] = f64::NEG_INFINITY;
                    self.std.upper[a] = 0.0;
                    self.cost[a] = -1.0;
                }
                self.basis.push(a);
                self.state[a] = VarState::Basic(i as u32);
                self.xb[i] = aval;
            }
        }
    }

    fn run(&mut self) -> Result<Solution, SolveError> {
        self.crash();
        self.refactorize()?;

        // Phase 1: minimize total artificial magnitude (costs set in crash).
        let needs_phase1 = self
            .basis
            .iter()
            .any(|&j| self.std.kind[j] == ColKind::Artificial);
        if needs_phase1 {
            let before = self.stats.iterations;
            let out = self.iterate(true)?;
            self.stats.phase1_iterations = self.stats.iterations - before;
            match out {
                PhaseOutcome::IterationLimit => {
                    return Ok(self.extract(Status::IterationLimit));
                }
                PhaseOutcome::Unbounded => {
                    // Phase-1 objective is bounded below by zero; an
                    // "unbounded" signal is a numerical breakdown.
                    return Err(SolveError::Numerical(
                        "phase 1 reported unbounded".into(),
                    ));
                }
                PhaseOutcome::Optimal => {}
            }
            let infeas = self.phase1_objective();
            if infeas > self.cfg.feas_tol.max(1e-9 * self.std.nrows as f64) {
                return Ok(self.extract(Status::Infeasible));
            }
        }

        // Phase 2: pin artificials to zero and install the true costs.
        for i in 0..self.std.nrows {
            let a = self.std.artificial_col(i);
            self.std.lower[a] = 0.0;
            self.std.upper[a] = 0.0;
            self.cost[a] = 0.0;
            if !matches!(self.state[a], VarState::Basic(_)) {
                self.state[a] = VarState::Fixed;
                self.xval[a] = 0.0;
            }
        }
        for j in 0..self.std.ncols() {
            if self.std.kind[j] != ColKind::Artificial {
                self.cost[j] = self.std.cost[j];
            }
        }
        self.bland = false;
        self.degen_run = 0;
        match self.iterate(false)? {
            PhaseOutcome::Optimal => Ok(self.extract(Status::Optimal)),
            PhaseOutcome::Unbounded => Ok(self.extract(Status::Unbounded)),
            PhaseOutcome::IterationLimit => Ok(self.extract(Status::IterationLimit)),
        }
    }

    fn phase1_objective(&self) -> f64 {
        let mut v = 0.0;
        for (pos, &j) in self.basis.iter().enumerate() {
            if self.std.kind[j] == ColKind::Artificial {
                v += self.xb[pos].abs();
            }
        }
        v
    }

    /// Core primal simplex loop shared by both phases.
    ///
    /// Reduced costs are maintained incrementally (updated with the pivotal
    /// row after every basis change) and recomputed exactly at every
    /// refactorization; entering variables are chosen by Devex pricing with
    /// a Bland fallback after a long degenerate run.
    fn iterate(&mut self, phase1: bool) -> Result<PhaseOutcome, SolveError> {
        self.recompute_reduced();
        self.weights.fill(1.0);
        loop {
            if self.stats.iterations >= self.cfg.max_iterations {
                return Ok(PhaseOutcome::IterationLimit);
            }
            if self.etas.len() >= self.cfg.refactor_interval {
                self.refactorize()?;
                self.recompute_reduced();
            }

            // Pricing from the maintained reduced costs.
            let entering = match self.price() {
                Some(e) => e,
                None => {
                    // Claimed optimal: verify against exactly recomputed
                    // reduced costs before accepting (guards drift).
                    self.refactorize()?;
                    self.recompute_reduced();
                    match self.price() {
                        Some(e) => e,
                        None => return Ok(PhaseOutcome::Optimal),
                    }
                }
            };
            let (q, dir) = entering;

            // FTRAN: w = B^{-1} a_q, basis-position indexed.
            let w = self.ftran_col(q);

            // Ratio test.
            match self.ratio_test(q, dir, &w) {
                RatioOutcome::Unbounded => {
                    if phase1 {
                        return Err(SolveError::Numerical(
                            "unbounded ray in phase 1".into(),
                        ));
                    }
                    return Ok(PhaseOutcome::Unbounded);
                }
                RatioOutcome::BoundFlip(t) => {
                    // No basis change: reduced costs stay valid.
                    self.apply_bound_flip(q, dir, t, &w);
                    self.stats.bound_flips += 1;
                }
                RatioOutcome::Pivot { pos, step } => {
                    let alpha_q = w[pos];
                    if alpha_q.abs() <= self.cfg.pivot_tol {
                        // Should not happen (ratio test filters); refactor
                        // and retry rather than divide by ~0.
                        self.refactorize()?;
                        self.recompute_reduced();
                        continue;
                    }
                    self.update_reduced_and_weights(q, pos, alpha_q);
                    self.apply_pivot(q, dir, pos, step, &w);
                    if step <= self.cfg.feas_tol * 1e-2 {
                        self.stats.degenerate_pivots += 1;
                        self.degen_run += 1;
                        if self.degen_run >= self.cfg.degeneracy_threshold {
                            self.bland = true;
                        }
                    } else {
                        self.degen_run = 0;
                        self.bland = false;
                    }
                }
            }
            self.stats.iterations += 1;
        }
    }

    /// Solves `B' y = c` for a basis-position-indexed `c`, returning the
    /// row-indexed result (in place).
    fn btran_pos(&mut self, c: &mut [f64]) {
        // Apply eta inverses in reverse order: c' E^{-1} touches one entry.
        for eta in self.etas.iter().rev() {
            let r = eta.pos as usize;
            let mut acc = c[r];
            for &(i, wi) in &eta.entries {
                if i != eta.pos {
                    acc -= c[i as usize] * wi;
                }
            }
            c[r] = acc / eta.pivot;
        }
        self.lu
            .as_ref()
            .expect("factorized")
            .btran(c, &mut self.work_pos);
    }

    /// Computes `y` with `B' y = c_B`; returns a dense row-indexed vector.
    fn btran_costs(&mut self) -> Vec<f64> {
        let m = self.std.nrows;
        let mut c = vec![0.0; m];
        for (pos, &j) in self.basis.iter().enumerate() {
            c[pos] = self.cost[j];
        }
        self.btran_pos(&mut c);
        c
    }

    /// Recomputes every reduced cost exactly from the current basis.
    fn recompute_reduced(&mut self) {
        let y = self.btran_costs();
        for j in 0..self.std.ncols() {
            self.d[j] = match self.state[j] {
                VarState::Basic(_) => 0.0,
                VarState::Fixed => 0.0,
                _ => self.cost[j] - self.std.a.col_dot(j, &y),
            };
        }
    }

    /// Devex pricing over the maintained reduced costs. Returns the
    /// entering column and its movement direction (+1 from lower/free, -1
    /// from upper/free).
    fn price(&self) -> Option<(usize, f64)> {
        let tol = self.cfg.opt_tol;
        let mut best: Option<(usize, f64, f64)> = None; // (col, dir, score)
        for j in 0..self.std.ncols() {
            let dir = match self.state[j] {
                VarState::Basic(_) | VarState::Fixed => continue,
                VarState::AtLower => {
                    if self.d[j] < -tol {
                        1.0
                    } else {
                        continue;
                    }
                }
                VarState::AtUpper => {
                    if self.d[j] > tol {
                        -1.0
                    } else {
                        continue;
                    }
                }
                VarState::Free => {
                    if self.d[j] < -tol {
                        1.0
                    } else if self.d[j] > tol {
                        -1.0
                    } else {
                        continue;
                    }
                }
            };
            if self.bland {
                // Bland: first eligible index guarantees termination.
                return Some((j, dir));
            }
            let score = self.d[j] * self.d[j] / self.weights[j];
            if best.is_none_or(|(_, _, s)| score > s) {
                best = Some((j, dir, score));
            }
        }
        best.map(|(j, dir, _)| (j, dir))
    }

    /// After choosing pivot (entering `q`, leaving position `pos`), updates
    /// the reduced costs and Devex weights using the pivotal row
    /// `alpha = e_pos' B^{-1} A`.
    fn update_reduced_and_weights(&mut self, q: usize, pos: usize, alpha_q: f64) {
        let m = self.std.nrows;
        // rho = B^{-T} e_pos (row-indexed).
        let mut rho = vec![0.0; m];
        rho[pos] = 1.0;
        self.btran_pos(&mut rho);

        let dq = self.d[q];
        let ratio = dq / alpha_q;
        let wq = self.weights[q].max(1.0);
        let leaving = self.basis[pos];

        // Touch only columns that intersect rho's nonzero rows. A column may
        // be visited once per nonzero row, so stamp visited columns.
        // (Reuse d[q] slot as stamp-free approach: track via small Vec.)
        let mut touched: Vec<u32> = Vec::with_capacity(256);
        for (r, row) in self.csr.iter().enumerate() {
            let rv = rho[r];
            if rv.abs() <= 1e-12 {
                continue;
            }
            for &(jc, _) in row {
                let j = jc as usize;
                match self.state[j] {
                    VarState::Basic(_) | VarState::Fixed => continue,
                    _ => {}
                }
                if j == q {
                    continue;
                }
                touched.push(jc);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        let mut max_weight: f64 = 1.0;
        for &jc in &touched {
            let j = jc as usize;
            let alpha_j = self.std.a.col_dot(j, &rho);
            if alpha_j.abs() <= 1e-12 {
                continue;
            }
            self.d[j] -= ratio * alpha_j;
            let cand = (alpha_j / alpha_q) * (alpha_j / alpha_q) * wq;
            if cand > self.weights[j] {
                self.weights[j] = cand;
            }
            max_weight = max_weight.max(self.weights[j]);
        }
        // Entering column becomes basic; leaving column becomes nonbasic
        // with reduced cost -d_q / alpha_q and a fresh reference weight.
        self.d[q] = 0.0;
        self.d[leaving] = -ratio;
        self.weights[leaving] = (wq / (alpha_q * alpha_q)).max(1.0);
        max_weight = max_weight.max(self.weights[leaving]);

        // Reference-framework reset when weights blow up.
        if max_weight > 1e8 {
            self.weights.fill(1.0);
        }
    }

    /// FTRAN of column `q` through LU and the eta file; returns the dense
    /// basis-position-indexed representation of `w = B^{-1} a_q`.
    fn ftran_col(&mut self, q: usize) -> Vec<f64> {
        let m = self.std.nrows;
        self.work_row[..m].fill(0.0);
        let (rows, vals) = self.std.a.col(q);
        for (&r, &v) in rows.iter().zip(vals) {
            self.work_row[r as usize] = v;
        }
        let mut w = vec![0.0; m];
        self.lu
            .as_ref()
            .expect("factorized")
            .ftran(&mut self.work_row, &mut w);
        for eta in &self.etas {
            let r = eta.pos as usize;
            let t = w[r] / eta.pivot;
            if t != 0.0 {
                for &(i, wi) in &eta.entries {
                    if i != eta.pos {
                        w[i as usize] -= wi * t;
                    }
                }
            }
            w[r] = t;
        }
        w
    }

    fn ratio_test(&self, q: usize, dir: f64, w: &[f64]) -> RatioOutcome {
        let ptol = self.cfg.pivot_tol;
        let ftol = self.cfg.feas_tol;
        // Step limit from the entering variable's own bound range.
        let own_range = match (self.std.lower[q].is_finite(), self.std.upper[q].is_finite()) {
            (true, true) => self.std.upper[q] - self.std.lower[q],
            _ => f64::INFINITY,
        };

        // Pass 1: minimum blocking step with tolerance-relaxed bounds.
        let mut t_relaxed = own_range;
        for (pos, &wp) in w.iter().enumerate() {
            if wp.abs() <= ptol {
                continue;
            }
            let rate = -wp * dir; // d(xb[pos]) / dt
            let j = self.basis[pos];
            let limit = if rate > 0.0 {
                let ub = self.std.upper[j];
                if ub.is_finite() {
                    (ub - self.xb[pos] + ftol) / rate
                } else {
                    continue;
                }
            } else {
                let lb = self.std.lower[j];
                if lb.is_finite() {
                    (self.xb[pos] - lb + ftol) / -rate
                } else {
                    continue;
                }
            };
            t_relaxed = t_relaxed.min(limit.max(0.0));
        }
        if t_relaxed.is_infinite() {
            return RatioOutcome::Unbounded;
        }

        // Pass 2: among rows blocking at or before `t_relaxed`, take the one
        // with the largest pivot magnitude (Harris-style selection), breaking
        // remaining ties toward retiring artificials.
        let mut best: Option<(usize, f64, f64, bool)> = None; // pos, step, |pivot|, is_artificial
        for (pos, &wp) in w.iter().enumerate() {
            if wp.abs() <= ptol {
                continue;
            }
            let rate = -wp * dir;
            let j = self.basis[pos];
            let limit = if rate > 0.0 {
                let ub = self.std.upper[j];
                if ub.is_finite() {
                    (ub - self.xb[pos]) / rate
                } else {
                    continue;
                }
            } else {
                let lb = self.std.lower[j];
                if lb.is_finite() {
                    (self.xb[pos] - lb) / -rate
                } else {
                    continue;
                }
            };
            let limit = limit.max(0.0);
            if limit <= t_relaxed {
                let art = self.std.kind[j] == ColKind::Artificial;
                let better = match best {
                    None => true,
                    Some((_, _, bp, bart)) => {
                        wp.abs() > bp || (wp.abs() == bp && art && !bart)
                    }
                };
                if better {
                    best = Some((pos, limit, wp.abs(), art));
                }
            }
        }
        match best {
            None => {
                // Nothing blocks before the entering variable's own range:
                // a bound flip (own_range is finite here).
                RatioOutcome::BoundFlip(own_range)
            }
            Some((pos, step, _, _)) => RatioOutcome::Pivot { pos, step },
        }
    }

    fn apply_bound_flip(&mut self, q: usize, dir: f64, t: f64, w: &[f64]) {
        for (pos, &wp) in w.iter().enumerate() {
            if wp != 0.0 {
                self.xb[pos] -= wp * dir * t;
            }
        }
        self.xval[q] += dir * t;
        self.state[q] = match self.state[q] {
            VarState::AtLower => VarState::AtUpper,
            VarState::AtUpper => VarState::AtLower,
            s => s,
        };
    }

    fn apply_pivot(&mut self, q: usize, dir: f64, pos: usize, step: f64, w: &[f64]) {
        let leaving = self.basis[pos];
        for (p, &wp) in w.iter().enumerate() {
            if wp != 0.0 {
                self.xb[p] -= wp * dir * step;
            }
        }
        let entering_value = self.xval[q] + dir * step;

        // Park the leaving variable at the bound it hit.
        let lv = self.xb[pos];
        let (ll, lu_) = (self.std.lower[leaving], self.std.upper[leaving]);
        let to_upper = if ll.is_finite() && lu_.is_finite() {
            (lv - lu_).abs() < (lv - ll).abs()
        } else {
            lu_.is_finite()
        };
        self.xval[leaving] = if to_upper { lu_ } else { ll };
        self.state[leaving] = if self.std.kind[leaving] == ColKind::Artificial {
            // Retire artificials for good the moment they leave.
            self.std.lower[leaving] = 0.0;
            self.std.upper[leaving] = 0.0;
            self.cost[leaving] = 0.0;
            self.xval[leaving] = 0.0;
            VarState::Fixed
        } else if ll == lu_ {
            VarState::Fixed
        } else if to_upper {
            VarState::AtUpper
        } else {
            VarState::AtLower
        };

        self.basis[pos] = q;
        self.state[q] = VarState::Basic(pos as u32);
        self.xb[pos] = entering_value;

        // Record the eta for B_new = B_old E. Entries below the drop
        // tolerance are omitted; the drift is flushed at refactorization.
        let mut entries = Vec::with_capacity(8);
        for (p, &wp) in w.iter().enumerate() {
            if wp.abs() > 1e-12 || p == pos {
                entries.push((p as u32, wp));
            }
        }
        self.etas.push(Eta {
            pos: pos as u32,
            pivot: w[pos],
            entries,
        });
    }

    /// Rebuilds the LU factorization of the current basis and recomputes the
    /// basic values from scratch to flush accumulated drift.
    fn refactorize(&mut self) -> Result<(), SolveError> {
        let m = self.std.nrows;
        let mut attempt = 0usize;
        loop {
            match Lu::factor(&self.std.a, &self.basis, self.cfg.pivot_tol) {
                Ok(f) => {
                    self.lu = Some(f);
                    break;
                }
                Err(unpivoted_row) => {
                    // Singular basis: swap the structurally dependent column
                    // out for the row's artificial and retry.
                    attempt += 1;
                    if attempt > m {
                        return Err(SolveError::Numerical(
                            "basis repair failed: persistent singularity".into(),
                        ));
                    }
                    self.repair_basis(unpivoted_row)?;
                }
            }
        }
        self.etas.clear();
        self.stats.refactorizations += 1;

        // Recompute xb = B^{-1} (-N x_N).
        self.work_row[..m].fill(0.0);
        for j in 0..self.std.ncols() {
            if matches!(self.state[j], VarState::Basic(_)) {
                continue;
            }
            let xj = self.xval[j];
            if xj != 0.0 {
                let (rows, vals) = self.std.a.col(j);
                for (&r, &v) in rows.iter().zip(vals) {
                    self.work_row[r as usize] -= v * xj;
                }
            }
        }
        let mut rhs = std::mem::take(&mut self.work_row);
        let mut xb = vec![0.0; m];
        self.lu.as_ref().unwrap().ftran(&mut rhs, &mut xb);
        self.work_row = rhs;
        self.xb = xb;
        Ok(())
    }

    /// Replaces whichever basis column failed to pivot with the artificial
    /// of `row`, re-activating that artificial.
    fn repair_basis(&mut self, row: usize) -> Result<(), SolveError> {
        let art = self.std.artificial_col(row);
        if self.basis.contains(&art) {
            return Err(SolveError::Numerical(format!(
                "basis repair loop on row {row}"
            )));
        }
        // Find a basis column covering `row` to evict: prefer one whose
        // column actually has an entry in `row`.
        let mut evict_pos = None;
        for (pos, &j) in self.basis.iter().enumerate() {
            let (rows, _) = self.std.a.col(j);
            if rows.binary_search(&(row as u32)).is_ok() {
                evict_pos = Some(pos);
            }
        }
        let pos = evict_pos.unwrap_or(0);
        let evicted = self.basis[pos];
        self.xval[evicted] = self.std.resting_value(evicted);
        self.state[evicted] = if self.std.lower[evicted] == self.std.upper[evicted] {
            VarState::Fixed
        } else if self.xval[evicted] == self.std.lower[evicted] {
            VarState::AtLower
        } else {
            VarState::AtUpper
        };
        // Re-open the artificial so it can absorb any residual.
        self.std.lower[art] = f64::NEG_INFINITY;
        self.std.upper[art] = f64::INFINITY;
        self.basis[pos] = art;
        self.state[art] = VarState::Basic(pos as u32);
        Ok(())
    }

    /// Assembles the user-facing solution from the current iterate.
    fn extract(&mut self, status: Status) -> Solution {
        // Mirror basic values into xval.
        for (pos, &j) in self.basis.iter().enumerate() {
            self.xval[j] = self.xb[pos];
        }
        let x: Vec<f64> = self.xval[..self.std.nstruct].to_vec();
        let mut obj = self.std.obj_offset;
        for (j, &xj) in x.iter().enumerate() {
            obj += self.std.obj_sign * self.std.cost[j] * xj;
        }
        // Duals from a final BTRAN with phase-2 costs.
        for j in 0..self.std.ncols() {
            if self.std.kind[j] != ColKind::Artificial {
                self.cost[j] = self.std.cost[j];
            }
        }
        let y = self.btran_costs();
        let duals: Vec<f64> = y.iter().map(|&v| self.std.obj_sign * v).collect();
        Solution {
            status,
            objective: obj,
            x,
            duals,
            stats: self.stats,
        }
    }
}

enum RatioOutcome {
    Unbounded,
    BoundFlip(f64),
    Pivot { pos: usize, step: f64 },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Objective, Problem};

    fn assert_near(a: f64, b: f64) {
        assert!(
            (a - b).abs() < 1e-6,
            "expected {b}, got {a} (diff {})",
            (a - b).abs()
        );
    }

    #[test]
    fn simple_max() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6
        let mut p = Problem::new(Objective::Maximize);
        let x = p.add_col(0.0, f64::INFINITY, 3.0);
        let y = p.add_col(0.0, f64::INFINITY, 2.0);
        p.add_row(f64::NEG_INFINITY, 4.0, &[(x, 1.0), (y, 1.0)]);
        p.add_row(f64::NEG_INFINITY, 6.0, &[(x, 1.0), (y, 3.0)]);
        let s = solve(&p).unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_near(s.objective, 12.0);
        assert_near(s.x[0], 4.0);
        assert_near(s.x[1], 0.0);
    }

    #[test]
    fn equality_rows_need_phase1() {
        // min x + y s.t. x + y = 3, x - y = 1 => x=2, y=1, obj 3
        let mut p = Problem::new(Objective::Minimize);
        let x = p.add_col(0.0, f64::INFINITY, 1.0);
        let y = p.add_col(0.0, f64::INFINITY, 1.0);
        p.add_row(3.0, 3.0, &[(x, 1.0), (y, 1.0)]);
        p.add_row(1.0, 1.0, &[(x, 1.0), (y, -1.0)]);
        let s = solve(&p).unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_near(s.objective, 3.0);
        assert_near(s.x[0], 2.0);
        assert_near(s.x[1], 1.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new(Objective::Minimize);
        let x = p.add_col(0.0, 1.0, 1.0);
        p.add_row(5.0, f64::INFINITY, &[(x, 1.0)]);
        let s = solve(&p).unwrap();
        assert_eq!(s.status, Status::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::new(Objective::Maximize);
        let x = p.add_col(0.0, f64::INFINITY, 1.0);
        let y = p.add_col(0.0, f64::INFINITY, 0.0);
        p.add_row(0.0, f64::INFINITY, &[(x, 1.0), (y, -1.0)]);
        let s = solve(&p).unwrap();
        assert_eq!(s.status, Status::Unbounded);
    }

    #[test]
    fn bounded_variables_and_ranges() {
        // max x + y, 1 <= x <= 2, 0 <= y <= 2, 2 <= x + y <= 3
        let mut p = Problem::new(Objective::Maximize);
        let x = p.add_col(1.0, 2.0, 1.0);
        let y = p.add_col(0.0, 2.0, 1.0);
        p.add_row(2.0, 3.0, &[(x, 1.0), (y, 1.0)]);
        let s = solve(&p).unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_near(s.objective, 3.0);
    }

    #[test]
    fn free_variable() {
        // min x, x free, x >= -7 via row
        let mut p = Problem::new(Objective::Minimize);
        let x = p.add_col(f64::NEG_INFINITY, f64::INFINITY, 1.0);
        p.add_row(-7.0, f64::INFINITY, &[(x, 1.0)]);
        let s = solve(&p).unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_near(s.objective, -7.0);
        assert_near(s.x[0], -7.0);
    }

    #[test]
    fn negative_bounds() {
        // min 2a + b with a in [-3,-1], b in [-5, 0], a + b >= -4
        let mut p = Problem::new(Objective::Minimize);
        let a = p.add_col(-3.0, -1.0, 2.0);
        let b = p.add_col(-5.0, 0.0, 1.0);
        p.add_row(-4.0, f64::INFINITY, &[(a, 1.0), (b, 1.0)]);
        let s = solve(&p).unwrap();
        assert_eq!(s.status, Status::Optimal);
        // a = -3 gives cost -6, then b >= -1 => b = -1, total -7.
        assert_near(s.objective, -7.0);
        assert_near(s.x[0], -3.0);
        assert_near(s.x[1], -1.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Highly degenerate: many redundant rows through the same vertex.
        let mut p = Problem::new(Objective::Maximize);
        let x = p.add_col(0.0, f64::INFINITY, 1.0);
        let y = p.add_col(0.0, f64::INFINITY, 1.0);
        for k in 1..=8 {
            p.add_row(f64::NEG_INFINITY, k as f64, &[(x, k as f64), (y, k as f64)]);
        }
        let s = solve(&p).unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_near(s.objective, 1.0);
    }

    #[test]
    fn objective_offset_respected() {
        let mut p = Problem::new(Objective::Minimize);
        let x = p.add_col(1.0, 5.0, 2.0);
        let _ = x;
        p.add_objective_offset(100.0);
        let s = solve(&p).unwrap();
        assert_near(s.objective, 102.0);
    }

    #[test]
    fn fixed_variables() {
        let mut p = Problem::new(Objective::Maximize);
        let x = p.add_col(3.0, 3.0, 1.0);
        let y = p.add_col(0.0, 10.0, 1.0);
        p.add_row(f64::NEG_INFINITY, 5.0, &[(x, 1.0), (y, 1.0)]);
        let s = solve(&p).unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_near(s.x[0], 3.0);
        assert_near(s.x[1], 2.0);
    }

    #[test]
    fn empty_problem() {
        let p = Problem::new(Objective::Minimize);
        let s = solve(&p).unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_near(s.objective, 0.0);
    }

    #[test]
    fn transportation_problem() {
        // 2 supplies (10, 20), 3 demands (5, 10, 15), unit costs.
        let costs = [[2.0, 4.0, 5.0], [3.0, 1.0, 7.0]];
        let supply = [10.0, 20.0];
        let demand = [5.0, 10.0, 15.0];
        let mut p = Problem::new(Objective::Minimize);
        let mut xs = [[None; 3]; 2];
        for i in 0..2 {
            for j in 0..3 {
                xs[i][j] = Some(p.add_col(0.0, f64::INFINITY, costs[i][j]));
            }
        }
        for i in 0..2 {
            let coeffs: Vec<_> = (0..3).map(|j| (xs[i][j].unwrap(), 1.0)).collect();
            p.add_row(f64::NEG_INFINITY, supply[i], &coeffs);
        }
        for j in 0..3 {
            let coeffs: Vec<_> = (0..2).map(|i| (xs[i][j].unwrap(), 1.0)).collect();
            p.add_row(demand[j], demand[j], &coeffs);
        }
        let s = solve(&p).unwrap();
        assert_eq!(s.status, Status::Optimal);
        // Optimal: x02=10 (50), x10=5 (15), x11=10 (10), x12=5 (35) => 110.
        assert_near(s.objective, 110.0);
    }

    #[test]
    fn duals_satisfy_weak_pricing() {
        let mut p = Problem::new(Objective::Maximize);
        let x = p.add_col(0.0, f64::INFINITY, 3.0);
        let y = p.add_col(0.0, f64::INFINITY, 5.0);
        p.add_row(f64::NEG_INFINITY, 4.0, &[(x, 1.0)]);
        p.add_row(f64::NEG_INFINITY, 12.0, &[(y, 2.0)]);
        p.add_row(f64::NEG_INFINITY, 18.0, &[(x, 3.0), (y, 2.0)]);
        let s = solve(&p).unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_near(s.objective, 36.0);
        // Strong duality: b'y == objective for this classic example.
        let dual_obj = 4.0 * s.duals[0] + 12.0 * s.duals[1] + 18.0 * s.duals[2];
        assert_near(dual_obj, 36.0);
    }
}
