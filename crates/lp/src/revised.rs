//! Sparse two-phase revised simplex.
//!
//! This is the default LP solver of the crate. Key design points, following
//! standard practice for production simplex codes:
//!
//! * **Bounded-variable simplex** over the standardized form
//!   `A z = 0, l <= z <= u` (see `stdform`), so range rows and general
//!   bounds need no row/column blowup.
//! * **Two phases with signed artificials**: the initial basis is diagonal
//!   (row activity variables where feasible, artificials elsewhere); phase 1
//!   minimizes the total artificial magnitude, phase 2 the true objective.
//!   An artificial that leaves the basis is immediately fixed at zero and
//!   never priced again.
//! * **Product-form basis updates**: FTRAN/BTRAN go through a sparse LU
//!   factorization (Gilbert–Peierls left-looking, partial pivoting,
//!   sparsest-column-first ordering) plus an eta file, refactorized
//!   periodically and on numerical drift.
//! * **Devex pricing with a Bland fallback** after a run of degenerate
//!   pivots, guaranteeing termination in the presence of degeneracy (the
//!   MCF-style scheduling LPs of the paper are massively degenerate). The
//!   reference framework resets when the Devex weights blow up
//!   (`SolveStats::devex_resets` counts these).
//! * **Two-pass (Harris-style) ratio test**: pass one finds the best step
//!   with a relaxed feasibility tolerance, pass two picks the numerically
//!   largest pivot among the near-blocking rows.

mod dual;
mod lu;
mod sanitize;

use crate::model::{Col, Problem, Row};
use crate::solution::{Basis, BasisStatus, Solution, SolveError, SolveStats, Status};
use crate::sparse::{CscMatrix, WorkVec};
use crate::stdform::{standardize, ColKind, StdForm};
use crate::{is_inf, FEAS_TOL, OPT_TOL, PIVOT_TOL};
use wavesched_obs as obs;

use lu::{Lu, LuScratch};

/// Basis-refactorization policy: when the engine rebuilds the LU factors
/// instead of growing the product-form eta file, and whether a
/// [`SolverSession`] may carry the factorization across solves.
///
/// Every policy produces the same answers — the policy moves work between
/// `Lu::factor` and eta passes, and every claimed optimum is still
/// verified against a fresh factor before extraction. Only the pivot
/// *trajectory* (and with it the work counters) may differ between
/// policies; within one policy the trajectory is deterministic because
/// every trigger below counts entries, never wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefactorPolicy {
    /// Refactorize on every solve entry and on the fixed
    /// [`SimplexConfig::refactor_interval`] cadence — the pre-persistence
    /// behavior, kept as the reuse-off A/B baseline
    /// (`WS_REFACTOR=always`).
    Always,
    /// Carry the factorization across session solves; in-loop
    /// refactorization on the fixed interval only.
    Interval,
    /// Carry the factorization across session solves; in-loop, also cut
    /// the eta file as soon as its entry count stops paying for itself
    /// against the factor's own entry count (the default; see
    /// `COST_MODEL_ETA_FACTOR`). The fixed interval stays as a hard cap.
    CostModel,
}

/// Cost-model trigger ratio: refactorize once the eta file holds more
/// than this many times the LU's entry count. One FTRAN/BTRAN pass
/// touches every factor entry and every eta entry once, but the factor
/// itself costs many passes' worth of work, so the cut only pays for
/// itself once the file dwarfs the factors — not at parity. At 8× the
/// pass spends ~90% of its time in the eta file before we cut; below
/// that the model fires more often than the interval cadence it
/// replaces and loses wall-clock to its own refactorizations.
const COST_MODEL_ETA_FACTOR: usize = 8;

/// Cost-model floor: never cut a file shorter than this many etas. Tiny
/// bases otherwise refactorize every few pivots, and the fixed overhead
/// of `Lu::factor` never amortizes over so short a window.
const COST_MODEL_MIN_ETAS: usize = 16;

/// Why a refactorization is being performed — routed into the matching
/// per-reason [`SolveStats`] counter so smoke fixtures can tell cadence
/// refactorizations from forced ones. (`refactor_forced_singular` is
/// counted separately per `repair_basis` call, and `refactor_reuse_rejected`
/// at the reuse gate; neither is a `refactorize` entry reason.)
#[derive(Debug, Clone, Copy)]
enum RefactorReason {
    /// The eta file reached the fixed `refactor_interval` cadence.
    Interval,
    /// The cost model decided the eta file stopped paying for itself.
    CostModel,
    /// Structurally required: solve entry, warm/dual basis installation,
    /// claimed-optimal verification, or a zero-pivot retry.
    Forced,
}

/// Tunable parameters of the revised simplex.
#[derive(Debug, Clone)]
pub struct SimplexConfig {
    /// Hard cap on total simplex iterations (both phases). `0` means the
    /// solver picks `50 * (rows + cols) + 10_000`.
    pub max_iterations: u64,
    /// Primal feasibility tolerance.
    pub feas_tol: f64,
    /// Reduced-cost optimality tolerance.
    pub opt_tol: f64,
    /// Minimum acceptable pivot magnitude.
    pub pivot_tol: f64,
    /// Refactorize after this many eta updates.
    pub refactor_interval: usize,
    /// Consecutive degenerate pivots before switching to Bland's rule.
    pub degeneracy_threshold: u64,
    /// Fraction of the basis dimension above which the sparse FTRAN/BTRAN
    /// kernels abandon pattern tracking and finish with the dense solves
    /// (`SolveStats` counts these fallbacks). `0.0` forces the dense
    /// kernels everywhere, which the differential tests use as an oracle:
    /// the answer is bit-identical either way, only the work differs.
    pub kernel_density_threshold: f64,
    /// Candidate-list partial pricing for the primal path: pricing scans a
    /// minor-iteration sublist of attractive columns instead of every
    /// nonbasic column, with periodic full refreshes. The `WS_PRICING`
    /// environment variable overrides this (`full` / `partial`); `full` is
    /// the exhaustive-scan differential oracle. Bland's anti-cycling rule
    /// always bypasses the sublist, so the termination guarantee is
    /// unchanged.
    ///
    /// Off by default: partial pricing reaches the same *objective* but may
    /// land on a different vertex of a degenerate optimal face, and several
    /// consumers (LPDAR rounding, schedule extraction) are functions of the
    /// particular vertex. Callers whose decisions are objective-only (e.g.
    /// the RET feasibility probes) opt in per config.
    pub partial_pricing: bool,
    /// When to rebuild the LU factors vs. growing the eta file, and
    /// whether a [`SolverSession`] carries the factorization across
    /// solves. The `WS_REFACTOR` environment variable overrides this
    /// (`always` / `interval:N` / `cost-model`); a disabled cadence
    /// (`refactor_interval: usize::MAX`, the kernel probes) pins the
    /// policy to [`RefactorPolicy::Interval`] regardless, so probed
    /// windows keep measuring steady-state eta chains.
    pub refactor_policy: RefactorPolicy,
}

impl Default for SimplexConfig {
    fn default() -> Self {
        SimplexConfig {
            max_iterations: 0,
            feas_tol: FEAS_TOL,
            opt_tol: OPT_TOL,
            pivot_tol: PIVOT_TOL,
            refactor_interval: 100,
            degeneracy_threshold: 400,
            kernel_density_threshold: 0.3,
            partial_pricing: false,
            refactor_policy: RefactorPolicy::CostModel,
        }
    }
}

/// Process-wide refactorization-policy override from the `WS_REFACTOR`
/// environment variable, read once per process: `always` forces a fresh
/// factor on every solve entry (the reuse-off A/B baseline), `interval:N`
/// pins the fixed cadence at `N` etas with cross-solve reuse on,
/// `cost-model` forces the cost-model policy, anything else (or unset)
/// defers to [`SimplexConfig::refactor_policy`].
fn refactor_env() -> Option<(RefactorPolicy, Option<usize>)> {
    static MODE: std::sync::OnceLock<Option<(RefactorPolicy, Option<usize>)>> =
        std::sync::OnceLock::new();
    *MODE.get_or_init(|| {
        // lint: allow(env-knob, reason = "WS_REFACTOR mirrors the sanctioned WS_PRICING pattern: read once at first use, config default preserved when unset, documented in the README")
        match std::env::var("WS_REFACTOR") {
            Ok(v) if v.eq_ignore_ascii_case("always") => Some((RefactorPolicy::Always, None)),
            Ok(v) if v.eq_ignore_ascii_case("cost-model") => {
                Some((RefactorPolicy::CostModel, None))
            }
            Ok(v) => v
                .to_ascii_lowercase()
                .strip_prefix("interval:")
                .and_then(|n| n.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
                .map(|n| (RefactorPolicy::Interval, Some(n))),
            Err(_) => None,
        }
    })
}

/// Process-wide pricing-mode override from the `WS_PRICING` environment
/// variable, read once per process: `full` forces the exhaustive Devex scan
/// (the bit-identical differential oracle), `partial` forces candidate-list
/// pricing, anything else (or unset) defers to
/// [`SimplexConfig::partial_pricing`].
fn pricing_env() -> Option<bool> {
    static MODE: std::sync::OnceLock<Option<bool>> = std::sync::OnceLock::new();
    *MODE.get_or_init(|| {
        // lint: allow(env-knob, reason = "WS_PRICING mirrors the sanctioned WS_THREADS pattern: read once at first use, config default preserved when unset, documented in the README")
        match std::env::var("WS_PRICING") {
            Ok(v) if v.eq_ignore_ascii_case("full") => Some(false),
            Ok(v) if v.eq_ignore_ascii_case("partial") => Some(true),
            _ => None,
        }
    })
}

/// Clamps a quantity to nonnegative with a deterministic `+0.0`.
///
/// `f64::max` leaves the sign of a zero result unspecified — optimized and
/// unoptimized builds can disagree on `(-0.0).max(0.0)` — and a `-0.0`
/// step or ratio leaks into `total_cmp`-ordered candidate sorts, which
/// distinguish the two zeros. Every zero-clamp on the pivot trajectory
/// (and, workspace-wide, every `.max(0.0)` the `zero-sign-clamp` lint rule
/// would otherwise flag) goes through here so debug and release builds
/// pick identical pivots. `NaN` clamps to `+0.0`, same as `f64::max(0.0)`.
#[inline]
pub fn pos_or_zero(t: f64) -> f64 {
    if t > 0.0 {
        t
    } else {
        0.0
    }
}

/// A structural column to append to a [`SolverSession`]'s held problem via
/// [`SolverSession::add_columns`]. Costs and bounds are in the original
/// objective direction, exactly as [`Problem::add_col`] takes them.
#[derive(Debug, Clone)]
pub struct NewColumn {
    /// Lower bound.
    pub lower: f64,
    /// Upper bound.
    pub upper: f64,
    /// Objective coefficient.
    pub cost: f64,
    /// Sparse constraint entries `(row, coefficient)`, in any order;
    /// duplicate rows are rejected.
    pub entries: Vec<(Row, f64)>,
}

/// A constraint row to append to a [`SolverSession`]'s held problem via
/// [`SolverSession::add_rows`], exactly as [`Problem::add_row`] takes it.
#[derive(Debug, Clone)]
pub struct NewRow {
    /// Row lower bound.
    pub lower: f64,
    /// Row upper bound.
    pub upper: f64,
    /// Sparse entries `(column, coefficient)` over the *structural*
    /// columns, in any order.
    pub entries: Vec<(Col, f64)>,
}

/// Solves `p` with the sparse revised simplex under default settings.
pub fn solve(p: &Problem) -> Result<Solution, SolveError> {
    solve_with(p, &SimplexConfig::default())
}

/// Solves `p` with explicit [`SimplexConfig`] settings.
pub fn solve_with(p: &Problem, cfg: &SimplexConfig) -> Result<Solution, SolveError> {
    solve_with_start(p, cfg, None)
}

/// Solves `p`, optionally warm-starting from a basis of a related problem.
///
/// When `start` is given and its shape matches `p` (same number of columns
/// and rows), the solver installs that basis, repairs any infeasibility it
/// causes with a bound-shift phase-1 restart, and proceeds to phase 2. On a
/// shape mismatch, any numerical trouble during installation, or a repair
/// phase 1 that cannot clear the violations (which includes every genuinely
/// infeasible instance — only the cold artificial-based phase 1 constitutes
/// an infeasibility proof), the solver silently restarts cold. A warm start
/// can therefore never change the answer, only the work required to reach
/// it. `Solution::stats` records which path ran (`warm_starts_accepted` /
/// `warm_start_fallbacks`).
pub fn solve_with_start(
    p: &Problem,
    cfg: &SimplexConfig,
    start: Option<&Basis>,
) -> Result<Solution, SolveError> {
    let std = standardize(p)?;
    let mut engine = Engine::new(std, cfg.clone());
    // A caller-supplied basis has no provenance guarantee, so the dual
    // re-solve and factorization-reuse paths (which require "own last
    // optimal basis with tracked edits") are reserved for `SolverSession`.
    engine.solve(start, false, false)
}

/// Folds a finished solve's counters into the process-wide observability
/// registry (one branch when the layer is disabled, see `wavesched-obs`).
fn publish_stats(s: &SolveStats, nrows: usize) {
    if !obs::enabled() {
        return;
    }
    obs::counter_add("lp.solves", s.solves);
    obs::counter_add("lp.iterations", s.iterations);
    obs::counter_add("lp.phase1_iterations", s.phase1_iterations);
    obs::counter_add("lp.refactorizations", s.refactorizations);
    obs::counter_add("lp.refactor_interval", s.refactor_interval);
    obs::counter_add("lp.refactor_cost_model", s.refactor_cost_model);
    obs::counter_add("lp.refactor_forced_fallback", s.refactor_forced_fallback);
    obs::counter_add("lp.refactor_forced_singular", s.refactor_forced_singular);
    obs::counter_add("lp.refactor_reuse_rejected", s.refactor_reuse_rejected);
    obs::counter_add("lp.lu_reuse_hits", s.lu_reuse_hits);
    obs::counter_add("lp.lu_updates", s.lu_updates);
    obs::counter_add("lp.degenerate_pivots", s.degenerate_pivots);
    obs::counter_add("lp.devex_resets", s.devex_resets);
    obs::counter_add("lp.bound_flips", s.bound_flips);
    obs::counter_add("lp.warm_starts_accepted", s.warm_starts_accepted);
    obs::counter_add("lp.warm_start_fallbacks", s.warm_start_fallbacks);
    obs::counter_add("lp.ftran_dense_fallbacks", s.ftran_dense_fallbacks);
    obs::counter_add("lp.btran_dense_fallbacks", s.btran_dense_fallbacks);
    obs::counter_add("lp.dual_iterations", s.dual_iterations);
    obs::counter_add("lp.dual_bound_flips", s.dual_bound_flips);
    obs::counter_add(
        "lp.pricing_candidates_scanned",
        s.pricing_candidates_scanned,
    );
    obs::counter_add("lp.partial_refreshes", s.partial_refreshes);
    obs::counter_add("lp.sanitizer_checks", s.sanitizer_checks);
    obs::counter_add("lp.sanitizer_violations", s.sanitizer_violations);
    obs::record("lp.solve_iterations", s.iterations);
    // Kernel density profile: histograms of the per-solve mean nonzero
    // counts and densities (percent of the basis dimension), the signal
    // that says whether hypersparsity is paying off on this workload.
    if let Some(avg) = s.ftran_nnz.checked_div(s.ftran_ops) {
        obs::record("lp.ftran_avg_nnz", avg);
        if let Some(pct) = (s.ftran_nnz * 100).checked_div(s.ftran_ops * nrows as u64) {
            obs::record("lp.ftran_density_pct", pct);
        }
    }
    if let Some(row_nnz) = s.pivot_row_nnz.checked_div(s.btran_ops) {
        obs::record("lp.pivot_row_nnz", row_nnz);
        if let Some(pct) = (s.btran_nnz * 100).checked_div(s.btran_ops * nrows as u64) {
            obs::record("lp.btran_density_pct", pct);
        }
    }
}

/// Where a nonbasic variable rests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarState {
    Basic(u32),
    AtLower,
    AtUpper,
    /// Free nonbasic, resting at zero.
    Free,
    /// Fixed (`l == u`) or retired artificial; never priced.
    Fixed,
}

#[derive(Clone)]
struct Engine {
    std: StdForm,
    cfg: SimplexConfig,
    /// Column occupying each basis position.
    basis: Vec<usize>,
    /// State per standardized column.
    state: Vec<VarState>,
    /// Current value per standardized column (basic entries mirrored from
    /// `xb` on demand).
    xval: Vec<f64>,
    /// Basic values by basis position.
    xb: Vec<f64>,
    /// Phase-dependent cost vector.
    cost: Vec<f64>,
    lu: Option<Lu>,
    etas: EtaFile,
    stats: SolveStats,
    /// Consecutive degenerate pivots; triggers Bland's rule.
    degen_run: u64,
    bland: bool,
    /// Scratch: dense vector indexed by basis position.
    work_pos: Vec<f64>,
    /// Scratch: dense vector indexed by row.
    work_row: Vec<f64>,
    /// Reduced costs, updated incrementally per pivot and recomputed at
    /// every refactorization.
    d: Vec<f64>,
    /// Devex reference weights.
    weights: Vec<f64>,
    /// Row-wise mirror of the constraint matrix in CSR form (column
    /// indices only; values are re-gathered column-wise). Built at
    /// construction and rebuilt wholesale whenever the structure grows
    /// (`append_columns` / `append_rows`); between growth events the
    /// matrix structure is immutable, only bounds and costs change. It
    /// lets the pivotal-row pass touch only columns intersecting the
    /// (sparse) BTRAN result.
    csr_ptr: Vec<usize>,
    csr_cols: Vec<u32>,
    /// Sparse FTRAN scratch: the entering column (row-indexed RHS).
    ftran_rhs: WorkVec,
    /// Sparse FTRAN result `w = B^{-1} a_q` (basis-position indexed),
    /// borrowed out of the engine for the ratio-test/pivot span via
    /// `mem::take` and always put back.
    ftran_w: WorkVec,
    /// Sparse pivotal-row BTRAN result `rho = B^{-T} e_r` (row-indexed).
    rho: WorkVec,
    /// Dense BTRAN scratch for full dual recomputation (row-indexed).
    dual: Vec<f64>,
    /// Pricing scratch: nonbasic columns touched by the pivotal row. Sized
    /// to `nnz(A)` up front (the worst-case number of pushes before
    /// dedup), so steady-state pivots never grow it.
    touched: Vec<u32>,
    /// DFS scratch for the sparse LU triangular solves.
    lu_scratch: LuScratch,
    /// Per-eta activation flags for the pruned BTRAN eta pass (scratch,
    /// rebuilt from the rhs pattern on every sparse BTRAN).
    eta_active: Vec<bool>,
    /// Reach size above which the sparse kernels fall back to dense
    /// (`kernel_density_threshold` × rows, precomputed).
    kernel_cap: usize,
    /// Columns whose bounds are temporarily shifted during phase 1 so the
    /// starting point is feasible, with their original bounds. Covers the
    /// signed artificials of a cold start and any basic variables a warm
    /// start left outside their bounds.
    relaxed: Vec<Relaxed>,
    /// Partial pricing on for this engine (config plus the `WS_PRICING`
    /// override, resolved at construction).
    pricing_partial: bool,
    /// Partial-pricing candidate list: column indices, rebuilt by each full
    /// refresh, scanned on minor iterations. Cleared at phase start.
    cand: Vec<u32>,
    /// Candidate membership flags (sized to the column count at phase
    /// start); Devex weight maintenance is restricted to members while the
    /// sublist is active.
    cand_member: Vec<bool>,
    /// Minor iterations remaining before the next forced full refresh.
    cand_budget: u32,
    /// Refresh scratch: `(score, column)` pairs of eligible columns.
    cand_scores: Vec<(f64, u32)>,
    /// Dual ratio-test scratch: `(column, alpha)` pairs over the pivotal
    /// row's nonbasic support.
    dual_cols: Vec<(u32, f64)>,
    /// Dual BFRT scratch: candidate order of `dual_cols` indices, sorted by
    /// dual ratio.
    dual_order: Vec<u32>,
    /// Sanitizer sweep interval (`WS_SANITIZE`, resolved at construction);
    /// 0 disables the sanitizer entirely.
    sanitize_every: u64,
    /// Pivots remaining until the next sanitizer sweep (0 when disabled).
    sanitize_left: u64,
    /// Resolved refactorization policy (config plus the `WS_REFACTOR`
    /// override, with a disabled cadence pinning it to `Interval`).
    refactor_policy: RefactorPolicy,
    /// Entry count of the current LU factors, set at every
    /// refactorization and bumped by the `add_rows` border extension —
    /// the cost model's per-pass work unit.
    lu_nnz: usize,
    /// True when the live engine state is a clean optimal endpoint the
    /// next solve may continue from without reinstalling anything:
    /// basis/state/xval consistent, LU factored for the live basis, eta
    /// file empty except for structural bordering etas. Cleared on every
    /// solve entry, re-established after an optimal extract, and
    /// maintained (not cleared) by `append_columns` / `append_rows`.
    reuse_ready: bool,
    /// Bordering etas appended by structural edits since the last solve,
    /// folded into the next solve's `lu_updates` stat.
    pending_lu_updates: u64,
}

/// A phase-1 bound relaxation: column `col` temporarily has one bound opened
/// and a ±1 phase-1 cost; `(lo, up)` are the bounds to restore afterwards.
#[derive(Clone)]
struct Relaxed {
    col: usize,
    lo: f64,
    up: f64,
}

/// The product-form eta file: `B_new = B_old * E_1 … E_k`, each `E` the
/// identity with column `pos` replaced by `w = B_old^{-1} a_q`.
///
/// Stored as a flat arena — every eta's entry list lives back-to-back in
/// one buffer — so steady-state pivots append without allocating once the
/// buffers reach their working set, and clearing at refactorization keeps
/// the capacity.
#[derive(Debug, Clone, Default)]
struct EtaFile {
    heads: Vec<EtaHead>,
    /// `(basis position, w value)` entries, ascending by position within
    /// each eta — the BTRAN gather order depends on it.
    entries: Vec<(u32, f64)>,
    /// Row-wise index over the arena: `pos_head[i]` is the most recent
    /// entry slot referencing basis position `i` (`ETA_NONE` if none), and
    /// `link`/`eta_of` run parallel to `entries`, chaining each slot to
    /// the previous one for the same position and naming its eta. Lets a
    /// sparse BTRAN visit only the etas that intersect its pattern.
    pos_head: Vec<u32>,
    link: Vec<u32>,
    eta_of: Vec<u32>,
}

/// Chain terminator / "no entry" sentinel for the eta row index.
const ETA_NONE: u32 = u32::MAX;

/// Header of one eta: its pivotal basis position, the offset of its entry
/// list in the arena, and the pivot element `w[pos]`.
#[derive(Debug, Clone, Copy)]
struct EtaHead {
    pos: u32,
    start: usize,
    pivot: f64,
}

impl EtaFile {
    fn len(&self) -> usize {
        self.heads.len()
    }

    fn is_empty(&self) -> bool {
        self.heads.is_empty()
    }

    /// Sizes the per-position chain heads (idempotent; one-time cost at
    /// engine construction).
    fn ensure_rows(&mut self, m: usize) {
        if self.pos_head.len() < m {
            self.pos_head.resize(m, ETA_NONE);
        }
    }

    /// Drops every eta but keeps the allocated buffers. Chain heads are
    /// reset by walking the entries (cheaper than refilling all `m`).
    fn clear(&mut self) {
        for &(i, _) in &self.entries {
            self.pos_head[i as usize] = ETA_NONE;
        }
        self.heads.clear();
        self.entries.clear();
        self.link.clear();
        self.eta_of.clear();
    }

    /// Pre-grows the arena (used by the allocation-free probe harness).
    fn reserve(&mut self, heads: usize, entries: usize) {
        self.heads.reserve(heads);
        self.entries.reserve(entries);
        self.link.reserve(entries);
        self.eta_of.reserve(entries);
    }

    #[inline]
    fn head(&self, k: usize) -> EtaHead {
        self.heads[k]
    }

    #[inline]
    fn entries_of(&self, k: usize) -> &[(u32, f64)] {
        let lo = self.heads[k].start;
        let hi = self
            .heads
            .get(k + 1)
            .map_or(self.entries.len(), |h| h.start);
        &self.entries[lo..hi]
    }

    /// Opens a new eta; its entries follow via [`Self::push_entry`].
    fn begin(&mut self, pos: u32, pivot: f64) {
        self.heads.push(EtaHead {
            pos,
            start: self.entries.len(),
            pivot,
        });
    }

    fn push_entry(&mut self, i: u32, v: f64) {
        let slot = self.entries.len() as u32;
        self.link.push(self.pos_head[i as usize]);
        self.eta_of.push(self.heads.len() as u32 - 1);
        self.pos_head[i as usize] = slot;
        self.entries.push((i, v));
    }
}

enum PhaseOutcome {
    Optimal,
    Unbounded,
    IterationLimit,
}

/// Builds the flat CSR row mirror (column indices per row) of `a`. Filling
/// in ascending column order keeps each row's list sorted, so the
/// pivotal-row pass visits columns in the same order a dense scan would.
fn build_row_mirror(a: &CscMatrix) -> (Vec<usize>, Vec<u32>) {
    let m = a.nrows();
    let mut csr_ptr = vec![0usize; m + 1];
    for j in 0..a.ncols() {
        let (rows, _) = a.col(j);
        for &r in rows {
            csr_ptr[r as usize + 1] += 1;
        }
    }
    for r in 0..m {
        csr_ptr[r + 1] += csr_ptr[r];
    }
    let mut csr_cols = vec![0u32; a.nnz()];
    let mut fill = csr_ptr.clone();
    for j in 0..a.ncols() {
        let (rows, _) = a.col(j);
        for &r in rows {
            csr_cols[fill[r as usize]] = j as u32;
            fill[r as usize] += 1;
        }
    }
    (csr_ptr, csr_cols)
}

impl Engine {
    fn new(std: StdForm, mut cfg: SimplexConfig) -> Self {
        let m = std.nrows;
        let ncols = std.ncols();
        if cfg.max_iterations == 0 {
            cfg.max_iterations = 50 * (m as u64 + ncols as u64) + 10_000;
        }
        // Resolve the refactorization policy. A disabled cadence
        // (usize::MAX, the kernel probes) pins the policy to the plain
        // interval mode and ignores the env override: probed windows must
        // measure steady-state eta chains deterministically.
        let refactor_policy = if cfg.refactor_interval == usize::MAX {
            RefactorPolicy::Interval
        } else {
            if let Some((policy, interval)) = refactor_env() {
                cfg.refactor_policy = policy;
                if let Some(n) = interval {
                    cfg.refactor_interval = n;
                }
            }
            cfg.refactor_policy
        };
        let nnz = std.a.nnz();
        let (csr_ptr, csr_cols) = build_row_mirror(&std.a);
        // lint: allow(lossy-cast, reason = "intentional truncation of a density fraction to a scratch-arena size")
        let kernel_cap = (pos_or_zero(cfg.kernel_density_threshold) * m as f64) as usize;
        let mut etas = EtaFile::default();
        etas.ensure_rows(m);
        Engine {
            cost: vec![0.0; ncols],
            state: vec![VarState::Fixed; ncols],
            xval: vec![0.0; ncols],
            basis: Vec::with_capacity(m),
            xb: vec![0.0; m],
            lu: None,
            etas,
            stats: SolveStats::default(),
            degen_run: 0,
            bland: false,
            work_pos: vec![0.0; m],
            work_row: vec![0.0; m],
            d: vec![0.0; ncols],
            weights: vec![1.0; ncols],
            csr_ptr,
            csr_cols,
            ftran_rhs: WorkVec::new(m),
            ftran_w: WorkVec::new(m),
            rho: WorkVec::new(m),
            dual: vec![0.0; m],
            touched: Vec::with_capacity(nnz),
            lu_scratch: LuScratch::new(m),
            eta_active: Vec::new(),
            kernel_cap,
            relaxed: Vec::new(),
            pricing_partial: pricing_env().unwrap_or(cfg.partial_pricing),
            cand: Vec::new(),
            cand_member: vec![false; ncols],
            cand_budget: 0,
            cand_scores: Vec::with_capacity(ncols),
            dual_cols: Vec::with_capacity(nnz),
            dual_order: Vec::with_capacity(nnz),
            sanitize_every: sanitize::sanitize_env(),
            sanitize_left: sanitize::sanitize_env(),
            refactor_policy,
            lu_nnz: 0,
            reuse_ready: false,
            pending_lu_updates: 0,
            std,
            cfg,
        }
    }

    /// Rebuilds every structure-derived piece of engine state after the
    /// standardized form grew columns and/or rows: the CSR row mirror, the
    /// row-dimensioned scratch buffers, the kernel density cap, and the
    /// auto-derived iteration budget. The carried factorization and eta
    /// file are deliberately left alone — the callers (`append_columns`,
    /// `append_rows`) decide between preserving the factorization across
    /// the splice and dropping it via `invalidate_factorization`.
    fn after_structure_change(&mut self) {
        let m = self.std.nrows;
        let ncols = self.std.ncols();
        let (csr_ptr, csr_cols) = build_row_mirror(&self.std.a);
        self.csr_ptr = csr_ptr;
        self.csr_cols = csr_cols;
        if self.xb.len() != m {
            self.xb.resize(m, 0.0);
            self.work_pos.resize(m, 0.0);
            self.work_row.resize(m, 0.0);
            self.dual.resize(m, 0.0);
            self.ftran_rhs = WorkVec::new(m);
            self.ftran_w = WorkVec::new(m);
            self.rho = WorkVec::new(m);
            self.lu_scratch = LuScratch::new(m);
            self.etas.ensure_rows(m);
        }
        // lint: allow(lossy-cast, reason = "intentional truncation of a density fraction to a scratch-arena size")
        self.kernel_cap = (pos_or_zero(self.cfg.kernel_density_threshold) * m as f64) as usize;
        self.touched = Vec::with_capacity(self.std.a.nnz());
        // The default iteration cap scales with the problem size; growth
        // may only raise it (an explicit user cap is never lowered).
        self.cfg.max_iterations = self
            .cfg
            .max_iterations
            .max(50 * (m as u64 + ncols as u64) + 10_000);
    }

    /// Drops the carried factorization and every piece of cross-solve
    /// bookkeeping that rides on it. The next solve entry refactorizes
    /// from scratch.
    fn invalidate_factorization(&mut self) {
        self.lu = None;
        self.etas.clear();
        self.reuse_ready = false;
        self.pending_lu_updates = 0;
    }

    /// Parks a freshly spliced column nonbasic exactly the way the crash
    /// basis would rest it, so a preserved factorization sees a consistent
    /// nonbasic point without a full solve-entry rewrite.
    fn park_fresh(&mut self, j: usize) {
        let (l, u) = (self.std.lower[j], self.std.upper[j]);
        self.state[j] = if self.std.kind[j] == ColKind::Artificial || l == u {
            VarState::Fixed
        } else if l.is_finite() && (u.is_infinite() || l.abs() <= u.abs()) {
            VarState::AtLower
        } else if u.is_finite() {
            VarState::AtUpper
        } else {
            VarState::Free
        };
        self.xval[j] = self.std.resting_value(j);
    }

    /// Product-form extension of a carried factorization after
    /// [`Self::append_rows`] grew the basis by `k` rows: the new activity
    /// columns (spliced at `at`) become basic at the new positions, the LU
    /// is trivially extended to factor `diag(B_old, -I)`, and one eta per
    /// old basis column with new-row entries supplies the coupling block.
    ///
    /// Writing `B_new = [[B_old, 0], [C, -I]]` (columns: old basis then new
    /// activity columns; `C` = new-row entries of the old basis columns),
    /// `ExtLU^{-1} B_new = [[I, 0], [-C, I]]`, which is the commuting
    /// product over old positions `p` of the eta with column `p` replaced
    /// by `e_p - sum_i C[i][p] e_{m0+i}`. CG's capacity rows carry no
    /// coefficients on existing columns, so the hot path appends zero etas.
    fn extend_factorization(&mut self, m0: usize, k: usize, at: usize) {
        let lu = self
            .lu
            .as_mut()
            // lint: allow(lib-unwrap, reason = "invariant: the caller checked lu.is_some() before choosing the preserve path")
            .expect("invariant: extend_factorization needs a live LU");
        lu.extend_rows(k);
        self.lu_nnz += k;
        for i in 0..k {
            let j = at + i;
            self.basis.push(j);
            // lint: allow(lossy-cast, reason = "basis positions are bounded by the CSR u32 index width by construction")
            self.state[j] = VarState::Basic((m0 + i) as u32);
        }
        for p in 0..m0 {
            let (rows, vals) = self.std.a.col(self.basis[p]);
            let cut = rows.partition_point(|&r| (r as usize) < m0);
            if cut == rows.len() {
                continue;
            }
            // lint: allow(lossy-cast, reason = "basis positions are bounded by the CSR u32 index width by construction")
            self.etas.begin(p as u32, 1.0);
            self.etas.push_entry(p as u32, 1.0);
            for t in cut..rows.len() {
                self.etas.push_entry(rows[t], -vals[t]);
            }
            self.pending_lu_updates += 1;
        }
    }

    /// Appends structural columns to the held standardized form, shifting
    /// the activity and artificial blocks right. The per-column engine
    /// buffers get placeholder entries (every solve path rewrites all
    /// per-column state before use) and basic column indices are re-pointed
    /// past the insertion, so a basis held across the append stays valid.
    fn append_columns(&mut self, cols: &[NewColumn]) {
        if cols.is_empty() {
            return;
        }
        // A nonbasic column splice never touches B: the carried
        // factorization stays valid as long as the new columns are parked
        // nonbasic (done below, after the per-column state exists).
        let preserve = self.reuse_ready && self.lu.is_some();
        let n0 = self.std.nstruct;
        let k = cols.len();
        let mut packed: Vec<Vec<(u32, f64)>> = Vec::with_capacity(k);
        let mut lows = Vec::with_capacity(k);
        let mut ups = Vec::with_capacity(k);
        let mut costs = Vec::with_capacity(k);
        for c in cols {
            assert!(!c.lower.is_nan() && !c.upper.is_nan(), "NaN bound");
            assert!(c.cost.is_finite(), "non-finite cost");
            let l = if is_inf(c.lower) && c.lower < 0.0 {
                f64::NEG_INFINITY
            } else {
                c.lower
            };
            let u = if is_inf(c.upper) && c.upper > 0.0 {
                f64::INFINITY
            } else {
                c.upper
            };
            assert!(l <= u, "bounds crossed: [{l}, {u}]");
            lows.push(l);
            ups.push(u);
            costs.push(self.std.obj_sign * c.cost);
            let mut es: Vec<(u32, f64)> = c
                .entries
                .iter()
                .map(|&(r, v)| {
                    assert!(r.index() < self.std.nrows, "row out of range");
                    assert!(v.is_finite(), "non-finite coefficient");
                    (r.index() as u32, v)
                })
                .collect();
            es.sort_unstable_by_key(|&(r, _)| r);
            for w in es.windows(2) {
                assert!(w[0].0 != w[1].0, "duplicate row entry in new column");
            }
            packed.push(es);
        }
        self.std.a.insert_cols(n0, &packed);
        self.std.lower.splice(n0..n0, lows);
        self.std.upper.splice(n0..n0, ups);
        self.std.cost.splice(n0..n0, costs);
        self.std.kind.splice(n0..n0, vec![ColKind::Structural; k]);
        self.std.nstruct = n0 + k;
        self.cost.splice(n0..n0, vec![0.0; k]);
        self.state.splice(n0..n0, vec![VarState::Fixed; k]);
        self.xval.splice(n0..n0, vec![0.0; k]);
        self.d.splice(n0..n0, vec![0.0; k]);
        self.weights.splice(n0..n0, vec![1.0; k]);
        for b in &mut self.basis {
            if *b >= n0 {
                *b += k;
            }
        }
        self.after_structure_change();
        if preserve {
            for j in n0..n0 + k {
                self.park_fresh(j);
            }
        } else {
            self.invalidate_factorization();
        }
    }

    /// Appends constraint rows to the held standardized form: the matrix
    /// grows `k` rows, each new row gets an activity column (single `-1`,
    /// bounded by the row bounds) spliced at the end of the activity block
    /// and an artificial column (single `+1`, fixed at zero) at the end of
    /// the artificial block. Basic column indices in the shifted region are
    /// re-pointed, so a basis held across the append stays valid.
    fn append_rows(&mut self, rows: &[NewRow]) {
        if rows.is_empty() {
            return;
        }
        let m0 = self.std.nrows;
        let n = self.std.nstruct;
        let k = rows.len();
        // Row growth changes B itself; a carried factorization survives
        // only through the product-form extension below, which needs the
        // held basis to cover exactly the pre-growth rows.
        let preserve = self.reuse_ready && self.lu.is_some() && self.basis.len() == m0;
        let mut trips: Vec<(u32, u32, f64)> = Vec::new();
        let mut lows = Vec::with_capacity(k);
        let mut ups = Vec::with_capacity(k);
        for (i, r) in rows.iter().enumerate() {
            assert!(!r.lower.is_nan() && !r.upper.is_nan(), "NaN bound");
            let l = if is_inf(r.lower) && r.lower < 0.0 {
                f64::NEG_INFINITY
            } else {
                r.lower
            };
            let u = if is_inf(r.upper) && r.upper > 0.0 {
                f64::INFINITY
            } else {
                r.upper
            };
            assert!(l <= u, "bounds crossed: [{l}, {u}]");
            lows.push(l);
            ups.push(u);
            for &(c, v) in &r.entries {
                assert!(c.index() < n, "col out of range");
                assert!(v.is_finite(), "non-finite coefficient");
                // lint: allow(lossy-cast, reason = "row indices are bounded by the CSR u32 index width by construction")
                trips.push(((m0 + i) as u32, c.index() as u32, v));
            }
        }
        self.std.a.append_rows(k, &trips);
        // lint: allow(lossy-cast, reason = "row indices are bounded by the CSR u32 index width by construction")
        let acts: Vec<Vec<(u32, f64)>> = (0..k).map(|i| vec![((m0 + i) as u32, -1.0)]).collect();
        self.std.a.insert_cols(n + m0, &acts);
        for i in 0..k {
            // lint: allow(lossy-cast, reason = "row indices are bounded by the CSR u32 index width by construction")
            self.std.a.push_col(&[((m0 + i) as u32, 1.0)]);
        }
        let at = n + m0;
        self.std.lower.splice(at..at, lows);
        self.std.upper.splice(at..at, ups);
        self.std.cost.splice(at..at, vec![0.0; k]);
        self.std.kind.splice(at..at, vec![ColKind::Activity; k]);
        self.std.lower.resize(self.std.lower.len() + k, 0.0);
        self.std.upper.resize(self.std.upper.len() + k, 0.0);
        self.std.cost.resize(self.std.cost.len() + k, 0.0);
        self.std
            .kind
            .resize(self.std.kind.len() + k, ColKind::Artificial);
        self.std.nrows = m0 + k;
        // Placeholder per-column engine state for the new activity columns
        // (spliced) and artificial columns (appended).
        self.cost.splice(at..at, vec![0.0; k]);
        self.state.splice(at..at, vec![VarState::Fixed; k]);
        self.xval.splice(at..at, vec![0.0; k]);
        self.d.splice(at..at, vec![0.0; k]);
        self.weights.splice(at..at, vec![1.0; k]);
        self.cost.resize(self.cost.len() + k, 0.0);
        self.state.resize(self.state.len() + k, VarState::Fixed);
        self.xval.resize(self.xval.len() + k, 0.0);
        self.d.resize(self.d.len() + k, 0.0);
        self.weights.resize(self.weights.len() + k, 1.0);
        for b in &mut self.basis {
            if *b >= at {
                *b += k;
            }
        }
        self.after_structure_change();
        if preserve {
            self.extend_factorization(m0, k, at);
        } else {
            self.invalidate_factorization();
        }
    }

    /// Clears all per-solve state so the engine can run again on its held
    /// (possibly mutated) standardized form. Artificial columns are returned
    /// to their pristine fixed-at-zero state; a previous solve may have
    /// signed and opened them.
    fn reset_for_solve(&mut self) {
        self.stats = SolveStats {
            solves: 1,
            ..SolveStats::default()
        };
        self.cost.fill(0.0);
        self.etas.clear();
        self.lu = None;
        self.bland = false;
        self.degen_run = 0;
        self.relaxed.clear();
        self.reset_candidates();
        for i in 0..self.std.nrows {
            let a = self.std.artificial_col(i);
            self.std.lower[a] = 0.0;
            self.std.upper[a] = 0.0;
            self.state[a] = VarState::Fixed;
            self.xval[a] = 0.0;
        }
    }

    /// Builds the crash basis: activity variable where its natural value is
    /// feasible, signed artificial otherwise. Sets phase-1 costs.
    fn crash(&mut self) {
        let m = self.std.nrows;
        // Rest all structural and activity columns; fix unused artificials.
        for j in 0..self.std.ncols() {
            let (l, u) = (self.std.lower[j], self.std.upper[j]);
            self.state[j] = if self.std.kind[j] == ColKind::Artificial || l == u {
                VarState::Fixed
            } else if l.is_finite() && (u.is_infinite() || l.abs() <= u.abs()) {
                VarState::AtLower
            } else if u.is_finite() {
                VarState::AtUpper
            } else {
                VarState::Free
            };
            self.xval[j] = self.std.resting_value(j);
        }
        // Row activities of the structural block at the resting point.
        let act = {
            let mut act = vec![0.0; m];
            for j in 0..self.std.nstruct {
                let xj = self.xval[j];
                // lint: allow(float-eq, reason = "exact-zero skip is a sparsity guard: skipping true zeros never changes the arithmetic")
                if xj != 0.0 {
                    self.std.a.col_axpy(j, xj, &mut act);
                }
            }
            act
        };
        self.basis.clear();
        #[allow(clippy::needless_range_loop)] // parallel arrays, index is clearest
        for i in 0..m {
            let s = self.std.activity_col(i);
            let (sl, su) = (self.std.lower[s], self.std.upper[s]);
            let v = act[i];
            let tol = self.cfg.feas_tol;
            if v >= sl - tol && v <= su + tol {
                // Activity variable basic and feasible: no artificial needed.
                self.basis.push(s);
                self.state[s] = VarState::Basic(i as u32);
                self.xb[i] = v;
            } else {
                // Rest the activity at its nearest bound, make the signed
                // artificial basic with the residual.
                let srest = if v < sl { sl } else { su };
                self.xval[s] = srest;
                self.state[s] = if srest == sl {
                    VarState::AtLower
                } else {
                    VarState::AtUpper
                };
                let a = self.std.artificial_col(i);
                // Row equation: act - s + a = 0  =>  a = s - act.
                let aval = srest - v;
                self.relax_column(a, aval);
                self.basis.push(a);
                self.state[a] = VarState::Basic(i as u32);
                self.xb[i] = aval;
            }
        }
    }

    /// Solves the held standardized form, warm-starting from `start` when
    /// supplied and usable, with a silent cold fallback otherwise.
    /// `try_dual` additionally tries a dual simplex re-solve first — only
    /// correct when `start` is this engine's own last optimal basis and
    /// nothing but bounds/RHS changed since (the caller asserts that); the
    /// dual path degrades to the ordinary warm/cold ladder on any doubt.
    /// `try_reuse` lets the engine skip the entry refactorization entirely
    /// when the carried factorization is still valid (`reuse_ready`,
    /// maintained across edits by [`SolverSession`]) and the residual
    /// spot-check passes.
    fn solve(
        &mut self,
        start: Option<&Basis>,
        try_dual: bool,
        try_reuse: bool,
    ) -> Result<Solution, SolveError> {
        let _span = obs::span("lp_solve");
        // Take the cross-solve bookkeeping up front: any path that does not
        // explicitly re-arm reuse (below) leaves it off, and the pending
        // product-form updates are attributed to whichever solve consumes
        // (or discards) them.
        let reuse_ok = std::mem::take(&mut self.reuse_ready);
        let pending = std::mem::take(&mut self.pending_lu_updates);
        let mut sol = self.solve_inner(start, try_dual, try_reuse && reuse_ok)?;
        sol.stats.lu_updates += pending;
        self.stats.lu_updates += pending;
        publish_stats(&sol.stats, self.std.nrows);
        // Every Optimal exit ends with a verification refactorization and an
        // empty eta file (iterate() refuses to claim optimality otherwise),
        // which is exactly the state a later solve may reuse.
        self.reuse_ready =
            sol.status == Status::Optimal && self.lu.is_some() && self.etas.is_empty();
        Ok(sol)
    }

    fn solve_inner(
        &mut self,
        start: Option<&Basis>,
        try_dual: bool,
        try_reuse: bool,
    ) -> Result<Solution, SolveError> {
        let mut reuse_rejected = 0u64;
        if try_reuse && start.is_some() {
            match self.attempt_reuse(try_dual) {
                Ok(sol) => return Ok(sol),
                Err(()) => {
                    // Reuse gate or continuation failed: undo any phase-1
                    // bound shifts it left behind, then run the ordinary
                    // ladder from scratch. The burned work is discarded,
                    // matching how a failed warm attempt restarts cold.
                    reuse_rejected = 1;
                    for k in 0..self.relaxed.len() {
                        let Relaxed { col, lo, up } = self.relaxed[k];
                        self.std.lower[col] = lo;
                        self.std.upper[col] = up;
                    }
                    self.relaxed.clear();
                }
            }
        }
        let mut sol = 'ladder: {
            if let Some(basis) = start {
                self.reset_for_solve();
                if try_dual {
                    match self.attempt_dual(basis) {
                        Ok(sol) => break 'ladder sol,
                        Err(_) => {
                            // Dual path abandoned (dual-infeasible after the
                            // edits, numerical trouble, or stalled): scrub the
                            // partially-installed state but keep the work it
                            // burned on the counters, then fall through to the
                            // ordinary warm attempt.
                            let stats = self.stats;
                            self.reset_for_solve();
                            self.stats = stats;
                        }
                    }
                }
                match self.attempt_warm(basis) {
                    Ok(sol) => break 'ladder sol,
                    Err(_) => {
                        // Undo phase-1 bound shifts before restarting cold; the
                        // cold path resets every other piece of engine state.
                        for k in 0..self.relaxed.len() {
                            let Relaxed { col, lo, up } = self.relaxed[k];
                            self.std.lower[col] = lo;
                            self.std.upper[col] = up;
                        }
                        let sol = self.run_cold()?;
                        debug_assert_eq!(sol.stats.warm_start_fallbacks, 1);
                        break 'ladder sol;
                    }
                }
            }
            let mut sol = self.run_cold()?;
            sol.stats.warm_start_fallbacks = 0; // no basis was offered
            self.stats.warm_start_fallbacks = 0;
            sol
        };
        sol.stats.refactor_reuse_rejected += reuse_rejected;
        self.stats.refactor_reuse_rejected += reuse_rejected;
        Ok(sol)
    }

    /// Cold start: crash basis, phase 1 if needed, phase 2. Tentatively
    /// counts itself as a warm-start fallback; [`Self::solve`] clears the
    /// counter when no basis was offered in the first place.
    fn run_cold(&mut self) -> Result<Solution, SolveError> {
        self.reset_for_solve();
        self.stats.warm_start_fallbacks = 1;
        self.crash();
        self.refactorize(RefactorReason::Forced)?;

        // Phase 1: minimize total artificial magnitude (costs set in crash).
        if !self.relaxed.is_empty() {
            if let Some(sol) = self.run_phase1()? {
                return Ok(sol);
            }
        }
        self.finish_phase2()
    }

    /// Runs phase 1 with the relaxation costs already installed. Returns a
    /// terminal solution (iteration limit or infeasible), or `None` when the
    /// iterate reached feasibility and phase 2 should proceed.
    fn run_phase1(&mut self) -> Result<Option<Solution>, SolveError> {
        let before = self.stats.iterations;
        let out = self.iterate(true)?;
        self.stats.phase1_iterations += self.stats.iterations - before;
        match out {
            PhaseOutcome::IterationLimit => {
                return Ok(Some(self.extract(Status::IterationLimit)));
            }
            PhaseOutcome::Unbounded => {
                // Phase-1 objective is bounded below; an "unbounded" signal
                // is a numerical breakdown.
                return Err(SolveError::Numerical("phase 1 reported unbounded".into()));
            }
            PhaseOutcome::Optimal => {}
        }
        let infeas = self.phase1_objective();
        if infeas > self.cfg.feas_tol.max(1e-9 * self.std.nrows as f64) {
            return Ok(Some(self.extract(Status::Infeasible)));
        }
        Ok(None)
    }

    /// Restores relaxed bounds, pins artificials, installs the true costs,
    /// and runs phase 2 to termination.
    fn finish_phase2(&mut self) -> Result<Solution, SolveError> {
        self.restore_relaxed();
        // Pin artificials to zero and install the true costs.
        for i in 0..self.std.nrows {
            let a = self.std.artificial_col(i);
            self.std.lower[a] = 0.0;
            self.std.upper[a] = 0.0;
            self.cost[a] = 0.0;
            if !matches!(self.state[a], VarState::Basic(_)) {
                self.state[a] = VarState::Fixed;
                self.xval[a] = 0.0;
            }
        }
        for j in 0..self.std.ncols() {
            if self.std.kind[j] != ColKind::Artificial {
                self.cost[j] = self.std.cost[j];
            }
        }
        self.bland = false;
        self.degen_run = 0;
        match self.iterate(false)? {
            PhaseOutcome::Optimal => Ok(self.extract(Status::Optimal)),
            PhaseOutcome::Unbounded => Ok(self.extract(Status::Unbounded)),
            PhaseOutcome::IterationLimit => Ok(self.extract(Status::IterationLimit)),
        }
    }

    /// Opens the bound of `col` on the side `value` violates, gives it the
    /// matching ±1 phase-1 cost, and records the original bounds for
    /// [`Self::restore_relaxed`]. For artificials the "original" bounds are
    /// always `[0, 0]` regardless of what a previous basis repair left.
    fn relax_column(&mut self, col: usize, value: f64) {
        let (lo, up) = if self.std.kind[col] == ColKind::Artificial {
            (0.0, 0.0)
        } else {
            (self.std.lower[col], self.std.upper[col])
        };
        if value >= up {
            // Too high: open upward, cost pushes back down toward `up`.
            self.std.lower[col] = up;
            self.std.upper[col] = f64::INFINITY;
            self.cost[col] = 1.0;
        } else {
            // Too low: open downward, cost pushes back up toward `lo`.
            self.std.lower[col] = f64::NEG_INFINITY;
            self.std.upper[col] = lo;
            self.cost[col] = -1.0;
        }
        self.relaxed.push(Relaxed { col, lo, up });
    }

    /// Total violation of the original bounds of every relaxed column at the
    /// current iterate — the phase-1 objective (for a cold start this is the
    /// classic total artificial magnitude).
    fn phase1_objective(&self) -> f64 {
        let mut v = 0.0;
        for r in &self.relaxed {
            let x = match self.state[r.col] {
                VarState::Basic(pos) => self.xb[pos as usize],
                _ => self.xval[r.col],
            };
            v += pos_or_zero(x - r.up) + pos_or_zero(r.lo - x);
        }
        v
    }

    /// Puts every relaxed column's original bounds back after a successful
    /// phase 1 and re-parks the ones that went nonbasic: a column that
    /// parked at its temporary finite bound is sitting exactly on the
    /// original bound it used to violate.
    fn restore_relaxed(&mut self) {
        for k in 0..self.relaxed.len() {
            let Relaxed { col, lo, up } = self.relaxed[k];
            self.std.lower[col] = lo;
            self.std.upper[col] = up;
            self.cost[col] = 0.0;
            if !matches!(self.state[col], VarState::Basic(_)) {
                self.state[col] = if lo == up {
                    VarState::Fixed
                } else if self.xval[col] == up {
                    VarState::AtUpper
                } else if self.xval[col] == lo {
                    VarState::AtLower
                } else if lo.is_infinite() && up.is_infinite() {
                    VarState::Free
                } else {
                    // Drifted off both bounds (retired artificial, repaired
                    // basis): park at the nearest original bound.
                    self.xval[col] = self.std.resting_value(col);
                    if self.xval[col] == up {
                        VarState::AtUpper
                    } else {
                        VarState::AtLower
                    }
                };
            }
        }
        self.relaxed.clear();
    }

    /// Tries to solve starting from `warm`. An `Err` means the basis could
    /// not be installed (shape mismatch or numerical failure) and the caller
    /// should restart cold; it never means the problem itself is bad.
    fn attempt_warm(&mut self, warm: &Basis) -> Result<Solution, ()> {
        if warm.cols.len() != self.std.nstruct || warm.rows.len() != self.std.nrows {
            return Err(());
        }
        let m = self.std.nrows;

        // Install nonbasic states at bounds compatible with the *current*
        // bounds (the problem may have been mutated since the basis was
        // extracted); collect basic candidates.
        let mut basic: Vec<usize> = Vec::with_capacity(m);
        for j in 0..self.std.nstruct + m {
            let status = if j < self.std.nstruct {
                warm.cols[j]
            } else {
                warm.rows[j - self.std.nstruct]
            };
            if status == BasisStatus::Basic {
                basic.push(j);
                continue;
            }
            self.park_nonbasic(j, status);
        }
        // Wrong basic count: demote extras, pad a deficit with artificials
        // (their columns are independent; a redundant choice is caught and
        // repaired during factorization).
        while basic.len() > m {
            let Some(j) = basic.pop() else { break };
            self.park_nonbasic(j, BasisStatus::AtLower);
        }
        let mut next_row = 0usize;
        while basic.len() < m {
            basic.push(self.std.artificial_col(next_row));
            next_row += 1;
        }
        self.basis = basic;
        for (pos, &j) in self.basis.iter().enumerate() {
            self.state[j] = VarState::Basic(pos as u32);
        }
        // Factorize (with singularity repair) and compute the basic values
        // the installed nonbasic point implies.
        if self.refactorize(RefactorReason::Forced).is_err() {
            return Err(());
        }

        // Any basic value outside its bounds gets a phase-1 bound shift.
        for pos in 0..m {
            let j = self.basis[pos];
            let v = self.xb[pos];
            let (lo, up) = if self.std.kind[j] == ColKind::Artificial {
                // Basis repair may have reopened an artificial; it must
                // still end phase 1 at zero.
                (0.0, 0.0)
            } else {
                (self.std.lower[j], self.std.upper[j])
            };
            let tol = self.cfg.feas_tol;
            if v > up + tol || v < lo - tol {
                self.relax_column(j, v);
            } else if self.std.kind[j] == ColKind::Artificial
                // lint: allow(float-eq, reason = "exact zero-bound test picks the cheaper parking bound; either choice is feasible and deterministic")
                && (self.std.lower[j] != 0.0 || self.std.upper[j] != 0.0)
            {
                // Feasible (≈0) but reopened: pin it back down.
                self.std.lower[j] = 0.0;
                self.std.upper[j] = 0.0;
            }
        }

        self.stats.warm_starts_accepted = 1;
        if !self.relaxed.is_empty() {
            match self.run_phase1() {
                // Phase 1 could not clear the violations. That is NOT an
                // infeasibility proof here: the bound shift clamps each
                // relaxed variable at the bound it violated, and true
                // feasibility may need it strictly inside its range. Only
                // the cold artificial-based phase 1 decides infeasibility,
                // so any terminal phase-1 outcome falls back.
                Ok(Some(_)) => return Err(()),
                Ok(None) => {}
                // Numerical trouble while repairing the warm point: let the
                // caller restart cold rather than surfacing an error a cold
                // solve would not produce.
                Err(_) => return Err(()),
            }
        }
        self.finish_phase2().map_err(|_| ())
    }

    /// Parks column `j` nonbasic in the state `status` suggests, degrading
    /// to whatever its current bounds actually allow.
    fn park_nonbasic(&mut self, j: usize, status: BasisStatus) {
        let (l, u) = (self.std.lower[j], self.std.upper[j]);
        if l == u {
            self.state[j] = VarState::Fixed;
            self.xval[j] = l;
            return;
        }
        let (state, x) = match status {
            BasisStatus::AtLower if l.is_finite() => (VarState::AtLower, l),
            BasisStatus::AtUpper if u.is_finite() => (VarState::AtUpper, u),
            BasisStatus::Free if l.is_infinite() && u.is_infinite() => (VarState::Free, 0.0),
            // Requested side no longer exists: rest wherever the current
            // bounds put a fresh nonbasic variable.
            _ => {
                let r = self.std.resting_value(j);
                let s = if l.is_infinite() && u.is_infinite() {
                    VarState::Free
                } else if r == l {
                    VarState::AtLower
                } else {
                    VarState::AtUpper
                };
                (s, r)
            }
        };
        self.state[j] = state;
        self.xval[j] = x;
    }

    /// Factorization-reuse solve entry: the engine still holds its own
    /// last-optimal basis, factorization, and per-column state, with only
    /// bound/RHS/cost edits and nonbasic splices applied since (the
    /// session certifies that via `reuse_ready`). Skips `Lu::factor`
    /// entirely: re-parks the nonbasics against the edited bounds,
    /// recomputes the basic values through the carried factors, and
    /// residual-checks the result before continuing — through the dual
    /// loop when the edits kept the basis dual feasible, through the
    /// bound-shift phase 1 otherwise. `Err(())` abandons the attempt and
    /// the ordinary warm/cold ladder runs from scratch.
    fn attempt_reuse(&mut self, try_dual: bool) -> Result<Solution, ()> {
        // Partial reset: everything reset_for_solve clears *except* the
        // factorization, the basis, and the per-column states it is
        // reusing.
        self.stats = SolveStats {
            solves: 1,
            ..SolveStats::default()
        };
        self.cost.fill(0.0);
        self.bland = false;
        self.degen_run = 0;
        self.relaxed.clear();
        self.reset_candidates();

        // Re-pin artificials to their pristine fixed-at-zero state. A basic
        // artificial (a degenerate optimum can keep one at value zero) stays
        // basic — forcing it out would change B — but disqualifies the dual
        // branch, which requires an artificial-free basis.
        let mut artificial_basic = false;
        for i in 0..self.std.nrows {
            let a = self.std.artificial_col(i);
            self.std.lower[a] = 0.0;
            self.std.upper[a] = 0.0;
            if matches!(self.state[a], VarState::Basic(_)) {
                artificial_basic = true;
            } else {
                self.state[a] = VarState::Fixed;
                self.xval[a] = 0.0;
            }
        }
        // Re-park every nonbasic against the *current* bounds (the edits
        // may have moved or removed the side a column was resting on).
        for j in 0..self.std.ncols() {
            if self.std.kind[j] == ColKind::Artificial {
                continue;
            }
            let status = match self.state[j] {
                VarState::Basic(_) => continue,
                VarState::AtLower | VarState::Fixed => BasisStatus::AtLower,
                VarState::AtUpper => BasisStatus::AtUpper,
                VarState::Free => BasisStatus::Free,
            };
            self.park_nonbasic(j, status);
        }

        // Basic values through the carried factors, then the reuse gate:
        // the sanitizer's residual spot-check. A stale or drifted
        // factorization shows up as a nonzero `A x` residual here and
        // rejects the reuse before any pivot can act on it.
        self.compute_xb();
        if !self.residual_ok() {
            return Err(());
        }
        self.stats.lu_reuse_hits = 1;
        self.stats.warm_starts_accepted = 1;

        if try_dual && !artificial_basic {
            // Phase-2 costs, then the same dual-feasibility screen as
            // `attempt_dual`: bound/RHS-only edits keep the reduced-cost
            // signs, so the dual loop drives out the primal violations in
            // a handful of pivots.
            for j in 0..self.std.ncols() {
                if self.std.kind[j] != ColKind::Artificial {
                    self.cost[j] = self.std.cost[j];
                }
            }
            self.recompute_reduced();
            let dtol = self.cfg.opt_tol;
            let mut dual_feasible = true;
            for j in 0..self.std.ncols() {
                let ok = match self.state[j] {
                    VarState::Basic(_) | VarState::Fixed => true,
                    VarState::AtLower => self.d[j] >= -dtol,
                    VarState::AtUpper => self.d[j] <= dtol,
                    VarState::Free => self.d[j].abs() <= dtol,
                };
                if !ok {
                    dual_feasible = false;
                    break;
                }
            }
            if dual_feasible {
                self.dual_loop()?;
                // Exact finish, as in `attempt_dual`: the primal loop
                // re-verifies the claimed optimum against recomputed
                // reduced costs (refactorizing in the process).
                return match self.iterate(false).map_err(|_| ())? {
                    PhaseOutcome::Optimal => Ok(self.extract(Status::Optimal)),
                    PhaseOutcome::Unbounded | PhaseOutcome::IterationLimit => Err(()),
                };
            }
            // Dual screen failed (a cost edit, or a re-park flipped a
            // sign): back to phase-1 costs for the primal continuation.
            self.cost.fill(0.0);
        }

        // Primal continuation, as in `attempt_warm`: bound-shift every
        // basic value the edits pushed outside its bounds, clear the
        // violations in phase 1, finish in phase 2.
        for pos in 0..self.std.nrows {
            let j = self.basis[pos];
            let v = self.xb[pos];
            let (lo, up) = if self.std.kind[j] == ColKind::Artificial {
                (0.0, 0.0)
            } else {
                (self.std.lower[j], self.std.upper[j])
            };
            let tol = self.cfg.feas_tol;
            if v > up + tol || v < lo - tol {
                self.relax_column(j, v);
            }
        }
        if !self.relaxed.is_empty() {
            match self.run_phase1() {
                // Terminal phase-1 outcomes are not infeasibility proofs on
                // a shifted start (see `attempt_warm`): fall back.
                Ok(Some(_)) => return Err(()),
                Ok(None) => {}
                Err(_) => return Err(()),
            }
        }
        self.finish_phase2().map_err(|_| ())
    }

    /// Core primal simplex loop shared by both phases.
    ///
    /// Reduced costs are maintained incrementally (updated with the pivotal
    /// row after every basis change) and recomputed exactly at every
    /// refactorization; entering variables are chosen by Devex pricing with
    /// a Bland fallback after a long degenerate run.
    fn iterate(&mut self, phase1: bool) -> Result<PhaseOutcome, SolveError> {
        self.recompute_reduced();
        self.weights.fill(1.0);
        self.reset_candidates();
        loop {
            if self.stats.iterations >= self.cfg.max_iterations {
                return Ok(PhaseOutcome::IterationLimit);
            }
            if let Some(reason) = self.cadence_refactor_due() {
                self.refactorize(reason)?;
                self.recompute_reduced();
            }

            // Pricing from the maintained reduced costs.
            let entering = match self.price() {
                Some(e) => e,
                None => {
                    // Claimed optimal: verify against exactly recomputed
                    // reduced costs before accepting (guards drift).
                    self.refactorize(RefactorReason::Forced)?;
                    self.recompute_reduced();
                    match self.price() {
                        Some(e) => e,
                        None => return Ok(PhaseOutcome::Optimal),
                    }
                }
            };
            let (q, dir) = entering;

            // FTRAN: w = B^{-1} a_q, basis-position indexed, sparse. The
            // result lives in an engine-owned arena, borrowed out for the
            // ratio-test/pivot span and put back on every path.
            self.ftran_entering(q);
            let w = std::mem::take(&mut self.ftran_w);

            // Ratio test.
            match self.ratio_test(q, dir, &w) {
                RatioOutcome::Unbounded => {
                    self.ftran_w = w;
                    if phase1 {
                        return Err(SolveError::Numerical("unbounded ray in phase 1".into()));
                    }
                    return Ok(PhaseOutcome::Unbounded);
                }
                RatioOutcome::BoundFlip(t) => {
                    // No basis change: reduced costs stay valid.
                    self.apply_bound_flip(q, dir, t, &w);
                    self.ftran_w = w;
                    self.stats.bound_flips += 1;
                }
                RatioOutcome::Pivot { pos, step } => {
                    let alpha_q = w.values[pos];
                    if alpha_q.abs() <= self.cfg.pivot_tol {
                        // Should not happen (ratio test filters); refactor
                        // and retry rather than divide by ~0.
                        self.ftran_w = w;
                        self.refactorize(RefactorReason::Forced)?;
                        self.recompute_reduced();
                        continue;
                    }
                    self.update_reduced_and_weights(q, pos, alpha_q);
                    self.apply_pivot(q, dir, pos, step, &w);
                    self.ftran_w = w;
                    #[cfg(debug_assertions)]
                    self.debug_invariants();
                    self.maybe_sanitize();
                    if step <= self.cfg.feas_tol * 1e-2 {
                        self.stats.degenerate_pivots += 1;
                        self.degen_run += 1;
                        if self.degen_run >= self.cfg.degeneracy_threshold {
                            self.bland = true;
                        }
                    } else {
                        self.degen_run = 0;
                        self.bland = false;
                    }
                }
            }
            self.stats.iterations += 1;
        }
    }

    /// Solves `B' y = c` for a basis-position-indexed dense `c`, leaving
    /// the row-indexed result in place.
    fn btran_pos_dense(&mut self, c: &mut [f64]) {
        // Apply eta inverses in reverse order: c' E^{-1} touches one entry.
        for k in (0..self.etas.len()).rev() {
            let head = self.etas.head(k);
            let r = head.pos as usize;
            let mut acc = c[r];
            for &(i, wi) in self.etas.entries_of(k) {
                if i != head.pos {
                    acc -= c[i as usize] * wi;
                }
            }
            c[r] = acc / head.pivot;
        }
        self.lu
            .as_ref()
            // lint: allow(lib-unwrap, reason = "invariant: solve() refactorizes before any pricing pass, so an LU is always installed here")
            .expect("invariant: LU installed before btran")
            .btran(c, &mut self.work_pos);
    }

    /// Sparse twin of [`Self::btran_pos_dense`]: solves `B' y = c` for a
    /// pattern-tracked `c`, bit-identical up to the sign of cancelled
    /// zeros (every consumer guards with magnitude tests).
    fn btran_pos_sparse(&mut self, c: &mut WorkVec) {
        // Eta inverses in reverse order. Each is a *gather* over the eta's
        // full entry list, so unlike the FTRAN scatters a zero result still
        // costs a full scan — the dominant per-pivot cost on large models.
        // With a sparse input the row-wise eta index prunes the loop to the
        // etas that can see a nonzero: an eta none of whose referenced
        // positions (entries or pivotal head) is marked gathers only exact
        // zeros, lands on `t == ±0`, and — its head being unmarked — the
        // full loop would write nothing at all, so skipping it is
        // bit-exact, zero signs included. Activation cascades: applying an
        // eta that marks a new position wakes the earlier etas referencing
        // it. Forced-dense oracle mode (`kernel_cap == 0`) keeps the full
        // scan so the oracle shares none of the pruning logic.
        let prune = self.kernel_cap > 0 && !c.is_dense() && !self.etas.is_empty();
        if prune {
            self.eta_active.clear();
            self.eta_active.resize(self.etas.len(), false);
            for &i in &c.pattern {
                let mut e = self.etas.pos_head[i as usize];
                while e != ETA_NONE {
                    self.eta_active[self.etas.eta_of[e as usize] as usize] = true;
                    e = self.etas.link[e as usize];
                }
            }
        }
        for k in (0..self.etas.len()).rev() {
            if prune && !self.eta_active[k] {
                continue;
            }
            let head = self.etas.head(k);
            let r = head.pos;
            let mut acc = c.values[r as usize];
            for &(i, wi) in self.etas.entries_of(k) {
                if i != r {
                    acc -= c.values[i as usize] * wi;
                }
            }
            let t = acc / head.pivot;
            // lint: allow(float-eq, reason = "exact-zero skip is a sparsity guard: skipping true zeros never changes the arithmetic")
            if t != 0.0 {
                let newly = !c.is_dense() && !c.marked(r);
                c.set(r, t);
                if prune && newly {
                    // A freshly nonzero position wakes the earlier etas
                    // referencing it (later ones already ran).
                    let mut e = self.etas.pos_head[r as usize];
                    while e != ETA_NONE {
                        let k2 = self.etas.eta_of[e as usize] as usize;
                        if k2 < k {
                            self.eta_active[k2] = true;
                        }
                        e = self.etas.link[e as usize];
                    }
                }
            } else if c.marked(r) || c.is_dense() {
                c.values[r as usize] = t;
            }
        }
        let mut s = std::mem::take(&mut self.lu_scratch);
        self.lu
            .as_ref()
            // lint: allow(lib-unwrap, reason = "invariant: solve() refactorizes before any pricing pass, so an LU is always installed here")
            .expect("invariant: LU installed before btran")
            .btran_sparse(c, &mut s, self.kernel_cap);
        self.lu_scratch = s;
    }

    /// Computes `y` with `B' y = c_B` into the engine-owned dual scratch.
    /// The caller borrows the buffer and must return it via
    /// [`Self::put_duals`] — the take/put dance keeps the hot path free of
    /// per-call allocations.
    fn take_duals(&mut self) -> Vec<f64> {
        let mut c = std::mem::take(&mut self.dual);
        c.fill(0.0);
        for (pos, &j) in self.basis.iter().enumerate() {
            c[pos] = self.cost[j];
        }
        self.btran_pos_dense(&mut c);
        c
    }

    fn put_duals(&mut self, y: Vec<f64>) {
        self.dual = y;
    }

    /// Recomputes every reduced cost exactly from the current basis.
    fn recompute_reduced(&mut self) {
        let y = self.take_duals();
        for j in 0..self.std.ncols() {
            self.d[j] = match self.state[j] {
                VarState::Basic(_) => 0.0,
                VarState::Fixed => 0.0,
                _ => self.cost[j] - self.std.a.col_dot(j, &y),
            };
        }
        self.put_duals(y);
    }

    /// Entering-direction eligibility of nonbasic column `j` under the
    /// maintained reduced costs: +1 from lower/free, -1 from upper/free,
    /// `None` when `j` cannot improve the objective.
    #[inline]
    fn eligible_dir(&self, j: usize) -> Option<f64> {
        let tol = self.cfg.opt_tol;
        match self.state[j] {
            VarState::Basic(_) | VarState::Fixed => None,
            VarState::AtLower => (self.d[j] < -tol).then_some(1.0),
            VarState::AtUpper => (self.d[j] > tol).then_some(-1.0),
            VarState::Free => {
                if self.d[j] < -tol {
                    Some(1.0)
                } else if self.d[j] > tol {
                    Some(-1.0)
                } else {
                    None
                }
            }
        }
    }

    /// Pricing dispatch: candidate-list partial pricing when enabled, the
    /// full Devex scan otherwise. Bland mode always takes the full
    /// first-eligible scan — partial pricing must not weaken the
    /// anti-cycling termination guarantee. A `None` from either mode means
    /// a *complete* scan found no eligible column, so the claimed-optimal
    /// verification in [`Self::iterate`] has identical semantics in both.
    fn price(&mut self) -> Option<(usize, f64)> {
        if self.bland || !self.pricing_partial {
            return self.price_full();
        }
        if !self.cand.is_empty() && self.cand_budget > 0 {
            if let Some(best) = self.scan_candidates() {
                self.cand_budget -= 1;
                return Some(best);
            }
        }
        self.refresh_candidates()
    }

    /// Devex pricing over every nonbasic column. Returns the entering
    /// column and its movement direction.
    fn price_full(&mut self) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64, f64)> = None; // (col, dir, score)
        for j in 0..self.std.ncols() {
            let Some(dir) = self.eligible_dir(j) else {
                continue;
            };
            self.stats.pricing_candidates_scanned += 1;
            if self.bland {
                // Bland: first eligible index guarantees termination.
                return Some((j, dir));
            }
            let score = self.d[j] * self.d[j] / self.weights[j];
            if best.is_none_or(|(_, _, s)| score > s) {
                best = Some((j, dir, score));
            }
        }
        best.map(|(j, dir, _)| (j, dir))
    }

    /// Minor-iteration pricing pass: best Devex score among the current
    /// candidates (entries that went basic or lost eligibility are skipped;
    /// the next refresh drops them).
    fn scan_candidates(&mut self) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64, f64)> = None;
        let mut scanned = 0u64;
        for &jc in &self.cand {
            let j = jc as usize;
            scanned += 1;
            let Some(dir) = self.eligible_dir(j) else {
                continue;
            };
            let score = self.d[j] * self.d[j] / self.weights[j];
            if best.is_none_or(|(_, _, s)| score > s) {
                best = Some((j, dir, score));
            }
        }
        self.stats.pricing_candidates_scanned += scanned;
        best.map(|(j, dir, _)| (j, dir))
    }

    /// Full eligibility scan that rebuilds the candidate list with the
    /// highest-scoring columns and returns the best of them. `None` means
    /// no column anywhere is eligible (the full-scan optimality claim).
    /// Entirely deterministic: scores tie-break toward the lower column
    /// index, so the list does not depend on allocation or thread state.
    fn refresh_candidates(&mut self) -> Option<(usize, f64)> {
        self.stats.partial_refreshes += 1;
        for &jc in &self.cand {
            self.cand_member[jc as usize] = false;
        }
        self.cand.clear();
        let mut scores = std::mem::take(&mut self.cand_scores);
        scores.clear();
        for j in 0..self.std.ncols() {
            if self.eligible_dir(j).is_none() {
                continue;
            }
            self.stats.pricing_candidates_scanned += 1;
            let score = self.d[j] * self.d[j] / self.weights[j];
            scores.push((score, j as u32));
        }
        if scores.is_empty() {
            self.cand_scores = scores;
            self.cand_budget = 0;
            return None;
        }
        // Keep the top slice by (score desc, column asc); the list size
        // grows with sqrt(ncols) so minor iterations touch O(sqrt n)
        // columns instead of n.
        let keep = Self::candidate_list_size(self.std.ncols()).min(scores.len());
        scores.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        scores.truncate(keep);
        for &(_, jc) in scores.iter() {
            self.cand.push(jc);
            self.cand_member[jc as usize] = true;
        }
        let (_, best) = scores[0];
        self.cand_budget = keep as u32;
        self.cand_scores = scores;
        let j = best as usize;
        // The top candidate was eligible a moment ago by construction.
        let dir = self.eligible_dir(j)?;
        Some((j, dir))
    }

    /// Partial-pricing sublist size for an `ncols`-column problem.
    fn candidate_list_size(ncols: usize) -> usize {
        // lint: allow(lossy-cast, reason = "sizing heuristic; truncation of the sqrt is intended")
        (2.0 * (ncols as f64).sqrt()) as usize + 16
    }

    /// Empties the candidate list (start of a phase, or after a structural
    /// change): the first partial-pricing call will run a full refresh.
    fn reset_candidates(&mut self) {
        for &jc in &self.cand {
            let j = jc as usize;
            if j < self.cand_member.len() {
                self.cand_member[j] = false;
            }
        }
        self.cand.clear();
        self.cand_member.resize(self.std.ncols(), false);
        self.cand_budget = 0;
    }

    /// After choosing pivot (entering `q`, leaving position `pos`), updates
    /// the reduced costs and Devex weights using the pivotal row
    /// `alpha = e_pos' B^{-1} A`.
    ///
    /// Reduced costs are always updated globally, even under candidate-list
    /// pricing. A sublist-only update (let non-candidate `d` go stale,
    /// recompute wholesale at each refresh) was evaluated and rejected:
    /// these time-expanded LPs are degenerate enough that the eligible set
    /// churns across refreshes, which makes refreshes — and with them the
    /// full recompute — far too frequent, and the sublist's pivot choices
    /// inflate the iteration count well past what the cheaper update saves.
    fn update_reduced_and_weights(&mut self, q: usize, pos: usize, alpha_q: f64) {
        // rho = B^{-T} e_pos (row-indexed), computed sparsely into the
        // engine-owned arena.
        let mut rho = std::mem::take(&mut self.rho);
        rho.clear();
        rho.set(pos as u32, 1.0);
        self.btran_pos_sparse(&mut rho);
        self.stats.btran_ops += 1;
        self.stats.btran_nnz += rho.nnz() as u64;
        if rho.is_dense() {
            self.stats.btran_dense_fallbacks += 1;
        }

        let dq = self.d[q];
        let ratio = dq / alpha_q;
        let wq = self.weights[q].max(1.0);
        let leaving = self.basis[pos];

        // Touch only nonbasic columns that intersect rho's nonzero rows. A
        // column may be visited once per such row, so the list is sorted
        // and deduped afterwards — which also normalizes the visit order
        // to the ascending order a dense row scan would produce.
        let mut touched = std::mem::take(&mut self.touched);
        touched.clear();
        if rho.is_dense() {
            for (r, &rv) in rho.values.iter().enumerate() {
                if rv.abs() <= 1e-12 {
                    continue;
                }
                self.push_row_cols(r, q, &mut touched);
            }
        } else {
            rho.sort_pattern();
            for &r in &rho.pattern {
                let r = r as usize;
                if rho.values[r].abs() <= 1e-12 {
                    continue;
                }
                self.push_row_cols(r, q, &mut touched);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        self.stats.pivot_row_nnz += touched.len() as u64;
        // With candidate-list pricing only the candidates' scores are ever
        // read before the next full refresh (which rebuilds weights'
        // relevance from scratch), so weight maintenance is confined to the
        // sublist; reduced costs are always updated for every touched
        // column — optimality claims depend on them.
        let partial = self.pricing_partial && !self.bland;
        let mut max_weight: f64 = 1.0;
        for &jc in &touched {
            let j = jc as usize;
            // Column-wise gather: the same FP summation order as the dense
            // pricing pass (a row-wise scatter would reorder it).
            let alpha_j = self.std.a.col_dot(j, &rho.values);
            if alpha_j.abs() <= 1e-12 {
                continue;
            }
            self.d[j] -= ratio * alpha_j;
            if partial && !self.cand_member[j] {
                continue;
            }
            let cand = (alpha_j / alpha_q) * (alpha_j / alpha_q) * wq;
            if cand > self.weights[j] {
                self.weights[j] = cand;
            }
            max_weight = max_weight.max(self.weights[j]);
        }
        self.touched = touched;
        self.rho = rho;
        // Entering column becomes basic; leaving column becomes nonbasic
        // with reduced cost -d_q / alpha_q and a fresh reference weight.
        self.d[q] = 0.0;
        self.d[leaving] = -ratio;
        self.weights[leaving] = (wq / (alpha_q * alpha_q)).max(1.0);
        max_weight = max_weight.max(self.weights[leaving]);

        // Reference-framework reset when weights blow up.
        if max_weight > 1e8 {
            self.weights.fill(1.0);
            self.stats.devex_resets += 1;
        }
    }

    /// Appends to `out` the nonbasic, non-`q` columns with an entry in row
    /// `r` (one pivotal-row pricing probe, via the CSR mirror).
    #[inline]
    fn push_row_cols(&self, r: usize, q: usize, out: &mut Vec<u32>) {
        for &jc in &self.csr_cols[self.csr_ptr[r]..self.csr_ptr[r + 1]] {
            let j = jc as usize;
            match self.state[j] {
                VarState::Basic(_) | VarState::Fixed => continue,
                _ => {}
            }
            if j == q {
                continue;
            }
            out.push(jc);
        }
    }

    /// FTRAN of column `q` through LU and the eta file into the
    /// engine-owned `ftran_w` arena: `w = B^{-1} a_q`, basis-position
    /// indexed, pattern sorted ascending (or flagged dense past the
    /// density threshold). Bit-identical to the former dense pass up to
    /// the sign of cancelled zeros, which every consumer guards away.
    fn ftran_entering(&mut self, q: usize) {
        let mut rhs = std::mem::take(&mut self.ftran_rhs);
        let (rows, vals) = self.std.a.col(q);
        rhs.load(rows, vals);
        self.ftran_loaded(rhs);
    }

    /// Shared FTRAN tail: solves `B w = rhs` for an already-loaded
    /// row-indexed `rhs` (LU pass, then the eta file), leaving the
    /// basis-position-indexed result in `ftran_w` and handing `rhs` back to
    /// its arena. Used by the entering-column FTRAN above and by the dual
    /// ratio test's accumulated bound-flip column.
    fn ftran_loaded(&mut self, mut rhs: WorkVec) {
        let mut w = std::mem::take(&mut self.ftran_w);
        let mut s = std::mem::take(&mut self.lu_scratch);
        self.lu
            .as_ref()
            // lint: allow(lib-unwrap, reason = "invariant: solve() refactorizes before any ratio test, so an LU is always installed here")
            .expect("invariant: LU installed before ftran")
            .ftran_sparse(&mut rhs, &mut w, &mut s, self.kernel_cap);
        // Eta passes: each is a scatter from the pivotal position, applied
        // whether or not the pattern is still tracked.
        for k in 0..self.etas.len() {
            let head = self.etas.head(k);
            let r = head.pos;
            let t = w.values[r as usize] / head.pivot;
            // lint: allow(float-eq, reason = "exact-zero skip is a sparsity guard: skipping true zeros never changes the arithmetic")
            if t != 0.0 {
                for &(i, wi) in self.etas.entries_of(k) {
                    if i != r {
                        // `a += -(b)` is bitwise `a -= b`.
                        w.add(i, -(wi * t));
                    }
                }
                w.set(r, t);
            } else if w.marked(r) || w.is_dense() {
                w.values[r as usize] = t;
            }
        }
        if !w.is_dense() {
            w.sort_pattern();
        }
        self.stats.ftran_ops += 1;
        self.stats.ftran_nnz += w.nnz() as u64;
        if w.is_dense() {
            self.stats.ftran_dense_fallbacks += 1;
        }
        self.ftran_rhs = rhs;
        self.lu_scratch = s;
        self.ftran_w = w;
    }

    fn ratio_test(&self, q: usize, dir: f64, w: &WorkVec) -> RatioOutcome {
        let ptol = self.cfg.pivot_tol;
        let ftol = self.cfg.feas_tol;
        // Step limit from the entering variable's own bound range.
        let own_range = match (self.std.lower[q].is_finite(), self.std.upper[q].is_finite()) {
            (true, true) => self.std.upper[q] - self.std.lower[q],
            _ => f64::INFINITY,
        };

        // Pass 1: minimum blocking step with tolerance-relaxed bounds.
        let mut t_relaxed = own_range;
        for_each_entry(w, |pos, wp| {
            if wp.abs() <= ptol {
                return;
            }
            let rate = -wp * dir; // d(xb[pos]) / dt
            let j = self.basis[pos];
            let limit = if rate > 0.0 {
                let ub = self.std.upper[j];
                if !ub.is_finite() {
                    return;
                }
                (ub - self.xb[pos] + ftol) / rate
            } else {
                let lb = self.std.lower[j];
                if !lb.is_finite() {
                    return;
                }
                (self.xb[pos] - lb + ftol) / -rate
            };
            t_relaxed = t_relaxed.min(pos_or_zero(limit));
        });
        if t_relaxed.is_infinite() {
            return RatioOutcome::Unbounded;
        }

        // Pass 2: among rows blocking at or before `t_relaxed`, take the one
        // with the largest pivot magnitude (Harris-style selection). Ties
        // are decided inside a *relative band* around the maximum rather
        // than by exact float equality: any pivot within `RATIO_TIE_BAND`
        // of the best magnitude is numerically interchangeable, and inside
        // the band the choice is lexicographic — retire artificials first,
        // then the lowest basis position — so the selection is deterministic
        // and independent of the visit order's rounding noise.
        const RATIO_TIE_BAND: f64 = 1e-9;
        let mut max_mag = 0.0f64;
        let blocking = |pos: usize, wp: f64| -> Option<f64> {
            if wp.abs() <= ptol {
                return None;
            }
            let rate = -wp * dir;
            let j = self.basis[pos];
            let limit = if rate > 0.0 {
                let ub = self.std.upper[j];
                if !ub.is_finite() {
                    return None;
                }
                (ub - self.xb[pos]) / rate
            } else {
                let lb = self.std.lower[j];
                if !lb.is_finite() {
                    return None;
                }
                (self.xb[pos] - lb) / -rate
            };
            let limit = pos_or_zero(limit);
            (limit <= t_relaxed).then_some(limit)
        };
        let mut any_blocking = false;
        for_each_entry(w, |pos, wp| {
            if blocking(pos, wp).is_some() {
                any_blocking = true;
                max_mag = max_mag.max(wp.abs());
            }
        });
        if !any_blocking {
            // Nothing blocks before the entering variable's own range:
            // a bound flip (own_range is finite here).
            return RatioOutcome::BoundFlip(own_range);
        }
        let band_floor = max_mag * (1.0 - RATIO_TIE_BAND);
        let mut best: Option<(usize, f64, bool)> = None; // pos, step, is_artificial
        for_each_entry(w, |pos, wp| {
            let Some(limit) = blocking(pos, wp) else {
                return;
            };
            if wp.abs() < band_floor {
                return;
            }
            let art = self.std.kind[self.basis[pos]] == ColKind::Artificial;
            // Entries arrive in ascending basis position, so the first
            // in-band row of a given artificiality class wins the
            // lexicographic order automatically.
            let better = match best {
                None => true,
                Some((_, _, bart)) => art && !bart,
            };
            if better {
                best = Some((pos, limit, art));
            }
        });
        match best {
            // max_mag > 0 guarantees an in-band blocking row exists.
            None => RatioOutcome::BoundFlip(own_range),
            Some((pos, step, _)) => RatioOutcome::Pivot { pos, step },
        }
    }

    fn apply_bound_flip(&mut self, q: usize, dir: f64, t: f64, w: &WorkVec) {
        let xb = &mut self.xb;
        for_each_entry(w, |pos, wp| {
            // lint: allow(float-eq, reason = "exact-zero skip is a sparsity guard: skipping true zeros never changes the arithmetic")
            if wp != 0.0 {
                xb[pos] -= wp * dir * t;
            }
        });
        self.xval[q] += dir * t;
        self.state[q] = match self.state[q] {
            VarState::AtLower => VarState::AtUpper,
            VarState::AtUpper => VarState::AtLower,
            s => s,
        };
    }

    fn apply_pivot(&mut self, q: usize, dir: f64, pos: usize, step: f64, w: &WorkVec) {
        let leaving = self.basis[pos];
        let xb = &mut self.xb;
        for_each_entry(w, |p, wp| {
            // lint: allow(float-eq, reason = "exact-zero skip is a sparsity guard: skipping true zeros never changes the arithmetic")
            if wp != 0.0 {
                xb[p] -= wp * dir * step;
            }
        });
        let entering_value = self.xval[q] + dir * step;

        // Park the leaving variable at the bound it hit.
        let lv = self.xb[pos];
        let (ll, lu_) = (self.std.lower[leaving], self.std.upper[leaving]);
        let to_upper = if ll.is_finite() && lu_.is_finite() {
            (lv - lu_).abs() < (lv - ll).abs()
        } else {
            lu_.is_finite()
        };
        self.xval[leaving] = if to_upper { lu_ } else { ll };
        self.state[leaving] = if self.std.kind[leaving] == ColKind::Artificial {
            // Retire artificials for good the moment they leave.
            self.std.lower[leaving] = 0.0;
            self.std.upper[leaving] = 0.0;
            self.cost[leaving] = 0.0;
            self.xval[leaving] = 0.0;
            VarState::Fixed
        } else if ll == lu_ {
            VarState::Fixed
        } else if to_upper {
            VarState::AtUpper
        } else {
            VarState::AtLower
        };

        self.basis[pos] = q;
        self.state[q] = VarState::Basic(pos as u32);
        self.xb[pos] = entering_value;

        // Record the eta for B_new = B_old E, entries ascending by basis
        // position (sorted pattern / dense scan order — the BTRAN gather
        // relies on it). Entries below the drop tolerance are omitted; the
        // drift is flushed at refactorization.
        self.etas.begin(pos as u32, w.values[pos]);
        let etas = &mut self.etas;
        for_each_entry(w, |p, wp| {
            if wp.abs() > 1e-12 || p == pos {
                etas.push_entry(p as u32, wp);
            }
        });
    }

    /// Debug-build invariant sweep, run after every basis change. Release
    /// builds compile this to nothing; the `wavesched-lint` rules keep the
    /// invariants *stated*, this keeps them *checked* where they mutate.
    #[cfg(debug_assertions)]
    fn debug_invariants(&self) {
        // Basis column-count consistency: exactly one column per row, each
        // marked Basic at its own position.
        debug_assert_eq!(
            self.basis.len(),
            self.std.nrows,
            "basis must hold exactly nrows columns"
        );
        for (pos, &j) in self.basis.iter().enumerate() {
            debug_assert!(
                matches!(self.state[j], VarState::Basic(p) if p as usize == pos),
                "basis position {pos} holds column {j} whose state is {:?}",
                self.state[j]
            );
        }
        // The eta file never outruns the refactorization threshold:
        // iterate() refactorizes at the top of the loop once the interval
        // is reached, so at most `refactor_interval` etas ever accumulate.
        debug_assert!(
            self.etas.len() <= self.cfg.refactor_interval,
            "eta file length {} exceeds refactor_interval {}",
            self.etas.len(),
            self.cfg.refactor_interval
        );
        // The (phase-dependent) objective stays finite after a pivot; a NaN
        // or infinity here means a pivot divided by a ~0 element the ratio
        // test should have rejected.
        let mut obj = 0.0;
        for j in 0..self.std.ncols() {
            if !matches!(self.state[j], VarState::Basic(_)) {
                obj += self.cost[j] * self.xval[j];
            }
        }
        for (pos, &j) in self.basis.iter().enumerate() {
            obj += self.cost[j] * self.xb[pos];
        }
        debug_assert!(obj.is_finite(), "objective became non-finite after pivot");
    }

    /// In-loop refactorization cadence shared by the primal and dual
    /// iteration loops: the fixed interval always applies (and is checked
    /// first so `Interval`-policy counters are unaffected by the cost
    /// model), then the cost model compares the eta file's entry count
    /// against the live factor's. Both triggers count entries — never
    /// wall-clock — so the trajectory is deterministic.
    #[inline]
    fn cadence_refactor_due(&self) -> Option<RefactorReason> {
        if self.etas.len() >= self.cfg.refactor_interval {
            return Some(RefactorReason::Interval);
        }
        if self.refactor_policy == RefactorPolicy::CostModel
            && self.etas.len() >= COST_MODEL_MIN_ETAS
            && self.etas.entries.len() > COST_MODEL_ETA_FACTOR * self.lu_nnz
        {
            return Some(RefactorReason::CostModel);
        }
        None
    }

    /// Rebuilds the LU factorization of the current basis and recomputes the
    /// basic values from scratch to flush accumulated drift. `reason` feeds
    /// the per-reason refactorization counters; the arithmetic is identical
    /// for every reason.
    fn refactorize(&mut self, reason: RefactorReason) -> Result<(), SolveError> {
        let m = self.std.nrows;
        let mut attempt = 0usize;
        let lu = loop {
            match Lu::factor(&self.std.a, &self.basis, self.cfg.pivot_tol) {
                Ok(f) => break f,
                Err(unpivoted_row) => {
                    // Singular basis: swap the structurally dependent column
                    // out for the row's artificial and retry.
                    attempt += 1;
                    if attempt > m {
                        return Err(SolveError::Numerical(
                            "basis repair failed: persistent singularity".into(),
                        ));
                    }
                    self.stats.refactor_forced_singular += 1;
                    self.repair_basis(unpivoted_row)?;
                }
            }
        };
        obs::record("lp.eta_len_at_refactor", self.etas.len() as u64);
        self.etas.clear();
        self.stats.refactorizations += 1;
        match reason {
            RefactorReason::Interval => self.stats.refactor_interval += 1,
            RefactorReason::CostModel => self.stats.refactor_cost_model += 1,
            RefactorReason::Forced => self.stats.refactor_forced_fallback += 1,
        }
        self.lu_nnz = lu.nnz();
        self.lu = Some(lu);
        self.compute_xb();
        Ok(())
    }

    /// Recomputes the basic values `xb = B^{-1} (-N x_N)` from the installed
    /// factorization (LU followed by any product-form etas), reusing the
    /// engine-owned buffers (ftran fully overwrites its output).
    fn compute_xb(&mut self) {
        let m = self.std.nrows;
        self.work_row[..m].fill(0.0);
        for j in 0..self.std.ncols() {
            if matches!(self.state[j], VarState::Basic(_)) {
                continue;
            }
            let xj = self.xval[j];
            // lint: allow(float-eq, reason = "exact-zero skip is a sparsity guard: skipping true zeros never changes the arithmetic")
            if xj != 0.0 {
                let (rows, vals) = self.std.a.col(j);
                for (&r, &v) in rows.iter().zip(vals) {
                    self.work_row[r as usize] -= v * xj;
                }
            }
        }
        let lu = self
            .lu
            .take()
            // lint: allow(lib-unwrap, reason = "invariant: every caller installs an LU immediately before recomputing xb")
            .expect("invariant: LU installed before compute_xb");
        lu.ftran(&mut self.work_row, &mut self.xb);
        self.lu = Some(lu);
        // Dense forward pass over the eta file (empty right after a
        // refactorization; populated when a preserved factorization carries
        // product-form row-growth updates).
        for k in 0..self.etas.len() {
            let head = self.etas.head(k);
            let r = head.pos as usize;
            let t = self.xb[r] / head.pivot;
            // lint: allow(float-eq, reason = "exact-zero skip is a sparsity guard: skipping true zeros never changes the arithmetic")
            if t != 0.0 {
                for &(i, wi) in self.etas.entries_of(k) {
                    if i != head.pos {
                        self.xb[i as usize] -= wi * t;
                    }
                }
            }
            self.xb[r] = t;
        }
    }

    /// Replaces whichever basis column failed to pivot with the artificial
    /// of `row`, re-activating that artificial.
    fn repair_basis(&mut self, row: usize) -> Result<(), SolveError> {
        let art = self.std.artificial_col(row);
        if self.basis.contains(&art) {
            return Err(SolveError::Numerical(format!(
                "basis repair loop on row {row}"
            )));
        }
        // Find a basis column covering `row` to evict: prefer one whose
        // column actually has an entry in `row`.
        let mut evict_pos = None;
        for (pos, &j) in self.basis.iter().enumerate() {
            let (rows, _) = self.std.a.col(j);
            if rows.binary_search(&(row as u32)).is_ok() {
                evict_pos = Some(pos);
            }
        }
        let pos = evict_pos.unwrap_or(0);
        let evicted = self.basis[pos];
        self.xval[evicted] = self.std.resting_value(evicted);
        self.state[evicted] = if self.std.lower[evicted] == self.std.upper[evicted] {
            VarState::Fixed
        } else if self.xval[evicted] == self.std.lower[evicted] {
            VarState::AtLower
        } else {
            VarState::AtUpper
        };
        // Re-open the artificial so it can absorb any residual.
        self.std.lower[art] = f64::NEG_INFINITY;
        self.std.upper[art] = f64::INFINITY;
        self.basis[pos] = art;
        self.state[art] = VarState::Basic(pos as u32);
        Ok(())
    }

    /// Assembles the user-facing solution from the current iterate.
    fn extract(&mut self, status: Status) -> Solution {
        // Mirror basic values into xval.
        for (pos, &j) in self.basis.iter().enumerate() {
            self.xval[j] = self.xb[pos];
        }
        let x: Vec<f64> = self.xval[..self.std.nstruct].to_vec();
        let mut obj = self.std.obj_offset;
        for (j, &xj) in x.iter().enumerate() {
            obj += self.std.obj_sign * self.std.cost[j] * xj;
        }
        // Duals from a final BTRAN with phase-2 costs.
        for j in 0..self.std.ncols() {
            if self.std.kind[j] != ColKind::Artificial {
                self.cost[j] = self.std.cost[j];
            }
        }
        let y = self.take_duals();
        let duals: Vec<f64> = y.iter().map(|&v| self.std.obj_sign * v).collect();
        self.put_duals(y);
        let snap = |state: VarState| match state {
            VarState::Basic(_) => BasisStatus::Basic,
            VarState::AtLower | VarState::Fixed => BasisStatus::AtLower,
            VarState::AtUpper => BasisStatus::AtUpper,
            VarState::Free => BasisStatus::Free,
        };
        let basis = Basis {
            cols: (0..self.std.nstruct).map(|j| snap(self.state[j])).collect(),
            rows: (0..self.std.nrows)
                .map(|i| snap(self.state[self.std.activity_col(i)]))
                .collect(),
        };
        Solution {
            status,
            objective: obj,
            x,
            duals,
            basis: Some(basis),
            stats: self.stats,
        }
    }
}

enum RatioOutcome {
    Unbounded,
    BoundFlip(f64),
    Pivot { pos: usize, step: f64 },
}

/// Visits the entries of `w` in ascending index order: the sorted pattern
/// when tracked, every slot after a dense fallback. Pattern order equals
/// the dense scan order restricted to (potential) nonzeros, so consumers
/// behave identically in both modes.
#[inline]
fn for_each_entry(w: &WorkVec, mut f: impl FnMut(usize, f64)) {
    if w.is_dense() {
        for (pos, &wp) in w.values.iter().enumerate() {
            f(pos, wp);
        }
    } else {
        for &p in &w.pattern {
            f(p as usize, w.values[p as usize]);
        }
    }
}

/// Test-and-bench harness that drives the engine one pivot batch at a time.
///
/// Hidden from the public API: the supported consumers are the crate's
/// allocation test and the per-pivot kernel benchmark, which need to put
/// the engine into a steady state (factorized basis, warmed scratch
/// arenas) and then run an exact number of pivots under observation.
///
/// The problem must be feasible at its crash basis (phase-2-only): the
/// probe advances by re-entering the phase-2 loop, which is only sound when
/// no phase-1 bookkeeping is pending. `refactor_interval` is disabled so
/// the measured window exercises the eta-file path, not `Lu::factor`.
#[doc(hidden)]
#[derive(Clone)]
pub struct PivotProbe {
    engine: Engine,
}

impl PivotProbe {
    /// Standardizes `p`, runs `warmup` simplex iterations, and parks the
    /// engine at its iteration limit, ready to step.
    ///
    /// # Panics
    /// Panics if `p` does not standardize, if the warmup terminates before
    /// exhausting its iteration budget (the probe needs a problem big
    /// enough to keep pivoting), or if the crash basis needed a phase 1.
    pub fn new(p: &Problem, warmup: u64) -> Self {
        Self::new_with(
            p,
            warmup,
            &SimplexConfig {
                // Refactorize only on demand: the zero-allocation test
                // must not cross a periodic `Lu::factor` (which allocates)
                // inside its measured window.
                refactor_interval: usize::MAX,
                ..SimplexConfig::default()
            },
        )
    }

    /// Like [`new`](Self::new), but with explicit simplex settings — the
    /// kernel benchmarks use this to probe with the dense kernels forced
    /// (`kernel_density_threshold: 0.0`) as the comparison baseline.
    ///
    /// Only the warmup budget of `base` is overridden; in particular the
    /// refactorization cadence is honored, so probed windows measure the
    /// realistic steady state (periodic refactorization included) rather
    /// than an ever-growing eta file.
    pub fn new_with(p: &Problem, warmup: u64, base: &SimplexConfig) -> Self {
        // lint: allow(lib-unwrap, reason = "bench-only probe constructor: a malformed probe problem is a programming error in the benchmark, not a runtime condition")
        let std = standardize(p).expect("probe problem must standardize");
        let cfg = SimplexConfig {
            max_iterations: warmup.max(1),
            ..*base
        };
        let mut engine = Engine::new(std, cfg);
        let sol = engine
            .solve(None, false, false)
            // lint: allow(lib-unwrap, reason = "bench-only probe constructor: warmup failure means the benchmark fixture is broken and should abort loudly")
            .expect("probe warmup failed");
        assert_eq!(
            sol.status,
            Status::IterationLimit,
            "probe exhausted the problem during warmup"
        );
        assert_eq!(
            engine.stats.phase1_iterations, 0,
            "probe problems must be feasible at the crash basis"
        );
        PivotProbe { engine }
    }

    /// Pre-grows the eta arena for `n` further pivots, so the measured
    /// window appends etas without allocating.
    pub fn reserve(&mut self, n: usize) {
        let m = self.engine.std.nrows;
        self.engine.etas.reserve(n + 1, (n + 1) * (m + 1));
        let total = self.engine.etas.len() + n + 1;
        self.engine.eta_active.reserve(total);
    }

    /// Runs up to `n` further pivots (phase-2 iterations) and returns how
    /// many actually ran — fewer only if the problem terminated first.
    pub fn pivots(&mut self, n: u64) -> u64 {
        let before = self.engine.stats.iterations;
        self.engine.cfg.max_iterations = before + n;
        let _ = self
            .engine
            .iterate(false)
            // lint: allow(lib-unwrap, reason = "bench-only probe: a numerical failure mid-window invalidates the measurement, so abort loudly")
            .expect("probe pivot batch hit a numerical failure");
        self.engine.stats.iterations - before
    }

    /// Runs the FTRAN kernel (`w = B⁻¹ a_q`, triangular solves plus eta
    /// passes) once for every nonbasic column at the parked basis, and
    /// returns how many ran. Engine state other than scratch and counters
    /// is untouched, so repeated sweeps time the identical computation —
    /// the kernel benchmarks divide wall-clock by the return value.
    pub fn ftran_sweep(&mut self) -> u64 {
        let mut ran = 0;
        for q in 0..self.engine.state.len() {
            if matches!(self.engine.state[q], VarState::Basic(_) | VarState::Fixed) {
                continue;
            }
            self.engine.ftran_entering(q);
            let w = std::mem::take(&mut self.engine.ftran_w);
            std::hint::black_box(&w.values);
            self.engine.ftran_w = w;
            ran += 1;
        }
        ran
    }

    /// Runs the pivotal-row BTRAN kernel (`ρ = B⁻ᵀ e_r`) once for every
    /// basis position at the parked basis, and returns how many ran.
    pub fn btran_sweep(&mut self) -> u64 {
        let m = self.engine.std.nrows;
        for pos in 0..m {
            let mut rho = std::mem::take(&mut self.engine.rho);
            rho.clear();
            rho.set(pos as u32, 1.0);
            self.engine.btran_pos_sparse(&mut rho);
            std::hint::black_box(&rho.values);
            self.engine.rho = rho;
        }
        m as u64
    }

    /// Work counters accumulated so far (warmup included).
    pub fn stats(&self) -> SolveStats {
        self.engine.stats
    }
}

/// A stateful solver holding one standardized problem across a *sequence*
/// of solves.
///
/// A session standardizes its [`Problem`] once and keeps the simplex
/// engine's workspace alive between solves, so callers that repeatedly
/// re-solve small variations of the same LP — mutated bounds, RHS ranges,
/// or costs — avoid both the rebuild and most of the simplex work:
/// each [`solve`](Self::solve) warm-starts from the previous solve's final
/// basis (or one supplied via [`warm_start_from`](Self::warm_start_from)).
///
/// Warm starts are strictly an optimization: if the stored basis cannot be
/// installed (shape mismatch after the problem was mutated elsewhere,
/// singular basis, numerical trouble), the solve silently restarts cold and
/// reports it in [`SolveStats::warm_start_fallbacks`]. The answer is always
/// the same as a fresh [`solve`](crate::solve) of the mutated problem,
/// within tolerance.
///
/// Sessions are [`Clone`]: a clone carries the full engine state, including
/// the basis the original would warm-start from, and the two evolve
/// independently afterwards. Speculative evaluation (e.g. the RET probe
/// pool) clones one template session per probe so every probe re-solves
/// from the *same* starting basis — making each answer, and its iteration
/// counts, a pure function of the probed bounds rather than of which
/// thread answered which probe in which order.
///
/// ```
/// use wavesched_lp::{Objective, Problem, SolverSession, Status};
///
/// let mut p = Problem::new(Objective::Maximize);
/// let x = p.add_col(0.0, 10.0, 1.0);
/// let r = p.add_row(f64::NEG_INFINITY, 6.0, &[(x, 1.0)]);
/// let mut sess = SolverSession::new(&p).unwrap();
/// let s1 = sess.solve().unwrap();
/// assert_eq!(s1.status, Status::Optimal);
/// assert!((s1.objective - 6.0).abs() < 1e-9);
///
/// // Tighten the row in place and re-solve warm.
/// sess.set_row_bounds(r, f64::NEG_INFINITY, 4.0);
/// let s2 = sess.solve().unwrap();
/// assert!((s2.objective - 4.0).abs() < 1e-9);
/// assert_eq!(sess.stats().warm_starts_accepted, 1);
/// ```
#[derive(Clone)]
pub struct SolverSession {
    engine: Engine,
    warm: Option<Basis>,
    agg: SolveStats,
    /// True when `warm` is this session's *own* last optimal basis for the
    /// current problem structure (not user-supplied, no columns/rows added
    /// since). Together with `!cost_dirty` this is the precondition for the
    /// dual simplex re-solve path: the basis is then dual feasible up to
    /// the bound/RHS edits made since.
    warm_is_own: bool,
    /// True when an objective coefficient actually changed since the last
    /// optimal solve. Cost edits invalidate dual feasibility, so they
    /// force the next re-solve back onto the primal warm path.
    cost_dirty: bool,
}

impl SolverSession {
    /// Builds a session for `p` under default simplex settings.
    pub fn new(p: &Problem) -> Result<Self, SolveError> {
        Self::with_config(p, &SimplexConfig::default())
    }

    /// Builds a session for `p` with explicit [`SimplexConfig`] settings.
    pub fn with_config(p: &Problem, cfg: &SimplexConfig) -> Result<Self, SolveError> {
        let std = standardize(p)?;
        Ok(SolverSession {
            engine: Engine::new(std, cfg.clone()),
            warm: None,
            agg: SolveStats::default(),
            warm_is_own: false,
            cost_dirty: false,
        })
    }

    /// Number of columns of the held problem.
    pub fn num_cols(&self) -> usize {
        self.engine.std.nstruct
    }

    /// Number of rows of the held problem.
    pub fn num_rows(&self) -> usize {
        self.engine.std.nrows
    }

    /// Overrides the bounds of `col` in place (no rebuild).
    ///
    /// # Panics
    /// Panics on NaN or crossed finite bounds, or a foreign column.
    pub fn set_col_bounds(&mut self, col: Col, lower: f64, upper: f64) {
        let j = col.index();
        assert!(j < self.engine.std.nstruct, "col out of range");
        self.set_std_bounds(j, lower, upper);
    }

    /// Overrides the bounds of `row` in place (no rebuild).
    ///
    /// # Panics
    /// Panics on NaN or crossed finite bounds, or a foreign row.
    pub fn set_row_bounds(&mut self, row: Row, lower: f64, upper: f64) {
        let i = row.index();
        assert!(i < self.engine.std.nrows, "row out of range");
        let j = self.engine.std.activity_col(i);
        self.set_std_bounds(j, lower, upper);
    }

    fn set_std_bounds(&mut self, j: usize, lower: f64, upper: f64) {
        assert!(!lower.is_nan() && !upper.is_nan(), "NaN bound");
        let l = if is_inf(lower) && lower < 0.0 {
            f64::NEG_INFINITY
        } else {
            lower
        };
        let u = if is_inf(upper) && upper > 0.0 {
            f64::INFINITY
        } else {
            upper
        };
        assert!(l <= u, "bounds crossed: [{l}, {u}]");
        self.engine.std.lower[j] = l;
        self.engine.std.upper[j] = u;
    }

    /// Overrides the objective coefficient of `col` in place.
    ///
    /// # Panics
    /// Panics on a NaN cost or a foreign column.
    pub fn set_cost(&mut self, col: Col, cost: f64) {
        let j = col.index();
        assert!(j < self.engine.std.nstruct, "col out of range");
        assert!(cost.is_finite(), "non-finite cost");
        let signed = self.engine.std.obj_sign * cost;
        // lint: allow(float-eq, reason = "exact no-op detection: re-setting the identical coefficient (the common install-everything pattern) must not disqualify the dual re-solve path, and an exact compare can never misclassify a real change")
        if signed != self.engine.std.cost[j] {
            self.engine.std.cost[j] = signed;
            self.cost_dirty = true;
        }
    }

    /// Appends structural columns to the held problem in place, returning
    /// their handles (contiguous, starting at the previous
    /// [`num_cols`](Self::num_cols)).
    ///
    /// The carried warm basis is extended so the new columns enter
    /// **nonbasic at a bound** (the finite bound nearest zero, or free at
    /// zero): the next [`solve`](Self::solve) warm-starts from the previous
    /// optimal basis with the new columns parked, which is the delayed
    /// column generation step. A basis supplied later via
    /// [`warm_start_from`](Self::warm_start_from) with a stale shape still
    /// falls back to a cold solve — appending preserves the invariant that
    /// a warm start can only change the work counters, never the answer.
    ///
    /// # Panics
    /// Panics on NaN/crossed bounds, non-finite costs or coefficients,
    /// out-of-range rows, or duplicate row entries within one column.
    pub fn add_columns(&mut self, cols: &[NewColumn]) -> Vec<Col> {
        let base = self.engine.std.nstruct;
        self.warm_is_own = false; // structure change: not a bounds/RHS-only edit
        self.engine.append_columns(cols);
        if let Some(w) = &mut self.warm {
            for j in base..base + cols.len() {
                // Park where the engine's resting rule will put it.
                let l = self.engine.std.lower[j];
                let u = self.engine.std.upper[j];
                let status = if l.is_finite() && u.is_finite() {
                    if l.abs() <= u.abs() {
                        BasisStatus::AtLower
                    } else {
                        BasisStatus::AtUpper
                    }
                } else if l.is_finite() {
                    BasisStatus::AtLower
                } else if u.is_finite() {
                    BasisStatus::AtUpper
                } else {
                    BasisStatus::Free
                };
                w.cols.push(status);
            }
        }
        (base..base + cols.len()).map(Col::from_index).collect()
    }

    /// Appends constraint rows to the held problem in place, returning
    /// their handles (contiguous, starting at the previous
    /// [`num_rows`](Self::num_rows)).
    ///
    /// The carried warm basis is extended with the new rows' activity
    /// columns marked **basic**: the extended basis matrix is block
    /// triangular (old basis unchanged, `-1` diagonal on the new rows), so
    /// it is always nonsingular, and a new row whose activity lands outside
    /// its bounds is repaired by the warm-start phase-1 bound shift exactly
    /// like any other warm-start violation — with cold fallback on any
    /// surprise.
    ///
    /// # Panics
    /// Panics on NaN/crossed bounds, non-finite coefficients, or
    /// out-of-range columns.
    pub fn add_rows(&mut self, rows: &[NewRow]) -> Vec<Row> {
        let base = self.engine.std.nrows;
        self.warm_is_own = false; // structure change: not a bounds/RHS-only edit
        self.engine.append_rows(rows);
        if let Some(w) = &mut self.warm {
            w.rows.resize(w.rows.len() + rows.len(), BasisStatus::Basic);
        }
        (base..base + rows.len()).map(Row::from_index).collect()
    }

    /// Seeds the next solve with `basis` — e.g. one extracted from a
    /// structurally related problem — replacing whatever basis the session
    /// was carrying.
    pub fn warm_start_from(&mut self, basis: Basis) {
        self.warm = Some(basis);
        self.warm_is_own = false; // foreign provenance: primal warm path only
                                  // The carried factorization factors the engine's *live* basis, not
                                  // the foreign one about to be installed.
        self.engine.reuse_ready = false;
    }

    /// Drops the carried basis; the next solve starts cold.
    pub fn clear_warm_start(&mut self) {
        self.warm = None;
        self.warm_is_own = false;
        self.engine.reuse_ready = false;
    }

    /// Test-only hook: corrupts the carried LU factorization in place (a
    /// single factor entry is scaled), so the differential suite can prove
    /// the reuse residual guard rejects a bad factorization and falls back
    /// cold instead of propagating wrong answers.
    #[doc(hidden)]
    pub fn debug_corrupt_factorization(&mut self) {
        if let Some(lu) = self.engine.lu.as_mut() {
            lu.corrupt_for_test();
        }
    }

    /// Solves the current state of the held problem, warm-starting from the
    /// carried basis when one is available.
    ///
    /// Only an **optimal** solve replaces the carried basis: the final basis
    /// of an infeasible (or limit-hit) solve is a phase-1 artifact that makes
    /// a poor starting point, so after such a solve the session keeps
    /// warm-starting from the last optimal basis it saw. Use
    /// [`warm_start_from`](SolverSession::warm_start_from) /
    /// [`clear_warm_start`](SolverSession::clear_warm_start) to override.
    pub fn solve(&mut self) -> Result<Solution, SolveError> {
        // The dual re-solve path needs dual feasibility of the carried
        // basis, which only the session can certify: its own last optimal
        // basis for this exact structure, with every edit since confined
        // to bounds/RHS. Anything else goes down the primal warm ladder.
        let try_dual = self.warm_is_own && !self.cost_dirty;
        // Factorization reuse rides on the engine's own validity tracking
        // (`reuse_ready`, maintained across every in-place edit); the
        // session only pins it off under the `Always` A/B policy.
        let try_reuse = self.engine.refactor_policy != RefactorPolicy::Always;
        let sol = self.engine.solve(self.warm.as_ref(), try_dual, try_reuse)?;
        if sol.status == Status::Optimal {
            self.warm.clone_from(&sol.basis);
            self.warm_is_own = sol.basis.is_some();
            self.cost_dirty = false;
        }
        self.agg.merge(&sol.stats);
        Ok(sol)
    }

    /// Counters aggregated over every solve this session has run.
    pub fn stats(&self) -> SolveStats {
        self.agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Objective, Problem};

    fn assert_near(a: f64, b: f64) {
        assert!(
            (a - b).abs() < 1e-6,
            "expected {b}, got {a} (diff {})",
            (a - b).abs()
        );
    }

    #[test]
    fn ratio_clamp_zero_sign_is_deterministic() {
        // `f64::max(-0.0, 0.0)` may return either zero depending on how the
        // build lowers it; the ratio-test clamp must always produce `+0.0`
        // or `total_cmp`-ordered candidate sorts diverge across build
        // profiles (debug vs release picking different pivots).
        assert_eq!(pos_or_zero(-0.0).to_bits(), 0.0f64.to_bits());
        assert_eq!(pos_or_zero(0.0).to_bits(), 0.0f64.to_bits());
        assert_eq!(pos_or_zero(f64::NAN).to_bits(), 0.0f64.to_bits());
        assert_eq!(pos_or_zero(-1.5).to_bits(), 0.0f64.to_bits());
        assert_eq!(pos_or_zero(2.5), 2.5);
    }

    #[test]
    fn simple_max() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6
        let mut p = Problem::new(Objective::Maximize);
        let x = p.add_col(0.0, f64::INFINITY, 3.0);
        let y = p.add_col(0.0, f64::INFINITY, 2.0);
        p.add_row(f64::NEG_INFINITY, 4.0, &[(x, 1.0), (y, 1.0)]);
        p.add_row(f64::NEG_INFINITY, 6.0, &[(x, 1.0), (y, 3.0)]);
        let s = solve(&p).unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_near(s.objective, 12.0);
        assert_near(s.x[0], 4.0);
        assert_near(s.x[1], 0.0);
    }

    #[test]
    fn equality_rows_need_phase1() {
        // min x + y s.t. x + y = 3, x - y = 1 => x=2, y=1, obj 3
        let mut p = Problem::new(Objective::Minimize);
        let x = p.add_col(0.0, f64::INFINITY, 1.0);
        let y = p.add_col(0.0, f64::INFINITY, 1.0);
        p.add_row(3.0, 3.0, &[(x, 1.0), (y, 1.0)]);
        p.add_row(1.0, 1.0, &[(x, 1.0), (y, -1.0)]);
        let s = solve(&p).unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_near(s.objective, 3.0);
        assert_near(s.x[0], 2.0);
        assert_near(s.x[1], 1.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new(Objective::Minimize);
        let x = p.add_col(0.0, 1.0, 1.0);
        p.add_row(5.0, f64::INFINITY, &[(x, 1.0)]);
        let s = solve(&p).unwrap();
        assert_eq!(s.status, Status::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::new(Objective::Maximize);
        let x = p.add_col(0.0, f64::INFINITY, 1.0);
        let y = p.add_col(0.0, f64::INFINITY, 0.0);
        p.add_row(0.0, f64::INFINITY, &[(x, 1.0), (y, -1.0)]);
        let s = solve(&p).unwrap();
        assert_eq!(s.status, Status::Unbounded);
    }

    #[test]
    fn bounded_variables_and_ranges() {
        // max x + y, 1 <= x <= 2, 0 <= y <= 2, 2 <= x + y <= 3
        let mut p = Problem::new(Objective::Maximize);
        let x = p.add_col(1.0, 2.0, 1.0);
        let y = p.add_col(0.0, 2.0, 1.0);
        p.add_row(2.0, 3.0, &[(x, 1.0), (y, 1.0)]);
        let s = solve(&p).unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_near(s.objective, 3.0);
    }

    #[test]
    fn free_variable() {
        // min x, x free, x >= -7 via row
        let mut p = Problem::new(Objective::Minimize);
        let x = p.add_col(f64::NEG_INFINITY, f64::INFINITY, 1.0);
        p.add_row(-7.0, f64::INFINITY, &[(x, 1.0)]);
        let s = solve(&p).unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_near(s.objective, -7.0);
        assert_near(s.x[0], -7.0);
    }

    #[test]
    fn negative_bounds() {
        // min 2a + b with a in [-3,-1], b in [-5, 0], a + b >= -4
        let mut p = Problem::new(Objective::Minimize);
        let a = p.add_col(-3.0, -1.0, 2.0);
        let b = p.add_col(-5.0, 0.0, 1.0);
        p.add_row(-4.0, f64::INFINITY, &[(a, 1.0), (b, 1.0)]);
        let s = solve(&p).unwrap();
        assert_eq!(s.status, Status::Optimal);
        // a = -3 gives cost -6, then b >= -1 => b = -1, total -7.
        assert_near(s.objective, -7.0);
        assert_near(s.x[0], -3.0);
        assert_near(s.x[1], -1.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Highly degenerate: many redundant rows through the same vertex.
        let mut p = Problem::new(Objective::Maximize);
        let x = p.add_col(0.0, f64::INFINITY, 1.0);
        let y = p.add_col(0.0, f64::INFINITY, 1.0);
        for k in 1..=8 {
            p.add_row(f64::NEG_INFINITY, k as f64, &[(x, k as f64), (y, k as f64)]);
        }
        let s = solve(&p).unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_near(s.objective, 1.0);
    }

    #[test]
    fn objective_offset_respected() {
        let mut p = Problem::new(Objective::Minimize);
        let x = p.add_col(1.0, 5.0, 2.0);
        let _ = x;
        p.add_objective_offset(100.0);
        let s = solve(&p).unwrap();
        assert_near(s.objective, 102.0);
    }

    #[test]
    fn fixed_variables() {
        let mut p = Problem::new(Objective::Maximize);
        let x = p.add_col(3.0, 3.0, 1.0);
        let y = p.add_col(0.0, 10.0, 1.0);
        p.add_row(f64::NEG_INFINITY, 5.0, &[(x, 1.0), (y, 1.0)]);
        let s = solve(&p).unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_near(s.x[0], 3.0);
        assert_near(s.x[1], 2.0);
    }

    #[test]
    fn empty_problem() {
        let p = Problem::new(Objective::Minimize);
        let s = solve(&p).unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_near(s.objective, 0.0);
    }

    #[test]
    fn transportation_problem() {
        // 2 supplies (10, 20), 3 demands (5, 10, 15), unit costs.
        let costs = [[2.0, 4.0, 5.0], [3.0, 1.0, 7.0]];
        let supply = [10.0, 20.0];
        let demand = [5.0, 10.0, 15.0];
        let mut p = Problem::new(Objective::Minimize);
        let mut xs = [[None; 3]; 2];
        for i in 0..2 {
            for j in 0..3 {
                xs[i][j] = Some(p.add_col(0.0, f64::INFINITY, costs[i][j]));
            }
        }
        for i in 0..2 {
            let coeffs: Vec<_> = (0..3).map(|j| (xs[i][j].unwrap(), 1.0)).collect();
            p.add_row(f64::NEG_INFINITY, supply[i], &coeffs);
        }
        for j in 0..3 {
            let coeffs: Vec<_> = (0..2).map(|i| (xs[i][j].unwrap(), 1.0)).collect();
            p.add_row(demand[j], demand[j], &coeffs);
        }
        let s = solve(&p).unwrap();
        assert_eq!(s.status, Status::Optimal);
        // Optimal: x02=10 (50), x10=5 (15), x11=10 (10), x12=5 (35) => 110.
        assert_near(s.objective, 110.0);
    }

    #[test]
    fn cloned_sessions_answer_identically_and_independently() {
        // A template session solved once; clones re-solve tightened
        // variants. Every clone starts from the same basis, so the same
        // tightening must produce bit-identical objectives and stats no
        // matter how many clones ran before it — the property the RET
        // speculative probe pool is built on.
        let mut p = Problem::new(Objective::Maximize);
        let x = p.add_col(0.0, 4.0, 1.0);
        let y = p.add_col(0.0, 10.0, 2.0);
        p.add_row(f64::NEG_INFINITY, 12.0, &[(x, 1.0), (y, 2.0)]);
        let mut template = SolverSession::new(&p).unwrap();
        let base = template.solve().unwrap();
        assert_eq!(base.status, Status::Optimal);

        let probe = |ub: f64| {
            let mut s = template.clone();
            s.set_col_bounds(y, 0.0, ub);
            let sol = s.solve().unwrap();
            (sol.objective.to_bits(), sol.stats)
        };
        let (obj_a, stats_a) = probe(3.0);
        let (obj_b, _) = probe(1.0);
        let (obj_a2, stats_a2) = probe(3.0); // same probe after another ran
        assert_eq!(obj_a, obj_a2, "clone answers must not depend on order");
        assert_eq!(stats_a, stats_a2);
        assert_ne!(obj_a, obj_b);
        // The template itself was never advanced by its clones.
        let again = template.solve().unwrap();
        assert_eq!(again.objective.to_bits(), base.objective.to_bits());
    }

    #[test]
    fn add_columns_matches_monolithic() {
        // Restricted master: max 3x s.t. x <= 4, x + 3y <= 6. Solve, then
        // append y (cost 2) and re-solve; must match the monolithic build.
        let mut p = Problem::new(Objective::Maximize);
        let x = p.add_col(0.0, f64::INFINITY, 3.0);
        let r0 = p.add_row(f64::NEG_INFINITY, 4.0, &[(x, 1.0)]);
        let r1 = p.add_row(f64::NEG_INFINITY, 6.0, &[(x, 1.0)]);
        let mut sess = SolverSession::new(&p).unwrap();
        let s1 = sess.solve().unwrap();
        assert_eq!(s1.status, Status::Optimal);
        assert_near(s1.objective, 12.0);

        let cols = sess.add_columns(&[NewColumn {
            lower: 0.0,
            upper: f64::INFINITY,
            cost: 2.0,
            entries: vec![(r1, 3.0), (r0, 0.0)],
        }]);
        assert_eq!(cols.len(), 1);
        assert_eq!(sess.num_cols(), 2);
        let s2 = sess.solve().unwrap();
        assert_eq!(s2.status, Status::Optimal);
        // Monolithic optimum of max 3x + 2y, x <= 4, x + 3y <= 6:
        // x = 4, y = 2/3 => 12 + 4/3.
        assert_near(s2.objective, 12.0 + 4.0 / 3.0);
        assert_near(s2.x[1], 2.0 / 3.0);
        // The second solve went through the warm path (the appended column
        // entered nonbasic at its lower bound).
        assert_eq!(s2.stats.warm_starts_accepted, 1);
        assert_eq!(s2.stats.warm_start_fallbacks, 0);
    }

    #[test]
    fn add_rows_matches_monolithic() {
        // max x + y, x,y in [0,10], x + y <= 12; then append x - y <= 2.
        let mut p = Problem::new(Objective::Maximize);
        let x = p.add_col(0.0, 10.0, 2.0);
        let y = p.add_col(0.0, 10.0, 1.0);
        p.add_row(f64::NEG_INFINITY, 12.0, &[(x, 1.0), (y, 1.0)]);
        let mut sess = SolverSession::new(&p).unwrap();
        let s1 = sess.solve().unwrap();
        assert_near(s1.objective, 2.0 * 10.0 + 2.0);

        let rows = sess.add_rows(&[NewRow {
            lower: f64::NEG_INFINITY,
            upper: 2.0,
            entries: vec![(x, 1.0), (y, -1.0)],
        }]);
        assert_eq!(rows.len(), 1);
        assert_eq!(sess.num_rows(), 2);
        let s2 = sess.solve().unwrap();
        assert_eq!(s2.status, Status::Optimal);
        // Monolithic: x - y <= 2 and x + y <= 12 => x = 7, y = 5 => 19.
        assert_near(s2.objective, 19.0);
        let mut q = Problem::new(Objective::Maximize);
        let qx = q.add_col(0.0, 10.0, 2.0);
        let qy = q.add_col(0.0, 10.0, 1.0);
        q.add_row(f64::NEG_INFINITY, 12.0, &[(qx, 1.0), (qy, 1.0)]);
        q.add_row(f64::NEG_INFINITY, 2.0, &[(qx, 1.0), (qy, -1.0)]);
        let mono = solve(&q).unwrap();
        assert_eq!(mono.objective.to_bits(), s2.objective.to_bits());
    }

    #[test]
    fn colgen_loop_reaches_full_optimum() {
        // A tiny delayed-column-generation loop: three "paths" of costs
        // 5, 4, 3 share one capacity row of 6; start with only the worst
        // one and add the rest one batch at a time, re-solving warm.
        let mut p = Problem::new(Objective::Maximize);
        let _x0 = p.add_col(0.0, f64::INFINITY, 3.0);
        let cap = p.add_row(f64::NEG_INFINITY, 6.0, &[(Col::from_index(0), 1.0)]);
        let mut sess = SolverSession::new(&p).unwrap();
        let mut sol = sess.solve().unwrap();
        assert_near(sol.objective, 18.0);
        for cost in [4.0, 5.0] {
            sess.add_columns(&[NewColumn {
                lower: 0.0,
                upper: f64::INFINITY,
                cost,
                entries: vec![(cap, 1.0)],
            }]);
            sol = sess.solve().unwrap();
            assert_eq!(sol.status, Status::Optimal);
        }
        assert_near(sol.objective, 30.0); // all 6 units on the cost-5 column
        assert_eq!(sess.stats().warm_starts_accepted, 2);
        assert_eq!(sess.stats().warm_start_fallbacks, 0);
    }

    #[test]
    fn add_columns_then_stale_external_basis_falls_back_cold() {
        let mut p = Problem::new(Objective::Maximize);
        let x = p.add_col(0.0, 4.0, 1.0);
        let r = p.add_row(f64::NEG_INFINITY, 3.0, &[(x, 1.0)]);
        let mut sess = SolverSession::new(&p).unwrap();
        let s1 = sess.solve().unwrap();
        let stale = s1.basis.clone().unwrap();
        sess.add_columns(&[NewColumn {
            lower: 0.0,
            upper: 4.0,
            cost: 2.0,
            entries: vec![(r, 1.0)],
        }]);
        // Supplying the pre-append basis (wrong shape) must fall back to a
        // cold solve with the answer unchanged — the PR-1 invariant.
        sess.warm_start_from(stale);
        let s2 = sess.solve().unwrap();
        assert_eq!(s2.status, Status::Optimal);
        assert_near(s2.objective, 6.0);
        assert_eq!(s2.stats.warm_start_fallbacks, 1);
        assert_eq!(s2.stats.warm_starts_accepted, 0);
    }

    #[test]
    fn add_rows_then_columns_interleaved() {
        // Grow both dimensions between solves and check against the
        // monolithic build, including duals for the appended row.
        let mut p = Problem::new(Objective::Minimize);
        let x = p.add_col(0.0, f64::INFINITY, 2.0);
        p.add_row(3.0, f64::INFINITY, &[(x, 1.0)]);
        let mut sess = SolverSession::new(&p).unwrap();
        let s1 = sess.solve().unwrap();
        assert_near(s1.objective, 6.0);
        // New row only over x, then a cheaper column covering both rows.
        let r2 = sess.add_rows(&[NewRow {
            lower: 5.0,
            upper: f64::INFINITY,
            entries: vec![(x, 1.0)],
        }]);
        let s2 = sess.solve().unwrap();
        assert_near(s2.objective, 10.0);
        sess.add_columns(&[NewColumn {
            lower: 0.0,
            upper: f64::INFINITY,
            cost: 1.0,
            entries: vec![(Row::from_index(0), 1.0), (r2[0], 1.0)],
        }]);
        let s3 = sess.solve().unwrap();
        assert_eq!(s3.status, Status::Optimal);
        assert_near(s3.objective, 5.0); // all demand met by the new column
        let mut q = Problem::new(Objective::Minimize);
        let qx = q.add_col(0.0, f64::INFINITY, 2.0);
        let qy = q.add_col(0.0, f64::INFINITY, 1.0);
        q.add_row(3.0, f64::INFINITY, &[(qx, 1.0), (qy, 1.0)]);
        q.add_row(5.0, f64::INFINITY, &[(qx, 1.0), (qy, 1.0)]);
        let mono = solve(&q).unwrap();
        assert_near(s3.objective, mono.objective);
    }

    #[test]
    fn add_columns_on_unsolved_session() {
        // Appending before any solve must behave like building monolithic.
        let mut p = Problem::new(Objective::Maximize);
        let x = p.add_col(0.0, 2.0, 1.0);
        let r = p.add_row(f64::NEG_INFINITY, 5.0, &[(x, 1.0)]);
        let mut sess = SolverSession::new(&p).unwrap();
        sess.add_columns(&[NewColumn {
            lower: 0.0,
            upper: 2.0,
            cost: 3.0,
            entries: vec![(r, 1.0)],
        }]);
        let s = sess.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_near(s.objective, 2.0 * 3.0 + 2.0 * 1.0); // both at their bounds
    }

    #[test]
    fn duals_satisfy_weak_pricing() {
        let mut p = Problem::new(Objective::Maximize);
        let x = p.add_col(0.0, f64::INFINITY, 3.0);
        let y = p.add_col(0.0, f64::INFINITY, 5.0);
        p.add_row(f64::NEG_INFINITY, 4.0, &[(x, 1.0)]);
        p.add_row(f64::NEG_INFINITY, 12.0, &[(y, 2.0)]);
        p.add_row(f64::NEG_INFINITY, 18.0, &[(x, 3.0), (y, 2.0)]);
        let s = solve(&p).unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_near(s.objective, 36.0);
        // Strong duality: b'y == objective for this classic example.
        let dual_obj = 4.0 * s.duals[0] + 12.0 * s.duals[1] + 18.0 * s.duals[2];
        assert_near(dual_obj, 36.0);
    }
}
