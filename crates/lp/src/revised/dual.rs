//! Dual simplex re-solve path for bound/RHS-only edits.
//!
//! Every RET probe, δ-growth step, and column-generation master re-aim
//! mutates *only* bounds (row ranges live on activity-column bounds in the
//! standardized form), which leaves the previous optimal basis **dual
//! feasible**: the reduced costs still price correctly, only some basic
//! values fall outside their (new) bounds. The primal warm path repairs
//! that with a bound-shift phase 1 followed by a full phase 2; the dual
//! simplex instead drives the primal infeasibilities out directly while
//! dual feasibility is *maintained*, which typically needs a handful of
//! pivots where the primal repair needs dozens.
//!
//! The path reuses the engine's existing machinery end to end: the sparse
//! pivotal-row BTRAN and CSR row mirror for the dual ratio test, the
//! bound-flip ratio test (boxed nonbasic variables that cannot block are
//! flipped in bulk through one accumulated FTRAN), the entering column's
//! sparse FTRAN, and the shared `apply_pivot` / `update_reduced_and_weights`
//! pair — the dual reduced-cost update is algebraically the same pivotal-row
//! formula the primal uses.
//!
//! **The PR 1 warm-path guarantee is preserved**: this path can only change
//! the work counters, never the answer. Every exit that is not a verified
//! optimum — dual infeasibility at installation, a dual ray (no eligible
//! entering column), numerical disagreement, a stalled loop — returns
//! `Err(())`, and the caller falls back to the primal warm ladder and
//! ultimately the cold solve, whose phase 1 remains the only infeasibility
//! proof. A converged dual loop still finishes through the ordinary primal
//! `iterate`, so the claimed optimum is re-verified against exactly
//! recomputed reduced costs before it is extracted.

use super::{for_each_entry, ColKind, Engine, PhaseOutcome, VarState};
use crate::solution::{Basis, BasisStatus, Solution, Status};

impl Engine {
    /// Attempts a dual simplex re-solve from `warm`, which the caller
    /// certifies is this engine's own last optimal basis with only
    /// bounds/RHS edited since. `Err(())` means the attempt was abandoned
    /// (never that the problem is infeasible) and the ordinary warm/cold
    /// ladder should run.
    pub(super) fn attempt_dual(&mut self, warm: &Basis) -> Result<Solution, ()> {
        if warm.cols.len() != self.std.nstruct || warm.rows.len() != self.std.nrows {
            return Err(());
        }
        let m = self.std.nrows;

        // Install the basis exactly as the primal warm path would: park
        // nonbasics at whatever the *current* bounds allow, collect basics.
        let mut basic: Vec<usize> = Vec::with_capacity(m);
        for j in 0..self.std.nstruct + m {
            let status = if j < self.std.nstruct {
                warm.cols[j]
            } else {
                warm.rows[j - self.std.nstruct]
            };
            if status == BasisStatus::Basic {
                basic.push(j);
                continue;
            }
            self.park_nonbasic(j, status);
        }
        // An own-optimal basis has exactly m basic columns; anything else
        // contradicts the caller's provenance claim.
        if basic.len() != m {
            return Err(());
        }
        self.basis = basic;
        for pos in 0..m {
            let j = self.basis[pos];
            self.state[j] = VarState::Basic(pos as u32);
        }
        if self.refactorize(super::RefactorReason::Forced).is_err() {
            return Err(());
        }
        // Factorization repair swaps dependent columns for reopened
        // artificials; an artificial in the basis breaks the dual argument.
        for &j in &self.basis {
            if self.std.kind[j] == ColKind::Artificial {
                return Err(());
            }
        }

        // Phase-2 costs, then verify the basis still prices dual feasible
        // (re-parking a nonbasic on the other side of its edited bounds
        // breaks the required reduced-cost sign).
        for j in 0..self.std.ncols() {
            if self.std.kind[j] != ColKind::Artificial {
                self.cost[j] = self.std.cost[j];
            }
        }
        self.recompute_reduced();
        let dtol = self.cfg.opt_tol;
        for j in 0..self.std.ncols() {
            let ok = match self.state[j] {
                VarState::Basic(_) | VarState::Fixed => true,
                VarState::AtLower => self.d[j] >= -dtol,
                VarState::AtUpper => self.d[j] <= dtol,
                VarState::Free => self.d[j].abs() <= dtol,
            };
            if !ok {
                return Err(());
            }
        }

        self.bland = false;
        self.degen_run = 0;
        self.dual_loop()?;

        // Exact finish: the dual loop restored primal feasibility under
        // *maintained* reduced costs; run the primal loop once so the
        // optimum is verified against exactly recomputed ones (it prices,
        // refactorizes, re-prices — and cleans up any residual eligible
        // columns the drift hid). Anything but a verified optimum falls
        // back to the primal ladder for the canonical answer.
        match self.iterate(false).map_err(|_| ())? {
            PhaseOutcome::Optimal => {
                self.stats.warm_starts_accepted = 1;
                Ok(self.extract(Status::Optimal))
            }
            PhaseOutcome::Unbounded | PhaseOutcome::IterationLimit => Err(()),
        }
    }

    /// The dual pivot loop: repeatedly picks the most-violated basic value,
    /// runs the dual (bound-flip) ratio test over the pivotal row, and
    /// exchanges it against the blocking nonbasic column. Returns `Ok(())`
    /// when no basic value violates its bounds (primal feasibility), and
    /// `Err(())` on a dual ray, numerical disagreement, or a stalled loop —
    /// all of which the caller converts into a primal fallback.
    /// (`pub(super)` so the factorization-reuse entry in `revised.rs` can
    /// drive the same loop.)
    pub(super) fn dual_loop(&mut self) -> Result<(), ()> {
        let m = self.std.nrows;
        let ftol = self.cfg.feas_tol;
        let ptol = self.cfg.pivot_tol;
        // A bound/RHS re-solve that needs more than a few sweeps of the
        // basis is not winning anything over the primal repair — stop
        // burning work and let the fallback run.
        let cap = self.stats.iterations + 4 * m as u64 + 100;
        loop {
            if self.stats.iterations >= self.cfg.max_iterations || self.stats.iterations >= cap {
                return Err(());
            }
            if let Some(reason) = self.cadence_refactor_due() {
                self.refactorize(reason).map_err(|_| ())?;
                self.recompute_reduced();
            }

            // Leaving row: the largest bound violation among basic values
            // (ties resolve to the lowest position via the strict compare).
            let mut r = usize::MAX;
            let mut viol = ftol;
            for pos in 0..m {
                let j = self.basis[pos];
                let v = self.xb[pos];
                let over = v - self.std.upper[j];
                let under = self.std.lower[j] - v;
                let w = over.max(under);
                if w > viol {
                    viol = w;
                    r = pos;
                }
            }
            if r == usize::MAX {
                return Ok(()); // primal feasible
            }
            let leaving = self.basis[r];
            let above = self.xb[r] - self.std.upper[leaving] > 0.0;
            // `s` orients the dual ratio test: +1 when the leaving value
            // sits above its upper bound (it will park AtUpper), -1 below
            // the lower bound (parks AtLower).
            let s = if above { 1.0 } else { -1.0 };
            let target = if above {
                self.std.upper[leaving]
            } else {
                self.std.lower[leaving]
            };

            // Pivotal row: rho = B^-T e_r, then alpha_j = rho . a_j for the
            // nonbasic columns intersecting rho's rows (CSR mirror).
            let mut rho = std::mem::take(&mut self.rho);
            rho.clear();
            rho.set(r as u32, 1.0);
            self.btran_pos_sparse(&mut rho);
            self.stats.btran_ops += 1;
            self.stats.btran_nnz += rho.nnz() as u64;
            if rho.is_dense() {
                self.stats.btran_dense_fallbacks += 1;
            }
            let mut touched = std::mem::take(&mut self.touched);
            touched.clear();
            if rho.is_dense() {
                for (row, &rv) in rho.values.iter().enumerate() {
                    if rv.abs() <= 1e-12 {
                        continue;
                    }
                    // usize::MAX: no entering column to exclude yet.
                    self.push_row_cols(row, usize::MAX, &mut touched);
                }
            } else {
                rho.sort_pattern();
                for &row in &rho.pattern {
                    let row = row as usize;
                    if rho.values[row].abs() <= 1e-12 {
                        continue;
                    }
                    self.push_row_cols(row, usize::MAX, &mut touched);
                }
            }
            touched.sort_unstable();
            touched.dedup();
            self.stats.pivot_row_nnz += touched.len() as u64;

            // Dual ratio candidates: nonbasic columns whose reduced cost
            // shrinks toward zero as the r-th dual price moves in the
            // healing direction.
            let mut cands = std::mem::take(&mut self.dual_cols);
            cands.clear();
            for &jc in &touched {
                let j = jc as usize;
                let alpha = self.std.a.col_dot(j, &rho.values);
                if alpha.abs() <= ptol {
                    continue;
                }
                let sa = s * alpha;
                let ok = match self.state[j] {
                    VarState::AtLower => sa > ptol,
                    VarState::AtUpper => sa < -ptol,
                    VarState::Free => true,
                    VarState::Basic(_) | VarState::Fixed => false,
                };
                if ok {
                    cands.push((jc, alpha));
                }
            }
            if cands.is_empty() {
                // Dual ray. For a genuinely infeasible edit this is the
                // expected exit — but it is NOT a proof (only the cold
                // phase 1 is), so hand the instance to the fallback ladder.
                self.rho = rho;
                self.touched = touched;
                self.dual_cols = cands;
                return Err(());
            }

            // Bound-flip ratio test. Candidates ordered by dual ratio
            // (ties: larger pivot first, then lower column index, all via
            // total orders so the choice is deterministic); boxed
            // candidates that cannot absorb the violation are flipped to
            // their other bound and the walk continues, the first blocking
            // candidate enters.
            let d = &self.d;
            cands.sort_unstable_by(|a, b| {
                let ra = super::pos_or_zero(d[a.0 as usize] / (s * a.1));
                let rb = super::pos_or_zero(d[b.0 as usize] / (s * b.1));
                ra.total_cmp(&rb)
                    .then(b.1.abs().total_cmp(&a.1.abs()))
                    .then(a.0.cmp(&b.0))
            });
            let mut remaining = viol;
            let mut entering: Option<(usize, f64)> = None;
            let mut flips = std::mem::take(&mut self.dual_order);
            flips.clear();
            for &(jc, alpha) in &cands {
                let j = jc as usize;
                let lo = self.std.lower[j];
                let up = self.std.upper[j];
                let boxed = matches!(self.state[j], VarState::AtLower | VarState::AtUpper)
                    && lo.is_finite()
                    && up.is_finite()
                    && lo < up;
                // Flipping an eligible boxed candidate always moves xb[r]
                // toward its target by |alpha| * range; flip while the
                // violation stays strictly positive, otherwise enter.
                if boxed && remaining - alpha.abs() * (up - lo) > ftol {
                    remaining -= alpha.abs() * (up - lo);
                    flips.push(jc);
                    continue;
                }
                entering = Some((j, alpha));
                break;
            }
            self.rho = rho;
            self.touched = touched;
            self.dual_cols = cands;
            let Some((q, _alpha_q)) = entering else {
                // Every candidate flipped without any of them blocking:
                // the ratio test degenerated, abandon the attempt.
                self.dual_order = flips;
                return Err(());
            };

            // Apply the flips through one accumulated FTRAN:
            // xb -= B^-1 (sum_j a_j * delta_j).
            if !flips.is_empty() {
                let mut rhs = std::mem::take(&mut self.ftran_rhs);
                rhs.clear();
                for &jc in &flips {
                    let j = jc as usize;
                    let (lo, up) = (self.std.lower[j], self.std.upper[j]);
                    let (newv, st) = match self.state[j] {
                        VarState::AtLower => (up, VarState::AtUpper),
                        _ => (lo, VarState::AtLower),
                    };
                    let delta = newv - self.xval[j];
                    self.xval[j] = newv;
                    self.state[j] = st;
                    let (rows, vals) = self.std.a.col(j);
                    for (&row, &v) in rows.iter().zip(vals) {
                        rhs.add(row, v * delta);
                    }
                }
                if !rhs.is_dense() {
                    rhs.sort_pattern();
                }
                self.ftran_loaded(rhs);
                let w = std::mem::take(&mut self.ftran_w);
                let xb = &mut self.xb;
                for_each_entry(&w, |pos, wv| {
                    // lint: allow(float-eq, reason = "exact-zero skip is a sparsity guard: skipping true zeros never changes the arithmetic")
                    if wv != 0.0 {
                        xb[pos] -= wv;
                    }
                });
                self.ftran_w = w;
                self.stats.dual_bound_flips += flips.len() as u64;
            }
            self.dual_order = flips;

            // Entering column through the ordinary sparse FTRAN; from here
            // the pivot is exactly a primal pivot with a known leaving row.
            self.ftran_entering(q);
            let w = std::mem::take(&mut self.ftran_w);
            let wr = w.values[r];
            if wr.abs() <= ptol {
                // The row view (rho . a_q) said this pivot is usable but
                // the column view disagrees: numerics too shaky for a
                // warm path that must never change answers.
                self.ftran_w = w;
                return Err(());
            }
            let dir = match self.state[q] {
                VarState::AtLower => 1.0,
                VarState::AtUpper => -1.0,
                VarState::Free => {
                    if (self.xb[r] - target) / wr > 0.0 {
                        1.0
                    } else {
                        -1.0
                    }
                }
                VarState::Basic(_) | VarState::Fixed => {
                    self.ftran_w = w;
                    return Err(());
                }
            };
            // xb[r] moves by -wr * dir * step; land it on the violated
            // bound. Rounding can push the quotient fractionally negative
            // on a degenerate pivot — clamp, the pivot still re-bases.
            let step = super::pos_or_zero((self.xb[r] - target) / (wr * dir));
            self.update_reduced_and_weights(q, r, wr);
            self.apply_pivot(q, dir, r, step, &w);
            self.ftran_w = w;
            #[cfg(debug_assertions)]
            self.debug_invariants();
            self.maybe_sanitize();
            if step <= ftol * 1e-2 {
                self.stats.degenerate_pivots += 1;
            }
            self.stats.iterations += 1;
            self.stats.dual_iterations += 1;
        }
    }
}
