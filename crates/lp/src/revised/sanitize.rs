//! Runtime numerics sanitizer for the simplex hot path.
//!
//! Every `sanitize_every` basis-changing pivots (primal or dual) the
//! engine cross-checks its incrementally maintained state against a
//! from-scratch recomputation: the basic solution must satisfy the
//! standardized system `B x_B + N x_N = 0`, Devex weights must stay
//! finite and strictly positive, and the eta file must agree with the
//! basis bookkeeping. Violations are never fatal — they are folded into
//! [`SolveStats::sanitizer_violations`](crate::SolveStats) (and from
//! there the `lp.sanitizer_*` obs counters) so smoke runs and CI gate on
//! "checks ran, none failed" without perturbing the solve.
//!
//! The sweep reuses the engine's `work_row` scratch (dead between
//! pivots; `refactorize` refills it before every use) and allocates
//! nothing, so the zero-allocation pivot guarantee holds with the
//! sanitizer on. With it off, the cost is a single predictable branch
//! per pivot.

use super::*;

/// Residual tolerance for the `B x_B + N x_N = 0` check, scaled by the
/// largest participating variable magnitude. Deliberately loose: the
/// sweep flags genuine drift (a corrupted incremental update, a bad
/// eta), not the benign rounding `refactorize` exists to flush.
const RESIDUAL_TOL: f64 = 1e-5;

/// Default sweep interval when `WS_SANITIZE` is unset: coarse-grained in
/// debug builds, off in release builds.
const DEBUG_DEFAULT_INTERVAL: u64 = 256;

/// Sweep interval when `WS_SANITIZE=1` ("just turn it on").
const ON_INTERVAL: u64 = 64;

/// Process-wide sanitizer interval from the `WS_SANITIZE` environment
/// variable, read once per process: `0` (or unparseable) disables, `1`
/// enables at a tight default interval, any larger `N` sweeps every `N`
/// pivots. Unset: debug builds default to a coarse interval so the
/// sanitizer rides along with every debug test run, release builds to
/// off so benchmarks are untouched.
pub(super) fn sanitize_env() -> u64 {
    static INTERVAL: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *INTERVAL.get_or_init(|| {
        // lint: allow(env-knob, reason = "WS_SANITIZE mirrors the sanctioned WS_PRICING pattern: read once at first use, build-dependent default when unset, documented in the README")
        match std::env::var("WS_SANITIZE") {
            Ok(v) => match v.trim().parse::<u64>() {
                Ok(0) | Err(_) => 0,
                Ok(1) => ON_INTERVAL,
                Ok(n) => n,
            },
            Err(_) => {
                if cfg!(debug_assertions) {
                    DEBUG_DEFAULT_INTERVAL
                } else {
                    0
                }
            }
        }
    })
}

impl Engine {
    /// Per-pivot sanitizer gate: decrements the countdown and runs a sweep
    /// when it expires. One branch and no memory traffic when disabled
    /// (`sanitize_left` stays 0 forever).
    #[inline]
    pub(super) fn maybe_sanitize(&mut self) {
        if self.sanitize_left == 0 {
            return;
        }
        self.sanitize_left -= 1;
        if self.sanitize_left == 0 {
            self.sanitize_left = self.sanitize_every;
            self.sanitize_sweep();
        }
    }

    /// Residual spot-check of the standardized system: assembles `A·x`
    /// from the incremental `xb`/`xval` and requires it to vanish (scaled
    /// by the largest participating magnitude). `work_row` is dead between
    /// pivots, so the check may clobber it. Returns `false` on any drift —
    /// including a NaN residual — which makes it double as the
    /// factorization-reuse gate: a stale LU produces basic values that
    /// fail this identity.
    pub(super) fn residual_ok(&mut self) -> bool {
        let m = self.std.nrows;
        self.work_row[..m].fill(0.0);
        let mut scale = 1.0f64;
        for j in 0..self.std.ncols() {
            let xj = match self.state[j] {
                VarState::Basic(p) => self.xb[p as usize],
                _ => self.xval[j],
            };
            // lint: allow(float-eq, reason = "exact-zero skip is a sparsity guard: skipping true zeros never changes the arithmetic")
            if xj != 0.0 {
                if xj.abs() > scale {
                    scale = xj.abs();
                }
                let (rows, vals) = self.std.a.col(j);
                for (&r, &v) in rows.iter().zip(vals) {
                    self.work_row[r as usize] += v * xj;
                }
            }
        }
        let mut worst = 0.0f64;
        for &r in &self.work_row[..m] {
            if r.abs() > worst {
                worst = r.abs();
            }
        }
        // Direct (non-negated) comparison: a NaN residual compares false.
        worst <= RESIDUAL_TOL * scale
    }

    /// One full sanitizer sweep. Kept out of line so the hot path carries
    /// only the countdown branch.
    #[cold]
    #[inline(never)]
    fn sanitize_sweep(&mut self) {
        self.stats.sanitizer_checks += 1;
        let mut violations = 0u64;
        let m = self.std.nrows;

        // (1) Residual of the standardized system.
        if !self.residual_ok() {
            violations += 1;
        }

        // (2) Devex weights: finite and strictly positive, always. A zero,
        // negative, or non-finite weight silently corrupts every later
        // pricing decision.
        if !self.weights.iter().all(|&w| w.is_finite() && w > 0.0) {
            violations += 1;
        }

        // (3) Eta file vs. basis bookkeeping: the file never outruns the
        // refactorization interval, and every head names a real basis
        // position with a usable pivot element.
        if self.etas.len() > self.cfg.refactor_interval {
            violations += 1;
        }
        for k in 0..self.etas.len() {
            let head = self.etas.head(k);
            if head.pos as usize >= m || !head.pivot.is_finite() || head.pivot.abs() <= 0.0 {
                violations += 1;
                break;
            }
        }

        // (4) Basis/state agreement (debug_invariants' structural check,
        // here available in release builds too): one column per row, each
        // marked Basic at its own position, with a finite value.
        if self.basis.len() != m {
            violations += 1;
        }
        for (pos, &j) in self.basis.iter().enumerate() {
            let agreed = matches!(self.state[j], VarState::Basic(p) if p as usize == pos);
            if !agreed || !self.xb[pos].is_finite() {
                violations += 1;
                break;
            }
        }

        self.stats.sanitizer_violations += violations;
    }
}
