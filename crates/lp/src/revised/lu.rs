//! Sparse LU factorization of a simplex basis.
//!
//! Gilbert–Peierls left-looking factorization with row partial pivoting and a
//! sparsest-column-first processing order. Produces `P B Q = L U` where `P`
//! is the row pivot order, `Q` the column processing order, `L` unit lower
//! triangular and `U` upper triangular (both in pivot-position space; `L`'s
//! entries are stored under original row indices for cheap FTRAN).

use crate::sparse::CscMatrix;

const NONE: u32 = u32::MAX;

/// The factors of a basis matrix, plus the permutations.
#[derive(Debug, Clone)]
pub(crate) struct Lu {
    m: usize,
    /// `row_perm[step] = original row pivoted at that step`.
    row_perm: Vec<u32>,
    /// Inverse of `row_perm`.
    row_pos: Vec<u32>,
    /// `col_order[step] = basis position processed at that step`.
    col_order: Vec<u32>,
    /// L columns by step: `(original_row, value)`, unit diagonal implicit.
    l_cols: Vec<Vec<(u32, f64)>>,
    /// U off-diagonal columns by step: `(earlier_step, value)`.
    u_cols: Vec<Vec<(u32, f64)>>,
    /// U diagonal (the pivots) by step.
    u_diag: Vec<f64>,
}

impl Lu {
    /// Factorizes the basis given by `basis` (column indices into `a`).
    ///
    /// On structural or numerical singularity returns `Err(row)` with an
    /// original row index that could not be pivoted, so the caller can
    /// repair the basis.
    pub fn factor(a: &CscMatrix, basis: &[usize], pivot_tol: f64) -> Result<Lu, usize> {
        let m = basis.len();
        assert_eq!(a.nrows(), m, "basis size must equal row count");

        // Process sparsest columns first: cheap Markowitz-style ordering that
        // keeps the mostly-singleton scheduling bases near-diagonal.
        let mut col_order: Vec<u32> = (0..m as u32).collect();
        col_order.sort_by_key(|&p| (a.col_nnz(basis[p as usize]), p));

        let mut row_perm = vec![NONE; m];
        let mut row_pos = vec![NONE; m];
        let mut l_cols: Vec<Vec<(u32, f64)>> = Vec::with_capacity(m);
        let mut u_cols: Vec<Vec<(u32, f64)>> = Vec::with_capacity(m);
        let mut u_diag = Vec::with_capacity(m);

        // Dense accumulator indexed by original row, with explicit pattern.
        let mut work = vec![0.0_f64; m];
        let mut visited = vec![false; m];
        let mut pattern: Vec<u32> = Vec::with_capacity(64);
        // DFS scratch.
        let mut dfs: Vec<(u32, usize)> = Vec::with_capacity(64);
        let mut topo: Vec<u32> = Vec::with_capacity(64);

        for step in 0..m {
            let bcol = basis[col_order[step] as usize];
            let (rows, vals) = a.col(bcol);

            // Symbolic: reach of the column pattern through L.
            pattern.clear();
            topo.clear();
            for &r in rows {
                if visited[r as usize] {
                    continue;
                }
                dfs.push((r, 0));
                visited[r as usize] = true;
                pattern.push(r);
                while let Some(&mut (node, ref mut child)) = dfs.last_mut() {
                    let p = row_pos[node as usize];
                    if p == NONE {
                        dfs.pop();
                        continue;
                    }
                    let lcol = &l_cols[p as usize];
                    if *child < lcol.len() {
                        let next = lcol[*child].0;
                        *child += 1;
                        if !visited[next as usize] {
                            visited[next as usize] = true;
                            pattern.push(next);
                            dfs.push((next, 0));
                        }
                    } else {
                        dfs.pop();
                        topo.push(p);
                    }
                }
            }

            // Numeric: scatter and eliminate in topological order.
            for (&r, &v) in rows.iter().zip(vals) {
                work[r as usize] = v;
            }
            for &p in topo.iter().rev() {
                let r_piv = row_perm[p as usize] as usize;
                let v = work[r_piv];
                // lint: allow(float-eq, reason = "exact-zero skip is a sparsity guard: skipping true zeros never changes the arithmetic")
                if v != 0.0 {
                    for &(r, lv) in &l_cols[p as usize] {
                        work[r as usize] -= lv * v;
                    }
                }
            }

            // Pivot: largest magnitude among unpivoted rows in the pattern.
            let mut piv_row = NONE;
            let mut piv_val = 0.0_f64;
            for &r in &pattern {
                if row_pos[r as usize] == NONE {
                    let v = work[r as usize];
                    if v.abs() > piv_val.abs() {
                        piv_val = v;
                        piv_row = r;
                    }
                }
            }
            if piv_row == NONE || piv_val.abs() <= pivot_tol {
                // Singular: report some still-unpivoted row for repair.
                let bad = (0..m).find(|&r| row_pos[r] == NONE).unwrap_or(0);
                // Reset accumulator before bailing.
                for &r in &pattern {
                    work[r as usize] = 0.0;
                    visited[r as usize] = false;
                }
                return Err(bad);
            }

            // Gather U (pivoted part) and L (unpivoted part) of the column.
            let mut ucol = Vec::new();
            let mut lcol = Vec::new();
            for &r in &pattern {
                let v = work[r as usize];
                let p = row_pos[r as usize];
                if p != NONE {
                    // lint: allow(float-eq, reason = "exact-zero skip is a sparsity guard: skipping true zeros never changes the arithmetic")
                    if v != 0.0 {
                        ucol.push((p, v));
                    }
                // lint: allow(float-eq, reason = "exact-zero skip is a sparsity guard: skipping true zeros never changes the arithmetic")
                } else if r != piv_row && v != 0.0 {
                    lcol.push((r, v / piv_val));
                }
                work[r as usize] = 0.0;
                visited[r as usize] = false;
            }
            u_cols.push(ucol);
            l_cols.push(lcol);
            u_diag.push(piv_val);
            row_perm[step] = piv_row;
            row_pos[piv_row as usize] = step as u32;
        }

        Ok(Lu {
            m,
            row_perm,
            row_pos,
            col_order,
            l_cols,
            u_cols,
            u_diag,
        })
    }

    /// Solves `B x = rhs`.
    ///
    /// `rhs_by_row` is dense, indexed by original row, and is destroyed.
    /// `out_by_pos` receives `x` indexed by basis position.
    pub fn ftran(&self, rhs_by_row: &mut [f64], out_by_pos: &mut [f64]) {
        let m = self.m;
        debug_assert_eq!(rhs_by_row.len(), m);
        debug_assert_eq!(out_by_pos.len(), m);
        // L y = P rhs.
        for p in 0..m {
            let v = rhs_by_row[self.row_perm[p] as usize];
            // lint: allow(float-eq, reason = "exact-zero skip is a sparsity guard: skipping true zeros never changes the arithmetic")
            if v != 0.0 {
                for &(r, lv) in &self.l_cols[p] {
                    rhs_by_row[r as usize] -= lv * v;
                }
            }
            out_by_pos[p] = v;
        }
        // U z = y (back substitution, in place in out_by_pos).
        for j in (0..m).rev() {
            let z = out_by_pos[j] / self.u_diag[j];
            out_by_pos[j] = z;
            // lint: allow(float-eq, reason = "exact-zero skip is a sparsity guard: skipping true zeros never changes the arithmetic")
            if z != 0.0 {
                for &(p, uv) in &self.u_cols[j] {
                    out_by_pos[p as usize] -= uv * z;
                }
            }
        }
        // Undo the column permutation: x[col_order[j]] = z_j.
        rhs_by_row[..m].copy_from_slice(&out_by_pos[..m]);
        for j in 0..m {
            out_by_pos[self.col_order[j] as usize] = rhs_by_row[j];
        }
        // Leave rhs clean for reuse as a scratch row vector.
        rhs_by_row[..m].fill(0.0);
    }

    /// Solves `B' y = c`.
    ///
    /// `c` comes in indexed by basis position and leaves indexed by original
    /// row. `scratch` must have length `m`.
    pub fn btran(&self, c: &mut [f64], scratch: &mut [f64]) {
        let m = self.m;
        debug_assert_eq!(c.len(), m);
        debug_assert!(scratch.len() >= m);
        // Apply the column permutation: cq[j] = c[col_order[j]].
        for j in 0..m {
            scratch[j] = c[self.col_order[j] as usize];
        }
        // U' w = cq (forward, since U' is lower triangular).
        for j in 0..m {
            let mut acc = scratch[j];
            for &(p, uv) in &self.u_cols[j] {
                acc -= uv * scratch[p as usize];
            }
            scratch[j] = acc / self.u_diag[j];
        }
        // L' v = w (backward, unit diagonal).
        for p in (0..m).rev() {
            let mut acc = scratch[p];
            for &(r, lv) in &self.l_cols[p] {
                acc -= lv * scratch[self.row_pos[r as usize] as usize];
            }
            scratch[p] = acc;
        }
        // y[row_perm[p]] = v_p.
        for p in 0..m {
            c[self.row_perm[p] as usize] = scratch[p];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CscMatrix;

    /// Builds a CSC matrix whose columns are exactly the basis columns.
    fn mat(cols: &[Vec<(u32, f64)>], m: usize) -> (CscMatrix, Vec<usize>) {
        let mut a = CscMatrix::empty(m);
        for c in cols {
            a.push_col(c);
        }
        (a, (0..cols.len()).collect())
    }

    fn mul(a: &CscMatrix, basis: &[usize], x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; a.nrows()];
        for (pos, &j) in basis.iter().enumerate() {
            a.col_axpy(j, x[pos], &mut y);
        }
        y
    }

    #[test]
    fn identity_roundtrip() {
        let cols: Vec<Vec<(u32, f64)>> = (0..4).map(|i| vec![(i as u32, 1.0)]).collect();
        let (a, basis) = mat(&cols, 4);
        let lu = Lu::factor(&a, &basis, 1e-12).unwrap();
        let mut rhs = vec![1.0, 2.0, 3.0, 4.0];
        let mut x = vec![0.0; 4];
        lu.ftran(&mut rhs, &mut x);
        assert_eq!(x, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn dense_3x3_ftran_btran() {
        // B = [[2,1,0],[1,3,1],[0,1,4]] as columns.
        let cols = vec![
            vec![(0, 2.0), (1, 1.0)],
            vec![(0, 1.0), (1, 3.0), (2, 1.0)],
            vec![(1, 1.0), (2, 4.0)],
        ];
        let (a, basis) = mat(&cols, 3);
        let lu = Lu::factor(&a, &basis, 1e-12).unwrap();

        let want = vec![0.5, -1.5, 2.0];
        let rhs0 = mul(&a, &basis, &want);
        let mut rhs = rhs0.clone();
        let mut x = vec![0.0; 3];
        lu.ftran(&mut rhs, &mut x);
        for (xi, wi) in x.iter().zip(&want) {
            assert!((xi - wi).abs() < 1e-12, "{x:?} vs {want:?}");
        }

        // BTRAN: y such that B' y = c  <=>  y' B = c'.
        let mut c = vec![1.0, 0.0, -2.0];
        let mut scratch = vec![0.0; 3];
        lu.btran(&mut c, &mut scratch);
        // Check y' * B columns == original c.
        let y = c;
        let orig = [1.0, 0.0, -2.0];
        for (pos, col) in cols.iter().enumerate() {
            let mut acc = 0.0;
            for &(r, v) in col {
                acc += y[r as usize] * v;
            }
            assert!((acc - orig[pos]).abs() < 1e-12);
        }
    }

    #[test]
    fn permuted_diagonal() {
        // Columns hit rows out of order; forces pivoting bookkeeping.
        let cols = vec![vec![(2, 5.0)], vec![(0, -3.0)], vec![(1, 2.0)]];
        let (a, basis) = mat(&cols, 3);
        let lu = Lu::factor(&a, &basis, 1e-12).unwrap();
        let want = vec![1.0, 2.0, 3.0];
        let mut rhs = mul(&a, &basis, &want);
        let mut x = vec![0.0; 3];
        lu.ftran(&mut rhs, &mut x);
        for (xi, wi) in x.iter().zip(&want) {
            assert!((xi - wi).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_reports_row() {
        // Two identical columns: structurally singular.
        let cols = vec![vec![(0, 1.0), (1, 1.0)], vec![(0, 1.0), (1, 1.0)]];
        let (a, basis) = mat(&cols, 2);
        assert!(Lu::factor(&a, &basis, 1e-12).is_err());
    }

    #[test]
    fn randomized_roundtrip() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..30 {
            let m = 1 + (trial % 12);
            // Random sparse nonsingular-ish matrix: diagonal + noise.
            let mut cols: Vec<Vec<(u32, f64)>> = Vec::new();
            for j in 0..m {
                let mut col = vec![(j as u32, 1.0 + rng.random_range(0.0..4.0))];
                for r in 0..m {
                    if r != j && rng.random_range(0.0..1.0) < 0.3 {
                        col.push((r as u32, rng.random_range(-1.0..1.0)));
                    }
                }
                col.sort_unstable_by_key(|e| e.0);
                cols.push(col);
            }
            let (a, basis) = mat(&cols, m);
            let lu = match Lu::factor(&a, &basis, 1e-10) {
                Ok(l) => l,
                Err(_) => continue, // genuinely singular draw
            };
            let want: Vec<f64> = (0..m).map(|_| rng.random_range(-5.0..5.0)).collect();
            let mut rhs = mul(&a, &basis, &want);
            let mut x = vec![0.0; m];
            lu.ftran(&mut rhs, &mut x);
            for (xi, wi) in x.iter().zip(&want) {
                assert!((xi - wi).abs() < 1e-7, "trial {trial}: {x:?} vs {want:?}");
            }
            // BTRAN consistency: y' B = c'.
            let c: Vec<f64> = (0..m).map(|_| rng.random_range(-3.0_f64..3.0)).collect();
            let mut y = c.clone();
            let mut scratch = vec![0.0; m];
            lu.btran(&mut y, &mut scratch);
            for (pos, col) in cols.iter().enumerate() {
                let mut acc = 0.0;
                for &(r, v) in col {
                    acc += y[r as usize] * v;
                }
                assert!((acc - c[pos]).abs() < 1e-7);
            }
        }
    }
}
