//! Sparse LU factorization of a simplex basis.
//!
//! Gilbert–Peierls left-looking factorization with row partial pivoting and a
//! sparsest-column-first processing order. Produces `P B Q = L U` where `P`
//! is the row pivot order, `Q` the column processing order, `L` unit lower
//! triangular and `U` upper triangular (both in pivot-position space; `L`'s
//! entries are stored under original row indices for cheap FTRAN).

use crate::sparse::{CscMatrix, WorkVec};

const NONE: u32 = u32::MAX;

/// The factors of a basis matrix, plus the permutations.
#[derive(Debug, Clone)]
pub(crate) struct Lu {
    m: usize,
    /// `row_perm[step] = original row pivoted at that step`.
    row_perm: Vec<u32>,
    /// Inverse of `row_perm`.
    row_pos: Vec<u32>,
    /// `col_order[step] = basis position processed at that step`.
    col_order: Vec<u32>,
    /// Inverse of `col_order`: basis position → step.
    col_pos: Vec<u32>,
    /// L columns by step: `(original_row, value)`, unit diagonal implicit.
    l_cols: Vec<Vec<(u32, f64)>>,
    /// U off-diagonal columns by step: `(earlier_step, value)`.
    u_cols: Vec<Vec<(u32, f64)>>,
    /// U diagonal (the pivots) by step.
    u_diag: Vec<f64>,
    /// Transposed U structure: for step `p`, the later steps `j` whose U
    /// column hits it (`ut_idx[ut_ptr[p]..ut_ptr[p+1]]`). Drives the
    /// symbolic reach of the BTRAN U'-solve.
    ut_ptr: Vec<usize>,
    ut_idx: Vec<u32>,
    /// Transposed L structure in step space: for step `q`, the earlier
    /// steps `p` whose L column contains a row pivoted at `q`. Drives the
    /// symbolic reach of the BTRAN L'-solve.
    lt_ptr: Vec<usize>,
    lt_idx: Vec<u32>,
}

/// Reusable scratch for the sparse triangular solves, owned by the caller so
/// steady-state pivots allocate nothing. All buffers are step-indexed;
/// `vals` is kept all-zero between calls.
#[derive(Debug, Clone, Default)]
pub(crate) struct LuScratch {
    visited: Vec<bool>,
    stack: Vec<u32>,
    reach: Vec<u32>,
    reach2: Vec<u32>,
    vals: Vec<f64>,
}

impl LuScratch {
    /// Scratch for an `m`-row basis, pre-sized so no later call grows it.
    pub fn new(m: usize) -> Self {
        LuScratch {
            visited: vec![false; m],
            stack: Vec::with_capacity(m),
            reach: Vec::with_capacity(m),
            reach2: Vec::with_capacity(m),
            vals: vec![0.0; m],
        }
    }
}

/// Depth-first reach of `starts` under `succ`, collected into `reach`.
///
/// Returns `false` (with `reach` emptied and `visited` reset) once the
/// reach would exceed `cap` — the caller then falls back to a dense solve.
/// On success the caller owns resetting `visited` via the reach list.
fn reach_from<I>(
    visited: &mut [bool],
    stack: &mut Vec<u32>,
    reach: &mut Vec<u32>,
    cap: usize,
    starts: impl Iterator<Item = u32>,
    mut succ: impl FnMut(u32) -> I,
) -> bool
where
    I: Iterator<Item = u32>,
{
    reach.clear();
    stack.clear();
    let mut overflow = false;
    'outer: for s0 in starts {
        if visited[s0 as usize] {
            continue;
        }
        visited[s0 as usize] = true;
        reach.push(s0);
        if reach.len() > cap {
            overflow = true;
            break;
        }
        stack.push(s0);
        while let Some(n) = stack.pop() {
            for t in succ(n) {
                if !visited[t as usize] {
                    visited[t as usize] = true;
                    reach.push(t);
                    if reach.len() > cap {
                        overflow = true;
                        break 'outer;
                    }
                    stack.push(t);
                }
            }
        }
    }
    if overflow {
        for &n in reach.iter() {
            visited[n as usize] = false;
        }
        reach.clear();
        stack.clear();
        return false;
    }
    true
}

impl Lu {
    /// Factorizes the basis given by `basis` (column indices into `a`).
    ///
    /// On structural or numerical singularity returns `Err(row)` with an
    /// original row index that could not be pivoted, so the caller can
    /// repair the basis.
    pub fn factor(a: &CscMatrix, basis: &[usize], pivot_tol: f64) -> Result<Lu, usize> {
        let m = basis.len();
        assert_eq!(a.nrows(), m, "basis size must equal row count");

        // Process sparsest columns first: cheap Markowitz-style ordering that
        // keeps the mostly-singleton scheduling bases near-diagonal.
        let mut col_order: Vec<u32> = (0..m as u32).collect();
        col_order.sort_by_key(|&p| (a.col_nnz(basis[p as usize]), p));

        let mut row_perm = vec![NONE; m];
        let mut row_pos = vec![NONE; m];
        let mut l_cols: Vec<Vec<(u32, f64)>> = Vec::with_capacity(m);
        let mut u_cols: Vec<Vec<(u32, f64)>> = Vec::with_capacity(m);
        let mut u_diag = Vec::with_capacity(m);

        // Dense accumulator indexed by original row, with explicit pattern.
        let mut work = vec![0.0_f64; m];
        let mut visited = vec![false; m];
        let mut pattern: Vec<u32> = Vec::with_capacity(64);
        // DFS scratch.
        let mut dfs: Vec<(u32, usize)> = Vec::with_capacity(64);
        let mut topo: Vec<u32> = Vec::with_capacity(64);

        for step in 0..m {
            let bcol = basis[col_order[step] as usize];
            let (rows, vals) = a.col(bcol);

            // Symbolic: reach of the column pattern through L.
            pattern.clear();
            topo.clear();
            for &r in rows {
                if visited[r as usize] {
                    continue;
                }
                dfs.push((r, 0));
                visited[r as usize] = true;
                pattern.push(r);
                while let Some(&mut (node, ref mut child)) = dfs.last_mut() {
                    let p = row_pos[node as usize];
                    if p == NONE {
                        dfs.pop();
                        continue;
                    }
                    let lcol = &l_cols[p as usize];
                    if *child < lcol.len() {
                        let next = lcol[*child].0;
                        *child += 1;
                        if !visited[next as usize] {
                            visited[next as usize] = true;
                            pattern.push(next);
                            dfs.push((next, 0));
                        }
                    } else {
                        dfs.pop();
                        topo.push(p);
                    }
                }
            }

            // Numeric: scatter and eliminate in topological order.
            for (&r, &v) in rows.iter().zip(vals) {
                work[r as usize] = v;
            }
            for &p in topo.iter().rev() {
                let r_piv = row_perm[p as usize] as usize;
                let v = work[r_piv];
                // lint: allow(float-eq, reason = "exact-zero skip is a sparsity guard: skipping true zeros never changes the arithmetic")
                if v != 0.0 {
                    for &(r, lv) in &l_cols[p as usize] {
                        work[r as usize] -= lv * v;
                    }
                }
            }

            // Pivot: largest magnitude among unpivoted rows in the pattern.
            let mut piv_row = NONE;
            let mut piv_val = 0.0_f64;
            for &r in &pattern {
                if row_pos[r as usize] == NONE {
                    let v = work[r as usize];
                    if v.abs() > piv_val.abs() {
                        piv_val = v;
                        piv_row = r;
                    }
                }
            }
            if piv_row == NONE || piv_val.abs() <= pivot_tol {
                // Singular: report some still-unpivoted row for repair.
                let bad = (0..m).find(|&r| row_pos[r] == NONE).unwrap_or(0);
                // Reset accumulator before bailing.
                for &r in &pattern {
                    work[r as usize] = 0.0;
                    visited[r as usize] = false;
                }
                return Err(bad);
            }

            // Gather U (pivoted part) and L (unpivoted part) of the column.
            let mut ucol = Vec::new();
            let mut lcol = Vec::new();
            for &r in &pattern {
                let v = work[r as usize];
                let p = row_pos[r as usize];
                if p != NONE {
                    // lint: allow(float-eq, reason = "exact-zero skip is a sparsity guard: skipping true zeros never changes the arithmetic")
                    if v != 0.0 {
                        ucol.push((p, v));
                    }
                // lint: allow(float-eq, reason = "exact-zero skip is a sparsity guard: skipping true zeros never changes the arithmetic")
                } else if r != piv_row && v != 0.0 {
                    lcol.push((r, v / piv_val));
                }
                work[r as usize] = 0.0;
                visited[r as usize] = false;
            }
            u_cols.push(ucol);
            l_cols.push(lcol);
            u_diag.push(piv_val);
            row_perm[step] = piv_row;
            row_pos[piv_row as usize] = step as u32;
        }

        // Inverse column permutation and the two transposed adjacency
        // structures the sparse BTRAN reaches walk. Built once per
        // factorization; the L transpose needs the *final* `row_pos`, so
        // this cannot happen inside the elimination loop.
        let mut col_pos = vec![0u32; m];
        for (step, &p) in col_order.iter().enumerate() {
            col_pos[p as usize] = step as u32;
        }
        let mut ut_ptr = vec![0usize; m + 1];
        for ucol in &u_cols {
            for &(p, _) in ucol {
                ut_ptr[p as usize + 1] += 1;
            }
        }
        let mut lt_ptr = vec![0usize; m + 1];
        for lcol in &l_cols {
            for &(r, _) in lcol {
                lt_ptr[row_pos[r as usize] as usize + 1] += 1;
            }
        }
        for i in 0..m {
            ut_ptr[i + 1] += ut_ptr[i];
            lt_ptr[i + 1] += lt_ptr[i];
        }
        let mut ut_fill = ut_ptr.clone();
        let mut ut_idx = vec![0u32; ut_ptr[m]];
        for (j, ucol) in u_cols.iter().enumerate() {
            for &(p, _) in ucol {
                ut_idx[ut_fill[p as usize]] = j as u32;
                ut_fill[p as usize] += 1;
            }
        }
        let mut lt_fill = lt_ptr.clone();
        let mut lt_idx = vec![0u32; lt_ptr[m]];
        for (p, lcol) in l_cols.iter().enumerate() {
            for &(r, _) in lcol {
                let q = row_pos[r as usize] as usize;
                lt_idx[lt_fill[q]] = p as u32;
                lt_fill[q] += 1;
            }
        }

        Ok(Lu {
            m,
            row_perm,
            row_pos,
            col_order,
            col_pos,
            l_cols,
            u_cols,
            u_diag,
            ut_ptr,
            ut_idx,
            lt_ptr,
            lt_idx,
        })
    }

    /// Entry count of the factors: L and U off-diagonals plus the `m`
    /// diagonal pivots. One FTRAN/BTRAN pass touches every entry once, so
    /// this is the per-pass cost unit the refactorization cost model
    /// weighs the eta file against.
    pub fn nnz(&self) -> usize {
        let l: usize = self.l_cols.iter().map(Vec::len).sum();
        let u: usize = self.u_cols.iter().map(Vec::len).sum();
        l + u + self.m
    }

    /// Extends the factorization in place for `k` rows appended to the
    /// basis, where position `m + i` holds the new row's activity column
    /// (a single `-1.0` in row `m + i`) — exactly the shape `append_rows`
    /// creates. Each new step pivots row `m + i` at position `m + i` with
    /// pivot `-1.0` and empty off-diagonals, so the result factors the
    /// bordered matrix `diag(B, -I)`. Couplings of *old* basic columns
    /// into the new rows are not represented here; the caller carries
    /// them as bordering etas in the product-form file.
    pub fn extend_rows(&mut self, k: usize) {
        let m0 = self.m;
        self.row_perm.reserve(k);
        self.row_pos.reserve(k);
        self.col_order.reserve(k);
        self.col_pos.reserve(k);
        for i in 0..k {
            // lint: allow(lossy-cast, reason = "row indices are bounded by the CSR u32 index width by construction")
            let step = (m0 + i) as u32;
            self.row_perm.push(step);
            self.row_pos.push(step);
            self.col_order.push(step);
            self.col_pos.push(step);
            self.l_cols.push(Vec::new());
            self.u_cols.push(Vec::new());
            self.u_diag.push(-1.0);
        }
        let ut_last = self.ut_ptr[m0];
        let lt_last = self.lt_ptr[m0];
        self.ut_ptr.resize(m0 + k + 1, ut_last);
        self.lt_ptr.resize(m0 + k + 1, lt_last);
        self.m = m0 + k;
    }

    /// Deliberately damages the factors (test hook for the reuse residual
    /// guard; see `SolverSession::debug_corrupt_factorization`).
    #[doc(hidden)]
    pub fn corrupt_for_test(&mut self) {
        if let Some(d) = self.u_diag.first_mut() {
            *d *= 1.5;
        }
    }

    /// Solves `B x = rhs`.
    ///
    /// `rhs_by_row` is dense, indexed by original row, and is destroyed.
    /// `out_by_pos` receives `x` indexed by basis position.
    pub fn ftran(&self, rhs_by_row: &mut [f64], out_by_pos: &mut [f64]) {
        let m = self.m;
        debug_assert_eq!(rhs_by_row.len(), m);
        debug_assert_eq!(out_by_pos.len(), m);
        // L y = P rhs.
        for p in 0..m {
            let v = rhs_by_row[self.row_perm[p] as usize];
            // lint: allow(float-eq, reason = "exact-zero skip is a sparsity guard: skipping true zeros never changes the arithmetic")
            if v != 0.0 {
                for &(r, lv) in &self.l_cols[p] {
                    rhs_by_row[r as usize] -= lv * v;
                }
            }
            out_by_pos[p] = v;
        }
        // U z = y (back substitution, in place in out_by_pos).
        for j in (0..m).rev() {
            let z = out_by_pos[j] / self.u_diag[j];
            out_by_pos[j] = z;
            // lint: allow(float-eq, reason = "exact-zero skip is a sparsity guard: skipping true zeros never changes the arithmetic")
            if z != 0.0 {
                for &(p, uv) in &self.u_cols[j] {
                    out_by_pos[p as usize] -= uv * z;
                }
            }
        }
        // Undo the column permutation: x[col_order[j]] = z_j.
        rhs_by_row[..m].copy_from_slice(&out_by_pos[..m]);
        for j in 0..m {
            out_by_pos[self.col_order[j] as usize] = rhs_by_row[j];
        }
        // Leave rhs clean for reuse as a scratch row vector.
        rhs_by_row[..m].fill(0.0);
    }

    /// Solves `B' y = c`.
    ///
    /// `c` comes in indexed by basis position and leaves indexed by original
    /// row. `scratch` must have length `m`.
    pub fn btran(&self, c: &mut [f64], scratch: &mut [f64]) {
        let m = self.m;
        debug_assert_eq!(c.len(), m);
        debug_assert!(scratch.len() >= m);
        // Apply the column permutation: cq[j] = c[col_order[j]].
        for j in 0..m {
            scratch[j] = c[self.col_order[j] as usize];
        }
        // U' w = cq (forward, since U' is lower triangular).
        for j in 0..m {
            let mut acc = scratch[j];
            for &(p, uv) in &self.u_cols[j] {
                acc -= uv * scratch[p as usize];
            }
            scratch[j] = acc / self.u_diag[j];
        }
        // L' v = w (backward, unit diagonal).
        for p in (0..m).rev() {
            let mut acc = scratch[p];
            for &(r, lv) in &self.l_cols[p] {
                acc -= lv * scratch[self.row_pos[r as usize] as usize];
            }
            scratch[p] = acc;
        }
        // y[row_perm[p]] = v_p.
        for p in 0..m {
            c[self.row_perm[p] as usize] = scratch[p];
        }
    }

    /// Sparse FTRAN: solves `B x = rhs`, tracking nonzeros through both
    /// triangular solves via symbolic reach over the L/U dependency graphs.
    ///
    /// `rhs` is row-indexed and consumed (left cleared); `out` receives `x`
    /// by basis position. Once the reach of either solve exceeds
    /// `max_reach`, the remainder runs the dense kernel and `out` is
    /// flagged dense. Either way the result is bit-identical to
    /// [`Self::ftran`]: positions outside the reach hold exact zeros, the
    /// reach is processed in the same step order as the dense loop, and the
    /// only divergence is the sign of cancelled zeros, which no consumer
    /// observes (every use is guarded by `!= 0` or magnitude tests).
    pub fn ftran_sparse(
        &self,
        rhs: &mut WorkVec,
        out: &mut WorkVec,
        s: &mut LuScratch,
        max_reach: usize,
    ) {
        let m = self.m;
        debug_assert_eq!(rhs.len(), m);
        debug_assert_eq!(out.len(), m);
        debug_assert_eq!(s.vals.len(), m);
        out.clear();
        // Symbolic: reach of the rhs pattern through L, in step space.
        let sparse_l = !rhs.is_dense()
            && reach_from(
                &mut s.visited,
                &mut s.stack,
                &mut s.reach,
                max_reach,
                rhs.pattern.iter().map(|&r| self.row_pos[r as usize]),
                |p| {
                    self.l_cols[p as usize]
                        .iter()
                        .map(|&(r, _)| self.row_pos[r as usize])
                },
            );
        if !sparse_l {
            self.ftran(&mut rhs.values, &mut out.values);
            rhs.clear();
            out.make_dense();
            return;
        }
        s.reach.sort_unstable();
        for &p in &s.reach {
            s.visited[p as usize] = false;
        }
        // Numeric L-solve: the dense loop restricted to the reach, in the
        // same ascending step order (skipped steps hold exact zeros).
        for &p in &s.reach {
            let p = p as usize;
            let v = rhs.values[self.row_perm[p] as usize];
            // lint: allow(float-eq, reason = "exact-zero skip is a sparsity guard: skipping true zeros never changes the arithmetic")
            if v != 0.0 {
                for &(r, lv) in &self.l_cols[p] {
                    rhs.values[r as usize] -= lv * v;
                }
            }
            s.vals[p] = v;
        }
        // rhs is spent: zero the rows the solve touched (a superset of its
        // pattern) and reset its bookkeeping.
        for &p in &s.reach {
            rhs.values[self.row_perm[p as usize] as usize] = 0.0;
        }
        rhs.clear();

        // Symbolic: extend the reach through U's back-substitution edges.
        let sparse_u = reach_from(
            &mut s.visited,
            &mut s.stack,
            &mut s.reach2,
            max_reach,
            s.reach.iter().copied(),
            |j| self.u_cols[j as usize].iter().map(|&(p, _)| p),
        );
        if !sparse_u {
            // Finish densely from the step-indexed accumulator: skipped
            // steps hold exact zeros, so this is the dense
            // back-substitution verbatim.
            for j in (0..m).rev() {
                let z = s.vals[j] / self.u_diag[j];
                s.vals[j] = z;
                // lint: allow(float-eq, reason = "exact-zero skip is a sparsity guard: skipping true zeros never changes the arithmetic")
                if z != 0.0 {
                    for &(p, uv) in &self.u_cols[j] {
                        s.vals[p as usize] -= uv * z;
                    }
                }
            }
            for j in 0..m {
                out.values[self.col_order[j] as usize] = s.vals[j];
                s.vals[j] = 0.0;
            }
            out.make_dense();
            return;
        }
        s.reach2.sort_unstable();
        for &j in &s.reach2 {
            s.visited[j as usize] = false;
        }
        // Numeric U back-substitution over the reach, descending.
        for &j in s.reach2.iter().rev() {
            let j = j as usize;
            let z = s.vals[j] / self.u_diag[j];
            s.vals[j] = z;
            // lint: allow(float-eq, reason = "exact-zero skip is a sparsity guard: skipping true zeros never changes the arithmetic")
            if z != 0.0 {
                for &(p, uv) in &self.u_cols[j] {
                    s.vals[p as usize] -= uv * z;
                }
            }
        }
        // Permute step → basis position, harvesting actual nonzeros and
        // re-zeroing the scratch.
        for &j in &s.reach2 {
            let v = s.vals[j as usize];
            s.vals[j as usize] = 0.0;
            // lint: allow(float-eq, reason = "exact-zero skip is a sparsity guard: skipping true zeros never changes the arithmetic")
            if v != 0.0 {
                out.set(self.col_order[j as usize], v);
            }
        }
    }

    /// Sparse BTRAN: solves `B' y = c`, tracking nonzeros via the
    /// transposed U/L structures.
    ///
    /// `c` comes in indexed by basis position and leaves indexed by
    /// original row. Unlike FTRAN these solves are *gathers*, so each
    /// reached step accumulates over its full stored adjacency in original
    /// order — term-for-term the dense arithmetic (absent terms are exact
    /// zeros) — which keeps the result bit-identical to [`Self::btran`] up
    /// to the sign of cancelled zeros.
    pub fn btran_sparse(&self, c: &mut WorkVec, s: &mut LuScratch, max_reach: usize) {
        let m = self.m;
        debug_assert_eq!(c.len(), m);
        debug_assert_eq!(s.vals.len(), m);
        // Symbolic U'-reach from the input pattern, mapped into step space.
        let sparse_u = !c.is_dense()
            && reach_from(
                &mut s.visited,
                &mut s.stack,
                &mut s.reach,
                max_reach,
                c.pattern.iter().map(|&pos| self.col_pos[pos as usize]),
                |p| {
                    self.ut_idx[self.ut_ptr[p as usize]..self.ut_ptr[p as usize + 1]]
                        .iter()
                        .copied()
                },
            );
        if !sparse_u {
            self.btran(&mut c.values, &mut s.vals);
            s.vals.fill(0.0);
            c.make_dense();
            return;
        }
        s.reach.sort_unstable();
        for &p in &s.reach {
            s.visited[p as usize] = false;
        }
        // Permute inputs into step space (unreached inputs are exact
        // zeros) and clear `c` for reuse as the row-indexed output.
        for &j in &s.reach {
            s.vals[j as usize] = c.values[self.col_order[j as usize] as usize];
        }
        c.clear();
        // Forward U'-solve: full gather per reached step, ascending.
        for &j in &s.reach {
            let j = j as usize;
            let mut acc = s.vals[j];
            for &(p, uv) in &self.u_cols[j] {
                acc -= uv * s.vals[p as usize];
            }
            s.vals[j] = acc / self.u_diag[j];
        }
        // Symbolic L'-reach extends the U' reach.
        let sparse_l = reach_from(
            &mut s.visited,
            &mut s.stack,
            &mut s.reach2,
            max_reach,
            s.reach.iter().copied(),
            |q| {
                self.lt_idx[self.lt_ptr[q as usize]..self.lt_ptr[q as usize + 1]]
                    .iter()
                    .copied()
            },
        );
        if !sparse_l {
            // Finish densely: backward L'-solve over every step, then
            // scatter to row space.
            for p in (0..m).rev() {
                let mut acc = s.vals[p];
                for &(r, lv) in &self.l_cols[p] {
                    acc -= lv * s.vals[self.row_pos[r as usize] as usize];
                }
                s.vals[p] = acc;
            }
            for p in 0..m {
                c.values[self.row_perm[p] as usize] = s.vals[p];
                s.vals[p] = 0.0;
            }
            c.make_dense();
            return;
        }
        s.reach2.sort_unstable();
        for &p in &s.reach2 {
            s.visited[p as usize] = false;
        }
        // Backward L'-solve over the reach, descending, full gathers.
        for &p in s.reach2.iter().rev() {
            let p = p as usize;
            let mut acc = s.vals[p];
            for &(r, lv) in &self.l_cols[p] {
                acc -= lv * s.vals[self.row_pos[r as usize] as usize];
            }
            s.vals[p] = acc;
        }
        // Scatter to row space, harvesting actual nonzeros.
        for &p in &s.reach2 {
            let v = s.vals[p as usize];
            s.vals[p as usize] = 0.0;
            // lint: allow(float-eq, reason = "exact-zero skip is a sparsity guard: skipping true zeros never changes the arithmetic")
            if v != 0.0 {
                c.set(self.row_perm[p as usize], v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CscMatrix;

    /// Builds a CSC matrix whose columns are exactly the basis columns.
    fn mat(cols: &[Vec<(u32, f64)>], m: usize) -> (CscMatrix, Vec<usize>) {
        let mut a = CscMatrix::empty(m);
        for c in cols {
            a.push_col(c);
        }
        (a, (0..cols.len()).collect())
    }

    fn mul(a: &CscMatrix, basis: &[usize], x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; a.nrows()];
        for (pos, &j) in basis.iter().enumerate() {
            a.col_axpy(j, x[pos], &mut y);
        }
        y
    }

    #[test]
    fn identity_roundtrip() {
        let cols: Vec<Vec<(u32, f64)>> = (0..4).map(|i| vec![(i as u32, 1.0)]).collect();
        let (a, basis) = mat(&cols, 4);
        let lu = Lu::factor(&a, &basis, 1e-12).unwrap();
        let mut rhs = vec![1.0, 2.0, 3.0, 4.0];
        let mut x = vec![0.0; 4];
        lu.ftran(&mut rhs, &mut x);
        assert_eq!(x, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn dense_3x3_ftran_btran() {
        // B = [[2,1,0],[1,3,1],[0,1,4]] as columns.
        let cols = vec![
            vec![(0, 2.0), (1, 1.0)],
            vec![(0, 1.0), (1, 3.0), (2, 1.0)],
            vec![(1, 1.0), (2, 4.0)],
        ];
        let (a, basis) = mat(&cols, 3);
        let lu = Lu::factor(&a, &basis, 1e-12).unwrap();

        let want = vec![0.5, -1.5, 2.0];
        let rhs0 = mul(&a, &basis, &want);
        let mut rhs = rhs0.clone();
        let mut x = vec![0.0; 3];
        lu.ftran(&mut rhs, &mut x);
        for (xi, wi) in x.iter().zip(&want) {
            assert!((xi - wi).abs() < 1e-12, "{x:?} vs {want:?}");
        }

        // BTRAN: y such that B' y = c  <=>  y' B = c'.
        let mut c = vec![1.0, 0.0, -2.0];
        let mut scratch = vec![0.0; 3];
        lu.btran(&mut c, &mut scratch);
        // Check y' * B columns == original c.
        let y = c;
        let orig = [1.0, 0.0, -2.0];
        for (pos, col) in cols.iter().enumerate() {
            let mut acc = 0.0;
            for &(r, v) in col {
                acc += y[r as usize] * v;
            }
            assert!((acc - orig[pos]).abs() < 1e-12);
        }
    }

    #[test]
    fn permuted_diagonal() {
        // Columns hit rows out of order; forces pivoting bookkeeping.
        let cols = vec![vec![(2, 5.0)], vec![(0, -3.0)], vec![(1, 2.0)]];
        let (a, basis) = mat(&cols, 3);
        let lu = Lu::factor(&a, &basis, 1e-12).unwrap();
        let want = vec![1.0, 2.0, 3.0];
        let mut rhs = mul(&a, &basis, &want);
        let mut x = vec![0.0; 3];
        lu.ftran(&mut rhs, &mut x);
        for (xi, wi) in x.iter().zip(&want) {
            assert!((xi - wi).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_reports_row() {
        // Two identical columns: structurally singular.
        let cols = vec![vec![(0, 1.0), (1, 1.0)], vec![(0, 1.0), (1, 1.0)]];
        let (a, basis) = mat(&cols, 2);
        assert!(Lu::factor(&a, &basis, 1e-12).is_err());
    }

    /// Sparse FTRAN/BTRAN must be bit-identical to the dense kernels on
    /// every nonzero (zeros may differ in sign only), at generous and at
    /// zero reach caps (the latter forces the dense fallback).
    #[test]
    fn sparse_kernels_match_dense_bitwise() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..40 {
            let m = 2 + (trial % 14);
            let mut cols: Vec<Vec<(u32, f64)>> = Vec::new();
            for j in 0..m {
                let mut col = vec![(j as u32, 1.0 + rng.random_range(0.0..4.0))];
                for r in 0..m {
                    if r != j && rng.random_range(0.0..1.0) < 0.25 {
                        col.push((r as u32, rng.random_range(-1.0..1.0)));
                    }
                }
                col.sort_unstable_by_key(|e| e.0);
                cols.push(col);
            }
            let (a, basis) = mat(&cols, m);
            let lu = match Lu::factor(&a, &basis, 1e-10) {
                Ok(l) => l,
                Err(_) => continue,
            };
            let mut scratch = LuScratch::new(m);
            for cap in [m, 0] {
                // FTRAN on a sparse rhs (a couple of entries).
                let mut dense_rhs = vec![0.0; m];
                dense_rhs[0] = 1.25;
                dense_rhs[m / 2] = -0.5;
                let mut dense_out = vec![0.0; m];
                lu.ftran(&mut dense_rhs, &mut dense_out);

                let mut rhs = WorkVec::new(m);
                rhs.set(0, 1.25);
                rhs.set(m as u32 / 2, -0.5);
                let mut out = WorkVec::new(m);
                lu.ftran_sparse(&mut rhs, &mut out, &mut scratch, cap);
                assert_eq!(out.is_dense(), cap == 0);
                for (p, &dv) in dense_out.iter().enumerate() {
                    let sv = out.values[p];
                    if dv == 0.0 {
                        assert_eq!(sv, 0.0, "trial {trial} cap {cap} pos {p}");
                    } else {
                        assert_eq!(
                            sv.to_bits(),
                            dv.to_bits(),
                            "trial {trial} cap {cap} pos {p}: {sv} vs {dv}"
                        );
                    }
                }
                // rhs left clean for reuse.
                assert!(rhs.pattern.is_empty() && !rhs.is_dense());
                assert!(rhs.values.iter().all(|&v| v == 0.0));

                // BTRAN on a unit vector (the pivotal-row case).
                let mut dense_c = vec![0.0; m];
                dense_c[m - 1] = 1.0;
                let mut ds = vec![0.0; m];
                lu.btran(&mut dense_c, &mut ds);
                let mut c = WorkVec::new(m);
                c.set(m as u32 - 1, 1.0);
                lu.btran_sparse(&mut c, &mut scratch, cap);
                for (r, &dv) in dense_c.iter().enumerate() {
                    let sv = c.values[r];
                    if dv == 0.0 {
                        assert_eq!(sv, 0.0, "btran trial {trial} cap {cap} row {r}");
                    } else {
                        assert_eq!(
                            sv.to_bits(),
                            dv.to_bits(),
                            "btran trial {trial} cap {cap} row {r}"
                        );
                    }
                }
                // Scratch values buffer must be left all-zero.
                assert!(scratch.vals.iter().all(|&v| v == 0.0));
            }
        }
    }

    #[test]
    fn randomized_roundtrip() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..30 {
            let m = 1 + (trial % 12);
            // Random sparse nonsingular-ish matrix: diagonal + noise.
            let mut cols: Vec<Vec<(u32, f64)>> = Vec::new();
            for j in 0..m {
                let mut col = vec![(j as u32, 1.0 + rng.random_range(0.0..4.0))];
                for r in 0..m {
                    if r != j && rng.random_range(0.0..1.0) < 0.3 {
                        col.push((r as u32, rng.random_range(-1.0..1.0)));
                    }
                }
                col.sort_unstable_by_key(|e| e.0);
                cols.push(col);
            }
            let (a, basis) = mat(&cols, m);
            let lu = match Lu::factor(&a, &basis, 1e-10) {
                Ok(l) => l,
                Err(_) => continue, // genuinely singular draw
            };
            let want: Vec<f64> = (0..m).map(|_| rng.random_range(-5.0..5.0)).collect();
            let mut rhs = mul(&a, &basis, &want);
            let mut x = vec![0.0; m];
            lu.ftran(&mut rhs, &mut x);
            for (xi, wi) in x.iter().zip(&want) {
                assert!((xi - wi).abs() < 1e-7, "trial {trial}: {x:?} vs {want:?}");
            }
            // BTRAN consistency: y' B = c'.
            let c: Vec<f64> = (0..m).map(|_| rng.random_range(-3.0_f64..3.0)).collect();
            let mut y = c.clone();
            let mut scratch = vec![0.0; m];
            lu.btran(&mut y, &mut scratch);
            for (pos, col) in cols.iter().enumerate() {
                let mut acc = 0.0;
                for &(r, v) in col {
                    acc += y[r as usize] * v;
                }
                assert!((acc - c[pos]).abs() < 1e-7);
            }
        }
    }
}
