//! Compressed sparse column (CSC) matrices and sparse/dense vector kernels.
//!
//! The revised simplex works column-wise: pricing scans columns against a
//! dense dual vector, and FTRAN pulls single columns out of the matrix. CSC
//! is the natural layout for both.

/// A sparse matrix in compressed-sparse-column form.
///
/// Invariants: `col_ptr.len() == ncols + 1`, `col_ptr[0] == 0`,
/// `col_ptr[ncols] == row_idx.len() == values.len()`, row indices within a
/// column are strictly increasing and `< nrows`.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Builds a CSC matrix from coefficient triplets `(row, col, value)`.
    /// Duplicate `(row, col)` pairs are summed; entries that cancel to zero
    /// are kept (they are harmless and rare).
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: impl IntoIterator<Item = (u32, u32, f64)>,
    ) -> Self {
        let mut per_col: Vec<Vec<(u32, f64)>> = vec![Vec::new(); ncols];
        for (r, c, v) in triplets {
            assert!((r as usize) < nrows, "row index {r} out of range");
            assert!((c as usize) < ncols, "col index {c} out of range");
            per_col[c as usize].push((r, v));
        }
        let mut col_ptr = Vec::with_capacity(ncols + 1);
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        col_ptr.push(0);
        for col in &mut per_col {
            col.sort_unstable_by_key(|&(r, _)| r);
            let mut i = 0;
            while i < col.len() {
                let r = col[i].0;
                let mut v = col[i].1;
                let mut j = i + 1;
                while j < col.len() && col[j].0 == r {
                    v += col[j].1;
                    j += 1;
                }
                row_idx.push(r);
                values.push(v);
                i = j;
            }
            col_ptr.push(row_idx.len());
        }
        CscMatrix {
            nrows,
            ncols,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// An `nrows x 0` matrix to which columns can be appended.
    pub fn empty(nrows: usize) -> Self {
        CscMatrix {
            nrows,
            ncols: 0,
            col_ptr: vec![0],
            row_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Appends a column given as sorted `(row, value)` pairs.
    ///
    /// # Panics
    /// Panics if rows are out of range or not strictly increasing.
    pub fn push_col(&mut self, entries: &[(u32, f64)]) {
        let mut prev: Option<u32> = None;
        for &(r, v) in entries {
            assert!((r as usize) < self.nrows, "row index out of range");
            if let Some(p) = prev {
                assert!(r > p, "rows must be strictly increasing");
            }
            prev = Some(r);
            self.row_idx.push(r);
            self.values.push(v);
        }
        self.ncols += 1;
        self.col_ptr.push(self.row_idx.len());
    }

    /// Splices `cols` into the matrix starting at column position `at`,
    /// shifting existing columns `at..` right by `cols.len()`. Each new
    /// column is given as sorted `(row, value)` pairs, like
    /// [`push_col`](Self::push_col). Rebuilds the storage in one pass —
    /// O(nnz + added) — so it is meant for occasional batch growth (delayed
    /// column generation), not per-entry editing.
    ///
    /// # Panics
    /// Panics if `at > ncols`, or any row index is out of range or not
    /// strictly increasing within its column.
    pub fn insert_cols(&mut self, at: usize, cols: &[Vec<(u32, f64)>]) {
        assert!(at <= self.ncols, "insert position {at} out of range");
        if cols.is_empty() {
            return;
        }
        let added: usize = cols.iter().map(|c| c.len()).sum();
        for col in cols {
            let mut prev: Option<u32> = None;
            for &(r, _) in col {
                assert!((r as usize) < self.nrows, "row index out of range");
                if let Some(p) = prev {
                    assert!(r > p, "rows must be strictly increasing");
                }
                prev = Some(r);
            }
        }
        let mut row_idx = Vec::with_capacity(self.nnz() + added);
        let mut values = Vec::with_capacity(self.nnz() + added);
        let mut col_ptr = Vec::with_capacity(self.ncols + cols.len() + 1);
        col_ptr.push(0usize);
        let split = self.col_ptr[at];
        row_idx.extend_from_slice(&self.row_idx[..split]);
        values.extend_from_slice(&self.values[..split]);
        col_ptr.extend_from_slice(&self.col_ptr[1..=at]);
        for col in cols {
            for &(r, v) in col {
                row_idx.push(r);
                values.push(v);
            }
            col_ptr.push(row_idx.len());
        }
        row_idx.extend_from_slice(&self.row_idx[split..]);
        values.extend_from_slice(&self.values[split..]);
        for j in at..self.ncols {
            col_ptr.push(self.col_ptr[j + 1] + added);
        }
        self.ncols += cols.len();
        self.col_ptr = col_ptr;
        self.row_idx = row_idx;
        self.values = values;
    }

    /// Grows the matrix by `k` rows at the bottom and scatters `triplets`
    /// — `(row, col, value)` with `nrows <= row < nrows + k` — into the
    /// existing columns. Because every new row index exceeds every existing
    /// one, each column's new entries land at the end of its segment and
    /// the strictly-increasing invariant is preserved without re-sorting
    /// existing data.
    ///
    /// # Panics
    /// Panics if a triplet's row is not in the new-row range, its column is
    /// out of range, or two triplets address the same `(row, col)` cell.
    pub fn append_rows(&mut self, k: usize, triplets: &[(u32, u32, f64)]) {
        let old_rows = self.nrows;
        self.nrows += k;
        if triplets.is_empty() {
            return;
        }
        for &(r, c, _) in triplets {
            assert!(
                (r as usize) >= old_rows && (r as usize) < self.nrows,
                "row index {r} outside the appended range"
            );
            assert!((c as usize) < self.ncols, "col index {c} out of range");
        }
        let mut extra: Vec<(u32, u32, f64)> = triplets.to_vec();
        extra.sort_unstable_by_key(|&(r, c, _)| (c, r));
        for w in extra.windows(2) {
            assert!(
                (w[0].1, w[0].0) != (w[1].1, w[1].0),
                "duplicate (row, col) entry in appended rows"
            );
        }
        let mut row_idx = Vec::with_capacity(self.nnz() + extra.len());
        let mut values = Vec::with_capacity(self.nnz() + extra.len());
        let mut col_ptr = Vec::with_capacity(self.ncols + 1);
        col_ptr.push(0usize);
        let mut it = extra.iter().peekable();
        for j in 0..self.ncols {
            let lo = self.col_ptr[j];
            let hi = self.col_ptr[j + 1];
            row_idx.extend_from_slice(&self.row_idx[lo..hi]);
            values.extend_from_slice(&self.values[lo..hi]);
            while let Some(&&(r, c, v)) = it.peek() {
                if c as usize != j {
                    break;
                }
                row_idx.push(r);
                values.push(v);
                it.next();
            }
            col_ptr.push(row_idx.len());
        }
        self.col_ptr = col_ptr;
        self.row_idx = row_idx;
        self.values = values;
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Number of stored entries in column `j`.
    #[inline]
    pub fn col_nnz(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }

    /// The `(row_indices, values)` slices of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> (&[u32], &[f64]) {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        (&self.row_idx[lo..hi], &self.values[lo..hi])
    }

    /// Dot product of column `j` with a dense vector.
    #[inline]
    pub fn col_dot(&self, j: usize, dense: &[f64]) -> f64 {
        let (rows, vals) = self.col(j);
        let mut acc = 0.0;
        for (&r, &v) in rows.iter().zip(vals) {
            acc += v * dense[r as usize];
        }
        acc
    }

    /// `out += scale * column j` (scatter into a dense vector).
    #[inline]
    pub fn col_axpy(&self, j: usize, scale: f64, out: &mut [f64]) {
        let (rows, vals) = self.col(j);
        for (&r, &v) in rows.iter().zip(vals) {
            out[r as usize] += scale * v;
        }
    }

    /// Computes `y = A x` for dense `x` (len `ncols`) into dense `y`
    /// (len `nrows`), overwriting `y`.
    pub fn mul_dense(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        y.fill(0.0);
        #[allow(clippy::needless_range_loop)] // column index drives col_axpy
        for j in 0..self.ncols {
            let xj = x[j];
            // lint: allow(float-eq, reason = "exact-zero skip is a sparsity guard: skipping true zeros never changes the arithmetic")
            if xj != 0.0 {
                self.col_axpy(j, xj, y);
            }
        }
    }

    /// Returns the dense `nrows x ncols` representation (row-major), for
    /// tests and small-problem fallbacks.
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.ncols]; self.nrows];
        #[allow(clippy::needless_range_loop)] // column index drives col()
        for j in 0..self.ncols {
            let (rows, vals) = self.col(j);
            for (&r, &v) in rows.iter().zip(vals) {
                d[r as usize][j] = v;
            }
        }
        d
    }
}

/// A sparse work vector: dense values plus an explicit nonzero pattern, with
/// a density-based dense fallback.
///
/// Used by FTRAN/BTRAN results where the vector is usually sparse but must
/// be randomly addressable. `pattern` may over-approximate (contain indices
/// whose value has cancelled to ~0); consumers filter by magnitude. When a
/// kernel decides the result is too dense for pattern tracking to pay off it
/// calls [`make_dense`](Self::make_dense): the pattern is abandoned and
/// consumers iterate over all of `values` instead (checked via
/// [`is_dense`](Self::is_dense)). [`clear`](Self::clear) handles both modes
/// and returns the vector to sparse tracking.
#[derive(Debug, Clone, Default)]
pub struct WorkVec {
    /// Dense storage of values.
    pub values: Vec<f64>,
    /// Indices with (potentially) nonzero values. Meaningless while
    /// [`is_dense`](Self::is_dense).
    pub pattern: Vec<u32>,
    /// Scratch flags marking membership of `pattern`.
    marked: Vec<bool>,
    /// When set, `pattern` is not maintained; any entry of `values` may be
    /// nonzero.
    dense: bool,
}

impl WorkVec {
    /// Creates a zeroed work vector of dimension `n`. The pattern buffer is
    /// pre-sized to `n` so steady-state use never reallocates.
    pub fn new(n: usize) -> Self {
        WorkVec {
            values: vec![0.0; n],
            pattern: Vec::with_capacity(n),
            marked: vec![false; n],
            dense: false,
        }
    }

    /// Dimension of the vector.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the dimension is zero.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// True when the pattern has been abandoned and every entry of `values`
    /// must be assumed nonzero.
    #[inline]
    pub fn is_dense(&self) -> bool {
        self.dense
    }

    /// Abandons pattern tracking: drops the collected pattern (and its
    /// marks) but keeps `values` intact. Consumers must switch to dense
    /// iteration until the next [`clear`](Self::clear).
    pub fn make_dense(&mut self) {
        for &i in &self.pattern {
            self.marked[i as usize] = false;
        }
        self.pattern.clear();
        self.dense = true;
    }

    /// Resets the vector to all-zero sparse state: O(nnz) when the pattern
    /// is live, O(n) after a dense fallback.
    pub fn clear(&mut self) {
        if self.dense {
            self.values.fill(0.0);
            self.dense = false;
        } else {
            for &i in &self.pattern {
                self.values[i as usize] = 0.0;
                self.marked[i as usize] = false;
            }
            self.pattern.clear();
        }
    }

    /// Adds `v` at index `i`, tracking the pattern.
    #[inline]
    pub fn add(&mut self, i: u32, v: f64) {
        if !self.dense && !self.marked[i as usize] {
            self.marked[i as usize] = true;
            self.pattern.push(i);
        }
        self.values[i as usize] += v;
    }

    /// Sets index `i` to `v`, tracking the pattern.
    #[inline]
    pub fn set(&mut self, i: u32, v: f64) {
        if !self.dense && !self.marked[i as usize] {
            self.marked[i as usize] = true;
            self.pattern.push(i);
        }
        self.values[i as usize] = v;
    }

    /// True when index `i` is in the tracked pattern.
    #[inline]
    pub fn marked(&self, i: u32) -> bool {
        self.marked[i as usize]
    }

    /// Current value at index `i`.
    #[inline]
    pub fn get(&self, i: u32) -> f64 {
        self.values[i as usize]
    }

    /// Sorts the pattern ascending, so pattern iteration visits entries in
    /// the same order a dense `0..n` scan would.
    pub fn sort_pattern(&mut self) {
        self.pattern.sort_unstable();
    }

    /// Number of tracked nonzeros — the full dimension after a dense
    /// fallback.
    pub fn nnz(&self) -> usize {
        if self.dense {
            self.values.len()
        } else {
            self.pattern.len()
        }
    }

    /// Loads a sparse column into this (cleared) vector.
    pub fn load(&mut self, rows: &[u32], vals: &[f64]) {
        self.clear();
        for (&r, &v) in rows.iter().zip(vals) {
            self.set(r, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_roundtrip() {
        let m = CscMatrix::from_triplets(
            3,
            2,
            vec![(0, 0, 1.0), (2, 0, 3.0), (1, 1, -2.0), (2, 0, 1.0)],
        );
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 2);
        assert_eq!(m.nnz(), 3); // duplicate (2,0) summed
        let (rows, vals) = m.col(0);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[1.0, 4.0]);
        let d = m.to_dense();
        assert_eq!(d[2][0], 4.0);
        assert_eq!(d[1][1], -2.0);
    }

    #[test]
    fn push_col_and_dot() {
        let mut m = CscMatrix::empty(4);
        m.push_col(&[(0, 1.0), (3, 2.0)]);
        m.push_col(&[(1, 5.0)]);
        assert_eq!(m.ncols(), 2);
        let dense = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(m.col_dot(0, &dense), 1.0 + 8.0);
        assert_eq!(m.col_dot(1, &dense), 10.0);
    }

    #[test]
    fn mul_dense_matches_manual() {
        let m = CscMatrix::from_triplets(2, 3, vec![(0, 0, 1.0), (1, 1, 2.0), (0, 2, 3.0)]);
        let mut y = vec![0.0; 2];
        m.mul_dense(&[1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, vec![4.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn push_col_rejects_unsorted() {
        let mut m = CscMatrix::empty(4);
        m.push_col(&[(2, 1.0), (1, 2.0)]);
    }

    #[test]
    fn insert_cols_mid_matrix() {
        let mut m = CscMatrix::from_triplets(3, 2, vec![(0, 0, 1.0), (2, 1, 2.0)]);
        m.insert_cols(1, &[vec![(1, 5.0)], vec![(0, 6.0), (2, 7.0)]]);
        assert_eq!(m.ncols(), 4);
        assert_eq!(m.nnz(), 5);
        let want = CscMatrix::from_triplets(
            3,
            4,
            vec![
                (0, 0, 1.0),
                (1, 1, 5.0),
                (0, 2, 6.0),
                (2, 2, 7.0),
                (2, 3, 2.0),
            ],
        );
        assert_eq!(m, want);
    }

    #[test]
    fn insert_cols_at_ends() {
        let mut m = CscMatrix::from_triplets(2, 1, vec![(1, 0, 3.0)]);
        m.insert_cols(0, &[vec![(0, 1.0)]]);
        m.insert_cols(2, &[vec![], vec![(1, 4.0)]]);
        assert_eq!(m.ncols(), 4);
        let d = m.to_dense();
        assert_eq!(d[0][0], 1.0);
        assert_eq!(d[1][1], 3.0);
        assert_eq!(d[1][3], 4.0);
        assert_eq!(m.col_nnz(2), 0);
    }

    #[test]
    fn append_rows_extends_columns() {
        let mut m = CscMatrix::from_triplets(2, 3, vec![(0, 0, 1.0), (1, 1, 2.0)]);
        m.append_rows(2, &[(2, 0, 5.0), (3, 0, 6.0), (2, 2, 7.0)]);
        assert_eq!(m.nrows(), 4);
        assert_eq!(m.nnz(), 5);
        let (rows, vals) = m.col(0);
        assert_eq!(rows, &[0, 2, 3]);
        assert_eq!(vals, &[1.0, 5.0, 6.0]);
        let (rows, vals) = m.col(2);
        assert_eq!(rows, &[2]);
        assert_eq!(vals, &[7.0]);
    }

    #[test]
    fn append_rows_no_entries() {
        let mut m = CscMatrix::from_triplets(2, 1, vec![(0, 0, 1.0)]);
        m.append_rows(3, &[]);
        assert_eq!(m.nrows(), 5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    #[should_panic(expected = "outside the appended range")]
    fn append_rows_rejects_existing_row() {
        let mut m = CscMatrix::from_triplets(2, 1, vec![(0, 0, 1.0)]);
        m.append_rows(1, &[(1, 0, 9.0)]);
    }

    #[test]
    #[should_panic(expected = "duplicate (row, col)")]
    fn append_rows_rejects_duplicates() {
        let mut m = CscMatrix::from_triplets(2, 1, vec![(0, 0, 1.0)]);
        m.append_rows(1, &[(2, 0, 9.0), (2, 0, 1.0)]);
    }

    #[test]
    fn workvec_tracks_pattern() {
        let mut w = WorkVec::new(5);
        w.add(3, 1.5);
        w.add(3, 0.5);
        w.set(1, -1.0);
        assert_eq!(w.get(3), 2.0);
        assert_eq!(w.pattern.len(), 2);
        w.clear();
        assert_eq!(w.get(3), 0.0);
        assert!(w.pattern.is_empty());
    }

    #[test]
    fn workvec_dense_fallback_roundtrip() {
        let mut w = WorkVec::new(4);
        w.set(1, 2.0);
        w.set(2, 3.0);
        assert!(!w.is_dense());
        assert_eq!(w.nnz(), 2);
        w.make_dense();
        assert!(w.is_dense());
        assert_eq!(w.nnz(), 4);
        // Values survive the fallback; writes keep working without pattern
        // maintenance.
        assert_eq!(w.get(1), 2.0);
        w.set(0, 5.0);
        w.add(3, 1.0);
        assert!(w.pattern.is_empty());
        // clear() recovers full sparse tracking.
        w.clear();
        assert!(!w.is_dense());
        for i in 0..4 {
            assert_eq!(w.get(i), 0.0);
        }
        w.set(3, 7.0);
        assert_eq!(w.pattern, vec![3]);
    }

    #[test]
    fn workvec_sort_pattern() {
        let mut w = WorkVec::new(5);
        w.set(4, 1.0);
        w.set(0, 2.0);
        w.set(2, 3.0);
        w.sort_pattern();
        assert_eq!(w.pattern, vec![0, 2, 4]);
    }

    #[test]
    fn workvec_load() {
        let mut w = WorkVec::new(4);
        w.add(0, 9.0);
        w.load(&[1, 3], &[2.0, 4.0]);
        assert_eq!(w.get(0), 0.0);
        assert_eq!(w.get(1), 2.0);
        assert_eq!(w.get(3), 4.0);
    }
}
