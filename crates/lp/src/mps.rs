//! MPS reading and writing.
//!
//! MPS is the lingua franca of LP/MIP solvers; supporting it lets the
//! scheduler's formulations be exported to (and cross-checked against)
//! external solvers, and lets this crate's simplex be exercised on standard
//! test problems. The dialect implemented is free-format MPS with the
//! common sections:
//!
//! `NAME`, `ROWS` (`N`/`L`/`G`/`E`), `COLUMNS` (including integrality
//! `MARKER` lines), `RHS`, `RANGES`, `BOUNDS`
//! (`LO`/`UP`/`FX`/`FR`/`MI`/`PL`/`BV`/`LI`/`UI`), `ENDATA`. Comment lines
//! start with `*`.
//!
//! Reading conventions follow the de-facto standard: the first `N` row is
//! the objective; columns default to `[0, +inf)`; a `RANGES` entry `r` on a
//! row with rhs `b` turns `L` into `[b - |r|, b]`, `G` into `[b, b + |r|]`,
//! and `E` into `[b, b + r]` for `r >= 0` / `[b + r, b]` otherwise.

use crate::model::{Col, Objective, Problem, Row};
use crate::solution::SolveError;
use std::collections::HashMap;
use std::fmt::Write as _;

/// A parsed MPS model: the problem plus the names appearing in the file.
#[derive(Debug)]
pub struct MpsModel {
    /// The problem, built to **minimize** the objective row (flip with
    /// [`Problem::new`] semantics if a maximization reading is desired —
    /// MPS itself does not encode a direction).
    pub problem: Problem,
    /// Model name from the `NAME` card (may be empty).
    pub name: String,
    /// Column names in index order.
    pub col_names: Vec<String>,
    /// Constraint row names in index order (objective excluded).
    pub row_names: Vec<String>,
}

#[derive(Clone, Copy, PartialEq)]
enum RowKind {
    Objective,
    Le,
    Ge,
    Eq,
}

/// Parses a free-format MPS document.
pub fn parse_mps(text: &str) -> Result<MpsModel, SolveError> {
    let bad = |msg: String| SolveError::InvalidModel(format!("MPS: {msg}"));

    let mut name = String::new();
    let mut section = String::new();

    let mut row_kind: Vec<RowKind> = Vec::new();
    let mut row_names: Vec<String> = Vec::new();
    let mut row_index: HashMap<String, usize> = HashMap::new();
    let mut objective_row: Option<usize> = None;

    let mut col_names: Vec<String> = Vec::new();
    let mut col_index: HashMap<String, usize> = HashMap::new();
    let mut col_cost: Vec<f64> = Vec::new();
    let mut col_integer: Vec<bool> = Vec::new();
    // (row, col, value) with row indices into row_names (objective handled
    // separately via col_cost).
    let mut entries: Vec<(usize, usize, f64)> = Vec::new();
    let mut rhs: HashMap<usize, f64> = HashMap::new();
    let mut ranges: HashMap<usize, f64> = HashMap::new();
    // Explicit bounds: (col, kind, value).
    let mut bounds: Vec<(usize, String, f64)> = Vec::new();
    let mut integer_mode = false;

    for raw in text.lines() {
        let line = raw.trim_end();
        if line.trim_start().starts_with('*') || line.trim().is_empty() {
            continue;
        }
        // Section headers start in column 1 (no leading whitespace).
        if !line.starts_with(' ') && !line.starts_with('\t') {
            let mut parts = line.split_whitespace();
            section = parts.next().unwrap_or("").to_ascii_uppercase();
            if section == "NAME" {
                name = parts.next().unwrap_or("").to_string();
            }
            if section == "ENDATA" {
                break;
            }
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match section.as_str() {
            "ROWS" => {
                if fields.len() < 2 {
                    return Err(bad(format!("short ROWS line: {line:?}")));
                }
                let kind = match fields[0].to_ascii_uppercase().as_str() {
                    "N" => RowKind::Objective,
                    "L" => RowKind::Le,
                    "G" => RowKind::Ge,
                    "E" => RowKind::Eq,
                    other => return Err(bad(format!("unknown row type {other:?}"))),
                };
                let rname = fields[1].to_string();
                if kind == RowKind::Objective {
                    if objective_row.is_none() {
                        objective_row = Some(usize::MAX); // sentinel: named free row
                        row_index.insert(rname, usize::MAX);
                    }
                    // Extra N rows are ignored (standard behavior).
                } else {
                    let idx = row_names.len();
                    row_index.insert(rname.clone(), idx);
                    row_names.push(rname);
                    row_kind.push(kind);
                }
            }
            "COLUMNS" => {
                // MARKER lines toggle integrality.
                if fields.len() >= 3 && fields[1].eq_ignore_ascii_case("'MARKER'") {
                    let tag = fields[2].to_ascii_uppercase();
                    if tag.contains("INTORG") {
                        integer_mode = true;
                    } else if tag.contains("INTEND") {
                        integer_mode = false;
                    }
                    continue;
                }
                if fields.len() < 3 || fields.len().is_multiple_of(2) {
                    return Err(bad(format!("malformed COLUMNS line: {line:?}")));
                }
                let cname = fields[0];
                let cidx = *col_index.entry(cname.to_string()).or_insert_with(|| {
                    col_names.push(cname.to_string());
                    col_cost.push(0.0);
                    col_integer.push(false);
                    col_names.len() - 1
                });
                col_integer[cidx] |= integer_mode;
                for pair in fields[1..].chunks(2) {
                    let rname = pair[0];
                    let value: f64 = pair[1]
                        .parse()
                        .map_err(|_| bad(format!("bad number {:?}", pair[1])))?;
                    match row_index.get(rname) {
                        Some(&usize::MAX) => col_cost[cidx] += value,
                        Some(&ri) => entries.push((ri, cidx, value)),
                        None => return Err(bad(format!("unknown row {rname:?}"))),
                    }
                }
            }
            "RHS" => {
                if fields.len() < 3 || fields.len().is_multiple_of(2) {
                    return Err(bad(format!("malformed RHS line: {line:?}")));
                }
                for pair in fields[1..].chunks(2) {
                    let rname = pair[0];
                    let value: f64 = pair[1]
                        .parse()
                        .map_err(|_| bad(format!("bad number {:?}", pair[1])))?;
                    match row_index.get(rname) {
                        Some(&usize::MAX) => {} // objective offset: rarely used; ignored
                        Some(&ri) => {
                            rhs.insert(ri, value);
                        }
                        None => return Err(bad(format!("unknown row {rname:?}"))),
                    }
                }
            }
            "RANGES" => {
                if fields.len() < 3 || fields.len().is_multiple_of(2) {
                    return Err(bad(format!("malformed RANGES line: {line:?}")));
                }
                for pair in fields[1..].chunks(2) {
                    let rname = pair[0];
                    let value: f64 = pair[1]
                        .parse()
                        .map_err(|_| bad(format!("bad number {:?}", pair[1])))?;
                    let &ri = row_index
                        .get(rname)
                        .ok_or_else(|| bad(format!("unknown row {rname:?}")))?;
                    if ri != usize::MAX {
                        ranges.insert(ri, value);
                    }
                }
            }
            "BOUNDS" => {
                if fields.len() < 3 {
                    return Err(bad(format!("short BOUNDS line: {line:?}")));
                }
                let kind = fields[0].to_ascii_uppercase();
                let cname = fields[2];
                let &cidx = col_index
                    .get(cname)
                    .ok_or_else(|| bad(format!("unknown column {cname:?}")))?;
                let value: f64 = if fields.len() >= 4 {
                    fields[3]
                        .parse()
                        .map_err(|_| bad(format!("bad number {:?}", fields[3])))?
                } else {
                    0.0
                };
                bounds.push((cidx, kind, value));
            }
            "" => return Err(bad(format!("data before any section: {line:?}"))),
            other => {
                return Err(bad(format!("unsupported section {other:?}")));
            }
        }
    }

    // Assemble the Problem (minimization).
    let mut p = Problem::new(Objective::Minimize);
    let mut cols: Vec<Col> = Vec::with_capacity(col_names.len());
    for i in 0..col_names.len() {
        let c = p.add_col(0.0, f64::INFINITY, col_cost[i]);
        if col_integer[i] {
            p.set_integer(c, true);
        }
        cols.push(c);
    }
    let mut rows: Vec<Row> = Vec::with_capacity(row_names.len());
    for (i, &kind) in row_kind.iter().enumerate() {
        let b = rhs.get(&i).copied().unwrap_or(0.0);
        let (mut lo, mut hi) = match kind {
            RowKind::Le => (f64::NEG_INFINITY, b),
            RowKind::Ge => (b, f64::INFINITY),
            RowKind::Eq => (b, b),
            RowKind::Objective => unreachable!(),
        };
        if let Some(&r) = ranges.get(&i) {
            match kind {
                RowKind::Le => lo = b - r.abs(),
                RowKind::Ge => hi = b + r.abs(),
                RowKind::Eq => {
                    if r >= 0.0 {
                        hi = b + r;
                    } else {
                        lo = b + r;
                    }
                }
                RowKind::Objective => unreachable!(),
            }
        }
        rows.push(p.add_row(lo, hi, &[]));
    }
    for (ri, ci, v) in entries {
        p.set_coeff(rows[ri], cols[ci], v);
    }
    // Bounds, applied in order. Integer defaults: UI-less integer columns
    // keep [0, inf) like continuous ones (modern convention).
    for (ci, kind, v) in bounds {
        let c = cols[ci];
        let (lo, hi) = p.col_bounds(c);
        match kind.as_str() {
            "LO" | "LI" => p.set_col_bounds(c, v, hi),
            "UP" | "UI" => {
                // Negative UP with default LO implies a free lower bound.
                let lo = if v < 0.0 && lo == 0.0 {
                    f64::NEG_INFINITY
                } else {
                    lo
                };
                p.set_col_bounds(c, lo, v);
            }
            "FX" => p.set_col_bounds(c, v, v),
            "FR" => p.set_col_bounds(c, f64::NEG_INFINITY, f64::INFINITY),
            "MI" => p.set_col_bounds(c, f64::NEG_INFINITY, hi),
            "PL" => p.set_col_bounds(c, lo, f64::INFINITY),
            "BV" => {
                p.set_col_bounds(c, 0.0, 1.0);
                p.set_integer(c, true);
            }
            other => {
                return Err(SolveError::InvalidModel(format!(
                    "MPS: unsupported bound type {other:?}"
                )))
            }
        }
    }

    Ok(MpsModel {
        problem: p,
        name,
        col_names,
        row_names,
    })
}

/// Serializes `p` as free-format MPS. Maximization problems are written as
/// the equivalent minimization (costs negated) with a `* MAXIMIZE` comment,
/// since MPS has no objective-direction card.
pub fn write_mps(p: &Problem, name: &str) -> String {
    let mut out = String::new();
    let obj_sign = match p.objective() {
        Objective::Minimize => 1.0,
        Objective::Maximize => -1.0,
    };
    if obj_sign < 0.0 {
        out.push_str("* MAXIMIZE (costs negated below; MPS encodes minimization)\n");
    }
    let _ = writeln!(out, "NAME {name}");

    out.push_str("ROWS\n N OBJ\n");
    // Range rows are emitted as their dominant kind + RANGES.
    let mut row_kinds: Vec<(char, f64, Option<f64>)> = Vec::new(); // (kind, rhs, range)
    for r in p.iter_rows() {
        let (lo, hi) = p.row_bounds(r);
        let (k, b, range) = if lo.is_finite() && hi.is_finite() {
            if lo == hi {
                ('E', lo, None)
            } else {
                ('L', hi, Some(hi - lo))
            }
        } else if hi.is_finite() {
            ('L', hi, None)
        } else if lo.is_finite() {
            ('G', lo, None)
        } else {
            // Free row: encode as N row after the objective (ignored by
            // most readers; we skip it entirely and note it).
            ('N', 0.0, None)
        };
        row_kinds.push((k, b, range));
        if k != 'N' {
            let _ = writeln!(out, " {k} R{}", r.index());
        }
    }

    out.push_str("COLUMNS\n");
    // Per-column entries: cost first, then rows (gathered from triplets).
    let mut per_col: Vec<Vec<(usize, f64)>> = vec![Vec::new(); p.num_cols()];
    for &(r, c, v) in &p.entries {
        per_col[c as usize].push((r as usize, v));
    }
    let mut in_int = false;
    for c in p.iter_cols() {
        let j = c.index();
        let integer = p.is_integer(c);
        if integer != in_int {
            let tag = if integer { "INTORG" } else { "INTEND" };
            let _ = writeln!(out, " MARK{j} 'MARKER' '{tag}'");
            in_int = integer;
        }
        let cost = obj_sign * p.cost(c);
        if cost != 0.0 {
            let _ = writeln!(out, " C{j} OBJ {cost}");
        }
        // Sum duplicates for a canonical file.
        let mut acc: HashMap<usize, f64> = HashMap::new();
        for &(r, v) in &per_col[j] {
            *acc.entry(r).or_default() += v;
        }
        let mut keys: Vec<_> = acc.keys().copied().collect();
        keys.sort_unstable();
        for r in keys {
            if row_kinds[r].0 != 'N' && acc[&r] != 0.0 {
                let _ = writeln!(out, " C{j} R{r} {}", acc[&r]);
            }
        }
    }
    if in_int {
        let _ = writeln!(out, " MARKEND 'MARKER' 'INTEND'");
    }

    out.push_str("RHS\n");
    for (r, &(k, b, _)) in row_kinds.iter().enumerate() {
        if k != 'N' && b != 0.0 {
            let _ = writeln!(out, " RHS R{r} {b}");
        }
    }
    let any_range = row_kinds.iter().any(|&(_, _, rg)| rg.is_some());
    if any_range {
        out.push_str("RANGES\n");
        for (r, &(_, _, rg)) in row_kinds.iter().enumerate() {
            if let Some(rg) = rg {
                let _ = writeln!(out, " RNG R{r} {rg}");
            }
        }
    }

    out.push_str("BOUNDS\n");
    for c in p.iter_cols() {
        let j = c.index();
        let (lo, hi) = p.col_bounds(c);
        match (lo.is_finite(), hi.is_finite()) {
            (true, true) if lo == hi => {
                let _ = writeln!(out, " FX BND C{j} {lo}");
            }
            (true, true) => {
                if lo != 0.0 {
                    let _ = writeln!(out, " LO BND C{j} {lo}");
                }
                let _ = writeln!(out, " UP BND C{j} {hi}");
            }
            (true, false) => {
                if lo != 0.0 {
                    let _ = writeln!(out, " LO BND C{j} {lo}");
                }
            }
            (false, true) => {
                let _ = writeln!(out, " MI BND C{j}");
                let _ = writeln!(out, " UP BND C{j} {hi}");
            }
            (false, false) => {
                let _ = writeln!(out, " FR BND C{j}");
            }
        }
    }
    out.push_str("ENDATA\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::revised::solve;
    use crate::solution::Status;

    const AFIRO_LIKE: &str = "\
* a small classic-style LP
NAME TEST1
ROWS
 N COST
 L LIM1
 G LIM2
 E EQ1
COLUMNS
 X1 COST 1.0 LIM1 1.0
 X1 LIM2 1.0
 X2 COST 2.0 LIM1 1.0
 X2 EQ1 1.0
RHS
 RHS LIM1 4.0 LIM2 1.0
 RHS EQ1 2.0
BOUNDS
 UP BND X1 3.0
ENDATA
";

    #[test]
    fn parse_basic() {
        let m = parse_mps(AFIRO_LIKE).unwrap();
        assert_eq!(m.name, "TEST1");
        assert_eq!(m.col_names, vec!["X1", "X2"]);
        assert_eq!(m.row_names, vec!["LIM1", "LIM2", "EQ1"]);
        let p = &m.problem;
        assert_eq!(p.num_cols(), 2);
        assert_eq!(p.num_rows(), 3);
        // min x1 + 2 x2, x1 + x2 <= 4, x1 >= 1, x2 == 2, x1 <= 3
        let s = solve(p).unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - (1.0 + 4.0)).abs() < 1e-6, "{}", s.objective);
    }

    #[test]
    fn parse_integer_markers_and_bv() {
        let text = "\
NAME INTTEST
ROWS
 N OBJ
 L CAP
COLUMNS
 MARKER1 'MARKER' 'INTORG'
 Y1 OBJ -3.0 CAP 2.0
 MARKER2 'MARKER' 'INTEND'
 X1 OBJ -1.0 CAP 1.0
RHS
 R CAP 5.0
BOUNDS
 BV BND Y1
ENDATA
";
        let m = parse_mps(text).unwrap();
        let p = &m.problem;
        let y = Col::from_index(0);
        let x = Col::from_index(1);
        assert!(p.is_integer(y));
        assert!(!p.is_integer(x));
        assert_eq!(p.col_bounds(y), (0.0, 1.0));
    }

    #[test]
    fn ranges_section() {
        let text = "\
NAME RTEST
ROWS
 N OBJ
 L R1
 G R2
 E R3
COLUMNS
 X OBJ 1.0 R1 1.0
 X R2 1.0 R3 1.0
RHS
 RHS R1 10.0 R2 2.0 R3 5.0
RANGES
 RNG R1 4.0 R2 3.0 R3 1.0
ENDATA
";
        let p = parse_mps(text).unwrap().problem;
        assert_eq!(p.row_bounds(Row::from_index(0)), (6.0, 10.0));
        assert_eq!(p.row_bounds(Row::from_index(1)), (2.0, 5.0));
        assert_eq!(p.row_bounds(Row::from_index(2)), (5.0, 6.0));
    }

    #[test]
    fn ranges_negative_values() {
        // Standard MPS semantics with a negative range value r:
        //   L: [b - |r|, b]      G: [b, b + |r|]      E: [b + r, b]
        // (for E with r >= 0 the interval is [b, b + r] — checked above).
        let text = "\
NAME RNEG
ROWS
 N OBJ
 L R1
 G R2
 E R3
COLUMNS
 X OBJ 1.0 R1 1.0
 X R2 1.0 R3 1.0
RHS
 RHS R1 10.0 R2 2.0 R3 5.0
RANGES
 RNG R1 -4.0 R2 -3.0 R3 -2.0
ENDATA
";
        let p = parse_mps(text).unwrap().problem;
        assert_eq!(p.row_bounds(Row::from_index(0)), (6.0, 10.0));
        assert_eq!(p.row_bounds(Row::from_index(1)), (2.0, 5.0));
        assert_eq!(p.row_bounds(Row::from_index(2)), (3.0, 5.0));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Negative and positive RANGES values on E/L/G rows obey the
        /// standard convention, and the resulting range rows survive a
        /// write → parse round trip bit-exactly.
        #[test]
        fn ranges_sign_convention_round_trips(
            kind in 0usize..3,
            b in -20i32..=20,
            r in -10i32..=10,
        ) {
            if r == 0 {
                return Ok(()); // a zero range is a plain row; skip the case
            }
            let (kc, b, r) = (["L", "G", "E"][kind], b as f64, r as f64);
            let text = format!(
                "NAME P\nROWS\n N OBJ\n {kc} R0\nCOLUMNS\n X OBJ 1.0 R0 1.0\n\
                 RHS\n RHS R0 {b}\nRANGES\n RNG R0 {r}\nENDATA\n"
            );
            let p = parse_mps(&text).unwrap().problem;
            let expect = match kc {
                "L" => (b - r.abs(), b),
                "G" => (b, b + r.abs()),
                _ if r >= 0.0 => (b, b + r),
                _ => (b + r, b),
            };
            let row = Row::from_index(0);
            proptest::prop_assert_eq!(p.row_bounds(row), expect);
            // Round trip: the writer re-encodes the finite interval as an
            // L row plus a positive range; bounds must be preserved.
            let q = parse_mps(&write_mps(&p, "P")).unwrap().problem;
            proptest::prop_assert_eq!(q.row_bounds(row), expect);
        }
    }

    #[test]
    fn roundtrip_preserves_solution() {
        use crate::model::{Objective, Problem};
        let mut p = Problem::new(Objective::Maximize);
        let x = p.add_col(0.0, 4.0, 3.0);
        let y = p.add_int_col(1.0, f64::INFINITY, 2.0);
        let z = p.add_col(f64::NEG_INFINITY, f64::INFINITY, -1.0);
        p.add_row(f64::NEG_INFINITY, 10.0, &[(x, 1.0), (y, 2.0)]);
        p.add_row(2.0, 6.0, &[(y, 1.0), (z, 1.0)]);
        p.add_row(3.0, 3.0, &[(x, 1.0), (z, 1.0)]);

        let text = write_mps(&p, "RT");
        let q = parse_mps(&text).unwrap().problem;
        assert_eq!(q.num_cols(), p.num_cols());
        assert_eq!(q.num_rows(), p.num_rows());

        let sp = solve(&p).unwrap();
        let sq = solve(&q).unwrap();
        assert_eq!(sp.status, Status::Optimal);
        assert_eq!(sq.status, Status::Optimal);
        // q minimizes the negated costs: objectives are negatives.
        assert!(
            (sp.objective + sq.objective).abs() < 1e-6,
            "{} vs {}",
            sp.objective,
            sq.objective
        );
        // Integrality marks survive.
        assert!(q.is_integer(Col::from_index(1)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_mps("ROWS\n Z BADKIND\n").is_err());
        assert!(parse_mps("COLUMNS\n X NOROW 1.0\n").is_err());
        assert!(parse_mps("ROWS\n N OBJ\nCOLUMNS\n X OBJ notanumber\n").is_err());
    }

    #[test]
    fn free_bounds_and_mi() {
        let text = "\
NAME B
ROWS
 N OBJ
 G R1
COLUMNS
 X OBJ 1.0 R1 1.0
 Y OBJ 1.0 R1 1.0
RHS
 RHS R1 -5.0
BOUNDS
 FR BND X
 MI BND Y
 UP BND Y 2.0
ENDATA
";
        let p = parse_mps(text).unwrap().problem;
        assert_eq!(
            p.col_bounds(Col::from_index(0)),
            (f64::NEG_INFINITY, f64::INFINITY)
        );
        assert_eq!(p.col_bounds(Col::from_index(1)), (f64::NEG_INFINITY, 2.0));
    }
}
