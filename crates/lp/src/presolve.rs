//! Presolve: problem reductions applied before the simplex.
//!
//! The scheduler's formulations contain easy structure — fixed variables
//! (zero-width windows), singleton rows, empty rows and columns — that a
//! few safe reductions remove, shrinking the basis the simplex must
//! factorize. The reductions implemented are the classic always-safe set:
//!
//! 1. **Fixed columns** (`l == u`): substituted into row bounds and the
//!    objective offset.
//! 2. **Free rows** (no finite bound): dropped.
//! 3. **Empty rows**: feasibility-checked and dropped.
//! 4. **Singleton rows** (one remaining column): converted into column
//!    bounds and dropped; crossed bounds prove infeasibility.
//! 5. **Empty columns**: moved to their cost-optimal bound; a nonzero cost
//!    pushing toward an infinite bound proves unboundedness.
//! 6. **Free column singletons on equality rows**: a free column appearing
//!    in exactly one row, that row an equality, can always satisfy the row
//!    by itself — both are removed, the column's objective contribution is
//!    substituted into the remaining columns' costs, and its value is
//!    recovered during postsolve from the row equation. (Implied-free and
//!    doubleton variants are deliberately out of scope.)
//!
//! Rules run to a fixpoint. [`Reduction::postsolve`] maps a reduced-space
//! point back to the original columns (primal only; duals are not mapped),
//! replaying deferred eliminations in reverse order.

use crate::model::{Objective, Problem};
use crate::{is_inf, FEAS_TOL};

/// Result of presolving.
#[derive(Debug)]
pub enum PresolveOutcome {
    /// A (possibly) smaller equivalent problem plus the postsolve mapping.
    Reduced(Reduction),
    /// The reductions proved the problem infeasible.
    Infeasible,
    /// The reductions proved the objective unbounded.
    Unbounded,
}

/// A reduced problem together with the information needed to undo it.
#[derive(Debug)]
pub struct Reduction {
    /// The reduced problem.
    pub problem: Problem,
    /// For each original column: `Ok(reduced index)` if it survived,
    /// `Err(fixed value)` if presolve pinned it (`NaN` placeholder for
    /// columns recovered by an elimination step instead).
    mapping: Vec<Result<usize, f64>>,
    /// Deferred eliminations, replayed in reverse by
    /// [`postsolve`](Self::postsolve).
    steps: Vec<PostStep>,
    /// Number of original columns.
    n_orig: usize,
}

/// One deferred elimination recorded for postsolve.
#[derive(Debug)]
enum PostStep {
    /// A free column singleton eliminated from the equality row
    /// `coeff * x_col + Σ aₖ x_k = rhs`: recover
    /// `x_col = (rhs − Σ aₖ x_k) / coeff`. `others` holds the row's other
    /// entries as *original-space* column indices.
    FreeSingleton {
        col: usize,
        coeff: f64,
        rhs: f64,
        others: Vec<(usize, f64)>,
    },
}

impl Reduction {
    /// Maps a solution of the reduced problem back to original columns.
    pub fn postsolve(&self, x_reduced: &[f64]) -> Vec<f64> {
        assert_eq!(x_reduced.len(), self.problem.num_cols());
        let mut x = vec![0.0; self.n_orig];
        for (j, m) in self.mapping.iter().enumerate() {
            x[j] = match *m {
                Ok(rj) => x_reduced[rj],
                Err(v) => v,
            };
        }
        // Replay eliminations most-recent-first: a step's inputs were
        // either never eliminated (resolved by the mapping above) or were
        // eliminated by a *later* step, which has already run by the time
        // an earlier step reads them.
        for step in self.steps.iter().rev() {
            match step {
                PostStep::FreeSingleton {
                    col,
                    coeff,
                    rhs,
                    others,
                } => {
                    let mut acc = *rhs;
                    for &(k, a) in others {
                        acc -= a * x[k];
                    }
                    x[*col] = acc / coeff;
                }
            }
        }
        x
    }

    /// Columns eliminated by presolve.
    pub fn removed_cols(&self) -> usize {
        self.n_orig - self.problem.num_cols()
    }
}

/// Runs the reductions on `p`.
pub fn presolve(p: &Problem) -> PresolveOutcome {
    let n = p.num_cols();
    let m = p.num_rows();
    let minimize = p.objective() == Objective::Minimize;

    // Working copies.
    let mut col_lo: Vec<f64> = Vec::with_capacity(n);
    let mut col_hi: Vec<f64> = Vec::with_capacity(n);
    let mut cost: Vec<f64> = Vec::with_capacity(n);
    let mut integer: Vec<bool> = Vec::with_capacity(n);
    for c in p.iter_cols() {
        let (l, u) = p.col_bounds(c);
        col_lo.push(if is_inf(l) { f64::NEG_INFINITY } else { l });
        col_hi.push(if is_inf(u) { f64::INFINITY } else { u });
        cost.push(p.cost(c));
        integer.push(p.is_integer(c));
    }
    let mut row_lo: Vec<f64> = Vec::with_capacity(m);
    let mut row_hi: Vec<f64> = Vec::with_capacity(m);
    for r in p.iter_rows() {
        let (l, u) = p.row_bounds(r);
        row_lo.push(if is_inf(l) { f64::NEG_INFINITY } else { l });
        row_hi.push(if is_inf(u) { f64::INFINITY } else { u });
    }

    // Row-wise live entries (col, val), duplicates summed.
    let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
    {
        use std::collections::HashMap;
        let mut acc: HashMap<(u32, u32), f64> = HashMap::new();
        for &(r, c, v) in &p.entries {
            *acc.entry((r, c)).or_default() += v;
        }
        for ((r, c), v) in acc {
            if v != 0.0 {
                rows[r as usize].push((c as usize, v));
            }
        }
        for row in &mut rows {
            row.sort_unstable_by_key(|&(c, _)| c);
        }
    }
    // Column occurrence counts.
    let mut col_count = vec![0usize; n];
    for row in &rows {
        for &(c, _) in row {
            col_count[c] += 1;
        }
    }

    let mut col_alive = vec![true; n];
    let mut row_alive = vec![true; m];
    let mut fixed_value = vec![f64::NAN; n];
    // Columns removed by a deferred elimination rather than a fixing; their
    // values come from the postsolve step stack, not `fixed_value`.
    let mut eliminated = vec![false; n];
    // Empty columns whose cost pushes them toward an infinite bound. They
    // witness unboundedness only if the rest of the problem is feasible,
    // so rule 5 defers the verdict instead of returning immediately.
    let mut ray_col = vec![false; n];
    let mut steps: Vec<PostStep> = Vec::new();
    // Objective offset accumulated by substituting eliminated columns.
    let mut elim_offset = 0.0;

    // Fix column j at value v: fold into row bounds.
    // Returns false on detected infeasibility (crossed row bounds can't
    // happen from substitution alone, so always true; kept for symmetry).
    let fix_col = |j: usize,
                   v: f64,
                   rows: &mut Vec<Vec<(usize, f64)>>,
                   row_lo: &mut Vec<f64>,
                   row_hi: &mut Vec<f64>,
                   col_alive: &mut Vec<bool>,
                   col_count: &mut Vec<usize>,
                   fixed_value: &mut Vec<f64>| {
        col_alive[j] = false;
        fixed_value[j] = v;
        for (r, row) in rows.iter_mut().enumerate() {
            if let Some(pos) = row.iter().position(|&(c, _)| c == j) {
                let (_, a) = row.remove(pos);
                if row_lo[r].is_finite() {
                    row_lo[r] -= a * v;
                }
                if row_hi[r].is_finite() {
                    row_hi[r] -= a * v;
                }
                col_count[j] = col_count[j].saturating_sub(1);
            }
        }
    };

    let mut changed = true;
    let mut passes = 0;
    while changed && passes < 16 {
        changed = false;
        passes += 1;

        // Rule 1: fixed columns.
        for j in 0..n {
            if col_alive[j] && col_lo[j].is_finite() && col_lo[j] == col_hi[j] {
                fix_col(
                    j,
                    col_lo[j],
                    &mut rows,
                    &mut row_lo,
                    &mut row_hi,
                    &mut col_alive,
                    &mut col_count,
                    &mut fixed_value,
                );
                changed = true;
            }
        }

        // Rules 2+3: free and empty rows.
        for r in 0..m {
            if !row_alive[r] {
                continue;
            }
            if row_lo[r].is_infinite() && row_hi[r].is_infinite() {
                row_alive[r] = false;
                for &(c, _) in &rows[r] {
                    col_count[c] -= 1;
                }
                rows[r].clear();
                changed = true;
                continue;
            }
            if rows[r].is_empty() {
                if row_lo[r] > FEAS_TOL || row_hi[r] < -FEAS_TOL {
                    return PresolveOutcome::Infeasible;
                }
                row_alive[r] = false;
                changed = true;
            }
        }

        // Rule 4: singleton rows -> column bounds.
        for r in 0..m {
            if row_alive[r] && rows[r].len() == 1 {
                let (j, a) = rows[r][0];
                debug_assert!(a != 0.0);
                let (mut lo, mut hi) = (row_lo[r] / a, row_hi[r] / a);
                if a < 0.0 {
                    std::mem::swap(&mut lo, &mut hi);
                }
                if lo.is_nan() {
                    lo = f64::NEG_INFINITY;
                }
                if hi.is_nan() {
                    hi = f64::INFINITY;
                }
                col_lo[j] = col_lo[j].max(lo);
                col_hi[j] = col_hi[j].min(hi);
                if col_lo[j] > col_hi[j] + FEAS_TOL {
                    return PresolveOutcome::Infeasible;
                }
                // Snap numerically-equal bounds so rule 1 can fire.
                if col_lo[j] > col_hi[j] {
                    col_lo[j] = col_hi[j];
                }
                row_alive[r] = false;
                col_count[j] -= 1;
                rows[r].clear();
                changed = true;
            }
        }

        // Rule 5: empty columns.
        for j in 0..n {
            if !col_alive[j] || col_count[j] != 0 || ray_col[j] {
                continue;
            }
            // Improving direction for the objective.
            let want_low = if minimize {
                cost[j] > 0.0
            } else {
                cost[j] < 0.0
            };
            let v = if cost[j] == 0.0 {
                // Any feasible value; prefer a finite bound, else 0.
                if col_lo[j].is_finite() {
                    col_lo[j]
                } else if col_hi[j].is_finite() {
                    col_hi[j]
                } else {
                    0.0
                }
            } else if want_low {
                if col_lo[j].is_infinite() {
                    ray_col[j] = true;
                    continue;
                }
                col_lo[j]
            } else {
                if col_hi[j].is_infinite() {
                    ray_col[j] = true;
                    continue;
                }
                col_hi[j]
            };
            fix_col(
                j,
                v,
                &mut rows,
                &mut row_lo,
                &mut row_hi,
                &mut col_alive,
                &mut col_count,
                &mut fixed_value,
            );
            changed = true;
        }

        // Rule 6: free column singletons on equality rows. The free column
        // can satisfy its only row by itself whatever the other columns
        // do, so row and column both vanish; the column's objective
        // contribution is substituted into the surviving columns' costs
        // and its value is recovered in postsolve from the row equation.
        for j in 0..n {
            if !col_alive[j] || col_count[j] != 1 || integer[j] {
                continue;
            }
            if col_lo[j].is_finite() || col_hi[j].is_finite() {
                continue;
            }
            let Some(r) = (0..m).find(|&r| row_alive[r] && rows[r].iter().any(|&(c, _)| c == j))
            else {
                continue;
            };
            // lint: allow(float-eq, reason = "an equality row is exactly lo == hi; near-equal range rows must stay ranges")
            if !(row_lo[r].is_finite() && row_lo[r] == row_hi[r]) {
                continue;
            }
            let a_j = rows[r]
                .iter()
                .find(|&&(c, _)| c == j)
                .map(|&(_, a)| a)
                .unwrap_or(0.0);
            if a_j.abs() <= 1e-12 {
                continue;
            }
            let b = row_lo[r];
            let others: Vec<(usize, f64)> = rows[r]
                .iter()
                .filter(|&&(c, _)| c != j)
                .map(|&(c, a)| (c, a))
                .collect();
            // Substitute x_j = (b − Σ aₖ xₖ) / a_j into the objective.
            let cj = cost[j];
            // lint: allow(float-eq, reason = "exact-zero skip: a literally zero objective coefficient contributes nothing to the substitution")
            if cj != 0.0 {
                elim_offset += cj * b / a_j;
                for &(k, a_k) in &others {
                    cost[k] -= cj * a_k / a_j;
                }
            }
            steps.push(PostStep::FreeSingleton {
                col: j,
                coeff: a_j,
                rhs: b,
                others,
            });
            for &(c, _) in &rows[r] {
                col_count[c] -= 1;
            }
            rows[r].clear();
            row_alive[r] = false;
            col_alive[j] = false;
            eliminated[j] = true;
            changed = true;
        }
    }

    // Deferred rule-5 verdict: with every row gone, feasibility reduces to
    // bound consistency, so a surviving ray column proves unboundedness.
    // With live rows left the ray column stays in the reduced problem and
    // the solver separates Infeasible from Unbounded.
    if ray_col.iter().any(|&b| b) {
        let rows_left = (0..m).any(|r| row_alive[r]);
        let bounds_ok = (0..n).all(|j| !col_alive[j] || col_lo[j] <= col_hi[j] + FEAS_TOL);
        if !rows_left && bounds_ok {
            return PresolveOutcome::Unbounded;
        }
    }

    // Rebuild the reduced problem.
    let mut reduced = Problem::new(p.objective());
    let mut mapping: Vec<Result<usize, f64>> = Vec::with_capacity(n);
    let mut new_index = vec![usize::MAX; n];
    let mut offset = 0.0;
    for j in 0..n {
        if col_alive[j] {
            let c = reduced.add_col(col_lo[j], col_hi[j], cost[j]);
            reduced.set_integer(c, integer[j]);
            new_index[j] = c.index();
            mapping.push(Ok(c.index()));
        } else if eliminated[j] {
            // Placeholder; the postsolve step stack computes the value
            // (the objective share was folded into `elim_offset`).
            mapping.push(Err(f64::NAN));
        } else {
            offset += cost[j] * fixed_value[j];
            mapping.push(Err(fixed_value[j]));
        }
    }
    reduced.add_objective_offset(p.obj_offset + offset + elim_offset);
    for r in 0..m {
        if row_alive[r] {
            let coeffs: Vec<_> = rows[r]
                .iter()
                .map(|&(c, v)| (crate::Col::from_index(new_index[c]), v))
                .collect();
            reduced.add_row(row_lo[r], row_hi[r], &coeffs);
        }
    }

    PresolveOutcome::Reduced(Reduction {
        problem: reduced,
        mapping,
        steps,
        n_orig: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::revised::solve;
    use crate::solution::Status;

    fn solve_via_presolve(p: &Problem) -> (Status, f64, Vec<f64>) {
        match presolve(p) {
            PresolveOutcome::Infeasible => (Status::Infeasible, f64::NAN, vec![]),
            PresolveOutcome::Unbounded => (Status::Unbounded, f64::NAN, vec![]),
            PresolveOutcome::Reduced(r) => {
                let s = solve(&r.problem).unwrap();
                let x = if s.status == Status::Optimal {
                    r.postsolve(&s.x)
                } else {
                    vec![]
                };
                (s.status, s.objective, x)
            }
        }
    }

    #[test]
    fn fixed_columns_substituted() {
        let mut p = Problem::new(Objective::Minimize);
        let x = p.add_col(2.0, 2.0, 3.0); // fixed at 2
        let y = p.add_col(0.0, 10.0, 1.0);
        p.add_row(5.0, f64::INFINITY, &[(x, 1.0), (y, 1.0)]); // y >= 3
        let (st, obj, xs) = solve_via_presolve(&p);
        assert_eq!(st, Status::Optimal);
        assert!((obj - (6.0 + 3.0)).abs() < 1e-6);
        assert_eq!(xs[0], 2.0);
        assert!((xs[1] - 3.0).abs() < 1e-6);
        // And the direct solve agrees.
        let direct = solve(&p).unwrap();
        assert!((direct.objective - obj).abs() < 1e-6);
    }

    #[test]
    fn singleton_rows_become_bounds() {
        let mut p = Problem::new(Objective::Maximize);
        let x = p.add_col(0.0, f64::INFINITY, 1.0);
        p.add_row(f64::NEG_INFINITY, 7.0, &[(x, 1.0)]);
        p.add_row(f64::NEG_INFINITY, -4.0, &[(x, -2.0)]); // x >= 2
        match presolve(&p) {
            PresolveOutcome::Reduced(r) => {
                // The singleton rows tighten x to [2, 7]; x then has no
                // remaining rows, so rule 5 fixes it at its cost-optimal
                // bound and the whole problem vanishes.
                assert_eq!(r.problem.num_rows(), 0);
                assert_eq!(r.problem.num_cols(), 0);
                let s = solve(&r.problem).unwrap();
                assert!((s.objective - 7.0).abs() < 1e-6);
                let x = r.postsolve(&s.x);
                assert!((x[0] - 7.0).abs() < 1e-9);
            }
            other => panic!("expected reduction, got {other:?}"),
        }
    }

    #[test]
    fn detects_infeasible_singletons() {
        let mut p = Problem::new(Objective::Minimize);
        let x = p.add_col(0.0, 1.0, 1.0);
        p.add_row(5.0, f64::INFINITY, &[(x, 1.0)]);
        assert!(matches!(presolve(&p), PresolveOutcome::Infeasible));
    }

    #[test]
    fn detects_unbounded_empty_column() {
        let mut p = Problem::new(Objective::Maximize);
        let _x = p.add_col(0.0, f64::INFINITY, 1.0); // empty col, cost pushes up
        assert!(matches!(presolve(&p), PresolveOutcome::Unbounded));
    }

    #[test]
    fn empty_and_free_rows_dropped() {
        let mut p = Problem::new(Objective::Minimize);
        let x = p.add_col(0.0, 5.0, 1.0);
        p.add_row(f64::NEG_INFINITY, f64::INFINITY, &[(x, 1.0)]); // free row
        p.add_row(-1.0, 1.0, &[]); // empty, feasible
        match presolve(&p) {
            PresolveOutcome::Reduced(r) => {
                assert_eq!(r.problem.num_rows(), 0);
            }
            other => panic!("expected reduction, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_empty_row() {
        let mut p = Problem::new(Objective::Minimize);
        let _x = p.add_col(0.0, 5.0, 0.0);
        p.add_row(1.0, 2.0, &[]); // 0 not in [1,2]
        assert!(matches!(presolve(&p), PresolveOutcome::Infeasible));
    }

    #[test]
    fn cascading_reductions() {
        // Singleton row fixes x; substitution makes the next row singleton.
        let mut p = Problem::new(Objective::Minimize);
        let x = p.add_col(0.0, 10.0, 1.0);
        let y = p.add_col(0.0, 10.0, 1.0);
        p.add_row(4.0, 4.0, &[(x, 2.0)]); // x == 2
        p.add_row(5.0, 5.0, &[(x, 1.0), (y, 1.0)]); // then y == 3
        match presolve(&p) {
            PresolveOutcome::Reduced(r) => {
                assert_eq!(r.problem.num_cols(), 0);
                assert_eq!(r.problem.num_rows(), 0);
                let s = solve(&r.problem).unwrap();
                assert!((s.objective - 5.0).abs() < 1e-6);
                let x = r.postsolve(&s.x);
                assert!((x[0] - 2.0).abs() < 1e-9);
                assert!((x[1] - 3.0).abs() < 1e-9);
            }
            other => panic!("expected reduction, got {other:?}"),
        }
    }

    #[test]
    fn free_singleton_eliminated_and_recovered() {
        // min 2x + y, x free appearing only in x + 2y = 10; y in [0, 8]
        // with a second row keeping y constrained. Eliminating x rewrites
        // the objective to y's cost 1 - 2*2 = -3 plus offset 2*10 = 20.
        let mut p = Problem::new(Objective::Minimize);
        let x = p.add_col(f64::NEG_INFINITY, f64::INFINITY, 2.0);
        let y = p.add_col(0.0, 8.0, 1.0);
        p.add_row(10.0, 10.0, &[(x, 1.0), (y, 2.0)]);
        p.add_row(f64::NEG_INFINITY, 6.0, &[(y, 1.0)]);
        match presolve(&p) {
            PresolveOutcome::Reduced(r) => {
                assert!(
                    r.problem.num_cols() < 2,
                    "free singleton x should have been eliminated"
                );
                let s = solve(&r.problem).unwrap();
                assert_eq!(s.status, Status::Optimal);
                let xs = r.postsolve(&s.x);
                // Recovered point satisfies the original equality exactly.
                assert!(p.max_violation(&xs) <= 1e-9);
                let direct = solve(&p).unwrap();
                assert!((s.objective - direct.objective).abs() < 1e-6);
                assert!((p.eval_objective(&xs) - direct.objective).abs() < 1e-6);
            }
            other => panic!("expected reduction, got {other:?}"),
        }
    }

    #[test]
    fn free_singleton_chain_postsolves_in_order() {
        // Two nested free singletons: eliminating x1 (row 1) leaves x2 as
        // a free singleton on row 2. Postsolve must replay the stack in
        // reverse so x2's value exists before x1's equation reads it.
        let mut p = Problem::new(Objective::Minimize);
        let x1 = p.add_col(f64::NEG_INFINITY, f64::INFINITY, 0.0);
        let x2 = p.add_col(f64::NEG_INFINITY, f64::INFINITY, 0.0);
        let y = p.add_col(1.0, 4.0, 1.0);
        p.add_row(7.0, 7.0, &[(x1, 1.0), (x2, 2.0)]);
        p.add_row(3.0, 3.0, &[(x2, 1.0), (y, 1.0)]);
        match presolve(&p) {
            PresolveOutcome::Reduced(r) => {
                let s = solve(&r.problem).unwrap();
                assert_eq!(s.status, Status::Optimal);
                let xs = r.postsolve(&s.x);
                assert!(p.max_violation(&xs) <= 1e-9);
                // y = 1 (cheapest), x2 = 3 - y = 2, x1 = 7 - 2*x2 = 3.
                assert!((xs[2] - 1.0).abs() < 1e-9);
                assert!((xs[1] - 2.0).abs() < 1e-9);
                assert!((xs[0] - 3.0).abs() < 1e-9);
            }
            other => panic!("expected reduction, got {other:?}"),
        }
    }

    #[test]
    fn free_singleton_keeps_infeasibility() {
        // The free singleton's elimination must not mask the infeasible
        // remainder: z in [0,1] forced to 5.
        let mut p = Problem::new(Objective::Minimize);
        let x = p.add_col(f64::NEG_INFINITY, f64::INFINITY, 1.0);
        let y = p.add_col(0.0, 10.0, 1.0);
        let z = p.add_col(0.0, 1.0, 0.0);
        p.add_row(4.0, 4.0, &[(x, 2.0), (y, 1.0)]);
        p.add_row(5.0, 5.0, &[(z, 1.0)]);
        assert!(matches!(presolve(&p), PresolveOutcome::Infeasible));
    }

    #[test]
    fn free_singleton_keeps_unboundedness() {
        // Eliminating x folds its cost onto y (new cost 1 - 2 = -1,
        // minimize), leaving y an empty column pushed toward +inf.
        let mut p = Problem::new(Objective::Minimize);
        let x = p.add_col(f64::NEG_INFINITY, f64::INFINITY, 2.0);
        let y = p.add_col(0.0, f64::INFINITY, 1.0);
        p.add_row(3.0, 3.0, &[(x, 2.0), (y, 2.0)]);
        assert!(matches!(presolve(&p), PresolveOutcome::Unbounded));
    }

    #[test]
    fn bounded_singleton_column_not_eliminated() {
        // Same shape but x has a finite lower bound: the implied-free
        // analysis is out of scope, so the column must survive.
        let mut p = Problem::new(Objective::Minimize);
        let x = p.add_col(0.0, f64::INFINITY, 2.0);
        let y = p.add_col(0.0, 8.0, 1.0);
        p.add_row(10.0, 10.0, &[(x, 1.0), (y, 2.0)]);
        p.add_row(f64::NEG_INFINITY, 6.0, &[(y, 1.0)]);
        match presolve(&p) {
            PresolveOutcome::Reduced(r) => {
                // Rule 4 folds the singleton row into y's bound; both
                // columns and the equality row must survive.
                assert_eq!(r.problem.num_cols(), 2);
                assert_eq!(r.problem.num_rows(), 1);
            }
            other => panic!("expected reduction, got {other:?}"),
        }
    }

    #[test]
    fn free_singleton_on_range_row_not_eliminated() {
        // The rule needs an equality row; a range row stays.
        let mut p = Problem::new(Objective::Minimize);
        let x = p.add_col(f64::NEG_INFINITY, f64::INFINITY, 2.0);
        let y = p.add_col(0.0, 8.0, 1.0);
        p.add_row(4.0, 10.0, &[(x, 1.0), (y, 2.0)]);
        match presolve(&p) {
            PresolveOutcome::Reduced(r) => {
                assert_eq!(r.problem.num_cols(), 2);
                assert_eq!(r.problem.num_rows(), 1);
            }
            other => panic!("expected reduction, got {other:?}"),
        }
    }

    #[test]
    fn randomized_presolve_equivalence() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..150 {
            let n = rng.random_range(1..7usize);
            let m = rng.random_range(0..7usize);
            let mut p = Problem::new(if rng.random_range(0..2) == 0 {
                Objective::Maximize
            } else {
                Objective::Minimize
            });
            let cols: Vec<_> = (0..n)
                .map(|_| {
                    let cost = rng.random_range(-3i32..=3) as f64;
                    // One column in five is free so the free-singleton rule
                    // (rule 6) fires against random equality rows too.
                    if rng.random_range(0..5) == 0 {
                        p.add_col(f64::NEG_INFINITY, f64::INFINITY, cost)
                    } else {
                        let lo = rng.random_range(-3i32..=2) as f64;
                        let width = rng.random_range(0i32..=5) as f64;
                        p.add_col(lo, lo + width, cost)
                    }
                })
                .collect();
            for _ in 0..m {
                let mut coeffs = Vec::new();
                for &c in &cols {
                    if rng.random_range(0..100) < 50 {
                        let v = rng.random_range(-2i32..=2) as f64;
                        if v != 0.0 {
                            coeffs.push((c, v));
                        }
                    }
                }
                let b = rng.random_range(-6i32..=10) as f64;
                match rng.random_range(0..3) {
                    0 => p.add_row(f64::NEG_INFINITY, b, &coeffs),
                    1 => p.add_row(b, f64::INFINITY, &coeffs),
                    _ => p.add_row(b, b, &coeffs),
                };
            }
            let direct = solve(&p).unwrap();
            let (st, obj, xs) = solve_via_presolve(&p);
            assert_eq!(direct.status, st, "trial {trial}: status mismatch");
            if st == Status::Optimal {
                assert!(
                    (direct.objective - obj).abs() <= 1e-5 * (1.0 + obj.abs()),
                    "trial {trial}: {} vs {}",
                    direct.objective,
                    obj
                );
                assert!(
                    p.max_violation(&xs) <= 1e-6,
                    "trial {trial}: postsolved point infeasible"
                );
                assert!(
                    (p.eval_objective(&xs) - obj).abs() <= 1e-5 * (1.0 + obj.abs()),
                    "trial {trial}: postsolved objective mismatch"
                );
            }
        }
    }
}
