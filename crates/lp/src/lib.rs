//! # wavesched-lp — linear and integer programming for wavelength scheduling
//!
//! A from-scratch LP/MILP toolkit built for the ICPP 2009 reproduction of
//! *Slotted Wavelength Scheduling for Bulk Transfers in Research Networks*.
//! The paper solved its formulations with CPLEX; this crate provides the
//! equivalent functionality with no external solver dependency:
//!
//! * [`Problem`] — a row/column model builder with general bounds and range
//!   rows, supporting both [`Objective::Minimize`] and
//!   [`Objective::Maximize`].
//! * [`solve`] — the default solver: a sparse two-phase revised simplex with
//!   a product-form-of-the-inverse (eta file) basis representation and
//!   periodic sparse LU refactorization (see [`revised`]).
//! * [`dense`] — an independent dense tableau simplex used as a
//!   differential-testing oracle and for very small problems.
//! * [`milp`] — branch-and-bound mixed-integer programming on top of the LP
//!   solver; practical for small instances, used to validate the paper's
//!   LPDAR heuristic against true integer optima.
//!
//! The scheduling formulations of the paper (Stage-1 MCF, Stage-2 weighted
//! throughput, SUB-RET) are *built* in `wavesched-core` and *solved* here.
//!
//! ## Example
//!
//! ```
//! use wavesched_lp::{Problem, Objective, solve, Status};
//!
//! // maximize 3x + 2y  s.t. x + y <= 4, x + 3y <= 6, x,y >= 0
//! let mut p = Problem::new(Objective::Maximize);
//! let x = p.add_col(0.0, f64::INFINITY, 3.0);
//! let y = p.add_col(0.0, f64::INFINITY, 2.0);
//! p.add_row(f64::NEG_INFINITY, 4.0, &[(x, 1.0), (y, 1.0)]);
//! p.add_row(f64::NEG_INFINITY, 6.0, &[(x, 1.0), (y, 3.0)]);
//! let sol = solve(&p).unwrap();
//! assert_eq!(sol.status, Status::Optimal);
//! assert!((sol.objective - 12.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

pub mod dense;
pub mod milp;
pub mod model;
pub mod mps;
pub mod presolve;
pub mod revised;
pub mod solution;
pub mod sparse;
pub(crate) mod stdform;

pub use milp::{solve_milp, MilpConfig, MilpSolution, MilpStatus};
pub use model::{Col, Objective, Problem, Row};
pub use mps::{parse_mps, write_mps, MpsModel};
pub use presolve::{presolve, PresolveOutcome, Reduction};
#[doc(hidden)]
pub use revised::PivotProbe;
pub use revised::{
    pos_or_zero, solve, solve_with, solve_with_start, NewColumn, NewRow, RefactorPolicy,
    SimplexConfig, SolverSession,
};
pub use solution::{Basis, BasisStatus, Solution, SolveError, SolveStats, Status};

/// Default feasibility tolerance: a bound or row is considered satisfied if
/// violated by no more than this amount.
pub const FEAS_TOL: f64 = 1e-7;

/// Default optimality (reduced-cost) tolerance.
pub const OPT_TOL: f64 = 1e-7;

/// Pivot magnitude below which a candidate pivot element is rejected as
/// numerically unsafe.
pub const PIVOT_TOL: f64 = 1e-9;

/// A value with absolute magnitude at least this large is treated as infinite
/// when it appears as a variable or row bound.
pub const INF_BOUND: f64 = 1e30;

/// Returns true if `v` should be treated as an infinite bound.
#[inline]
pub fn is_inf(v: f64) -> bool {
    v.abs() >= INF_BOUND || v.is_infinite()
}
