//! Dense two-phase full-tableau simplex.
//!
//! An intentionally *independent* implementation used as a
//! differential-testing oracle for the sparse revised simplex and as the
//! relaxation engine for tiny problems. It uses a completely different
//! lowering than `stdform`:
//!
//! * every variable is shifted/split to be nonnegative (`x = l + x'`,
//!   `x = u - x''`, or `x = x⁺ - x⁻` for free variables);
//! * finite upper bounds become explicit constraint rows;
//! * range rows are split into two inequalities;
//! * inequalities get slack columns, right-hand sides are made nonnegative,
//!   and phase 1 minimizes the sum of artificials on a full tableau;
//! * pivoting uses Bland's rule exclusively, so termination is guaranteed.
//!
//! Quadratic per iteration and dense in memory — use only for problems with
//! at most a few hundred rows.

use crate::model::{Objective, Problem};
use crate::solution::{Solution, SolveError, SolveStats, Status};
use crate::{is_inf, FEAS_TOL, OPT_TOL};

/// How each original column was rewritten into nonnegative internals.
#[derive(Debug, Clone, Copy)]
enum Rewrite {
    /// `x = lower + x'[k]`.
    Shift { k: usize, lower: f64 },
    /// `x = upper - x''[k]`.
    Mirror { k: usize, upper: f64 },
    /// `x = x⁺[k] - x⁻[k2]`.
    Split { k: usize, k2: usize },
}

/// Solves `p` with the dense tableau simplex.
///
/// Returns the same [`Solution`] shape as [`crate::solve`]; the `duals`
/// vector is left empty (the oracle is used for primal comparison only).
pub fn solve_dense(p: &Problem) -> Result<Solution, SolveError> {
    let obj_sign = match p.objective {
        Objective::Minimize => 1.0,
        Objective::Maximize => -1.0,
    };

    // ---- Rewrite columns to nonnegative internals. ----
    let mut rewrites = Vec::with_capacity(p.num_cols());
    let mut icost: Vec<f64> = Vec::new(); // internal costs (minimize)
    let mut iupper: Vec<f64> = Vec::new(); // internal finite upper bounds (inf if none)
    let mut const_cost = p.obj_offset;
    for c in &p.cols {
        let l = if is_inf(c.lower) {
            f64::NEG_INFINITY
        } else {
            c.lower
        };
        let u = if is_inf(c.upper) {
            f64::INFINITY
        } else {
            c.upper
        };
        if l > u {
            return Err(SolveError::InvalidModel("crossed bounds".into()));
        }
        let cc = obj_sign * c.cost;
        if l.is_finite() {
            let k = icost.len();
            icost.push(cc);
            iupper.push(if u.is_finite() { u - l } else { f64::INFINITY });
            const_cost += c.cost * l * 1.0; // in original direction
            rewrites.push(Rewrite::Shift { k, lower: l });
        } else if u.is_finite() {
            let k = icost.len();
            icost.push(-cc);
            iupper.push(f64::INFINITY);
            const_cost += c.cost * u;
            rewrites.push(Rewrite::Mirror { k, upper: u });
        } else {
            let k = icost.len();
            icost.push(cc);
            iupper.push(f64::INFINITY);
            let k2 = icost.len();
            icost.push(-cc);
            iupper.push(f64::INFINITY);
            rewrites.push(Rewrite::Split { k, k2 });
        }
    }
    let nvars = icost.len();

    // Dense structural matrix in internal variables, one row per model row,
    // with the constant shift folded into adjusted bounds.
    let mut dense_rows: Vec<Vec<f64>> = vec![vec![0.0; nvars]; p.num_rows()];
    let mut shift: Vec<f64> = vec![0.0; p.num_rows()];
    for &(r, c, v) in &p.entries {
        let r = r as usize;
        match rewrites[c as usize] {
            Rewrite::Shift { k, lower } => {
                dense_rows[r][k] += v;
                shift[r] += v * lower;
            }
            Rewrite::Mirror { k, upper } => {
                dense_rows[r][k] -= v;
                shift[r] += v * upper;
            }
            Rewrite::Split { k, k2 } => {
                dense_rows[r][k] += v;
                dense_rows[r][k2] -= v;
            }
        }
    }

    // ---- Assemble inequality system: rows of (coeffs, rhs, kind). ----
    enum Kind {
        Le,
        Ge,
        Eq,
    }
    let mut sys: Vec<(Vec<f64>, f64, Kind)> = Vec::new();
    for (i, r) in p.rows.iter().enumerate() {
        let lb = if is_inf(r.lower) {
            f64::NEG_INFINITY
        } else {
            r.lower
        };
        let ub = if is_inf(r.upper) {
            f64::INFINITY
        } else {
            r.upper
        };
        if lb > ub {
            return Err(SolveError::InvalidModel("crossed row bounds".into()));
        }
        if lb.is_finite() && ub.is_finite() && (ub - lb).abs() <= f64::EPSILON * lb.abs().max(1.0) {
            sys.push((dense_rows[i].clone(), lb - shift[i], Kind::Eq));
        } else {
            if ub.is_finite() {
                sys.push((dense_rows[i].clone(), ub - shift[i], Kind::Le));
            }
            if lb.is_finite() {
                sys.push((dense_rows[i].clone(), lb - shift[i], Kind::Ge));
            }
        }
    }
    // Finite internal upper bounds as explicit rows.
    for (k, &ub) in iupper.iter().enumerate() {
        if ub.is_finite() {
            let mut row = vec![0.0; nvars];
            row[k] = 1.0;
            sys.push((row, ub, Kind::Le));
        }
    }

    let m = sys.len();
    let nslacks = sys
        .iter()
        .filter(|(_, _, k)| !matches!(k, Kind::Eq))
        .count();
    let mut ncols = nvars + nslacks;
    let mut a: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut b: Vec<f64> = Vec::with_capacity(m);
    let mut basis: Vec<usize> = Vec::with_capacity(m);

    let mut next_slack = nvars;
    for (coeffs, rhs, kind) in &sys {
        let mut row = coeffs.clone();
        row.extend(std::iter::repeat_n(0.0, nslacks));
        let mut rhs = *rhs;
        let mut slack_sign = match kind {
            Kind::Le => 1.0,
            Kind::Ge => -1.0,
            Kind::Eq => 0.0,
        };
        if rhs < 0.0 {
            for v in &mut row {
                *v = -*v;
            }
            rhs = -rhs;
            slack_sign = -slack_sign;
        }
        let mut init_basic = usize::MAX;
        if slack_sign != 0.0 {
            row[next_slack] = slack_sign;
            if slack_sign > 0.0 {
                init_basic = next_slack; // positive slack can start basic
            }
            next_slack += 1;
        }
        a.push(row);
        b.push(rhs);
        basis.push(init_basic);
    }
    // Artificials for rows that still lack a basic variable.
    let mut art_cols: Vec<usize> = Vec::new();
    for i in 0..m {
        if basis[i] == usize::MAX {
            for row in a.iter_mut() {
                row.push(0.0);
            }
            a[i][ncols] = 1.0;
            basis[i] = ncols;
            art_cols.push(ncols);
            ncols += 1;
        }
    }
    let nall = ncols;
    let first_art = nall - art_cols.len();

    let mut stats = SolveStats::default();

    // ---- Phase 1 ----
    if !art_cols.is_empty() {
        let mut c1 = vec![0.0; nall];
        for &j in &art_cols {
            c1[j] = 1.0;
        }
        let status = tableau_simplex(&mut a, &mut b, &mut basis, &c1, first_art, &mut stats);
        if status == Status::IterationLimit {
            return Ok(dense_solution(
                Status::IterationLimit,
                p,
                &rewrites,
                &[],
                const_cost,
                stats,
            ));
        }
        let infeas: f64 = basis
            .iter()
            .zip(&b)
            .filter(|(&j, _)| j >= first_art)
            .map(|(_, &v)| v)
            .sum();
        if infeas > FEAS_TOL.max(1e-9 * m as f64) {
            return Ok(dense_solution(
                Status::Infeasible,
                p,
                &rewrites,
                &[],
                const_cost,
                stats,
            ));
        }
        // Pivot basic artificials out where possible (degenerate rows).
        for i in 0..m {
            if basis[i] >= first_art {
                if let Some(j) = (0..first_art).find(|&j| a[i][j].abs() > 1e-9) {
                    pivot(&mut a, &mut b, &mut basis, i, j);
                }
                // If no pivot exists the row is redundant; the artificial
                // stays basic at 0 and is frozen below.
            }
        }
    }

    // ---- Phase 2 ----
    let mut c2 = vec![0.0; nall];
    c2[..nvars].copy_from_slice(&icost);
    let status = tableau_simplex(&mut a, &mut b, &mut basis, &c2, first_art, &mut stats);

    // Extract internal solution.
    let mut xi = vec![0.0; nall];
    for (i, &j) in basis.iter().enumerate() {
        xi[j] = b[i];
    }
    Ok(dense_solution(status, p, &rewrites, &xi, const_cost, stats))
}

/// Runs Bland-rule simplex on the tableau with cost vector `c`, never
/// letting columns `>= first_art` (artificials) re-enter.
fn tableau_simplex(
    a: &mut [Vec<f64>],
    b: &mut [f64],
    basis: &mut [usize],
    c: &[f64],
    first_art: usize,
    stats: &mut SolveStats,
) -> Status {
    let m = a.len();
    let nall = c.len();
    let max_iters = 20_000 + 200 * (m as u64 + nall as u64);
    loop {
        if stats.iterations >= max_iters {
            return Status::IterationLimit;
        }
        // Reduced costs: d_j = c_j - c_B' B^{-1} a_j. The tableau already
        // stores B^{-1}A, so d_j = c_j - sum_i c_{B(i)} a[i][j].
        let mut entering = None;
        'cols: for j in 0..nall {
            if j >= first_art || basis.contains(&j) {
                continue;
            }
            let mut d = c[j];
            for i in 0..m {
                let cb = c[basis[i]];
                if cb != 0.0 {
                    d -= cb * a[i][j];
                }
            }
            if d < -OPT_TOL {
                entering = Some(j); // Bland: first improving index
                break 'cols;
            }
        }
        let Some(q) = entering else {
            return Status::Optimal;
        };
        // Ratio test (Bland: smallest basic index among ties).
        let mut leave: Option<(usize, f64)> = None;
        for i in 0..m {
            if a[i][q] > 1e-9 {
                let t = b[i] / a[i][q];
                match leave {
                    None => leave = Some((i, t)),
                    Some((li, lt)) => {
                        if t < lt - 1e-12 || (t < lt + 1e-12 && basis[i] < basis[li]) {
                            leave = Some((i, t));
                        }
                    }
                }
            }
        }
        let Some((r, t)) = leave else {
            return Status::Unbounded;
        };
        if t <= 1e-12 {
            stats.degenerate_pivots += 1;
        }
        pivot(a, b, basis, r, q);
        stats.iterations += 1;
    }
}

/// Gauss-Jordan pivot on tableau element `(r, q)`.
fn pivot(a: &mut [Vec<f64>], b: &mut [f64], basis: &mut [usize], r: usize, q: usize) {
    let m = a.len();
    let piv = a[r][q];
    let inv = 1.0 / piv;
    for v in a[r].iter_mut() {
        *v *= inv;
    }
    b[r] *= inv;
    for i in 0..m {
        if i != r {
            let f = a[i][q];
            if f != 0.0 {
                // Row operation: row_i -= f * row_r.
                let (head, tail) = if i < r {
                    let (h, t) = a.split_at_mut(r);
                    (&mut h[i], &t[0])
                } else {
                    let (h, t) = a.split_at_mut(i);
                    (&mut t[0], &h[r])
                };
                for (x, y) in head.iter_mut().zip(tail.iter()) {
                    *x -= f * y;
                }
                b[i] -= f * b[r];
            }
        }
    }
    basis[r] = q;
}

fn dense_solution(
    status: Status,
    p: &Problem,
    rewrites: &[Rewrite],
    xi: &[f64],
    const_cost: f64,
    stats: SolveStats,
) -> Solution {
    let mut x = vec![0.0; p.num_cols()];
    if !xi.is_empty() {
        for (c, rw) in rewrites.iter().enumerate() {
            x[c] = match *rw {
                Rewrite::Shift { k, lower } => lower + xi[k],
                Rewrite::Mirror { k, upper } => upper - xi[k],
                Rewrite::Split { k, k2 } => xi[k] - xi[k2],
            };
        }
    } else {
        // No iterate available (infeasible/limit before phase 2): report the
        // resting point implied by the rewrites.
        for (c, rw) in rewrites.iter().enumerate() {
            x[c] = match *rw {
                Rewrite::Shift { lower, .. } => lower,
                Rewrite::Mirror { upper, .. } => upper,
                Rewrite::Split { .. } => 0.0,
            };
        }
    }
    let _ = const_cost;
    let objective = if status == Status::Optimal {
        p.eval_objective(&x)
    } else {
        f64::NAN
    };
    Solution {
        status,
        objective,
        x,
        duals: Vec::new(),
        basis: None,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Objective, Problem};

    fn near(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn simple_max() {
        let mut p = Problem::new(Objective::Maximize);
        let x = p.add_col(0.0, f64::INFINITY, 3.0);
        let y = p.add_col(0.0, f64::INFINITY, 2.0);
        p.add_row(f64::NEG_INFINITY, 4.0, &[(x, 1.0), (y, 1.0)]);
        p.add_row(f64::NEG_INFINITY, 6.0, &[(x, 1.0), (y, 3.0)]);
        let s = solve_dense(&p).unwrap();
        assert_eq!(s.status, Status::Optimal);
        near(s.objective, 12.0);
    }

    #[test]
    fn equalities() {
        let mut p = Problem::new(Objective::Minimize);
        let x = p.add_col(0.0, f64::INFINITY, 1.0);
        let y = p.add_col(0.0, f64::INFINITY, 1.0);
        p.add_row(3.0, 3.0, &[(x, 1.0), (y, 1.0)]);
        p.add_row(1.0, 1.0, &[(x, 1.0), (y, -1.0)]);
        let s = solve_dense(&p).unwrap();
        assert_eq!(s.status, Status::Optimal);
        near(s.objective, 3.0);
        near(s.x[0], 2.0);
        near(s.x[1], 1.0);
    }

    #[test]
    fn infeasible() {
        let mut p = Problem::new(Objective::Minimize);
        let x = p.add_col(0.0, 1.0, 1.0);
        p.add_row(5.0, f64::INFINITY, &[(x, 1.0)]);
        let s = solve_dense(&p).unwrap();
        assert_eq!(s.status, Status::Infeasible);
    }

    #[test]
    fn unbounded() {
        let mut p = Problem::new(Objective::Maximize);
        let _x = p.add_col(0.0, f64::INFINITY, 1.0);
        let s = solve_dense(&p).unwrap();
        assert_eq!(s.status, Status::Unbounded);
    }

    #[test]
    fn mirrored_and_free_vars() {
        // min x + y with x <= 3 (no lower), y free, x + y >= 1, y >= -2 via row.
        let mut p = Problem::new(Objective::Minimize);
        let x = p.add_col(f64::NEG_INFINITY, 3.0, 1.0);
        let y = p.add_col(f64::NEG_INFINITY, f64::INFINITY, 1.0);
        p.add_row(1.0, f64::INFINITY, &[(x, 1.0), (y, 1.0)]);
        p.add_row(-2.0, f64::INFINITY, &[(y, 1.0)]);
        let s = solve_dense(&p).unwrap();
        assert_eq!(s.status, Status::Optimal);
        near(s.objective, 1.0); // x + y = 1 is binding
    }

    #[test]
    fn range_row_both_sides() {
        let mut p = Problem::new(Objective::Maximize);
        let x = p.add_col(0.0, 10.0, 1.0);
        p.add_row(2.0, 5.0, &[(x, 1.0)]);
        let s = solve_dense(&p).unwrap();
        near(s.objective, 5.0);
    }

    #[test]
    fn negative_rhs_rows() {
        // min -x with  -x >= -3  (x <= 3)
        let mut p = Problem::new(Objective::Minimize);
        let x = p.add_col(0.0, f64::INFINITY, -1.0);
        p.add_row(-3.0, f64::INFINITY, &[(x, -1.0)]);
        let s = solve_dense(&p).unwrap();
        assert_eq!(s.status, Status::Optimal);
        near(s.objective, -3.0);
        near(s.x[0], 3.0);
    }
}
