//! Problem model: a sparse LP/MILP builder with general column bounds and
//! range rows.
//!
//! A [`Problem`] is a set of columns (decision variables) and rows (linear
//! constraints). Every row is a *range* constraint `lb <= a'x <= ub`; use
//! equal bounds for an equality and an infinite bound for a one-sided
//! inequality. Coefficients are stored as triplets and assembled into
//! column-compressed form by the solvers.

use crate::is_inf;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Minimize the objective function.
    Minimize,
    /// Maximize the objective function.
    Maximize,
}

/// Handle to a column (decision variable) of a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Col(pub(crate) u32);

/// Handle to a row (constraint) of a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Row(pub(crate) u32);

impl Col {
    /// Index of this column in the problem's column ordering.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Handle for the column at `index` (columns are numbered in creation
    /// order). The caller must ensure the index belongs to the problem it
    /// is used with.
    #[inline]
    pub fn from_index(index: usize) -> Col {
        Col(index as u32)
    }
}

impl Row {
    /// Index of this row in the problem's row ordering.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Handle for the row at `index` (rows are numbered in creation order).
    #[inline]
    pub fn from_index(index: usize) -> Row {
        Row(index as u32)
    }
}

/// Per-column data.
#[derive(Debug, Clone)]
pub(crate) struct ColData {
    pub lower: f64,
    pub upper: f64,
    pub cost: f64,
    pub integer: bool,
}

/// Per-row data.
#[derive(Debug, Clone)]
pub(crate) struct RowData {
    pub lower: f64,
    pub upper: f64,
}

/// A linear (or mixed-integer) optimization problem under construction.
///
/// ```
/// use wavesched_lp::{Problem, Objective};
/// let mut p = Problem::new(Objective::Minimize);
/// let x = p.add_col(0.0, 10.0, 1.0);
/// let y = p.add_col(0.0, 10.0, 2.0);
/// p.add_row(3.0, 3.0, &[(x, 1.0), (y, 1.0)]); // x + y == 3
/// assert_eq!(p.num_cols(), 2);
/// assert_eq!(p.num_rows(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Problem {
    pub(crate) objective: Objective,
    pub(crate) cols: Vec<ColData>,
    pub(crate) rows: Vec<RowData>,
    /// Coefficient triplets `(row, col, value)` in insertion order.
    pub(crate) entries: Vec<(u32, u32, f64)>,
    /// Constant added to the objective value.
    pub(crate) obj_offset: f64,
}

impl Problem {
    /// Creates an empty problem with the given optimization direction.
    pub fn new(objective: Objective) -> Self {
        Problem {
            objective,
            cols: Vec::new(),
            rows: Vec::new(),
            entries: Vec::new(),
            obj_offset: 0.0,
        }
    }

    /// The optimization direction of this problem.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// Adds a continuous variable with bounds `[lower, upper]` and the given
    /// objective coefficient. Returns its handle.
    ///
    /// Use `f64::NEG_INFINITY` / `f64::INFINITY` (or any magnitude at least
    /// [`crate::INF_BOUND`]) for unbounded sides.
    ///
    /// # Panics
    /// Panics if `lower > upper` (on finite bounds) or a bound is NaN.
    pub fn add_col(&mut self, lower: f64, upper: f64, cost: f64) -> Col {
        assert!(!lower.is_nan() && !upper.is_nan(), "NaN bound");
        assert!(!cost.is_nan(), "NaN cost");
        if !is_inf(lower) && !is_inf(upper) {
            assert!(lower <= upper, "column bounds crossed: [{lower}, {upper}]");
        }
        let id = self.cols.len() as u32;
        self.cols.push(ColData {
            lower,
            upper,
            cost,
            integer: false,
        });
        Col(id)
    }

    /// Adds an integer variable with bounds `[lower, upper]` and the given
    /// objective coefficient. The integrality is honored by
    /// [`crate::solve_milp`]; the pure-LP solvers relax it.
    pub fn add_int_col(&mut self, lower: f64, upper: f64, cost: f64) -> Col {
        let c = self.add_col(lower, upper, cost);
        self.cols[c.index()].integer = true;
        c
    }

    /// Adds a range constraint `lower <= sum(coef * col) <= upper` and
    /// returns its handle. Duplicate column references within `coeffs` are
    /// summed.
    ///
    /// # Panics
    /// Panics on crossed finite bounds, NaN values, or out-of-range columns.
    pub fn add_row(&mut self, lower: f64, upper: f64, coeffs: &[(Col, f64)]) -> Row {
        assert!(!lower.is_nan() && !upper.is_nan(), "NaN row bound");
        if !is_inf(lower) && !is_inf(upper) {
            assert!(lower <= upper, "row bounds crossed: [{lower}, {upper}]");
        }
        let id = self.rows.len() as u32;
        self.rows.push(RowData { lower, upper });
        for &(col, val) in coeffs {
            self.set_coeff(Row(id), col, val);
        }
        Row(id)
    }

    /// Appends a coefficient triplet `(row, col, value)`. Zero values are
    /// skipped; duplicates for the same (row, col) are summed at
    /// standardization time.
    pub fn set_coeff(&mut self, row: Row, col: Col, value: f64) {
        assert!(!value.is_nan(), "NaN coefficient");
        assert!((row.index()) < self.rows.len(), "row out of range");
        assert!((col.index()) < self.cols.len(), "col out of range");
        // lint: allow(float-eq, reason = "exact-zero skip is a sparsity guard: dropping true zeros never changes the arithmetic")
        if value != 0.0 {
            self.entries.push((row.0, col.0, value));
        }
    }

    /// Sets the objective coefficient of `col`.
    pub fn set_cost(&mut self, col: Col, cost: f64) {
        assert!(!cost.is_nan(), "NaN cost");
        self.cols[col.index()].cost = cost;
    }

    /// Returns the objective coefficient of `col`.
    pub fn cost(&self, col: Col) -> f64 {
        self.cols[col.index()].cost
    }

    /// Overrides the bounds of `col`.
    pub fn set_col_bounds(&mut self, col: Col, lower: f64, upper: f64) {
        assert!(!lower.is_nan() && !upper.is_nan(), "NaN bound");
        let c = &mut self.cols[col.index()];
        c.lower = lower;
        c.upper = upper;
    }

    /// Returns the `(lower, upper)` bounds of `col`.
    pub fn col_bounds(&self, col: Col) -> (f64, f64) {
        let c = &self.cols[col.index()];
        (c.lower, c.upper)
    }

    /// Overrides the bounds of `row`.
    pub fn set_row_bounds(&mut self, row: Row, lower: f64, upper: f64) {
        assert!(!lower.is_nan() && !upper.is_nan(), "NaN bound");
        let r = &mut self.rows[row.index()];
        r.lower = lower;
        r.upper = upper;
    }

    /// Returns the `(lower, upper)` bounds of `row`.
    pub fn row_bounds(&self, row: Row) -> (f64, f64) {
        let r = &self.rows[row.index()];
        (r.lower, r.upper)
    }

    /// Marks `col` as integer (for the MILP solver) or continuous.
    pub fn set_integer(&mut self, col: Col, integer: bool) {
        self.cols[col.index()].integer = integer;
    }

    /// True if `col` is marked integer.
    pub fn is_integer(&self, col: Col) -> bool {
        self.cols[col.index()].integer
    }

    /// Adds a constant to the objective value reported in solutions.
    pub fn add_objective_offset(&mut self, offset: f64) {
        self.obj_offset += offset;
    }

    /// Number of columns (variables).
    pub fn num_cols(&self) -> usize {
        self.cols.len()
    }

    /// Number of rows (constraints).
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of coefficient triplets currently stored (before dedup).
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Iterator over column handles.
    pub fn iter_cols(&self) -> impl Iterator<Item = Col> {
        (0..self.cols.len() as u32).map(Col)
    }

    /// Iterator over row handles.
    pub fn iter_rows(&self) -> impl Iterator<Item = Row> {
        (0..self.rows.len() as u32).map(Row)
    }

    /// Evaluates the objective function at `x` (dense, one value per column),
    /// including the offset, in the problem's own direction.
    pub fn eval_objective(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.cols.len(), "x length mismatch");
        let mut v = self.obj_offset;
        for (c, xc) in self.cols.iter().zip(x) {
            v += c.cost * xc;
        }
        v
    }

    /// Computes all row activities `a_i'x` at `x`.
    pub fn row_activities(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols.len(), "x length mismatch");
        let mut act = vec![0.0; self.rows.len()];
        for &(r, c, v) in &self.entries {
            act[r as usize] += v * x[c as usize];
        }
        act
    }

    /// Returns the largest violation of any bound or row constraint at `x`
    /// (0.0 when `x` is feasible). Integrality is not checked.
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let mut worst: f64 = 0.0;
        for (c, xc) in self.cols.iter().zip(x) {
            if !is_inf(c.lower) {
                worst = worst.max(c.lower - xc);
            }
            if !is_inf(c.upper) {
                worst = worst.max(xc - c.upper);
            }
        }
        for (r, act) in self.rows.iter().zip(self.row_activities(x)) {
            if !is_inf(r.lower) {
                worst = worst.max(r.lower - act);
            }
            if !is_inf(r.upper) {
                worst = worst.max(act - r.upper);
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut p = Problem::new(Objective::Maximize);
        let x = p.add_col(0.0, 5.0, 1.0);
        let y = p.add_int_col(0.0, f64::INFINITY, 2.0);
        let r = p.add_row(1.0, 4.0, &[(x, 1.0), (y, 2.0)]);
        assert_eq!(p.num_cols(), 2);
        assert_eq!(p.num_rows(), 1);
        assert_eq!(p.col_bounds(x), (0.0, 5.0));
        assert_eq!(p.row_bounds(r), (1.0, 4.0));
        assert!(p.is_integer(y));
        assert!(!p.is_integer(x));
        assert_eq!(p.cost(y), 2.0);
    }

    #[test]
    fn objective_and_violation() {
        let mut p = Problem::new(Objective::Minimize);
        let x = p.add_col(0.0, 1.0, 3.0);
        let y = p.add_col(0.0, 1.0, -1.0);
        p.add_row(0.5, 1.5, &[(x, 1.0), (y, 1.0)]);
        p.add_objective_offset(10.0);
        let pt = [1.0, 0.25];
        assert!((p.eval_objective(&pt) - (10.0 + 3.0 - 0.25)).abs() < 1e-12);
        assert_eq!(p.max_violation(&pt), 0.0);
        let bad = [2.0, 0.0];
        assert!((p.max_violation(&bad) - 1.0).abs() < 1e-12); // x=2 > ub 1 and row 2 > 1.5 by 0.5
    }

    #[test]
    fn duplicate_coeffs_sum_in_activity() {
        let mut p = Problem::new(Objective::Minimize);
        let x = p.add_col(0.0, 10.0, 0.0);
        let r = p.add_row(0.0, 100.0, &[(x, 1.0), (x, 2.0)]);
        let act = p.row_activities(&[3.0]);
        assert!((act[r.index()] - 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bounds crossed")]
    fn crossed_bounds_panic() {
        let mut p = Problem::new(Objective::Minimize);
        p.add_col(2.0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "col out of range")]
    fn foreign_col_panics() {
        let mut p = Problem::new(Objective::Minimize);
        let mut q = Problem::new(Objective::Minimize);
        let x = q.add_col(0.0, 1.0, 0.0);
        let _ = x;
        let r = p.add_row(0.0, 1.0, &[]);
        // x belongs to q, p has no columns
        p.set_coeff(r, Col(0), 1.0);
    }

    #[test]
    fn infinite_bounds_allowed() {
        let mut p = Problem::new(Objective::Minimize);
        let x = p.add_col(f64::NEG_INFINITY, f64::INFINITY, 1.0);
        assert_eq!(p.col_bounds(x).0, f64::NEG_INFINITY);
    }
}
