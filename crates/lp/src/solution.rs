//! Solver outcomes: status codes, solutions, statistics, and errors.

use std::fmt;

/// Termination status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The constraints admit no feasible point (within tolerance).
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The iteration limit was reached before convergence.
    IterationLimit,
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Status::Optimal => "optimal",
            Status::Infeasible => "infeasible",
            Status::Unbounded => "unbounded",
            Status::IterationLimit => "iteration limit",
        };
        f.write_str(s)
    }
}

/// Counters describing the work a solve performed.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveStats {
    /// Total simplex iterations (phase 1 + phase 2).
    pub iterations: u64,
    /// Iterations spent in phase 1 (attaining feasibility).
    pub phase1_iterations: u64,
    /// Number of basis refactorizations performed.
    pub refactorizations: u64,
    /// Number of degenerate pivots (zero step length).
    pub degenerate_pivots: u64,
    /// Number of bound flips (nonbasic variable moved between its bounds
    /// without a basis change).
    pub bound_flips: u64,
}

/// The result of an LP solve.
///
/// `x` and `duals` are meaningful only when `status` is
/// [`Status::Optimal`]; for [`Status::Infeasible`] they hold the final
/// phase-1 iterate (useful for diagnosing which constraints conflict).
#[derive(Debug, Clone)]
pub struct Solution {
    /// Termination status.
    pub status: Status,
    /// Objective value in the problem's own direction (includes any offset).
    pub objective: f64,
    /// Primal values, one per problem column.
    pub x: Vec<f64>,
    /// Dual values (simplex multipliers), one per problem row, in the
    /// *minimization* convention used internally: for a maximization problem
    /// the sign is flipped back so that duals price the original objective.
    pub duals: Vec<f64>,
    /// Work counters.
    pub stats: SolveStats,
}

impl Solution {
    /// True if the solve proved optimality.
    pub fn is_optimal(&self) -> bool {
        self.status == Status::Optimal
    }
}

/// Errors that prevent a solve from producing a meaningful [`Solution`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The model is structurally invalid (e.g. crossed bounds discovered at
    /// standardization time).
    InvalidModel(String),
    /// Numerical failure that repeated refactorization could not repair.
    Numerical(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::InvalidModel(m) => write!(f, "invalid model: {m}"),
            SolveError::Numerical(m) => write!(f, "numerical failure: {m}"),
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_display() {
        assert_eq!(Status::Optimal.to_string(), "optimal");
        assert_eq!(Status::Infeasible.to_string(), "infeasible");
        assert_eq!(Status::Unbounded.to_string(), "unbounded");
        assert_eq!(Status::IterationLimit.to_string(), "iteration limit");
    }

    #[test]
    fn error_display() {
        let e = SolveError::InvalidModel("x".into());
        assert!(e.to_string().contains("invalid model"));
        let e = SolveError::Numerical("y".into());
        assert!(e.to_string().contains("numerical"));
    }
}
