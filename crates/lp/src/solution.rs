//! Solver outcomes: status codes, solutions, statistics, and errors.

use std::fmt;

/// Termination status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The constraints admit no feasible point (within tolerance).
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The iteration limit was reached before convergence.
    IterationLimit,
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Status::Optimal => "optimal",
            Status::Infeasible => "infeasible",
            Status::Unbounded => "unbounded",
            Status::IterationLimit => "iteration limit",
        };
        f.write_str(s)
    }
}

/// Where a column or row (its activity variable) sits in a simplex basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BasisStatus {
    /// In the basis.
    Basic,
    /// Nonbasic at its lower bound (also used for fixed variables).
    AtLower,
    /// Nonbasic at its upper bound.
    AtUpper,
    /// Nonbasic free variable resting at zero.
    Free,
}

/// A snapshot of an optimal (or final) simplex basis, expressed in terms of
/// the original problem's columns and rows.
///
/// Obtained from [`Solution::basis`] and consumed by
/// [`solve_with_start`](crate::solve_with_start) or a
/// [`SolverSession`](crate::SolverSession) to warm-start a related solve.
/// A basis only makes sense for a problem with the same number of columns
/// and rows it was extracted from; the solver falls back to a cold start
/// when the shapes disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    /// Status per problem column, in column order.
    pub cols: Vec<BasisStatus>,
    /// Status per problem row (the row's activity variable), in row order.
    pub rows: Vec<BasisStatus>,
}

/// Counters describing the work a solve performed.
///
/// Also used in aggregated form (e.g. by
/// [`SolverSession::stats`](crate::SolverSession::stats) or the scheduling
/// layers above), where the counters sum over `solves` individual solves.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveStats {
    /// Total simplex iterations (phase 1 + phase 2).
    pub iterations: u64,
    /// Iterations spent in phase 1 (attaining feasibility).
    pub phase1_iterations: u64,
    /// Number of basis refactorizations performed (sum of the per-reason
    /// counters below).
    pub refactorizations: u64,
    /// Refactorizations forced by the eta file reaching the fixed
    /// `refactor_interval` cap.
    pub refactor_interval: u64,
    /// Refactorizations triggered by the cost model (eta-apply work
    /// outgrew the amortized factor cost) before the interval cap hit.
    pub refactor_cost_model: u64,
    /// Refactorizations that are part of the algorithm itself: solve-entry
    /// factors on the cold/warm/dual install paths, claimed-optimal
    /// verification, and zero-pivot retries. A reused factorization avoids
    /// the entry share of these.
    pub refactor_forced_fallback: u64,
    /// Basis repairs performed because a factorization attempt hit a
    /// numerically singular basis (counts repairs, not whole
    /// refactorizations; the repaired factor lands in one of the reason
    /// counters above).
    pub refactor_forced_singular: u64,
    /// Solve entries that reused the previous solve's factorization (and
    /// live basis state) instead of refactorizing.
    pub lu_reuse_hits: u64,
    /// Reuse attempts rejected — by the residual spot-check or by a failed
    /// warm continuation — and restarted through the install ladder.
    pub refactor_reuse_rejected: u64,
    /// Product-form factorization updates applied on structural edits
    /// (one per bordering eta appended by `add_rows`).
    pub lu_updates: u64,
    /// Number of degenerate pivots (zero step length).
    pub degenerate_pivots: u64,
    /// Number of Devex reference-framework resets forced by weight blowup.
    pub devex_resets: u64,
    /// Number of bound flips (nonbasic variable moved between its bounds
    /// without a basis change).
    pub bound_flips: u64,
    /// Number of LP solves aggregated into these counters (1 for the stats
    /// of a single [`Solution`]).
    pub solves: u64,
    /// Solves that started from a supplied basis and kept it.
    pub warm_starts_accepted: u64,
    /// Solves that were offered a basis but fell back to a cold start
    /// (shape mismatch or numerical failure during installation).
    pub warm_start_fallbacks: u64,
    /// FTRAN kernel runs (one per simplex iteration that reached the ratio
    /// test).
    pub ftran_ops: u64,
    /// Summed nonzero count of FTRAN results; the full dimension is charged
    /// when a run fell back to dense. `ftran_nnz / ftran_ops` is the mean
    /// pivot-column density.
    pub ftran_nnz: u64,
    /// FTRAN runs that abandoned sparse pattern tracking because the
    /// symbolic reach crossed the density threshold.
    pub ftran_dense_fallbacks: u64,
    /// Pivotal-row BTRAN kernel runs (one per basis-changing pivot).
    pub btran_ops: u64,
    /// Summed nonzero count of pivotal-row BTRAN results (the density of
    /// ρ = B⁻ᵀ e_r).
    pub btran_nnz: u64,
    /// Pivotal-row BTRAN runs that abandoned sparse pattern tracking.
    pub btran_dense_fallbacks: u64,
    /// Summed count of nonbasic columns touched by pivotal-row pricing
    /// updates (the support of α_r = ρᵀA net of basic/fixed columns).
    pub pivot_row_nnz: u64,
    /// Dual simplex pivots (bound/RHS re-solves from a still-dual-feasible
    /// basis). Also included in `iterations`.
    pub dual_iterations: u64,
    /// Nonbasic boxed variables flipped between their bounds by the dual
    /// ratio test (no basis change). Primal flips are in `bound_flips`.
    pub dual_bound_flips: u64,
    /// Nonbasic columns whose reduced cost a primal pricing scan examined
    /// (full scans charge every nonbasic column; candidate-list scans only
    /// the sublist).
    pub pricing_candidates_scanned: u64,
    /// Full refreshes of the partial-pricing candidate list (each one is a
    /// complete eligibility scan).
    pub partial_refreshes: u64,
    /// Runtime-sanitizer sweeps performed (`WS_SANITIZE`; each sweep
    /// re-verifies the basic solution against the standardized system,
    /// Devex weight positivity, and eta-file/basis agreement).
    pub sanitizer_checks: u64,
    /// Individual sanitizer check failures observed across those sweeps
    /// (0 on a numerically healthy solve).
    pub sanitizer_violations: u64,
}

impl SolveStats {
    /// Iterations spent in phase 2 (optimizing after feasibility).
    pub fn phase2_iterations(&self) -> u64 {
        self.iterations - self.phase1_iterations
    }

    /// Accumulates `other` into `self`, field by field.
    pub fn merge(&mut self, other: &SolveStats) {
        self.iterations += other.iterations;
        self.phase1_iterations += other.phase1_iterations;
        self.refactorizations += other.refactorizations;
        self.refactor_interval += other.refactor_interval;
        self.refactor_cost_model += other.refactor_cost_model;
        self.refactor_forced_fallback += other.refactor_forced_fallback;
        self.refactor_forced_singular += other.refactor_forced_singular;
        self.lu_reuse_hits += other.lu_reuse_hits;
        self.refactor_reuse_rejected += other.refactor_reuse_rejected;
        self.lu_updates += other.lu_updates;
        self.degenerate_pivots += other.degenerate_pivots;
        self.devex_resets += other.devex_resets;
        self.bound_flips += other.bound_flips;
        self.solves += other.solves;
        self.warm_starts_accepted += other.warm_starts_accepted;
        self.warm_start_fallbacks += other.warm_start_fallbacks;
        self.ftran_ops += other.ftran_ops;
        self.ftran_nnz += other.ftran_nnz;
        self.ftran_dense_fallbacks += other.ftran_dense_fallbacks;
        self.btran_ops += other.btran_ops;
        self.btran_nnz += other.btran_nnz;
        self.btran_dense_fallbacks += other.btran_dense_fallbacks;
        self.pivot_row_nnz += other.pivot_row_nnz;
        self.dual_iterations += other.dual_iterations;
        self.dual_bound_flips += other.dual_bound_flips;
        self.pricing_candidates_scanned += other.pricing_candidates_scanned;
        self.partial_refreshes += other.partial_refreshes;
        self.sanitizer_checks += other.sanitizer_checks;
        self.sanitizer_violations += other.sanitizer_violations;
    }
}

/// The result of an LP solve.
///
/// `x` and `duals` are meaningful only when `status` is
/// [`Status::Optimal`]; for [`Status::Infeasible`] they hold the final
/// phase-1 iterate (useful for diagnosing which constraints conflict).
#[derive(Debug, Clone)]
pub struct Solution {
    /// Termination status.
    pub status: Status,
    /// Objective value in the problem's own direction (includes any offset).
    pub objective: f64,
    /// Primal values, one per problem column.
    pub x: Vec<f64>,
    /// Dual values (simplex multipliers), one per problem row, in the
    /// *minimization* convention used internally: for a maximization problem
    /// the sign is flipped back so that duals price the original objective.
    pub duals: Vec<f64>,
    /// The final simplex basis, suitable for warm-starting a related solve.
    /// `None` for solvers that do not maintain an explicit basis (e.g. the
    /// dense oracle).
    pub basis: Option<Basis>,
    /// Work counters.
    pub stats: SolveStats,
}

impl Solution {
    /// True if the solve proved optimality.
    pub fn is_optimal(&self) -> bool {
        self.status == Status::Optimal
    }
}

/// Errors that prevent a solve from producing a meaningful [`Solution`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The model is structurally invalid (e.g. crossed bounds discovered at
    /// standardization time).
    InvalidModel(String),
    /// Numerical failure that repeated refactorization could not repair.
    Numerical(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::InvalidModel(m) => write!(f, "invalid model: {m}"),
            SolveError::Numerical(m) => write!(f, "numerical failure: {m}"),
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_display() {
        assert_eq!(Status::Optimal.to_string(), "optimal");
        assert_eq!(Status::Infeasible.to_string(), "infeasible");
        assert_eq!(Status::Unbounded.to_string(), "unbounded");
        assert_eq!(Status::IterationLimit.to_string(), "iteration limit");
    }

    #[test]
    fn stats_merge_sums_fields() {
        let mut a = SolveStats {
            iterations: 10,
            phase1_iterations: 4,
            refactorizations: 2,
            refactor_interval: 1,
            refactor_cost_model: 0,
            refactor_forced_fallback: 1,
            refactor_forced_singular: 0,
            lu_reuse_hits: 1,
            refactor_reuse_rejected: 0,
            lu_updates: 2,
            degenerate_pivots: 1,
            devex_resets: 1,
            bound_flips: 3,
            solves: 1,
            warm_starts_accepted: 1,
            warm_start_fallbacks: 0,
            ftran_ops: 10,
            ftran_nnz: 55,
            ftran_dense_fallbacks: 1,
            btran_ops: 7,
            btran_nnz: 21,
            btran_dense_fallbacks: 2,
            pivot_row_nnz: 70,
            dual_iterations: 4,
            dual_bound_flips: 2,
            pricing_candidates_scanned: 120,
            partial_refreshes: 3,
            sanitizer_checks: 2,
            sanitizer_violations: 0,
        };
        let b = SolveStats {
            iterations: 5,
            phase1_iterations: 0,
            refactorizations: 1,
            refactor_interval: 0,
            refactor_cost_model: 1,
            refactor_forced_fallback: 0,
            refactor_forced_singular: 1,
            lu_reuse_hits: 0,
            refactor_reuse_rejected: 1,
            lu_updates: 1,
            degenerate_pivots: 0,
            devex_resets: 2,
            bound_flips: 0,
            solves: 1,
            warm_starts_accepted: 0,
            warm_start_fallbacks: 1,
            ftran_ops: 5,
            ftran_nnz: 12,
            ftran_dense_fallbacks: 0,
            btran_ops: 5,
            btran_nnz: 9,
            btran_dense_fallbacks: 0,
            pivot_row_nnz: 30,
            dual_iterations: 1,
            dual_bound_flips: 0,
            pricing_candidates_scanned: 40,
            partial_refreshes: 1,
            sanitizer_checks: 1,
            sanitizer_violations: 1,
        };
        a.merge(&b);
        assert_eq!(a.iterations, 15);
        assert_eq!(a.refactorizations, 3);
        assert_eq!(a.refactor_interval, 1);
        assert_eq!(a.refactor_cost_model, 1);
        assert_eq!(a.refactor_forced_fallback, 1);
        assert_eq!(a.refactor_forced_singular, 1);
        assert_eq!(a.lu_reuse_hits, 1);
        assert_eq!(a.refactor_reuse_rejected, 1);
        assert_eq!(a.lu_updates, 3);
        assert_eq!(a.devex_resets, 3);
        assert_eq!(a.phase1_iterations, 4);
        assert_eq!(a.phase2_iterations(), 11);
        assert_eq!(a.solves, 2);
        assert_eq!(a.warm_starts_accepted, 1);
        assert_eq!(a.warm_start_fallbacks, 1);
        assert_eq!(a.ftran_ops, 15);
        assert_eq!(a.ftran_nnz, 67);
        assert_eq!(a.ftran_dense_fallbacks, 1);
        assert_eq!(a.btran_ops, 12);
        assert_eq!(a.btran_nnz, 30);
        assert_eq!(a.btran_dense_fallbacks, 2);
        assert_eq!(a.pivot_row_nnz, 100);
        assert_eq!(a.dual_iterations, 5);
        assert_eq!(a.dual_bound_flips, 2);
        assert_eq!(a.pricing_candidates_scanned, 160);
        assert_eq!(a.partial_refreshes, 4);
        assert_eq!(a.sanitizer_checks, 3);
        assert_eq!(a.sanitizer_violations, 1);
    }

    #[test]
    fn error_display() {
        let e = SolveError::InvalidModel("x".into());
        assert!(e.to_string().contains("invalid model"));
        let e = SolveError::Numerical("y".into());
        assert!(e.to_string().contains("numerical"));
    }
}
