//! Lowering of a [`Problem`](crate::Problem) into the computational form used
//! by the revised simplex.
//!
//! The form is `A_full z = 0` with `z = (x, s, a)`:
//!
//! * `x` — the `n` structural columns with their original bounds; costs are
//!   negated for maximization so the solver always minimizes.
//! * `s` — one *activity* column per row, a single `-1` entry, bounded by the
//!   row bounds (`A x - s = 0` makes `s` carry the row activity).
//! * `a` — one *artificial* column per row, a single `±1` entry, used to
//!   complete the initial diagonal basis where the activity variable's
//!   natural value falls outside the row bounds. Phase 1 minimizes the sum
//!   of artificials.
//!
//! All bounds are normalized so infinite magnitudes become exactly
//! `f64::INFINITY` / `f64::NEG_INFINITY`.

use crate::model::{Objective, Problem};
use crate::sparse::CscMatrix;
use crate::{is_inf, SolveError};

/// Classification of a standardized column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ColKind {
    /// Original problem variable.
    Structural,
    /// Row activity variable (slack with range bounds).
    Activity,
    /// Phase-1 artificial.
    Artificial,
}

/// The standardized problem: minimize `cost' z` s.t. `A z = 0`,
/// `lower <= z <= upper`.
#[derive(Debug, Clone)]
pub(crate) struct StdForm {
    /// `m x (n + 2m)` constraint matrix.
    pub a: CscMatrix,
    /// Lower bounds per standardized column.
    pub lower: Vec<f64>,
    /// Upper bounds per standardized column.
    pub upper: Vec<f64>,
    /// Phase-2 costs per standardized column (minimization sense).
    pub cost: Vec<f64>,
    /// Kind of each standardized column.
    pub kind: Vec<ColKind>,
    /// Number of structural columns (`n`).
    pub nstruct: usize,
    /// Number of rows (`m`).
    pub nrows: usize,
    /// `-1.0` when the original problem maximizes, else `1.0`.
    pub obj_sign: f64,
    /// Constant added to the (original-direction) objective.
    pub obj_offset: f64,
}

impl StdForm {
    /// Index of the activity column of row `i`.
    #[inline]
    pub fn activity_col(&self, i: usize) -> usize {
        self.nstruct + i
    }

    /// Index of the artificial column of row `i`.
    #[inline]
    pub fn artificial_col(&self, i: usize) -> usize {
        self.nstruct + self.nrows + i
    }

    /// Total number of standardized columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.nstruct + 2 * self.nrows
    }

    /// The initial nonbasic resting value for column `j`: the finite bound
    /// nearest zero, or 0 for free columns.
    pub fn resting_value(&self, j: usize) -> f64 {
        let (l, u) = (self.lower[j], self.upper[j]);
        if l.is_finite() && u.is_finite() {
            // Prefer the bound of smaller magnitude to keep the start point
            // well-scaled.
            if l.abs() <= u.abs() {
                l
            } else {
                u
            }
        } else if l.is_finite() {
            l
        } else if u.is_finite() {
            u
        } else {
            0.0
        }
    }
}

fn norm_lower(v: f64) -> f64 {
    if is_inf(v) && v < 0.0 {
        f64::NEG_INFINITY
    } else {
        v
    }
}

fn norm_upper(v: f64) -> f64 {
    if is_inf(v) && v > 0.0 {
        f64::INFINITY
    } else {
        v
    }
}

/// Builds the standardized form, validating the model.
///
/// Artificial signs are finalized later by the solver (they depend on the
/// initial residual); here every artificial gets a provisional `+1` entry,
/// bounds `[0, 0]` (fixed), and zero cost. The solver re-derives sign,
/// bounds, and phase-1 cost when it crashes the initial basis.
pub(crate) fn standardize(p: &Problem) -> Result<StdForm, SolveError> {
    let n = p.num_cols();
    let m = p.num_rows();

    let obj_sign = match p.objective {
        Objective::Minimize => 1.0,
        Objective::Maximize => -1.0,
    };

    let ncols = n + 2 * m;
    let mut lower = Vec::with_capacity(ncols);
    let mut upper = Vec::with_capacity(ncols);
    let mut cost = Vec::with_capacity(ncols);
    let mut kind = Vec::with_capacity(ncols);

    for (j, c) in p.cols.iter().enumerate() {
        let l = norm_lower(c.lower);
        let u = norm_upper(c.upper);
        if l > u {
            return Err(SolveError::InvalidModel(format!(
                "column {j} has crossed bounds [{l}, {u}]"
            )));
        }
        if !c.cost.is_finite() {
            return Err(SolveError::InvalidModel(format!(
                "column {j} has non-finite cost {}",
                c.cost
            )));
        }
        lower.push(l);
        upper.push(u);
        cost.push(obj_sign * c.cost);
        kind.push(ColKind::Structural);
    }
    for (i, r) in p.rows.iter().enumerate() {
        let l = norm_lower(r.lower);
        let u = norm_upper(r.upper);
        if l > u {
            return Err(SolveError::InvalidModel(format!(
                "row {i} has crossed bounds [{l}, {u}]"
            )));
        }
        lower.push(l);
        upper.push(u);
        cost.push(0.0);
        kind.push(ColKind::Activity);
    }
    for _ in 0..m {
        lower.push(0.0);
        upper.push(0.0);
        cost.push(0.0);
        kind.push(ColKind::Artificial);
    }

    // Structural block from triplets, then activity and artificial columns.
    let mut a = CscMatrix::from_triplets(
        m,
        n,
        p.entries
            .iter()
            .filter(|&&(_, _, v)| v.is_finite())
            .copied(),
    );
    if p.entries.iter().any(|&(_, _, v)| !v.is_finite()) {
        return Err(SolveError::InvalidModel(
            "non-finite constraint coefficient".into(),
        ));
    }
    for i in 0..m {
        a.push_col(&[(i as u32, -1.0)]);
    }
    for i in 0..m {
        a.push_col(&[(i as u32, 1.0)]);
    }

    Ok(StdForm {
        a,
        lower,
        upper,
        cost,
        kind,
        nstruct: n,
        nrows: m,
        obj_sign,
        obj_offset: p.obj_offset,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Objective, Problem};

    #[test]
    fn standardize_shapes() {
        let mut p = Problem::new(Objective::Maximize);
        let x = p.add_col(0.0, 5.0, 3.0);
        let y = p.add_col(-1.0, f64::INFINITY, -2.0);
        p.add_row(f64::NEG_INFINITY, 4.0, &[(x, 1.0), (y, 1.0)]);
        p.add_row(2.0, 2.0, &[(x, 1.0)]);
        let s = standardize(&p).unwrap();
        assert_eq!(s.nstruct, 2);
        assert_eq!(s.nrows, 2);
        assert_eq!(s.ncols(), 2 + 4);
        assert_eq!(s.a.ncols(), 6);
        // maximization flips structural costs
        assert_eq!(s.cost[0], -3.0);
        assert_eq!(s.cost[1], 2.0);
        // activity bounds mirror row bounds
        assert_eq!(s.lower[s.activity_col(0)], f64::NEG_INFINITY);
        assert_eq!(s.upper[s.activity_col(0)], 4.0);
        assert_eq!(s.lower[s.activity_col(1)], 2.0);
        assert_eq!(s.upper[s.activity_col(1)], 2.0);
        // activity column is a single -1 in its row
        let (rows, vals) = s.a.col(s.activity_col(1));
        assert_eq!(rows, &[1]);
        assert_eq!(vals, &[-1.0]);
        // artificial column is a single +1 (provisional)
        let (rows, vals) = s.a.col(s.artificial_col(0));
        assert_eq!(rows, &[0]);
        assert_eq!(vals, &[1.0]);
    }

    #[test]
    fn resting_values() {
        let mut p = Problem::new(Objective::Minimize);
        p.add_col(2.0, 9.0, 0.0);
        p.add_col(-9.0, -3.0, 0.0);
        p.add_col(f64::NEG_INFINITY, 7.0, 0.0);
        p.add_col(f64::NEG_INFINITY, f64::INFINITY, 0.0);
        let s = standardize(&p).unwrap();
        assert_eq!(s.resting_value(0), 2.0);
        assert_eq!(s.resting_value(1), -3.0);
        assert_eq!(s.resting_value(2), 7.0);
        assert_eq!(s.resting_value(3), 0.0);
    }

    #[test]
    fn huge_bounds_become_infinite() {
        let mut p = Problem::new(Objective::Minimize);
        p.add_col(-1e31, 1e31, 0.0);
        let s = standardize(&p).unwrap();
        assert_eq!(s.lower[0], f64::NEG_INFINITY);
        assert_eq!(s.upper[0], f64::INFINITY);
    }

    #[test]
    fn rejects_non_finite_cost() {
        let mut p = Problem::new(Objective::Minimize);
        let c = p.add_col(0.0, 1.0, 0.0);
        p.cols[c.index()].cost = f64::INFINITY;
        assert!(matches!(standardize(&p), Err(SolveError::InvalidModel(_))));
    }
}
