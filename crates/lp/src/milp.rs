//! Branch-and-bound mixed-integer programming.
//!
//! The paper reports that solving the Stage-2 integer program exactly is
//! "prohibitively long" with standard solvers; LPDAR exists because of that.
//! This module provides a small exact solver anyway — practical only for
//! tiny instances — so the reproduction can do something the paper could
//! not: measure LPDAR's true optimality gap (see the `ablation_exact`
//! bench).
//!
//! Depth-first branch-and-bound on LP relaxations solved by the sparse
//! revised simplex. Branching variable: most fractional. No cuts, no
//! presolve; exactness over speed.

use crate::model::{Objective, Problem};
use crate::revised::{solve_with, SimplexConfig};
use crate::solution::Status;
use crate::SolveError;

/// Knobs for [`solve_milp`].
#[derive(Debug, Clone)]
pub struct MilpConfig {
    /// Maximum branch-and-bound nodes explored before giving up.
    pub max_nodes: u64,
    /// A relaxation value within this of an integer counts as integral.
    pub int_tol: f64,
    /// Stop when the relative gap between incumbent and best bound drops
    /// below this.
    pub rel_gap: f64,
    /// LP settings used at every node.
    pub lp: SimplexConfig,
}

impl Default for MilpConfig {
    fn default() -> Self {
        MilpConfig {
            max_nodes: 100_000,
            int_tol: 1e-6,
            rel_gap: 1e-9,
            lp: SimplexConfig::default(),
        }
    }
}

/// Outcome of a branch-and-bound run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MilpStatus {
    /// Incumbent proven optimal (all nodes fathomed).
    Optimal,
    /// No feasible integer point exists.
    Infeasible,
    /// The LP relaxation is unbounded.
    Unbounded,
    /// Node limit hit; `best` (if any) is a feasible incumbent without an
    /// optimality proof.
    NodeLimit,
}

/// Result of [`solve_milp`].
#[derive(Debug, Clone)]
pub struct MilpSolution {
    /// Outcome of the search.
    pub status: MilpStatus,
    /// Objective of the incumbent (NaN when none exists).
    pub objective: f64,
    /// Incumbent point, one value per column (empty when none exists).
    pub x: Vec<f64>,
    /// Nodes explored.
    pub nodes: u64,
}

/// Solves `p`, honoring the integrality marks set with
/// [`Problem::add_int_col`] / [`Problem::set_integer`].
pub fn solve_milp(p: &Problem, cfg: &MilpConfig) -> Result<MilpSolution, SolveError> {
    let int_cols: Vec<usize> = (0..p.num_cols()).filter(|&j| p.cols[j].integer).collect();

    // `better(a, b)`: is objective `a` better than `b` in the problem sense?
    let maximize = p.objective() == Objective::Maximize;
    let better = |a: f64, b: f64| if maximize { a > b } else { a < b };

    let mut work = p.clone();
    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    let mut nodes: u64 = 0;
    let mut saw_node_limit = false;

    // Explicit DFS stack of bound changes: each node is a list of
    // (col, lower, upper) overrides relative to the root problem.
    let mut stack: Vec<Vec<(usize, f64, f64)>> = vec![Vec::new()];

    while let Some(changes) = stack.pop() {
        if nodes >= cfg.max_nodes {
            saw_node_limit = true;
            break;
        }
        nodes += 1;

        // Apply overrides.
        let saved: Vec<(usize, f64, f64)> = changes
            .iter()
            .map(|&(j, _, _)| {
                let (l, u) = work.col_bounds(crate::Col(j as u32));
                (j, l, u)
            })
            .collect();
        let mut valid = true;
        for &(j, l, u) in &changes {
            if l > u {
                valid = false;
            }
            work.set_col_bounds(crate::Col(j as u32), l, u);
        }

        if valid {
            match solve_with(&work, &cfg.lp)? {
                sol if sol.status == Status::Unbounded => {
                    // Restore and report: an unbounded relaxation at the root
                    // means an unbounded MILP (with integer feasibility not
                    // proven, but we surface it as such).
                    for &(j, l, u) in &saved {
                        work.set_col_bounds(crate::Col(j as u32), l, u);
                    }
                    return Ok(MilpSolution {
                        status: MilpStatus::Unbounded,
                        objective: if maximize {
                            f64::INFINITY
                        } else {
                            f64::NEG_INFINITY
                        },
                        x: Vec::new(),
                        nodes,
                    });
                }
                sol if sol.status == Status::Optimal => {
                    let bound = sol.objective;
                    let prune = incumbent.as_ref().is_some_and(|(inc, _)| {
                        let gap_ok = !better(bound, *inc);
                        let rel = (bound - inc).abs() / inc.abs().max(1.0);
                        gap_ok || rel < cfg.rel_gap
                    });
                    if !prune {
                        // Find most fractional integer column.
                        let mut frac_col = None;
                        let mut frac_dist = cfg.int_tol;
                        for &j in &int_cols {
                            let v = sol.x[j];
                            let d = (v - v.round()).abs();
                            if d > frac_dist {
                                frac_dist = d;
                                frac_col = Some(j);
                            }
                        }
                        match frac_col {
                            None => {
                                // Integral: candidate incumbent.
                                let mut x = sol.x.clone();
                                for &j in &int_cols {
                                    x[j] = x[j].round();
                                }
                                let obj = p.eval_objective(&x);
                                if incumbent.as_ref().is_none_or(|(inc, _)| better(obj, *inc)) {
                                    incumbent = Some((obj, x));
                                }
                            }
                            Some(j) => {
                                let v = sol.x[j];
                                let (l, u) = work.col_bounds(crate::Col(j as u32));
                                // Branch down then up; push "up" first so the
                                // "down" child (rounding toward zero usage)
                                // is explored first.
                                let mut up = changes.clone();
                                up.push((j, v.ceil(), u));
                                let mut down = changes.clone();
                                down.push((j, l, v.floor()));
                                stack.push(up);
                                stack.push(down);
                            }
                        }
                    }
                }
                _ => {} // Infeasible or iteration-limited node: fathom.
            }
        }

        // Restore bounds.
        for &(j, l, u) in saved.iter().rev() {
            work.set_col_bounds(crate::Col(j as u32), l, u);
        }
    }

    Ok(match incumbent {
        Some((obj, x)) => MilpSolution {
            status: if saw_node_limit {
                MilpStatus::NodeLimit
            } else {
                MilpStatus::Optimal
            },
            objective: obj,
            x,
            nodes,
        },
        None => MilpSolution {
            status: if saw_node_limit {
                MilpStatus::NodeLimit
            } else {
                MilpStatus::Infeasible
            },
            objective: f64::NAN,
            x: Vec::new(),
            nodes,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Objective, Problem};

    fn near(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn knapsack() {
        // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary.
        let mut p = Problem::new(Objective::Maximize);
        let a = p.add_int_col(0.0, 1.0, 10.0);
        let b = p.add_int_col(0.0, 1.0, 13.0);
        let c = p.add_int_col(0.0, 1.0, 7.0);
        p.add_row(f64::NEG_INFINITY, 6.0, &[(a, 3.0), (b, 4.0), (c, 2.0)]);
        let s = solve_milp(&p, &MilpConfig::default()).unwrap();
        assert_eq!(s.status, MilpStatus::Optimal);
        near(s.objective, 20.0); // b + c = 13 + 7
        near(s.x[1], 1.0);
        near(s.x[2], 1.0);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x + y s.t. 2x + 2y <= 5, integers: LP gives 2.5, ILP 2.
        let mut p = Problem::new(Objective::Maximize);
        let x = p.add_int_col(0.0, f64::INFINITY, 1.0);
        let y = p.add_int_col(0.0, f64::INFINITY, 1.0);
        p.add_row(f64::NEG_INFINITY, 5.0, &[(x, 2.0), (y, 2.0)]);
        let s = solve_milp(&p, &MilpConfig::default()).unwrap();
        assert_eq!(s.status, MilpStatus::Optimal);
        near(s.objective, 2.0);
    }

    #[test]
    fn infeasible_milp() {
        // 2x == 1 with x integer.
        let mut p = Problem::new(Objective::Minimize);
        let x = p.add_int_col(0.0, 10.0, 1.0);
        p.add_row(1.0, 1.0, &[(x, 2.0)]);
        let s = solve_milp(&p, &MilpConfig::default()).unwrap();
        assert_eq!(s.status, MilpStatus::Infeasible);
    }

    #[test]
    fn mixed_continuous_integer() {
        // max 2x + y, x integer, y continuous; x + y <= 3.5, x <= 2.2.
        let mut p = Problem::new(Objective::Maximize);
        let x = p.add_int_col(0.0, 2.2, 2.0);
        let y = p.add_col(0.0, f64::INFINITY, 1.0);
        p.add_row(f64::NEG_INFINITY, 3.5, &[(x, 1.0), (y, 1.0)]);
        let s = solve_milp(&p, &MilpConfig::default()).unwrap();
        assert_eq!(s.status, MilpStatus::Optimal);
        // x = 2, y = 1.5 -> 5.5
        near(s.objective, 5.5);
        near(s.x[0], 2.0);
    }

    #[test]
    fn minimization_direction() {
        // min x, x integer >= 1.3  => x = 2.
        let mut p = Problem::new(Objective::Minimize);
        let x = p.add_int_col(0.0, 10.0, 1.0);
        p.add_row(1.3, f64::INFINITY, &[(x, 1.0)]);
        let s = solve_milp(&p, &MilpConfig::default()).unwrap();
        assert_eq!(s.status, MilpStatus::Optimal);
        near(s.objective, 2.0);
    }

    #[test]
    fn pure_lp_passthrough() {
        // No integer columns: single relaxation solve.
        let mut p = Problem::new(Objective::Maximize);
        let x = p.add_col(0.0, 7.0, 1.0);
        let _ = x;
        let s = solve_milp(&p, &MilpConfig::default()).unwrap();
        assert_eq!(s.status, MilpStatus::Optimal);
        near(s.objective, 7.0);
        assert_eq!(s.nodes, 1);
    }

    #[test]
    fn node_limit_reported() {
        let mut p = Problem::new(Objective::Maximize);
        let cols: Vec<_> = (0..12).map(|_| p.add_int_col(0.0, 1.0, 1.0)).collect();
        let coeffs: Vec<_> = cols.iter().map(|&c| (c, 2.0)).collect();
        p.add_row(f64::NEG_INFINITY, 11.0, &coeffs);
        let cfg = MilpConfig {
            max_nodes: 2,
            ..MilpConfig::default()
        };
        let s = solve_milp(&p, &cfg).unwrap();
        assert_eq!(s.status, MilpStatus::NodeLimit);
    }
}
