//! Branch-and-bound mixed-integer programming.
//!
//! The paper reports that solving the Stage-2 integer program exactly is
//! "prohibitively long" with standard solvers; LPDAR exists because of that.
//! This module provides a small exact solver anyway — practical only for
//! tiny instances — so the reproduction can do something the paper could
//! not: measure LPDAR's true optimality gap (see the `ablation_exact`
//! bench).
//!
//! Depth-first branch-and-bound on LP relaxations solved by the sparse
//! revised simplex. Branching variable: most fractional. No cuts, no
//! presolve; exactness over speed.
//!
//! ## Parallel search
//!
//! The node stack is shared: [`MilpConfig::threads`] workers (via
//! `wavesched-par`, the `WS_THREADS` knob) pop nodes, solve the LP
//! relaxations concurrently, and push children back. With one worker the
//! traversal is exactly the serial depth-first order, on the calling
//! thread. With more workers the *exploration order* (and therefore the
//! explored node count) depends on scheduling, but the **returned
//! incumbent is reproducible**: a candidate replaces the incumbent only if
//! its objective is strictly better, or equal with a lexicographically
//! smaller solution vector — a total order on candidates, so the winner
//! does not depend on discovery order. Every incumbent update happens
//! under one mutex, and each worker re-solves on its own clone of the
//! problem, so LP answers are pure functions of the node.

use crate::model::{Objective, Problem};
use crate::revised::{solve_with, SimplexConfig};
use crate::solution::Status;
use crate::SolveError;
use std::sync::{Condvar, Mutex};
use wavesched_obs as obs;

/// Knobs for [`solve_milp`].
#[derive(Debug, Clone)]
pub struct MilpConfig {
    /// Maximum branch-and-bound nodes explored before giving up.
    pub max_nodes: u64,
    /// A relaxation value within this of an integer counts as integral.
    pub int_tol: f64,
    /// Stop when the relative gap between incumbent and best bound drops
    /// below this.
    pub rel_gap: f64,
    /// LP settings used at every node.
    pub lp: SimplexConfig,
    /// Workers exploring the node stack. `0` (the default) resolves to the
    /// `WS_THREADS` environment knob; `1` is the exact serial depth-first
    /// search, run inline on the calling thread.
    pub threads: usize,
}

impl Default for MilpConfig {
    fn default() -> Self {
        MilpConfig {
            max_nodes: 100_000,
            int_tol: 1e-6,
            rel_gap: 1e-9,
            lp: SimplexConfig::default(),
            threads: 0,
        }
    }
}

/// Outcome of a branch-and-bound run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MilpStatus {
    /// Incumbent proven optimal (all nodes fathomed).
    Optimal,
    /// No feasible integer point exists.
    Infeasible,
    /// The LP relaxation is unbounded.
    Unbounded,
    /// Node limit hit; `best` (if any) is a feasible incumbent without an
    /// optimality proof.
    NodeLimit,
}

/// Result of [`solve_milp`].
#[derive(Debug, Clone)]
pub struct MilpSolution {
    /// Outcome of the search.
    pub status: MilpStatus,
    /// Objective of the incumbent (NaN when none exists).
    pub objective: f64,
    /// Incumbent point, one value per column (empty when none exists).
    pub x: Vec<f64>,
    /// Nodes explored (scheduling-dependent when `threads > 1`).
    pub nodes: u64,
}

/// Bound overrides of one node relative to the root problem.
type Changes = Vec<(usize, f64, f64)>;

/// Search state shared by the workers, guarded by one mutex.
struct Shared {
    /// LIFO node stack (depth-first when explored by one worker).
    stack: Vec<Changes>,
    /// Best integer point so far, under the better-objective-then-
    /// lexicographic order.
    incumbent: Option<(f64, Vec<f64>)>,
    nodes: u64,
    /// Nodes popped but not yet classified; the search is over only when
    /// the stack is empty AND nothing is in flight.
    in_flight: usize,
    limit_hit: bool,
    unbounded: bool,
    error: Option<SolveError>,
}

/// What one node's (unlocked) LP solve concluded.
enum NodeOutcome {
    Unbounded,
    /// Infeasible, iteration-limited, or empty-domain node.
    Fathomed,
    /// Relaxation integral: a candidate incumbent (`obj` re-evaluated on
    /// the rounded point).
    Integral {
        obj: f64,
        x: Vec<f64>,
    },
    /// Relaxation fractional: children to push unless pruned.
    Fractional {
        bound: f64,
        up: Changes,
        down: Changes,
    },
}

/// The incumbent replacement rule: a candidate wins iff its objective is
/// strictly better, or exactly equal with a lexicographically smaller
/// point. This is a total order on candidates, so the surviving incumbent
/// is independent of the order in which parallel workers discover them —
/// the property the determinism tests pin down.
fn should_replace(
    maximize: bool,
    obj: f64,
    x: &[f64],
    incumbent: &Option<(f64, Vec<f64>)>,
) -> bool {
    match incumbent {
        None => true,
        Some((inc, ix)) => {
            let strictly_better = if maximize { obj > *inc } else { obj < *inc };
            strictly_better || (obj == *inc && lex_less(x, ix))
        }
    }
}

/// `a` strictly before `b` lexicographically (first differing coordinate
/// smaller). Both points come from the same column space.
fn lex_less(a: &[f64], b: &[f64]) -> bool {
    for (x, y) in a.iter().zip(b) {
        if x < y {
            return true;
        }
        if x > y {
            return false;
        }
    }
    false
}

/// Immutable context shared by every worker.
struct Ctx<'a> {
    p: &'a Problem,
    cfg: &'a MilpConfig,
    int_cols: &'a [usize],
    maximize: bool,
    shared: &'a Mutex<Shared>,
    cv: &'a Condvar,
}

impl Ctx<'_> {
    /// Is objective `a` better than `b` in the problem sense?
    fn better(&self, a: f64, b: f64) -> bool {
        if self.maximize {
            a > b
        } else {
            a < b
        }
    }

    /// The serial pruning rule: fathom a node whose LP bound cannot beat
    /// the incumbent (or beats it by less than the relative gap).
    fn prune(&self, bound: f64, incumbent: Option<f64>) -> bool {
        incumbent.is_some_and(|inc| {
            let gap_ok = !self.better(bound, inc);
            let rel = (bound - inc).abs() / inc.abs().max(1.0);
            gap_ok || rel < self.cfg.rel_gap
        })
    }

    /// Solves one node on this worker's problem clone. Pure: touches no
    /// shared state, so it runs unlocked and concurrently.
    fn process(&self, work: &mut Problem, changes: &Changes) -> Result<NodeOutcome, SolveError> {
        // Apply overrides, remembering what to restore.
        let saved: Changes = changes
            .iter()
            .map(|&(j, _, _)| {
                let (l, u) = work.col_bounds(crate::Col(j as u32));
                (j, l, u)
            })
            .collect();
        let mut valid = true;
        for &(j, l, u) in changes {
            if l > u {
                valid = false;
            }
            work.set_col_bounds(crate::Col(j as u32), l, u);
        }

        let outcome = if !valid {
            Ok(NodeOutcome::Fathomed)
        } else {
            match solve_with(work, &self.cfg.lp) {
                Err(e) => Err(e),
                Ok(sol) if sol.status == Status::Unbounded => Ok(NodeOutcome::Unbounded),
                Ok(sol) if sol.status == Status::Optimal => {
                    // Find the most fractional integer column.
                    let mut frac_col = None;
                    let mut frac_dist = self.cfg.int_tol;
                    for &j in self.int_cols {
                        let v = sol.x[j];
                        let d = (v - v.round()).abs();
                        if d > frac_dist {
                            frac_dist = d;
                            frac_col = Some(j);
                        }
                    }
                    match frac_col {
                        None => {
                            let mut x = sol.x.clone();
                            for &j in self.int_cols {
                                x[j] = x[j].round();
                            }
                            let obj = self.p.eval_objective(&x);
                            Ok(NodeOutcome::Integral { obj, x })
                        }
                        Some(j) => {
                            let v = sol.x[j];
                            let (l, u) = work.col_bounds(crate::Col(j as u32));
                            // Branch down then up; "up" is pushed first so
                            // the "down" child (rounding toward zero usage)
                            // is explored first by a depth-first worker.
                            let mut up = changes.clone();
                            up.push((j, v.ceil(), u));
                            let mut down = changes.clone();
                            down.push((j, l, v.floor()));
                            Ok(NodeOutcome::Fractional {
                                bound: sol.objective,
                                up,
                                down,
                            })
                        }
                    }
                }
                Ok(_) => Ok(NodeOutcome::Fathomed), // infeasible / iteration limit
            }
        };

        // Restore bounds for the next node on this worker.
        for &(j, l, u) in saved.iter().rev() {
            work.set_col_bounds(crate::Col(j as u32), l, u);
        }
        outcome
    }

    /// One worker: pop nodes, solve unlocked, classify under the lock.
    fn worker(&self) {
        let mut work = self.p.clone();
        loop {
            // Acquire a node (or detect termination).
            let changes = {
                let mut st = self.shared.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if st.error.is_some() || st.unbounded {
                        self.cv.notify_all();
                        return;
                    }
                    if let Some(c) = st.stack.pop() {
                        if st.nodes >= self.cfg.max_nodes {
                            // Same accounting as the serial search: the
                            // node past the limit is dropped unexplored.
                            st.limit_hit = true;
                            st.stack.clear();
                            continue;
                        }
                        st.nodes += 1;
                        st.in_flight += 1;
                        break c;
                    }
                    if st.in_flight == 0 {
                        self.cv.notify_all();
                        return;
                    }
                    st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            };

            let outcome = self.process(&mut work, &changes);

            // Classify under the lock, against the freshest incumbent.
            let mut st = self.shared.lock().unwrap_or_else(|e| e.into_inner());
            st.in_flight -= 1;
            match outcome {
                Err(e) => {
                    if st.error.is_none() {
                        st.error = Some(e);
                    }
                }
                Ok(NodeOutcome::Unbounded) => st.unbounded = true,
                Ok(NodeOutcome::Fathomed) => {}
                Ok(NodeOutcome::Integral { obj, x }) => {
                    // No prune() here: the gap-based prune would discard a
                    // candidate that *ties* the incumbent objective (rel
                    // gap 0) before the lexicographic tie-break ever saw
                    // it, making the surviving point depend on discovery
                    // order. `should_replace` alone is the total order the
                    // module contract promises — strictly worse candidates
                    // lose there anyway.
                    if should_replace(self.maximize, obj, &x, &st.incumbent) {
                        st.incumbent = Some((obj, x));
                    }
                }
                Ok(NodeOutcome::Fractional { bound, up, down }) => {
                    let inc_obj = st.incumbent.as_ref().map(|(o, _)| *o);
                    if !self.prune(bound, inc_obj) {
                        st.stack.push(up);
                        st.stack.push(down);
                    }
                }
            }
            self.cv.notify_all();
        }
    }
}

/// Solves `p`, honoring the integrality marks set with
/// [`Problem::add_int_col`] / [`Problem::set_integer`].
pub fn solve_milp(p: &Problem, cfg: &MilpConfig) -> Result<MilpSolution, SolveError> {
    let _span = obs::span("milp");
    let int_cols: Vec<usize> = (0..p.num_cols()).filter(|&j| p.cols[j].integer).collect();
    let maximize = p.objective() == Objective::Maximize;

    let shared = Mutex::new(Shared {
        stack: vec![Vec::new()],
        incumbent: None,
        nodes: 0,
        in_flight: 0,
        limit_hit: false,
        unbounded: false,
        error: None,
    });
    let cv = Condvar::new();
    let ctx = Ctx {
        p,
        cfg,
        int_cols: &int_cols,
        maximize,
        shared: &shared,
        cv: &cv,
    };
    // One worker (`threads == 1`, or WS_THREADS=1 via the default 0) runs
    // the exact serial DFS inline on this thread; see `wavesched_par`.
    wavesched_par::run_workers(cfg.threads, |_w| ctx.worker());

    let st = shared.into_inner().unwrap_or_else(|e| e.into_inner());
    if let Some(e) = st.error {
        return Err(e);
    }
    obs::counter_add("milp.nodes", st.nodes);
    if st.unbounded {
        return Ok(MilpSolution {
            status: MilpStatus::Unbounded,
            objective: if maximize {
                f64::INFINITY
            } else {
                f64::NEG_INFINITY
            },
            x: Vec::new(),
            nodes: st.nodes,
        });
    }
    Ok(match st.incumbent {
        Some((obj, x)) => MilpSolution {
            status: if st.limit_hit {
                MilpStatus::NodeLimit
            } else {
                MilpStatus::Optimal
            },
            objective: obj,
            x,
            nodes: st.nodes,
        },
        None => MilpSolution {
            status: if st.limit_hit {
                MilpStatus::NodeLimit
            } else {
                MilpStatus::Infeasible
            },
            objective: f64::NAN,
            x: Vec::new(),
            nodes: st.nodes,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Objective, Problem};

    fn near(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn knapsack() {
        // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary.
        let mut p = Problem::new(Objective::Maximize);
        let a = p.add_int_col(0.0, 1.0, 10.0);
        let b = p.add_int_col(0.0, 1.0, 13.0);
        let c = p.add_int_col(0.0, 1.0, 7.0);
        p.add_row(f64::NEG_INFINITY, 6.0, &[(a, 3.0), (b, 4.0), (c, 2.0)]);
        let s = solve_milp(&p, &MilpConfig::default()).unwrap();
        assert_eq!(s.status, MilpStatus::Optimal);
        near(s.objective, 20.0); // b + c = 13 + 7
        near(s.x[1], 1.0);
        near(s.x[2], 1.0);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x + y s.t. 2x + 2y <= 5, integers: LP gives 2.5, ILP 2.
        let mut p = Problem::new(Objective::Maximize);
        let x = p.add_int_col(0.0, f64::INFINITY, 1.0);
        let y = p.add_int_col(0.0, f64::INFINITY, 1.0);
        p.add_row(f64::NEG_INFINITY, 5.0, &[(x, 2.0), (y, 2.0)]);
        let s = solve_milp(&p, &MilpConfig::default()).unwrap();
        assert_eq!(s.status, MilpStatus::Optimal);
        near(s.objective, 2.0);
    }

    #[test]
    fn infeasible_milp() {
        // 2x == 1 with x integer.
        let mut p = Problem::new(Objective::Minimize);
        let x = p.add_int_col(0.0, 10.0, 1.0);
        p.add_row(1.0, 1.0, &[(x, 2.0)]);
        let s = solve_milp(&p, &MilpConfig::default()).unwrap();
        assert_eq!(s.status, MilpStatus::Infeasible);
    }

    #[test]
    fn mixed_continuous_integer() {
        // max 2x + y, x integer, y continuous; x + y <= 3.5, x <= 2.2.
        let mut p = Problem::new(Objective::Maximize);
        let x = p.add_int_col(0.0, 2.2, 2.0);
        let y = p.add_col(0.0, f64::INFINITY, 1.0);
        p.add_row(f64::NEG_INFINITY, 3.5, &[(x, 1.0), (y, 1.0)]);
        let s = solve_milp(&p, &MilpConfig::default()).unwrap();
        assert_eq!(s.status, MilpStatus::Optimal);
        // x = 2, y = 1.5 -> 5.5
        near(s.objective, 5.5);
        near(s.x[0], 2.0);
    }

    #[test]
    fn minimization_direction() {
        // min x, x integer >= 1.3  => x = 2.
        let mut p = Problem::new(Objective::Minimize);
        let x = p.add_int_col(0.0, 10.0, 1.0);
        p.add_row(1.3, f64::INFINITY, &[(x, 1.0)]);
        let s = solve_milp(&p, &MilpConfig::default()).unwrap();
        assert_eq!(s.status, MilpStatus::Optimal);
        near(s.objective, 2.0);
    }

    #[test]
    fn pure_lp_passthrough() {
        // No integer columns: single relaxation solve.
        let mut p = Problem::new(Objective::Maximize);
        let x = p.add_col(0.0, 7.0, 1.0);
        let _ = x;
        let s = solve_milp(&p, &MilpConfig::default()).unwrap();
        assert_eq!(s.status, MilpStatus::Optimal);
        near(s.objective, 7.0);
        assert_eq!(s.nodes, 1);
    }

    #[test]
    fn node_limit_reported() {
        let mut p = Problem::new(Objective::Maximize);
        let cols: Vec<_> = (0..12).map(|_| p.add_int_col(0.0, 1.0, 1.0)).collect();
        let coeffs: Vec<_> = cols.iter().map(|&c| (c, 2.0)).collect();
        p.add_row(f64::NEG_INFINITY, 11.0, &coeffs);
        let cfg = MilpConfig {
            max_nodes: 2,
            ..MilpConfig::default()
        };
        let s = solve_milp(&p, &cfg).unwrap();
        assert_eq!(s.status, MilpStatus::NodeLimit);
    }

    /// A knapsack family with many near-ties, solved at several widths: the
    /// incumbent objective and point must be identical to the one-worker
    /// (serial DFS) search.
    #[test]
    fn parallel_incumbent_matches_serial_bitwise() {
        for seed in 0..6u64 {
            let mut p = Problem::new(Objective::Maximize);
            let n = 14;
            let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
            let mut rand = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 97) as f64 + 1.0
            };
            let cols: Vec<_> = (0..n).map(|_| p.add_int_col(0.0, 1.0, rand())).collect();
            let weights: Vec<f64> = (0..n).map(|_| rand()).collect();
            let coeffs: Vec<_> = cols.iter().zip(&weights).map(|(&c, &w)| (c, w)).collect();
            let budget = weights.iter().sum::<f64>() * 0.4;
            p.add_row(f64::NEG_INFINITY, budget, &coeffs);

            let solve_at = |threads: usize| {
                let cfg = MilpConfig {
                    threads,
                    ..MilpConfig::default()
                };
                solve_milp(&p, &cfg).unwrap()
            };
            let serial = solve_at(1);
            assert_eq!(serial.status, MilpStatus::Optimal, "seed {seed}");
            for threads in [2, 4] {
                let par = solve_at(threads);
                assert_eq!(par.status, MilpStatus::Optimal, "seed {seed}");
                assert_eq!(
                    serial.objective.to_bits(),
                    par.objective.to_bits(),
                    "seed {seed} threads {threads}: objective"
                );
                assert_eq!(
                    serial.x, par.x,
                    "seed {seed} threads {threads}: incumbent point"
                );
            }
        }
    }

    /// The incumbent rule is a total order on candidates: equal objectives
    /// break toward the lexicographically smaller point, so two racing
    /// workers install the same winner no matter who classifies first. (At
    /// one worker ties never reach this rule — the bound check fathoms
    /// equal-objective subtrees once an incumbent exists — which is exactly
    /// why the rule matters for cross-width reproducibility.)
    #[test]
    fn equal_objective_ties_break_lexicographically() {
        let a = vec![0.0, 0.0, 1.0];
        let b = vec![0.0, 1.0, 0.0];
        for maximize in [true, false] {
            // Empty incumbent always loses.
            assert!(should_replace(maximize, 1.0, &a, &None));
            // Equal objective: the lexicographically smaller point wins…
            let inc_b = Some((1.0, b.clone()));
            assert!(should_replace(maximize, 1.0, &a, &inc_b));
            // …and order of arrival does not matter.
            let inc_a = Some((1.0, a.clone()));
            assert!(!should_replace(maximize, 1.0, &b, &inc_a));
            // An identical candidate never replaces (no churn).
            assert!(!should_replace(maximize, 1.0, &a, &inc_a));
        }
        // Strictly better objective wins regardless of lex order.
        assert!(should_replace(true, 2.0, &b, &Some((1.0, a.clone()))));
        assert!(!should_replace(true, 0.5, &a, &Some((1.0, b.clone()))));
        assert!(should_replace(false, 0.5, &b, &Some((1.0, a.clone()))));
        assert!(!should_replace(false, 2.0, &a, &Some((1.0, b.clone()))));
    }

    #[test]
    fn parallel_agrees_on_infeasible_and_node_limit() {
        // Infeasible stays infeasible at any width.
        let mut p = Problem::new(Objective::Minimize);
        let x = p.add_int_col(0.0, 10.0, 1.0);
        p.add_row(1.0, 1.0, &[(x, 2.0)]);
        for threads in [1, 4] {
            let cfg = MilpConfig {
                threads,
                ..MilpConfig::default()
            };
            let s = solve_milp(&p, &cfg).unwrap();
            assert_eq!(s.status, MilpStatus::Infeasible, "threads {threads}");
        }
    }

    #[test]
    fn lex_less_orders_points() {
        assert!(lex_less(&[0.0, 1.0], &[1.0, 0.0]));
        assert!(!lex_less(&[1.0, 0.0], &[0.0, 1.0]));
        assert!(!lex_less(&[1.0, 1.0], &[1.0, 1.0]));
        assert!(lex_less(&[1.0, 0.0, 5.0], &[1.0, 0.0, 6.0]));
    }
}
