//! Proves the steady-state simplex pivot loop performs zero heap
//! allocations.
//!
//! The engine hoists every per-pivot buffer (FTRAN/BTRAN work vectors, the
//! pivotal row, Devex scratch, the eta arena) into engine-owned storage
//! that is pre-sized at construction or grown once during warmup. This
//! test wraps the system allocator in a counting shim, warms a
//! [`PivotProbe`] up, and then asserts that a window of 100 further pivots
//! touches the allocator not even once.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use wavesched_lp::{Objective, PivotProbe, Problem};

/// System allocator with an allocation-event counter. Deallocations are
/// not counted (freeing is fine; acquiring is what the pivot loop must
/// never do). Counting is gated on a thread-local flag so only the
/// measuring thread is charged: the libtest harness's main thread prints
/// the `test ... ` progress line concurrently with the test body, and on
/// a loaded (or single-core) host its formatting allocations can land
/// inside the measured window.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // `const` init: reading the flag never itself triggers lazy TLS
    // allocation inside the allocator.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn count_here() {
    // `try_with` so allocations during TLS teardown are simply uncounted.
    let _ = COUNTING.try_with(|c| {
        if c.get() {
            ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        }
    });
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_here();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_here();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Deterministic LCG so the test problem is reproducible without a
/// dependency on an RNG crate.
struct Lcg(u64);

impl Lcg {
    fn next_u32(&mut self) -> u32 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as u32
    }

    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * (self.next_u32() as f64 / u32::MAX as f64)
    }
}

/// A random sparse LP that is feasible at its crash basis (all rows are
/// `<=` with positive right-hand sides, so resting every column at zero
/// satisfies everything — no phase 1, no artificials), bounded (every
/// column has positive entries, so each variable is blocked by some row),
/// and large enough that warmup plus the measured window never reaches
/// optimality.
fn steady_state_problem() -> Problem {
    let mut rng = Lcg(0x5eed_5107);
    let m = 400;
    let n = 600;
    let mut p = Problem::new(Objective::Maximize);
    let cols: Vec<_> = (0..n)
        .map(|_| p.add_col(0.0, f64::INFINITY, rng.uniform(1.0, 10.0)))
        .collect();
    // Column-wise fill: every column lands in 2–5 rows so none is
    // unconstrained (which would make the maximization unbounded).
    let mut rows: Vec<Vec<(wavesched_lp::Col, f64)>> = vec![Vec::new(); m];
    for &c in &cols {
        let k = 2 + (rng.next_u32() % 4) as usize;
        for _ in 0..k {
            let r = (rng.next_u32() as usize) % m;
            if rows[r].iter().any(|&(rc, _)| rc == c) {
                continue;
            }
            rows[r].push((c, rng.uniform(0.5, 4.0)));
        }
    }
    for entries in &rows {
        p.add_row(f64::NEG_INFINITY, rng.uniform(50.0, 200.0), entries);
    }
    p
}

#[test]
fn steady_state_pivots_do_not_allocate() {
    let p = steady_state_problem();
    // Warm up: 20 iterations build the LU, grow every scratch arena to its
    // working set, and leave the engine parked mid-solve.
    let mut probe = PivotProbe::new(&p, 20);
    // The measured window appends one eta per pivot; pre-grow the arena so
    // even that is allocation-free.
    probe.reserve(120);

    let before = ALLOC_EVENTS.load(Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    let ran = probe.pivots(100);
    COUNTING.with(|c| c.set(false));
    let events = ALLOC_EVENTS.load(Ordering::SeqCst) - before;

    assert_eq!(ran, 100, "problem too small: probe ran out of pivots");
    assert_eq!(
        events, 0,
        "steady-state pivot loop performed {events} heap allocations"
    );
}
