//! Differential testing of the hypersparse FTRAN/BTRAN kernels.
//!
//! The sparse kernels are claimed to be *bit-identical* to the dense
//! triangular solves — the same pivot sequence, the same objective bits —
//! because they compute the same floating-point operations in the same
//! order and merely skip terms that are exactly zero. Setting
//! `kernel_density_threshold` to `0.0` forces every kernel invocation down
//! the dense path, giving an in-tree oracle that shares the model lowering
//! and pivoting logic but none of the pattern-tracking code.
//!
//! A second tier of checks compares both modes against the independent
//! dense tableau simplex (`solve_dense`), which shares *nothing*.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use wavesched_lp::dense::solve_dense;
use wavesched_lp::{solve_with, Objective, Problem, SimplexConfig, Status};

/// A random LP with controlled column density so the sparse kernels see a
/// realistic mix of hypersparse and near-dense FTRAN/BTRAN results.
fn random_sparse_problem(rng: &mut StdRng, nmax: usize, mmax: usize) -> Problem {
    let maximize = rng.random_range(0..2) == 0;
    let mut p = Problem::new(if maximize {
        Objective::Maximize
    } else {
        Objective::Minimize
    });
    let n = rng.random_range(1..=nmax);
    let m = rng.random_range(1..=mmax);
    let mut cols = Vec::new();
    for _ in 0..n {
        let cost = rng.random_range(-4i32..=4) as f64;
        let (l, u) = match rng.random_range(0..4) {
            0 => (0.0, rng.random_range(1i32..=10) as f64),
            1 => (0.0, f64::INFINITY),
            2 => (
                rng.random_range(-5i32..=0) as f64,
                rng.random_range(1i32..=8) as f64,
            ),
            _ => (f64::NEG_INFINITY, rng.random_range(0i32..=9) as f64),
        };
        cols.push(p.add_col(l, u, cost));
    }
    // Per-row fill probability varies per problem, so some instances are
    // hypersparse (sparse path dominates) and some are dense (fallback
    // path dominates) — both must agree with the oracle.
    let fill = rng.random_range(10..70);
    for _ in 0..m {
        let mut coeffs = Vec::new();
        for &c in &cols {
            if rng.random_range(0..100) < fill {
                let v = rng.random_range(-3i32..=3) as f64;
                if v != 0.0 {
                    coeffs.push((c, v));
                }
            }
        }
        let b1 = rng.random_range(-10i32..=20) as f64;
        let b2 = b1 + rng.random_range(0i32..=10) as f64;
        let (lb, ub) = match rng.random_range(0..4) {
            0 => (f64::NEG_INFINITY, b2),
            1 => (b1, f64::INFINITY),
            2 => (b1, b2),
            _ => (b1, b1),
        };
        p.add_row(lb, ub, &coeffs);
    }
    p
}

fn sparse_cfg() -> SimplexConfig {
    SimplexConfig::default()
}

fn dense_oracle_cfg() -> SimplexConfig {
    SimplexConfig {
        kernel_density_threshold: 0.0,
        ..SimplexConfig::default()
    }
}

/// The core claim: sparse and forced-dense kernels take the *same* pivot
/// path and land on the *same bits*.
fn check_bit_identity(p: &Problem, label: &str) {
    let s = solve_with(p, &sparse_cfg()).expect("sparse-kernel solve");
    let d = solve_with(p, &dense_oracle_cfg()).expect("dense-kernel solve");
    assert_eq!(s.status, d.status, "{label}: status diverged");
    assert_eq!(
        s.stats.iterations, d.stats.iterations,
        "{label}: iteration counts diverged (pivot paths differ)"
    );
    assert_eq!(
        s.stats.phase1_iterations, d.stats.phase1_iterations,
        "{label}: phase-1 iteration counts diverged"
    );
    assert_eq!(
        s.stats.bound_flips, d.stats.bound_flips,
        "{label}: bound-flip counts diverged"
    );
    assert_eq!(
        s.objective.to_bits(),
        d.objective.to_bits(),
        "{label}: objective bits diverged ({} vs {})",
        s.objective,
        d.objective
    );
    for (i, (a, b)) in s.x.iter().zip(&d.x).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{label}: x[{i}] bits diverged ({a} vs {b})"
        );
    }
    // The dense-mode oracle cannot track patterns: any FTRAN with a
    // nonzero result must have been charged as a fallback. (An all-zero
    // result has an empty reach, which legitimately stays "sparse".)
    if d.stats.ftran_nnz > 0 {
        assert!(
            d.stats.ftran_dense_fallbacks > 0,
            "{label}: forced-dense mode produced nonzeros without falling back"
        );
    }
}

/// Second tier: both kernel modes against the independent tableau solver.
fn check_oracle_agreement(p: &Problem, label: &str) {
    let s = solve_with(p, &sparse_cfg()).expect("sparse-kernel solve");
    let o = solve_dense(p).expect("tableau oracle solve");
    assert_eq!(s.status, o.status, "{label}: status vs tableau oracle");
    if s.status == Status::Optimal {
        assert!(
            (s.objective - o.objective).abs() <= 1e-7 * (1.0 + s.objective.abs()),
            "{label}: objective {} vs tableau oracle {}",
            s.objective,
            o.objective
        );
        assert!(
            p.max_violation(&s.x) <= 1e-6,
            "{label}: sparse-kernel solution infeasible by {}",
            p.max_violation(&s.x)
        );
    }
}

#[test]
fn sparse_kernels_bit_identical_small() {
    let mut rng = StdRng::seed_from_u64(0x51AB_0001);
    for trial in 0..300 {
        let p = random_sparse_problem(&mut rng, 8, 8);
        check_bit_identity(&p, &format!("small trial {trial}"));
    }
}

#[test]
fn sparse_kernels_bit_identical_medium() {
    let mut rng = StdRng::seed_from_u64(0x51AB_0002);
    for trial in 0..40 {
        let p = random_sparse_problem(&mut rng, 30, 25);
        check_bit_identity(&p, &format!("medium trial {trial}"));
    }
}

#[test]
fn sparse_kernels_match_tableau_oracle() {
    let mut rng = StdRng::seed_from_u64(0x51AB_0003);
    for trial in 0..150 {
        let p = random_sparse_problem(&mut rng, 10, 10);
        check_oracle_agreement(&p, &format!("oracle trial {trial}"));
    }
}

/// A fully dense LP (every column in every row) drives the symbolic reach
/// over the density threshold, exercising the dense-fallback path in
/// normal (sparse) mode — and the answer must still match everything else.
#[test]
fn dense_degenerate_problem_exercises_fallback() {
    let mut rng = StdRng::seed_from_u64(0x51AB_0004);
    let mut p = Problem::new(Objective::Minimize);
    let n = 24;
    let m = 20;
    let cols: Vec<_> = (0..n)
        .map(|_| p.add_col(0.0, f64::INFINITY, rng.random_range(1i32..=9) as f64))
        .collect();
    // Dense *equality* rows: the optimal basis must carry ~m structural
    // (dense) columns, so the LU factors — and with them the BTRAN reach —
    // are dense too. The RHS is A·1, so x = 1 is feasible.
    for _ in 0..m {
        let coeffs: Vec<_> = cols
            .iter()
            .map(|&c| (c, rng.random_range(1i32..=5) as f64))
            .collect();
        let b: f64 = coeffs.iter().map(|&(_, v)| v).sum();
        p.add_row(b, b, &coeffs);
    }

    let s = solve_with(&p, &sparse_cfg()).expect("sparse-kernel solve");
    assert_eq!(s.status, Status::Optimal);
    assert!(
        s.stats.ftran_dense_fallbacks > 0,
        "fully dense problem never hit the FTRAN dense fallback: {:?}",
        s.stats
    );
    assert!(
        s.stats.btran_dense_fallbacks > 0,
        "fully dense problem never hit the BTRAN dense fallback: {:?}",
        s.stats
    );
    check_bit_identity(&p, "dense degenerate");
    check_oracle_agreement(&p, "dense degenerate");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Property form with shrinking: sparse and forced-dense kernels are
    /// bit-identical on arbitrary seeds.
    #[test]
    fn proptest_kernels_bit_identical(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = random_sparse_problem(&mut rng, 12, 12);
        check_bit_identity(&p, &format!("seed {seed}"));
    }

    /// Property form of the tableau-oracle agreement.
    #[test]
    fn proptest_kernels_match_oracle(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = random_sparse_problem(&mut rng, 9, 9);
        check_oracle_agreement(&p, &format!("oracle seed {seed}"));
    }
}
