//! Differential testing for basis-factorization persistence.
//!
//! A `SolverSession` under the persistence policies (`Interval`,
//! `CostModel`) carries its LU factorization across solves: bound/RHS/cost
//! edits and nonbasic column splices leave it untouched, row growth
//! extends it in product form, and the solve entry skips `Lu::factor`
//! when the carried factors pass the residual spot-check. The PR 1 warm
//! guarantee must survive all of it: reuse may change work counters,
//! never answers. These tests pit a reusing session against a
//! from-scratch cold solve of the identical mutated problem (status
//! exact, objective to 1e-9), and prove the residual guard rejects a
//! deliberately corrupted factorization instead of propagating it.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use wavesched_lp::{
    solve, Col, NewColumn, NewRow, Objective, Problem, RefactorPolicy, Row, SimplexConfig,
    SolverSession, Status,
};

/// Random LP from integer-ish data (mirrors `tests/dual_differential.rs`),
/// so borderline feasibility at tolerance level is avoided.
fn random_problem(rng: &mut StdRng, nmax: usize, mmax: usize) -> Problem {
    let maximize = rng.random_range(0..2) == 0;
    let mut p = Problem::new(if maximize {
        Objective::Maximize
    } else {
        Objective::Minimize
    });
    let n = rng.random_range(1..=nmax);
    let m = rng.random_range(1..=mmax);
    let mut cols = Vec::new();
    for _ in 0..n {
        let cost = rng.random_range(-4i32..=4) as f64;
        let kind = rng.random_range(0..4);
        let (l, u) = match kind {
            0 => (0.0, rng.random_range(1i32..=10) as f64),
            1 => (0.0, f64::INFINITY),
            2 => (
                rng.random_range(-5i32..=0) as f64,
                rng.random_range(1i32..=8) as f64,
            ),
            _ => (f64::NEG_INFINITY, rng.random_range(0i32..=9) as f64),
        };
        cols.push(p.add_col(l, u, cost));
    }
    for _ in 0..m {
        let mut coeffs = Vec::new();
        for &c in &cols {
            if rng.random_range(0..100) < 60 {
                let v = rng.random_range(-3i32..=3) as f64;
                if v != 0.0 {
                    coeffs.push((c, v));
                }
            }
        }
        let kind = rng.random_range(0..4);
        let b1 = rng.random_range(-10i32..=20) as f64;
        let b2 = b1 + rng.random_range(0i32..=10) as f64;
        let (lb, ub) = match kind {
            0 => (f64::NEG_INFINITY, b2),
            1 => (b1, f64::INFINITY),
            2 => (b1, b2),
            _ => (b2, b2),
        };
        p.add_row(lb, ub, &coeffs);
    }
    p
}

/// One random in-place edit applied to *both* views of the problem:
/// bound/RHS moves, a cost change, a column splice, or a row splice —
/// every edit class the persistence layer claims to survive.
fn edit_both(p: &mut Problem, sess: &mut SolverSession, rng: &mut StdRng) {
    match rng.random_range(0..5) {
        // Column bound move.
        0 => {
            let ncols = p.num_cols();
            let c = Col::from_index(rng.random_range(0..ncols));
            let (l, u) = p.col_bounds(c);
            let d = rng.random_range(-2i32..=2) as f64;
            let nl = if l.is_finite() { l + d } else { l };
            let nu = if u.is_finite() {
                u.max(nl) + d.abs()
            } else {
                u
            };
            let nl = if nu.is_finite() { nl.min(nu) } else { nl };
            p.set_col_bounds(c, nl, nu);
            sess.set_col_bounds(c, nl, nu);
        }
        // Row bound (RHS) move.
        1 => {
            let nrows = p.num_rows();
            let r = Row::from_index(rng.random_range(0..nrows));
            let (l, u) = p.row_bounds(r);
            let d = rng.random_range(-3i32..=3) as f64;
            let (nl, nu) = if l == u {
                (l + d, u + d)
            } else {
                (
                    if l.is_finite() { l + d } else { l },
                    if u.is_finite() { u + d.abs() } else { u },
                )
            };
            let (nl, nu) = if nl.is_finite() && nu.is_finite() && nl > nu {
                (nu, nl)
            } else {
                (nl, nu)
            };
            p.set_row_bounds(r, nl, nu);
            sess.set_row_bounds(r, nl, nu);
        }
        // Cost change.
        2 => {
            let c = Col::from_index(rng.random_range(0..p.num_cols()));
            let cost = rng.random_range(-4i32..=4) as f64;
            p.set_cost(c, cost);
            sess.set_cost(c, cost);
        }
        // Column splice (delayed column generation step).
        3 => {
            let nrows = p.num_rows();
            let mut news = Vec::new();
            for _ in 0..rng.random_range(1..=2usize) {
                let mut entries = Vec::new();
                for i in 0..nrows {
                    if rng.random_range(0..100) < 60 {
                        let v = rng.random_range(-3i32..=3) as f64;
                        if v != 0.0 {
                            entries.push((Row::from_index(i), v));
                        }
                    }
                }
                news.push(NewColumn {
                    lower: 0.0,
                    upper: rng.random_range(1i32..=8) as f64,
                    cost: rng.random_range(-4i32..=4) as f64,
                    entries,
                });
            }
            sess.add_columns(&news);
            for nc in &news {
                let c = p.add_col(nc.lower, nc.upper, nc.cost);
                for &(r, v) in &nc.entries {
                    p.set_coeff(r, c, v);
                }
            }
        }
        // Row splice (CG capacity-row growth; entries over existing
        // columns exercise the product-form coupling etas).
        _ => {
            let ncols = p.num_cols();
            let mut entries = Vec::new();
            for j in 0..ncols {
                if rng.random_range(0..100) < 50 {
                    let v = rng.random_range(-3i32..=3) as f64;
                    if v != 0.0 {
                        entries.push((Col::from_index(j), v));
                    }
                }
            }
            let b = rng.random_range(-5i32..=15) as f64;
            sess.add_rows(&[NewRow {
                lower: f64::NEG_INFINITY,
                upper: b,
                entries: entries.clone(),
            }]);
            let coeffs: Vec<(Col, f64)> = entries;
            p.add_row(f64::NEG_INFINITY, b, &coeffs);
        }
    }
}

/// Reusing session vs cold solve across a random edit sequence. Returns
/// the session's accumulated `lu_reuse_hits` so callers can assert the
/// reuse path actually engaged over a batch of seeds.
fn check_reuse_vs_cold(seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = random_problem(&mut rng, 7, 6);
    let mut sess = SolverSession::new(&p).unwrap();
    let first = sess.solve().expect("first session solve");
    let cold_first = solve(&p).expect("first cold solve");
    assert_eq!(first.status, cold_first.status, "seed {seed}: first status");

    for step in 0..6 {
        edit_both(&mut p, &mut sess, &mut rng);
        let warm = sess.solve().expect("session re-solve");
        let cold = solve(&p).expect("cold control solve");
        assert_eq!(
            warm.status, cold.status,
            "seed {seed} step {step}: status diverged (reuse changed an answer)"
        );
        if warm.status == Status::Optimal {
            let scale = 1.0 + cold.objective.abs();
            assert!(
                (warm.objective - cold.objective).abs() <= 1e-9 * scale,
                "seed {seed} step {step}: objective diverged: reuse {} vs cold {}",
                warm.objective,
                cold.objective
            );
        }
    }
    sess.stats().lu_reuse_hits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Property form of the reuse-vs-cold differential over random
    /// bound/RHS/cost edit sequences and column/row splices.
    #[test]
    fn proptest_reuse_matches_cold(seed in any::<u64>()) {
        check_reuse_vs_cold(seed);
    }
}

/// The reuse path must actually engage across a seed batch — a silent
/// "never reuses" regression would make the differential vacuous.
#[test]
fn reuse_engages_across_seed_batch() {
    let mut hits = 0;
    for seed in 0..24u64 {
        hits += check_reuse_vs_cold(seed);
    }
    assert!(
        hits > 0,
        "no solve took the factorization-reuse path across the whole batch"
    );
}

/// Bound-edit chain on one session: every re-solve after the first must
/// enter through the carried factorization (no `Lu::factor` at entry).
#[test]
fn bound_edit_chain_reuses_factorization() {
    // max x + 2y, x + y <= 8, y <= 5 — repeatedly tighten the first row.
    let mut p = Problem::new(Objective::Maximize);
    let x = p.add_col(0.0, 10.0, 1.0);
    let y = p.add_col(0.0, 10.0, 2.0);
    let r = p.add_row(f64::NEG_INFINITY, 8.0, &[(x, 1.0), (y, 1.0)]);
    p.add_row(f64::NEG_INFINITY, 5.0, &[(y, 1.0)]);
    let mut sess = SolverSession::new(&p).unwrap();
    assert_eq!(sess.solve().unwrap().status, Status::Optimal);

    for (k, rhs) in [7.0, 6.0, 5.0, 4.0].into_iter().enumerate() {
        sess.set_row_bounds(r, f64::NEG_INFINITY, rhs);
        p.set_row_bounds(r, f64::NEG_INFINITY, rhs);
        let s = sess.solve().unwrap();
        let cold = solve(&p).unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_eq!(
            s.stats.lu_reuse_hits, 1,
            "step {k}: bound-only re-solve must reuse the carried LU: {:?}",
            s.stats
        );
        assert_eq!(s.objective, cold.objective, "step {k}: objective");
        assert_eq!(s.x, cold.x, "step {k}: primal point");
    }
}

/// Row growth with coupling entries on existing basic columns: the
/// carried LU is extended in product form (`lu_updates` counts the
/// coupling etas) and the re-solve still matches cold.
#[test]
fn row_splice_extends_factorization_in_product_form() {
    let mut p = Problem::new(Objective::Maximize);
    let x = p.add_col(0.0, 10.0, 1.0);
    let y = p.add_col(0.0, 10.0, 2.0);
    p.add_row(2.0, 8.0, &[(x, 1.0), (y, 1.0)]);
    p.add_row(f64::NEG_INFINITY, 5.0, &[(y, 1.0)]);
    let mut sess = SolverSession::new(&p).unwrap();
    assert_eq!(sess.solve().unwrap().status, Status::Optimal);

    // New row cutting the previous optimum (x=3, y=5), with entries on
    // both structural columns — the basic ones force coupling etas.
    sess.add_rows(&[NewRow {
        lower: f64::NEG_INFINITY,
        upper: 6.0,
        entries: vec![(x, 1.0), (y, 1.0)],
    }]);
    p.add_row(f64::NEG_INFINITY, 6.0, &[(x, 1.0), (y, 1.0)]);

    let s = sess.solve().unwrap();
    let cold = solve(&p).unwrap();
    assert_eq!(s.status, Status::Optimal);
    assert_eq!(cold.status, Status::Optimal);
    assert!(
        (s.objective - cold.objective).abs() <= 1e-9 * (1.0 + cold.objective.abs()),
        "objective diverged: spliced {} vs cold {}",
        s.objective,
        cold.objective
    );
    assert_eq!(
        s.stats.lu_reuse_hits, 1,
        "row splice must keep the factorization live: {:?}",
        s.stats
    );
    assert!(
        s.stats.lu_updates >= 1,
        "coupling entries must be carried as product-form updates: {:?}",
        s.stats
    );
}

/// The residual guard: a corrupted factorization must be rejected at the
/// reuse gate (`refactor_reuse_rejected`), the solve must fall back to a
/// fresh factor, and the answer must still match cold.
#[test]
fn corrupted_lu_is_rejected_and_falls_back_cold() {
    let (mut p, r) = {
        let mut p = Problem::new(Objective::Maximize);
        let x = p.add_col(0.0, 10.0, 1.0);
        let y = p.add_col(0.0, 10.0, 2.0);
        let r = p.add_row(f64::NEG_INFINITY, 8.0, &[(x, 1.0), (y, 1.0)]);
        p.add_row(f64::NEG_INFINITY, 5.0, &[(y, 1.0)]);
        (p, r)
    };
    let mut sess = SolverSession::new(&p).unwrap();
    assert_eq!(sess.solve().unwrap().status, Status::Optimal);

    sess.debug_corrupt_factorization();
    sess.set_row_bounds(r, f64::NEG_INFINITY, 4.0);
    p.set_row_bounds(r, f64::NEG_INFINITY, 4.0);
    let s = sess.solve().unwrap();
    let cold = solve(&p).unwrap();

    assert_eq!(
        s.stats.refactor_reuse_rejected, 1,
        "residual guard must reject the corrupted factors: {:?}",
        s.stats
    );
    assert_eq!(
        s.stats.lu_reuse_hits, 0,
        "a rejected reuse must not count as a hit: {:?}",
        s.stats
    );
    assert_eq!(s.status, Status::Optimal);
    assert_eq!(s.objective, cold.objective, "fallback answer drifted");
    assert_eq!(s.x, cold.x, "fallback primal point drifted");

    // The rejection fell back to a fresh factor and re-armed on the new
    // optimum: the next bound-only re-solve reuses again.
    sess.set_row_bounds(r, f64::NEG_INFINITY, 3.0);
    let s2 = sess.solve().unwrap();
    assert_eq!(s2.status, Status::Optimal);
    assert_eq!(
        s2.stats.lu_reuse_hits, 1,
        "reuse must re-arm after a clean fallback solve: {:?}",
        s2.stats
    );
}

/// Under `RefactorPolicy::Always` the session must never take the reuse
/// path — the A/B baseline CI compares answers against.
#[test]
fn always_policy_disables_reuse() {
    let mut p = Problem::new(Objective::Maximize);
    let x = p.add_col(0.0, 10.0, 1.0);
    let r = p.add_row(f64::NEG_INFINITY, 6.0, &[(x, 1.0)]);
    let cfg = SimplexConfig {
        refactor_policy: RefactorPolicy::Always,
        ..SimplexConfig::default()
    };
    let mut sess = SolverSession::with_config(&p, &cfg).unwrap();
    assert_eq!(sess.solve().unwrap().status, Status::Optimal);
    for rhs in [5.0, 4.0, 3.0] {
        sess.set_row_bounds(r, f64::NEG_INFINITY, rhs);
        let s = sess.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_eq!(
            s.stats.lu_reuse_hits, 0,
            "Always policy must pin reuse off: {:?}",
            s.stats
        );
        assert_eq!(s.stats.refactor_reuse_rejected, 0);
    }
}
