//! Differential testing for the dual simplex re-solve path and the
//! candidate-list partial pricing option.
//!
//! The dual path is selected by `SolverSession` only when the carried basis
//! is its own last optimal basis and every edit since was a bound/RHS edit.
//! The PR 1 warm-start guarantee must survive: the dual path may change work
//! counters, never answers. These tests pit a session's dual re-solve
//! against a from-scratch cold solve of the identical mutated problem, and
//! the partial-pricing primal against the full-pricing oracle.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use wavesched_lp::{
    solve, solve_with, solve_with_start, Basis, BasisStatus, Col, NewColumn, Objective, Problem,
    RefactorPolicy, Row, SimplexConfig, SolverSession, Status,
};

/// Random LP from integer-ish data (mirrors `tests/differential.rs`), so
/// borderline feasibility at tolerance level is avoided.
fn random_problem(rng: &mut StdRng, nmax: usize, mmax: usize) -> Problem {
    let maximize = rng.random_range(0..2) == 0;
    let mut p = Problem::new(if maximize {
        Objective::Maximize
    } else {
        Objective::Minimize
    });
    let n = rng.random_range(1..=nmax);
    let m = rng.random_range(0..=mmax);
    let mut cols = Vec::new();
    for _ in 0..n {
        let cost = rng.random_range(-4i32..=4) as f64;
        let kind = rng.random_range(0..4);
        let (l, u) = match kind {
            0 => (0.0, rng.random_range(1i32..=10) as f64),
            1 => (0.0, f64::INFINITY),
            2 => (
                rng.random_range(-5i32..=0) as f64,
                rng.random_range(1i32..=8) as f64,
            ),
            _ => (f64::NEG_INFINITY, rng.random_range(0i32..=9) as f64),
        };
        cols.push(p.add_col(l, u, cost));
    }
    for _ in 0..m {
        let mut coeffs = Vec::new();
        for &c in &cols {
            if rng.random_range(0..100) < 60 {
                let v = rng.random_range(-3i32..=3) as f64;
                if v != 0.0 {
                    coeffs.push((c, v));
                }
            }
        }
        let kind = rng.random_range(0..4);
        let b1 = rng.random_range(-10i32..=20) as f64;
        let b2 = b1 + rng.random_range(0i32..=10) as f64;
        let (lb, ub) = match kind {
            0 => (f64::NEG_INFINITY, b2),
            1 => (b1, f64::INFINITY),
            2 => (b1, b2),
            _ => (b1, b1),
        };
        p.add_row(lb, ub, &coeffs);
    }
    p
}

/// Applies 1–4 random bound/RHS edits to `p` and mirrors each onto `sess`,
/// keeping the two views of the problem identical. Only the edit kinds that
/// qualify for the dual re-solve path are used (no cost or structure edits).
fn perturb_both(p: &mut Problem, sess: &mut SolverSession, rng: &mut StdRng) {
    let ncols = p.num_cols();
    let nrows = p.num_rows();
    for _ in 0..rng.random_range(1..=4) {
        if ncols > 0 && rng.random_range(0..2) == 0 {
            let c = Col::from_index(rng.random_range(0..ncols));
            let (l, u) = p.col_bounds(c);
            let d = rng.random_range(-2i32..=2) as f64;
            // Move whichever sides are finite, in either direction, but keep
            // l <= u so the edit stays a valid box.
            let nl = if l.is_finite() { l + d } else { l };
            let nu = if u.is_finite() {
                u.max(nl) + d.abs()
            } else {
                u
            };
            let nl = if nu.is_finite() { nl.min(nu) } else { nl };
            p.set_col_bounds(c, nl, nu);
            sess.set_col_bounds(c, nl, nu);
        } else if nrows > 0 {
            let r = Row::from_index(rng.random_range(0..nrows));
            let (l, u) = p.row_bounds(r);
            let d = rng.random_range(-3i32..=3) as f64;
            let (nl, nu) = if l == u {
                // Keep equalities equalities: shift the RHS.
                (l + d, u + d)
            } else {
                (
                    if l.is_finite() { l + d } else { l },
                    if u.is_finite() {
                        u + d.abs().max(if l.is_finite() { d } else { 0.0 })
                    } else {
                        u
                    },
                )
            };
            let (nl, nu) = if nl.is_finite() && nu.is_finite() && nl > nu {
                (nu, nl)
            } else {
                (nl, nu)
            };
            p.set_row_bounds(r, nl, nu);
            sess.set_row_bounds(r, nl, nu);
        }
    }
}

/// Crafted instance where a RHS tighten makes the optimal basis primal
/// infeasible while staying dual feasible: the canonical dual re-solve.
///
///   max x + 2y,  x + y <= 8,  y <= 5,  x,y in [0, 10]
///
/// First optimum: y = 5, x = 3. Tightening the first row to <= 4 drives the
/// basic x to -1 < 0, so the dual simplex must pivot it out.
fn tighten_instance() -> (Problem, Row) {
    let mut p = Problem::new(Objective::Maximize);
    let x = p.add_col(0.0, 10.0, 1.0);
    let y = p.add_col(0.0, 10.0, 2.0);
    let r = p.add_row(f64::NEG_INFINITY, 8.0, &[(x, 1.0), (y, 1.0)]);
    p.add_row(f64::NEG_INFINITY, 5.0, &[(y, 1.0)]);
    (p, r)
}

#[test]
fn dual_path_engages_on_rhs_tighten() {
    let (mut p, r) = tighten_instance();
    let mut sess = SolverSession::new(&p).unwrap();
    let s1 = sess.solve().unwrap();
    assert_eq!(s1.status, Status::Optimal);
    assert!((s1.objective - 13.0).abs() < 1e-9);

    p.set_row_bounds(r, f64::NEG_INFINITY, 4.0);
    sess.set_row_bounds(r, f64::NEG_INFINITY, 4.0);
    let s2 = sess.solve().unwrap();
    let cold = solve(&p).unwrap();

    assert_eq!(s2.status, Status::Optimal);
    assert!(
        s2.stats.dual_iterations > 0,
        "RHS tighten from an own optimal basis must take the dual path: {:?}",
        s2.stats
    );
    assert_eq!(s2.stats.warm_starts_accepted, 1);
    assert_eq!(s2.stats.warm_start_fallbacks, 0);
    // Nondegenerate unique optimum: both paths refactorize at their final
    // verification pass, so the extracted answers agree bitwise.
    assert_eq!(s2.objective, cold.objective, "objective drifted");
    assert_eq!(s2.x, cold.x, "primal point drifted");
    assert_eq!(s2.duals, cold.duals, "duals drifted");
}

#[test]
fn dual_path_skipped_after_cost_edit() {
    let (mut p, r) = tighten_instance();
    let mut sess = SolverSession::new(&p).unwrap();
    sess.solve().unwrap();

    // A *real* cost change invalidates dual feasibility of the carried
    // basis; the session must route the re-solve down the primal warm path.
    let y = Col::from_index(1);
    sess.set_cost(y, 3.0);
    p.set_row_bounds(r, f64::NEG_INFINITY, 4.0);
    sess.set_row_bounds(r, f64::NEG_INFINITY, 4.0);
    let s2 = sess.solve().unwrap();
    assert_eq!(s2.status, Status::Optimal);
    assert_eq!(s2.stats.dual_iterations, 0, "cost edit must disable dual");

    // Re-setting an identical coefficient is a no-op and must NOT disable
    // the dual path on the next bound edit. Tighten the y <= 5 row so the
    // *basic* y becomes infeasible and a dual pivot is forced (tightening a
    // nonbasic row activity just re-parks it: zero-pivot dual convergence).
    sess.set_cost(y, 3.0);
    sess.set_row_bounds(Row::from_index(1), f64::NEG_INFINITY, 2.0);
    let s3 = sess.solve().unwrap();
    assert_eq!(s3.status, Status::Optimal);
    assert!(
        s3.stats.dual_iterations > 0,
        "identical-value set_cost must not mark costs dirty: {:?}",
        s3.stats
    );
}

#[test]
fn dual_path_infeasible_edit_falls_back_to_cold_proof() {
    // After an optimal solve, contradictory row RHS edits make the problem
    // infeasible. The dual path has no entering column for the stuck row;
    // that is NOT an infeasibility proof, so the session must fall back and
    // report Infeasible from the cold phase-1 proof.
    let mut p = Problem::new(Objective::Maximize);
    let x = p.add_col(0.0, 100.0, 1.0);
    let r1 = p.add_row(3.0, 3.0, &[(x, 1.0)]);
    let _r2 = p.add_row(f64::NEG_INFINITY, 10.0, &[(x, 1.0)]);
    let mut sess = SolverSession::new(&p).unwrap();
    assert_eq!(sess.solve().unwrap().status, Status::Optimal);

    // x = 3 (r1) contradicts x = 8 (r2 turned equality).
    sess.set_row_bounds(Row::from_index(1), 8.0, 8.0);
    p.set_row_bounds(Row::from_index(1), 8.0, 8.0);
    let warm = sess.solve().unwrap();
    let cold = solve(&p).unwrap();
    assert_eq!(cold.status, Status::Infeasible);
    assert_eq!(
        warm.status,
        Status::Infeasible,
        "dual dead-end must not mask infeasibility (r1 pins x={:?})",
        r1
    );
}

/// Session dual re-solve vs cold solve of the identical mutated problem.
fn check_session_vs_cold(seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = random_problem(&mut rng, 8, 8);
    let mut sess = SolverSession::new(&p).unwrap();
    let first = sess.solve().expect("first session solve");
    let cold_first = solve(&p).expect("first cold solve");
    assert_eq!(first.status, cold_first.status, "seed {seed}: first status");

    let mut dual_iters = 0;
    for step in 0..3 {
        perturb_both(&mut p, &mut sess, &mut rng);
        let warm = sess.solve().expect("session re-solve");
        let cold = solve(&p).expect("cold re-solve");
        assert_eq!(
            warm.status, cold.status,
            "seed {seed} step {step}: status mismatch warm={:?} cold={:?} (stats {:?})",
            warm.status, cold.status, warm.stats
        );
        if cold.status == Status::Optimal {
            assert!(
                (warm.objective - cold.objective).abs() <= 1e-9 * (1.0 + cold.objective.abs()),
                "seed {seed} step {step}: objective warm={} cold={}",
                warm.objective,
                cold.objective
            );
            assert!(
                p.max_violation(&warm.x) <= 1e-6,
                "seed {seed} step {step}: warm point infeasible by {}",
                p.max_violation(&warm.x)
            );
        }
        dual_iters += warm.stats.dual_iterations;
    }
    dual_iters
}

#[test]
fn dual_resolves_match_cold_across_seeds() {
    // Deterministic sweep so we can also assert the dual path actually
    // engages somewhere in the population (proptest cases are independent
    // and can't aggregate).
    let total: u64 = (0..150).map(check_session_vs_cold).sum();
    assert!(
        total > 0,
        "dual path never engaged across 150 seeded perturbation runs"
    );
}

#[test]
fn infeasible_with_corrupted_basis_still_proven() {
    // An infeasible instance offered deliberately corrupted warm bases must
    // still report Infeasible via the cold phase-1 proof — fallback may
    // only burn counters, never mask the status.
    let mut rng = StdRng::seed_from_u64(0xD15EA5E);
    for trial in 0..60 {
        let mut p = random_problem(&mut rng, 6, 5);
        // Contradictory pair of equality rows over the first column.
        let c0 = Col::from_index(0);
        p.add_row(1.0, 1.0, &[(c0, 1.0)]);
        p.add_row(4.0, 4.0, &[(c0, 1.0)]);
        let cold = solve(&p).unwrap();
        assert_eq!(cold.status, Status::Infeasible, "trial {trial}");

        let statuses = [
            BasisStatus::Basic,
            BasisStatus::AtLower,
            BasisStatus::AtUpper,
            BasisStatus::Free,
        ];
        let garbage = Basis {
            cols: (0..p.num_cols())
                .map(|_| statuses[rng.random_range(0..4)])
                .collect(),
            rows: (0..p.num_rows())
                .map(|_| statuses[rng.random_range(0..4)])
                .collect(),
        };
        let warm = solve_with_start(&p, &SimplexConfig::default(), Some(&garbage)).unwrap();
        assert_eq!(
            warm.status,
            Status::Infeasible,
            "trial {trial}: corrupted basis masked infeasibility ({:?})",
            warm.stats
        );
    }
}

/// The pivot-for-pivot regression for `SolverSession::add_columns`: the
/// spliced session must behave exactly like a fresh session on the merged
/// problem that was handed the identically extended warm basis. Any stale
/// Devex weight or pricing scratch left over from before the splice would
/// bias entering choices and break the stats equality below.
#[test]
fn add_columns_matches_fresh_session_on_merged_problem() {
    let mut rng = StdRng::seed_from_u64(0xADDC01);
    for trial in 0..40 {
        let base = random_problem(&mut rng, 6, 6);
        let nrows = base.num_rows();
        if nrows == 0 {
            continue;
        }
        // Pin the refactorization policy to `Always` on both sides: the
        // point of this test is the *pivot-for-pivot* stats equality below,
        // and under the persistence policies the spliced session reuses its
        // own factorization while the fresh session (foreign basis) cannot,
        // legitimately splitting the refactorization counters. Answer-level
        // reuse coverage lives in `tests/lu_persistence.rs`.
        let cfg = SimplexConfig {
            refactor_policy: RefactorPolicy::Always,
            ..SimplexConfig::default()
        };
        let mut sess = SolverSession::with_config(&base, &cfg).unwrap();
        let first = sess.solve().unwrap();
        if first.status != Status::Optimal {
            continue;
        }
        let basis = first.basis.clone().expect("optimal basis");

        // A couple of new columns with random entries over existing rows.
        let mut news = Vec::new();
        for _ in 0..rng.random_range(1..=3usize) {
            let mut entries = Vec::new();
            for i in 0..nrows {
                if rng.random_range(0..100) < 60 {
                    let v = rng.random_range(-3i32..=3) as f64;
                    if v != 0.0 {
                        entries.push((Row::from_index(i), v));
                    }
                }
            }
            news.push(NewColumn {
                lower: 0.0,
                upper: rng.random_range(1i32..=8) as f64,
                cost: rng.random_range(-4i32..=4) as f64,
                entries,
            });
        }

        sess.add_columns(&news);
        let spliced = sess.solve().unwrap();

        // Merged problem built from scratch in the same column order.
        let mut merged = base.clone();
        let mut ext = basis.clone();
        for nc in &news {
            let c = merged.add_col(nc.lower, nc.upper, nc.cost);
            for &(r, v) in &nc.entries {
                merged.set_coeff(r, c, v);
            }
            // Same parking rule add_columns applies to the carried basis.
            ext.cols
                .push(if nc.lower.is_finite() && nc.upper.is_finite() {
                    if nc.lower.abs() <= nc.upper.abs() {
                        BasisStatus::AtLower
                    } else {
                        BasisStatus::AtUpper
                    }
                } else if nc.lower.is_finite() {
                    BasisStatus::AtLower
                } else if nc.upper.is_finite() {
                    BasisStatus::AtUpper
                } else {
                    BasisStatus::Free
                });
        }
        let mut fresh = SolverSession::with_config(&merged, &cfg).unwrap();
        fresh.warm_start_from(ext);
        let reference = fresh.solve().unwrap();

        assert_eq!(spliced.status, reference.status, "trial {trial}: status");
        assert_eq!(
            spliced.objective, reference.objective,
            "trial {trial}: objective diverged — stale pricing state after add_columns?"
        );
        assert_eq!(spliced.x, reference.x, "trial {trial}: x diverged");
        assert_eq!(
            spliced.stats, reference.stats,
            "trial {trial}: pivot sequence diverged (work counters differ)"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Property form of the session-vs-cold differential, with shrinking.
    #[test]
    fn proptest_dual_resolve_matches_cold(seed in any::<u64>()) {
        check_session_vs_cold(seed);
    }

    /// Candidate-list partial pricing reaches the same status and objective
    /// as the full-pricing oracle (the vertex may differ on degenerate
    /// faces, which is why answers-bearing consumers keep full pricing).
    #[test]
    fn proptest_partial_pricing_matches_full_objective(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = random_problem(&mut rng, 10, 8);
        let full = solve(&p).expect("full pricing solve");
        let cfg = SimplexConfig { partial_pricing: true, ..SimplexConfig::default() };
        let partial = solve_with(&p, &cfg).expect("partial pricing solve");
        prop_assert_eq!(full.status, partial.status, "status mismatch");
        if full.status == Status::Optimal {
            prop_assert!(
                (full.objective - partial.objective).abs()
                    <= 1e-7 * (1.0 + full.objective.abs()),
                "objective mismatch full={} partial={}", full.objective, partial.objective
            );
            prop_assert!(
                p.max_violation(&partial.x) <= 1e-6,
                "partial-pricing point infeasible by {}", p.max_violation(&partial.x)
            );
        }
    }

    /// Infeasible problems stay proven infeasible through a session's dual
    /// path: solve feasible, then force a contradiction via RHS edits only.
    #[test]
    fn proptest_dual_path_never_masks_infeasibility(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = random_problem(&mut rng, 6, 5);
        let c0 = Col::from_index(0);
        // Two rows on the same column, initially consistent.
        let ra = p.add_row(0.0, 0.0, &[(c0, 1.0)]);
        let rb = p.add_row(f64::NEG_INFINITY, 5.0, &[(c0, 1.0)]);
        let mut sess = SolverSession::new(&p).unwrap();
        let first = sess.solve().unwrap();
        let cold_first = solve(&p).unwrap();
        prop_assert_eq!(first.status, cold_first.status);
        // Pin them apart: x0 = 0 (ra) vs x0 = 3 (rb as equality).
        sess.set_row_bounds(rb, 3.0, 3.0);
        p.set_row_bounds(rb, 3.0, 3.0);
        let warm = sess.solve().unwrap();
        let cold = solve(&p).unwrap();
        prop_assert_eq!(cold.status, Status::Infeasible);
        prop_assert_eq!(warm.status, Status::Infeasible,
            "RHS-edit contradiction masked (ra={:?}, stats {:?})", ra, warm.stats);
    }
}
