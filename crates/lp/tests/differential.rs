//! Differential testing: the sparse revised simplex against the independent
//! dense tableau simplex, on randomized problems.
//!
//! The two solvers share no lowering, factorization, or pivoting code, so
//! agreement on status and objective is strong evidence of correctness.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use wavesched_lp::dense::solve_dense;
use wavesched_lp::{
    solve, solve_with_start, Basis, BasisStatus, Objective, Problem, SimplexConfig, SolverSession,
    Status,
};

/// Builds a random LP from integer-ish data so borderline feasibility (which
/// the two solvers could legitimately classify differently at tolerance
/// level) is avoided.
fn random_problem(rng: &mut StdRng, nmax: usize, mmax: usize) -> Problem {
    let maximize = rng.random_range(0..2) == 0;
    let mut p = Problem::new(if maximize {
        Objective::Maximize
    } else {
        Objective::Minimize
    });
    let n = rng.random_range(1..=nmax);
    let m = rng.random_range(0..=mmax);
    let mut cols = Vec::new();
    for _ in 0..n {
        let cost = rng.random_range(-4i32..=4) as f64;
        let kind = rng.random_range(0..4);
        let (l, u) = match kind {
            0 => (0.0, rng.random_range(1i32..=10) as f64),
            1 => (0.0, f64::INFINITY),
            2 => (
                rng.random_range(-5i32..=0) as f64,
                rng.random_range(1i32..=8) as f64,
            ),
            _ => (f64::NEG_INFINITY, rng.random_range(0i32..=9) as f64),
        };
        cols.push(p.add_col(l, u, cost));
    }
    for _ in 0..m {
        let mut coeffs = Vec::new();
        for &c in &cols {
            if rng.random_range(0..100) < 60 {
                let v = rng.random_range(-3i32..=3) as f64;
                if v != 0.0 {
                    coeffs.push((c, v));
                }
            }
        }
        let kind = rng.random_range(0..4);
        let b1 = rng.random_range(-10i32..=20) as f64;
        let b2 = b1 + rng.random_range(0i32..=10) as f64;
        let (lb, ub) = match kind {
            0 => (f64::NEG_INFINITY, b2),
            1 => (b1, f64::INFINITY),
            2 => (b1, b2),
            _ => (b1, b1),
        };
        p.add_row(lb, ub, &coeffs);
    }
    p
}

fn check_agreement(p: &Problem, label: &str) {
    let a = solve(p).expect("revised solve");
    let b = solve_dense(p).expect("dense solve");
    assert_eq!(
        a.status, b.status,
        "{label}: status mismatch revised={:?} dense={:?}",
        a.status, b.status
    );
    if a.status == Status::Optimal {
        assert!(
            (a.objective - b.objective).abs() <= 1e-5 * (1.0 + a.objective.abs()),
            "{label}: objective mismatch revised={} dense={}",
            a.objective,
            b.objective
        );
        // Both solutions must actually be feasible in the model.
        assert!(
            p.max_violation(&a.x) <= 1e-5,
            "{label}: revised solution infeasible by {}",
            p.max_violation(&a.x)
        );
        assert!(
            p.max_violation(&b.x) <= 1e-5,
            "{label}: dense solution infeasible by {}",
            p.max_violation(&b.x)
        );
        // The reported objective must match the reported point.
        assert!(
            (p.eval_objective(&a.x) - a.objective).abs() <= 1e-6 * (1.0 + a.objective.abs()),
            "{label}: revised objective inconsistent with x"
        );
    }
}

#[test]
fn small_randomized_agreement() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for trial in 0..500 {
        let p = random_problem(&mut rng, 6, 6);
        check_agreement(&p, &format!("small trial {trial}"));
    }
}

#[test]
fn medium_randomized_agreement() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for trial in 0..60 {
        let p = random_problem(&mut rng, 25, 20);
        check_agreement(&p, &format!("medium trial {trial}"));
    }
}

#[test]
fn tall_problems_agreement() {
    // Many rows, few columns: stresses phase 1 and basis repair paths.
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for trial in 0..60 {
        let p = random_problem(&mut rng, 4, 30);
        check_agreement(&p, &format!("tall trial {trial}"));
    }
}

/// Applies a random small perturbation to the bounds of a few columns and
/// rows of `p` (the warm-start scenario: the same structure, nearby data).
fn perturb(p: &mut Problem, rng: &mut StdRng) {
    let ncols = p.num_cols();
    let nrows = p.num_rows();
    for _ in 0..rng.random_range(1..=4) {
        if ncols > 0 && rng.random_range(0..2) == 0 {
            let c = wavesched_lp::Col::from_index(rng.random_range(0..ncols));
            let (l, u) = p.col_bounds(c);
            let d = rng.random_range(-2i32..=2) as f64;
            // Shift whichever sides are finite; keep l <= u.
            let nl = if l.is_finite() { l - d.abs() } else { l };
            let nu = if u.is_finite() { u + d.max(0.0) } else { u };
            p.set_col_bounds(c, nl, nu);
        } else if nrows > 0 {
            let r = wavesched_lp::Row::from_index(rng.random_range(0..nrows));
            let (l, u) = p.row_bounds(r);
            let d = rng.random_range(-3i32..=3) as f64;
            let (nl, nu) = if l == u {
                // Keep equalities equalities: move the RHS.
                (l + d, u + d)
            } else {
                (
                    if l.is_finite() { l - d.abs() } else { l },
                    if u.is_finite() { u + d.abs() } else { u },
                )
            };
            p.set_row_bounds(r, nl, nu);
        }
    }
}

/// Cold-solves `p`, perturbs it, then checks that a warm-started re-solve
/// from the first basis agrees with a cold solve of the perturbed problem.
fn check_warm_agreement(p: &mut Problem, rng: &mut StdRng, label: &str) {
    let first = solve(p).expect("first solve");
    let basis = first.basis.clone().expect("revised solve returns a basis");
    perturb(p, rng);
    let cold = solve(p).expect("cold re-solve");
    let warm = solve_with_start(p, &SimplexConfig::default(), Some(&basis)).expect("warm re-solve");
    assert_eq!(
        warm.status, cold.status,
        "{label}: status mismatch warm={:?} cold={:?}",
        warm.status, cold.status
    );
    if cold.status == Status::Optimal {
        assert!(
            (warm.objective - cold.objective).abs() <= 1e-9 * (1.0 + cold.objective.abs()),
            "{label}: objective mismatch warm={} cold={}",
            warm.objective,
            cold.objective
        );
        assert!(
            p.max_violation(&warm.x) <= 1e-6,
            "{label}: warm solution infeasible by {}",
            p.max_violation(&warm.x)
        );
    }
}

#[test]
fn warm_start_mismatched_basis_falls_back_cold() {
    // A basis from a differently-shaped problem must be rejected, not
    // mis-applied: the solve silently restarts cold and still answers.
    let mut small = Problem::new(Objective::Maximize);
    let x = small.add_col(0.0, 5.0, 1.0);
    small.add_row(f64::NEG_INFINITY, 3.0, &[(x, 1.0)]);
    let donor = solve(&small).unwrap().basis.unwrap();

    let mut big = Problem::new(Objective::Maximize);
    let a = big.add_col(0.0, 10.0, 2.0);
    let b = big.add_col(0.0, 10.0, 1.0);
    big.add_row(f64::NEG_INFINITY, 8.0, &[(a, 1.0), (b, 1.0)]);
    big.add_row(f64::NEG_INFINITY, 6.0, &[(a, 1.0)]);

    let warm = solve_with_start(&big, &SimplexConfig::default(), Some(&donor)).unwrap();
    let cold = solve(&big).unwrap();
    assert_eq!(warm.status, Status::Optimal);
    assert!((warm.objective - cold.objective).abs() <= 1e-9);
    assert_eq!(warm.stats.warm_start_fallbacks, 1);
    assert_eq!(warm.stats.warm_starts_accepted, 0);
}

#[test]
fn warm_start_garbage_basis_still_correct() {
    // Right shape, nonsense content (everything basic / everything at a
    // bound): install + repair must still land on the right answer.
    let mut rng = StdRng::seed_from_u64(0xDEAD);
    for trial in 0..50 {
        let p = random_problem(&mut rng, 8, 8);
        let cold = solve(&p).unwrap();
        for garbage in [
            Basis {
                cols: vec![BasisStatus::Basic; p.num_cols()],
                rows: vec![BasisStatus::Basic; p.num_rows()],
            },
            Basis {
                cols: vec![BasisStatus::AtLower; p.num_cols()],
                rows: vec![BasisStatus::AtUpper; p.num_rows()],
            },
            Basis {
                cols: vec![BasisStatus::Free; p.num_cols()],
                rows: vec![BasisStatus::AtLower; p.num_rows()],
            },
        ] {
            let warm = solve_with_start(&p, &SimplexConfig::default(), Some(&garbage))
                .expect("warm solve");
            assert_eq!(
                warm.status, cold.status,
                "garbage trial {trial}: status mismatch"
            );
            if cold.status == Status::Optimal {
                assert!(
                    (warm.objective - cold.objective).abs() <= 1e-9 * (1.0 + cold.objective.abs()),
                    "garbage trial {trial}: {} vs {}",
                    warm.objective,
                    cold.objective
                );
            }
        }
    }
}

#[test]
fn session_tracks_repeated_mutations() {
    // A session re-solving a shrinking knapsack stays correct against
    // from-scratch cold solves at every step.
    let mut p = Problem::new(Objective::Maximize);
    let cols: Vec<_> = (0..6)
        .map(|i| p.add_col(0.0, 4.0, 1.0 + i as f64))
        .collect();
    let coeffs: Vec<_> = cols.iter().map(|&c| (c, 1.0)).collect();
    let budget = p.add_row(f64::NEG_INFINITY, 12.0, &coeffs);

    let mut sess = SolverSession::new(&p).unwrap();
    for cap in (0..=12).rev() {
        p.set_row_bounds(budget, f64::NEG_INFINITY, cap as f64);
        sess.set_row_bounds(budget, f64::NEG_INFINITY, cap as f64);
        let cold = solve(&p).unwrap();
        let warm = sess.solve().unwrap();
        assert_eq!(warm.status, cold.status, "cap {cap}");
        assert!(
            (warm.objective - cold.objective).abs() <= 1e-9 * (1.0 + cold.objective.abs()),
            "cap {cap}: warm {} cold {}",
            warm.objective,
            cold.objective
        );
    }
    let stats = sess.stats();
    assert_eq!(stats.solves, 13);
    assert!(
        stats.warm_starts_accepted >= 12,
        "expected warm re-solves, got {stats:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Property form of the differential check, with shrinking on failure.
    #[test]
    fn proptest_agreement(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = random_problem(&mut rng, 8, 8);
        check_agreement(&p, &format!("seed {seed}"));
    }

    /// Warm-started re-solves after random bound/RHS perturbations match a
    /// cold solve of the perturbed problem to 1e-9.
    #[test]
    fn proptest_warm_matches_cold(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = random_problem(&mut rng, 8, 8);
        check_warm_agreement(&mut p, &mut rng, &format!("warm seed {seed}"));
    }

    /// Weak duality sanity: for optimal maximization LPs with only
    /// upper-bounded rows and nonnegative variables, b'y bounds the primal.
    #[test]
    fn proptest_weak_duality(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = Problem::new(Objective::Maximize);
        let n = rng.random_range(1..6usize);
        let m = rng.random_range(1..6usize);
        let cols: Vec<_> = (0..n)
            .map(|_| p.add_col(0.0, f64::INFINITY, rng.random_range(0i32..5) as f64))
            .collect();
        let mut rhs = Vec::new();
        for _ in 0..m {
            let coeffs: Vec<_> = cols
                .iter()
                .filter_map(|&c| {
                    let v = rng.random_range(0i32..=3) as f64;
                    (v > 0.0).then_some((c, v))
                })
                .collect();
            let b = rng.random_range(1i32..=15) as f64;
            rhs.push(b);
            p.add_row(f64::NEG_INFINITY, b, &coeffs);
        }
        let s = solve(&p).expect("solve");
        if s.status == Status::Optimal {
            let dual_obj: f64 = rhs.iter().zip(&s.duals).map(|(b, y)| b * y).collect::<Vec<_>>().iter().sum();
            // Strong duality should hold at optimum.
            prop_assert!((dual_obj - s.objective).abs() <= 1e-5 * (1.0 + s.objective.abs()),
                "primal {} vs dual {}", s.objective, dual_obj);
            // Duals of <= rows in a max problem are nonnegative.
            for &y in &s.duals {
                prop_assert!(y >= -1e-7, "negative dual {y}");
            }
        }
    }
}
