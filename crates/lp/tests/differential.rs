//! Differential testing: the sparse revised simplex against the independent
//! dense tableau simplex, on randomized problems.
//!
//! The two solvers share no lowering, factorization, or pivoting code, so
//! agreement on status and objective is strong evidence of correctness.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use wavesched_lp::dense::solve_dense;
use wavesched_lp::{solve, Objective, Problem, Status};

/// Builds a random LP from integer-ish data so borderline feasibility (which
/// the two solvers could legitimately classify differently at tolerance
/// level) is avoided.
fn random_problem(rng: &mut StdRng, nmax: usize, mmax: usize) -> Problem {
    let maximize = rng.random_range(0..2) == 0;
    let mut p = Problem::new(if maximize {
        Objective::Maximize
    } else {
        Objective::Minimize
    });
    let n = rng.random_range(1..=nmax);
    let m = rng.random_range(0..=mmax);
    let mut cols = Vec::new();
    for _ in 0..n {
        let cost = rng.random_range(-4i32..=4) as f64;
        let kind = rng.random_range(0..4);
        let (l, u) = match kind {
            0 => (0.0, rng.random_range(1i32..=10) as f64),
            1 => (0.0, f64::INFINITY),
            2 => (rng.random_range(-5i32..=0) as f64, rng.random_range(1i32..=8) as f64),
            _ => (f64::NEG_INFINITY, rng.random_range(0i32..=9) as f64),
        };
        cols.push(p.add_col(l, u, cost));
    }
    for _ in 0..m {
        let mut coeffs = Vec::new();
        for &c in &cols {
            if rng.random_range(0..100) < 60 {
                let v = rng.random_range(-3i32..=3) as f64;
                if v != 0.0 {
                    coeffs.push((c, v));
                }
            }
        }
        let kind = rng.random_range(0..4);
        let b1 = rng.random_range(-10i32..=20) as f64;
        let b2 = b1 + rng.random_range(0i32..=10) as f64;
        let (lb, ub) = match kind {
            0 => (f64::NEG_INFINITY, b2),
            1 => (b1, f64::INFINITY),
            2 => (b1, b2),
            _ => (b1, b1),
        };
        p.add_row(lb, ub, &coeffs);
    }
    p
}

fn check_agreement(p: &Problem, label: &str) {
    let a = solve(p).expect("revised solve");
    let b = solve_dense(p).expect("dense solve");
    assert_eq!(
        a.status, b.status,
        "{label}: status mismatch revised={:?} dense={:?}",
        a.status, b.status
    );
    if a.status == Status::Optimal {
        assert!(
            (a.objective - b.objective).abs() <= 1e-5 * (1.0 + a.objective.abs()),
            "{label}: objective mismatch revised={} dense={}",
            a.objective,
            b.objective
        );
        // Both solutions must actually be feasible in the model.
        assert!(
            p.max_violation(&a.x) <= 1e-5,
            "{label}: revised solution infeasible by {}",
            p.max_violation(&a.x)
        );
        assert!(
            p.max_violation(&b.x) <= 1e-5,
            "{label}: dense solution infeasible by {}",
            p.max_violation(&b.x)
        );
        // The reported objective must match the reported point.
        assert!(
            (p.eval_objective(&a.x) - a.objective).abs() <= 1e-6 * (1.0 + a.objective.abs()),
            "{label}: revised objective inconsistent with x"
        );
    }
}

#[test]
fn small_randomized_agreement() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for trial in 0..500 {
        let p = random_problem(&mut rng, 6, 6);
        check_agreement(&p, &format!("small trial {trial}"));
    }
}

#[test]
fn medium_randomized_agreement() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for trial in 0..60 {
        let p = random_problem(&mut rng, 25, 20);
        check_agreement(&p, &format!("medium trial {trial}"));
    }
}

#[test]
fn tall_problems_agreement() {
    // Many rows, few columns: stresses phase 1 and basis repair paths.
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for trial in 0..60 {
        let p = random_problem(&mut rng, 4, 30);
        check_agreement(&p, &format!("tall trial {trial}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Property form of the differential check, with shrinking on failure.
    #[test]
    fn proptest_agreement(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = random_problem(&mut rng, 8, 8);
        check_agreement(&p, &format!("seed {seed}"));
    }

    /// Weak duality sanity: for optimal maximization LPs with only
    /// upper-bounded rows and nonnegative variables, b'y bounds the primal.
    #[test]
    fn proptest_weak_duality(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = Problem::new(Objective::Maximize);
        let n = rng.random_range(1..6usize);
        let m = rng.random_range(1..6usize);
        let cols: Vec<_> = (0..n)
            .map(|_| p.add_col(0.0, f64::INFINITY, rng.random_range(0i32..5) as f64))
            .collect();
        let mut rhs = Vec::new();
        for _ in 0..m {
            let coeffs: Vec<_> = cols
                .iter()
                .filter_map(|&c| {
                    let v = rng.random_range(0i32..=3) as f64;
                    (v > 0.0).then_some((c, v))
                })
                .collect();
            let b = rng.random_range(1i32..=15) as f64;
            rhs.push(b);
            p.add_row(f64::NEG_INFINITY, b, &coeffs);
        }
        let s = solve(&p).expect("solve");
        if s.status == Status::Optimal {
            let dual_obj: f64 = rhs.iter().zip(&s.duals).map(|(b, y)| b * y).collect::<Vec<_>>().iter().sum();
            // Strong duality should hold at optimum.
            prop_assert!((dual_obj - s.objective).abs() <= 1e-5 * (1.0 + s.objective.abs()),
                "primal {} vs dual {}", s.objective, dual_obj);
            // Duals of <= rows in a max problem are nonnegative.
            for &y in &s.duals {
                prop_assert!(y >= -1e-7, "negative dual {y}");
            }
        }
    }
}
