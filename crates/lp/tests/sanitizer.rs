//! Runtime-sanitizer integration: with `WS_SANITIZE` set, sweeps run
//! during real solves, find nothing wrong, and leave answers untouched.
//!
//! The interval knob is read once per process, so this whole binary pins
//! `WS_SANITIZE=2` (a sweep every other pivot) before the first solve;
//! each test re-sets it defensively in case of test-order changes.
//! Cross-process behavior — byte-identical figure outputs with the
//! sanitizer on vs. off — is covered by the `sanitizer-smoke` CI job.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use wavesched_lp::{solve, Objective, Problem, Status};

fn set_interval() {
    std::env::set_var("WS_SANITIZE", "2");
}

/// A dense-ish feasible minimization with enough pivots to trigger many
/// sweeps, built from integer data so the optimum is stable.
fn pivot_heavy_problem(seed: u64, n: usize, m: usize) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Problem::new(Objective::Minimize);
    let cols: Vec<_> = (0..n)
        .map(|_| {
            let cost = rng.random_range(1i32..=9) as f64;
            p.add_col(0.0, rng.random_range(2i32..=12) as f64, cost)
        })
        .collect();
    for _ in 0..m {
        let mut coeffs = Vec::new();
        for &c in &cols {
            if rng.random_range(0..100) < 70 {
                coeffs.push((c, rng.random_range(1i32..=4) as f64));
            }
        }
        if coeffs.is_empty() {
            continue;
        }
        // Covering rows keep the problem feasible but force work.
        let need = rng.random_range(2i32..=8) as f64;
        p.add_row(need, f64::INFINITY, &coeffs);
    }
    p
}

#[test]
fn sweeps_run_and_find_no_violations() {
    set_interval();
    let mut total_checks = 0u64;
    for seed in 0..8 {
        let p = pivot_heavy_problem(seed, 40, 30);
        let sol = solve(&p).expect("solve");
        assert_eq!(sol.status, Status::Optimal, "seed {seed}");
        assert_eq!(
            sol.stats.sanitizer_violations, 0,
            "seed {seed}: sanitizer flagged a healthy solve"
        );
        total_checks += sol.stats.sanitizer_checks;
    }
    assert!(
        total_checks > 0,
        "no sweeps ran despite WS_SANITIZE=2 and pivot-heavy problems"
    );
}

#[test]
fn sanitizer_does_not_change_the_answer() {
    set_interval();
    // The sanitizer only reads engine state, so the solution must equal the
    // independently known optimum of a hand-checkable LP:
    //   min x + 2y  s.t.  x + y >= 4, x <= 3, y <= 5  →  x = 3, y = 1.
    let mut p = Problem::new(Objective::Minimize);
    let x = p.add_col(0.0, 3.0, 1.0);
    let y = p.add_col(0.0, 5.0, 2.0);
    p.add_row(4.0, f64::INFINITY, &[(x, 1.0), (y, 1.0)]);
    let sol = solve(&p).expect("solve");
    assert_eq!(sol.status, Status::Optimal);
    assert!((sol.objective - 5.0).abs() < 1e-9, "{}", sol.objective);
    assert!((sol.x[x.index()] - 3.0).abs() < 1e-9);
    assert!((sol.x[y.index()] - 1.0).abs() < 1e-9);
    assert_eq!(sol.stats.sanitizer_violations, 0);
}
