//! Property tests for the MILP solver: brute force over all integer points
//! on tiny bounded problems is an exact oracle.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use wavesched_lp::{solve, solve_milp, MilpConfig, MilpStatus, Objective, Problem, Status};

/// Random small MILP: n binary-ish integer vars with small bounds, m rows.
fn random_milp(rng: &mut StdRng, n: usize, m: usize) -> Problem {
    let maximize = rng.random_range(0..2) == 0;
    let mut p = Problem::new(if maximize {
        Objective::Maximize
    } else {
        Objective::Minimize
    });
    let cols: Vec<_> = (0..n)
        .map(|_| {
            let ub = rng.random_range(1i32..=3) as f64;
            p.add_int_col(0.0, ub, rng.random_range(-4i32..=4) as f64)
        })
        .collect();
    for _ in 0..m {
        let coeffs: Vec<_> = cols
            .iter()
            .filter_map(|&c| {
                let v = rng.random_range(-2i32..=3) as f64;
                (v != 0.0).then_some((c, v))
            })
            .collect();
        let ub = rng.random_range(0i32..=8) as f64;
        p.add_row(f64::NEG_INFINITY, ub, &coeffs);
    }
    p
}

/// Exhaustive search over the integer box, respecting rows.
fn brute_force(p: &Problem) -> Option<f64> {
    let n = p.num_cols();
    let bounds: Vec<(i64, i64)> = (0..n)
        .map(|j| {
            let (l, u) = p.col_bounds(wavesched_lp::Col::from_index(j));
            (l as i64, u as i64)
        })
        .collect();
    let maximize = p.objective() == Objective::Maximize;
    let mut best: Option<f64> = None;
    let mut x = vec![0f64; n];
    fn rec(
        p: &Problem,
        bounds: &[(i64, i64)],
        x: &mut Vec<f64>,
        j: usize,
        maximize: bool,
        best: &mut Option<f64>,
    ) {
        if j == bounds.len() {
            if p.max_violation(x) <= 1e-9 {
                let v = p.eval_objective(x);
                let better = match best {
                    None => true,
                    Some(b) => {
                        if maximize {
                            v > *b
                        } else {
                            v < *b
                        }
                    }
                };
                if better {
                    *best = Some(v);
                }
            }
            return;
        }
        for val in bounds[j].0..=bounds[j].1 {
            x[j] = val as f64;
            rec(p, bounds, x, j + 1, maximize, best);
        }
        x[j] = bounds[j].0 as f64;
    }
    rec(p, &bounds, &mut x, 0, maximize, &mut best);
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn milp_matches_brute_force(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.random_range(1..5usize);
        let m = rng.random_range(0..4usize);
        let p = random_milp(&mut rng, n, m);
        let sol = solve_milp(&p, &MilpConfig::default()).expect("milp");
        let exact = brute_force(&p);
        match (sol.status, exact) {
            (MilpStatus::Optimal, Some(v)) => {
                prop_assert!((sol.objective - v).abs() <= 1e-6,
                    "milp {} vs brute force {v}", sol.objective);
                // The reported point is integral and feasible.
                prop_assert!(p.max_violation(&sol.x) <= 1e-6);
                for (j, &xv) in sol.x.iter().enumerate() {
                    if p.is_integer(wavesched_lp::Col::from_index(j)) {
                        prop_assert!((xv - xv.round()).abs() <= 1e-6);
                    }
                }
            }
            (MilpStatus::Infeasible, None) => {}
            (s, e) => prop_assert!(false, "status {s:?} vs brute force {e:?}"),
        }
    }

    /// The MILP optimum never beats its own LP relaxation.
    #[test]
    fn milp_bounded_by_relaxation(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.random_range(1..5usize);
        let m = rng.random_range(1..4usize);
        let p = random_milp(&mut rng, n, m);
        let milp = solve_milp(&p, &MilpConfig::default()).expect("milp");
        let lp = solve(&p).expect("lp");
        if milp.status == MilpStatus::Optimal && lp.status == Status::Optimal {
            if p.objective() == Objective::Maximize {
                prop_assert!(milp.objective <= lp.objective + 1e-6);
            } else {
                prop_assert!(milp.objective >= lp.objective - 1e-6);
            }
        }
    }
}
