//! Simulation outcome metrics.

use std::collections::BTreeMap;
use wavesched_workload::JobId;

/// What happened to one job by the end of the simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobOutcome {
    /// Rejected at admission (only under the `Reject` policy).
    Rejected,
    /// Completed its full (possibly shrunk) demand at the given time.
    Completed {
        /// Slice-unit time at which the cumulative transfer reached the
        /// demand.
        at: f64,
        /// Whether completion happened by the *originally requested* end.
        on_time: bool,
    },
    /// Its window elapsed before the demand was met.
    Expired,
    /// Still in flight when the simulation stopped.
    Unfinished,
}

/// Aggregated results of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Final outcome per job.
    pub outcomes: BTreeMap<JobId, JobOutcome>,
    /// Total normalized demand volume actually moved.
    pub volume_moved: f64,
    /// Total normalized demand volume requested (all jobs).
    pub volume_requested: f64,
    /// Mean over simulated slices of mean link utilization.
    pub mean_utilization: f64,
    /// Number of controller invocations performed.
    pub invocations: usize,
    /// Number of slices simulated.
    pub slices: usize,
}

impl SimReport {
    /// Fraction of all jobs that completed.
    pub fn completion_rate(&self) -> f64 {
        self.rate(|o| matches!(o, JobOutcome::Completed { .. }))
    }

    /// Fraction of all jobs that completed by their original deadline.
    pub fn on_time_rate(&self) -> f64 {
        self.rate(|o| matches!(o, JobOutcome::Completed { on_time: true, .. }))
    }

    /// Fraction of all jobs rejected at admission.
    pub fn rejection_rate(&self) -> f64 {
        self.rate(|o| matches!(o, JobOutcome::Rejected))
    }

    /// Fraction of all jobs that expired unfinished.
    pub fn expiry_rate(&self) -> f64 {
        self.rate(|o| matches!(o, JobOutcome::Expired))
    }

    /// Mean completion time of completed jobs, `None` when none completed.
    pub fn average_end_time(&self) -> Option<f64> {
        let times: Vec<f64> = self
            .outcomes
            .values()
            .filter_map(|o| match o {
                JobOutcome::Completed { at, .. } => Some(*at),
                _ => None,
            })
            .collect();
        if times.is_empty() {
            None
        } else {
            Some(times.iter().sum::<f64>() / times.len() as f64)
        }
    }

    /// Fraction of requested volume that was delivered.
    pub fn goodput(&self) -> f64 {
        if self.volume_requested == 0.0 {
            0.0
        } else {
            self.volume_moved / self.volume_requested
        }
    }

    fn rate(&self, pred: impl Fn(&JobOutcome) -> bool) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        let n = self.outcomes.values().filter(|o| pred(o)).count();
        n as f64 / self.outcomes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        let mut outcomes = BTreeMap::new();
        outcomes.insert(
            JobId(0),
            JobOutcome::Completed {
                at: 4.0,
                on_time: true,
            },
        );
        outcomes.insert(
            JobId(1),
            JobOutcome::Completed {
                at: 8.0,
                on_time: false,
            },
        );
        outcomes.insert(JobId(2), JobOutcome::Rejected);
        outcomes.insert(JobId(3), JobOutcome::Expired);
        SimReport {
            outcomes,
            volume_moved: 30.0,
            volume_requested: 40.0,
            mean_utilization: 0.5,
            invocations: 3,
            slices: 12,
        }
    }

    #[test]
    fn rates() {
        let r = report();
        assert!((r.completion_rate() - 0.5).abs() < 1e-12);
        assert!((r.on_time_rate() - 0.25).abs() < 1e-12);
        assert!((r.rejection_rate() - 0.25).abs() < 1e-12);
        assert!((r.expiry_rate() - 0.25).abs() < 1e-12);
        assert!((r.goodput() - 0.75).abs() < 1e-12);
        assert_eq!(r.average_end_time(), Some(6.0));
    }

    #[test]
    fn empty_report() {
        let r = SimReport {
            outcomes: BTreeMap::new(),
            volume_moved: 0.0,
            volume_requested: 0.0,
            mean_utilization: 0.0,
            invocations: 0,
            slices: 0,
        };
        // Empty-report semantics: every rate is exactly 0.0 — never NaN
        // (the 0/0 family of bugs; `assert_eq!` would accept nothing else,
        // since NaN != NaN).
        assert_eq!(r.completion_rate(), 0.0);
        assert_eq!(r.on_time_rate(), 0.0);
        assert_eq!(r.rejection_rate(), 0.0);
        assert_eq!(r.expiry_rate(), 0.0);
        assert_eq!(r.goodput(), 0.0);
        assert!(!r.completion_rate().is_nan());
        assert!(!r.on_time_rate().is_nan());
        assert!(!r.rejection_rate().is_nan());
        assert!(!r.expiry_rate().is_nan());
        assert!(!r.goodput().is_nan());
        assert_eq!(r.average_end_time(), None);
    }
}
