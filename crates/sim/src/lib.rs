//! # wavesched-sim — discrete-event simulation of the periodic controller
//!
//! The paper's framework runs admission control and scheduling every τ time
//! units while transfers execute on the slices in between. This crate
//! closes that loop:
//!
//! * [`engine`] — the slice-by-slice simulation: feed arrivals to the
//!   [`Controller`](wavesched_core::Controller) at each invocation instant,
//!   execute the returned integral schedule one slice at a time, report
//!   actual progress back.
//! * [`metrics`] — what came out: completion/on-time rates, rejections,
//!   expiries, average end times, link utilization, volume moved.
//! * [`stream`] — the same slice loop over a lazily produced job stream,
//!   tracking only in-flight jobs: replaying a million-job trace costs
//!   memory proportional to the active window, not the trace.

#![warn(missing_docs)]

pub mod engine;
pub mod metrics;
pub mod stream;

pub use engine::{run_simulation, SimConfig};
pub use metrics::{JobOutcome, SimReport};
pub use stream::{run_simulation_streamed, MemProfile, StreamReport};
