//! The slice-by-slice simulation engine.
//!
//! Time advances one slice at a time. At every multiple of τ the controller
//! is invoked with the requests that arrived in the preceding period and
//! returns an integral schedule; the engine executes that schedule slice by
//! slice, reporting delivered volume back to the controller, until the next
//! invocation replaces it.

use crate::metrics::{JobOutcome, SimReport};
use std::collections::BTreeMap;
use wavesched_core::controller::{Controller, ControllerConfig, InvocationResult};
use wavesched_core::instance::Instance;
use wavesched_core::schedule::Schedule;
use wavesched_lp::SolveError;
use wavesched_net::Graph;
use wavesched_obs as obs;
use wavesched_workload::{Job, JobId};

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Controller configuration (period τ, policy, solver settings).
    pub controller: ControllerConfig,
    /// Hard cap on simulated slices (safety against runaway extensions).
    pub max_slices: usize,
}

impl SimConfig {
    /// Defaults: the paper-ish controller on `w` wavelengths, 500-slice cap.
    pub fn paper(w: u32) -> Self {
        SimConfig {
            controller: ControllerConfig::paper(w),
            max_slices: 500,
        }
    }
}

/// Runs the periodic-controller simulation of `jobs` (sorted or not — they
/// are dispatched by arrival time) over `graph`.
pub fn run_simulation(
    graph: &Graph,
    jobs: &[Job],
    cfg: &SimConfig,
) -> Result<SimReport, SolveError> {
    let _span = obs::span("sim");
    let tau = cfg.controller.tau;
    let mut controller = Controller::new(graph.clone(), cfg.controller.clone());

    // Arrival queue sorted by arrival time.
    let mut pending: Vec<Job> = jobs.to_vec();
    pending.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
    let mut next_arrival = 0usize;

    let mut outcomes: BTreeMap<JobId, JobOutcome> = jobs
        .iter()
        .map(|j| (j.id, JobOutcome::Unfinished))
        .collect();
    // Original requested ends, for on-time accounting (the controller may
    // extend deadlines).
    let original_end: BTreeMap<JobId, f64> = jobs.iter().map(|j| (j.id, j.end)).collect();
    let demands: BTreeMap<JobId, f64> = jobs
        .iter()
        .map(|j| (j.id, cfg.controller.instance.demand_units(j.size_gb)))
        .collect();
    let mut remaining: BTreeMap<JobId, f64> = demands.clone();

    let mut current: Option<(Instance, Schedule)> = None;
    let mut volume_moved = 0.0;
    let mut util_acc = 0.0;
    let mut util_samples = 0usize;
    let mut invocations = 0usize;

    let mut slice = 0usize;
    while slice < cfg.max_slices {
        let _slice_span = obs::span("slice");
        obs::counter_add("sim.slices", 1);
        let now = slice as f64;

        // Controller invocation at multiples of τ.
        if slice.is_multiple_of(tau) {
            let mut batch = Vec::new();
            while next_arrival < pending.len() && pending[next_arrival].arrival <= now {
                batch.push(pending[next_arrival].clone());
                next_arrival += 1;
            }
            let res: InvocationResult = controller.invoke(now, &batch)?;
            invocations += 1;
            for id in &res.rejected {
                outcomes.insert(*id, JobOutcome::Rejected);
            }
            current = Some((res.instance, res.schedule));
        }

        // Execute this slice of the current schedule.
        if let Some((inst, sched)) = &current {
            if slice < inst.grid.num_slices() {
                let len = inst.grid.len_of(slice);
                let mut edge_used: BTreeMap<u32, f64> = BTreeMap::new();
                for (idx, job) in inst.jobs.iter().enumerate() {
                    let w = inst.vars.window(idx);
                    if !w.contains(&slice) {
                        continue;
                    }
                    let mut moved = 0.0;
                    for p in 0..inst.vars.paths_of(idx) {
                        let x = sched.x[inst.vars.var(idx, p, slice)];
                        if x > 0.0 {
                            moved += x * len;
                            for &e in inst.paths[idx][p].edges() {
                                *edge_used.entry(e.0).or_default() += x;
                            }
                        }
                    }
                    if moved > 0.0 {
                        // Deliver at most the remaining demand.
                        // lint: allow(lib-unwrap, reason = "invariant: `remaining` is seeded with every job id before the loop")
                        let rem = remaining.get_mut(&job.id).expect("invariant: known job");
                        let deliver = moved.min(*rem);
                        *rem -= deliver;
                        volume_moved += deliver;
                        controller.record_transfer(job.id, deliver);
                        if *rem <= 1e-9 {
                            let at = inst.grid.end_of(slice);
                            let on_time = at <= original_end[&job.id] + 1e-9;
                            outcomes.insert(job.id, JobOutcome::Completed { at, on_time });
                        }
                    }
                }
                // Utilization sample over links that carried anything.
                if inst.graph.num_edges() > 0 {
                    let total_cap: f64 = inst
                        .graph
                        .edge_ids()
                        .map(|e| inst.graph.wavelengths(e) as f64)
                        .sum();
                    let used: f64 = edge_used.values().sum();
                    util_acc += used / total_cap;
                    util_samples += 1;
                }
            }
        }

        slice += 1;

        // Early exit: all arrivals dispatched and nothing left in flight.
        let all_dispatched = next_arrival >= pending.len();
        let all_settled = outcomes
            .values()
            .all(|o| !matches!(o, JobOutcome::Unfinished));
        if all_dispatched && all_settled {
            break;
        }
        // Mark expirations (window passed, demand unmet, job no longer
        // active in the controller).
        if slice.is_multiple_of(tau) {
            for j in jobs {
                if let Some(JobOutcome::Unfinished) = outcomes.get(&j.id) {
                    let dispatched = pending.iter().take(next_arrival).any(|p| p.id == j.id);
                    let still_active = controller.active().iter().any(|a| a.job.id == j.id);
                    if dispatched && !still_active && remaining[&j.id] > 1e-9 {
                        // Give the controller one invocation of grace: it
                        // may not have seen the job yet this period.
                        if j.end < slice as f64 {
                            outcomes.insert(j.id, JobOutcome::Expired);
                        }
                    }
                }
            }
        }
    }

    Ok(SimReport {
        outcomes,
        volume_moved,
        volume_requested: demands.values().sum(),
        mean_utilization: if util_samples > 0 {
            util_acc / util_samples as f64
        } else {
            0.0
        },
        invocations,
        slices: slice,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavesched_core::controller::OverloadPolicy;
    use wavesched_net::abilene14;
    use wavesched_workload::{ArrivalModel, WorkloadConfig, WorkloadGenerator};

    fn jobs_for(g: &Graph, n: usize, seed: u64, arrival: ArrivalModel) -> Vec<Job> {
        WorkloadGenerator::new(WorkloadConfig {
            num_jobs: n,
            seed,
            arrival,
            ..Default::default()
        })
        .generate(g)
    }

    #[test]
    fn light_load_completes_everything_on_time() {
        let (g, _) = abilene14(8);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: 5,
            seed: 3,
            size_gb: (1.0, 10.0),
            window: (16.0, 24.0),
            ..Default::default()
        })
        .generate(&g);
        let cfg = SimConfig::paper(8);
        let r = run_simulation(&g, &jobs, &cfg).unwrap();
        assert_eq!(r.completion_rate(), 1.0, "outcomes: {:?}", r.outcomes);
        assert_eq!(r.on_time_rate(), 1.0);
        assert!((r.goodput() - 1.0).abs() < 1e-9);
        assert!(r.invocations >= 1);
    }

    #[test]
    fn poisson_arrivals_trigger_multiple_invocations() {
        let (g, _) = abilene14(4);
        let jobs = jobs_for(&g, 10, 5, ArrivalModel::Poisson { rate: 0.8 });
        let cfg = SimConfig::paper(4);
        let r = run_simulation(&g, &jobs, &cfg).unwrap();
        assert!(r.invocations > 2);
        assert!(
            r.completion_rate() > 0.5,
            "completion {}",
            r.completion_rate()
        );
        assert!(r.mean_utilization > 0.0);
    }

    #[test]
    fn reject_policy_reports_rejections() {
        // A tiny network flooded with work must reject some jobs.
        let mut g = Graph::new();
        let ns = g.add_nodes(2);
        g.add_link_pair(ns[0], ns[1], 1);
        let jobs: Vec<Job> = (0..6)
            .map(|i| Job::new(JobId(i), 0.0, ns[0], ns[1], 300.0, 0.0, 4.0))
            .collect();
        let mut cfg = SimConfig::paper(1);
        cfg.controller.policy = OverloadPolicy::Reject;
        let r = run_simulation(&g, &jobs, &cfg).unwrap();
        assert!(r.rejection_rate() > 0.0);
        // The admitted jobs complete on time.
        for o in r.outcomes.values() {
            match o {
                JobOutcome::Completed { on_time, .. } => assert!(on_time),
                JobOutcome::Rejected => {}
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn extend_policy_finishes_late_but_fully() {
        let mut g = Graph::new();
        let ns = g.add_nodes(2);
        g.add_link_pair(ns[0], ns[1], 1);
        let jobs: Vec<Job> = (0..4)
            .map(|i| Job::new(JobId(i), 0.0, ns[0], ns[1], 300.0, 0.0, 4.0))
            .collect();
        let mut cfg = SimConfig::paper(1);
        cfg.controller.policy = OverloadPolicy::ExtendDeadlines;
        let r = run_simulation(&g, &jobs, &cfg).unwrap();
        assert_eq!(r.completion_rate(), 1.0, "outcomes: {:?}", r.outcomes);
        assert!(r.on_time_rate() < 1.0, "someone must be late");
        assert!((r.goodput() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn outcome_iteration_order_is_stable() {
        // `SimReport::outcomes` is a BTreeMap precisely so downstream
        // consumers (CSV writers, comparisons) see a stable order. Guard
        // against a regression back to a hashed map: keys must iterate in
        // ascending JobId order and two runs must render identically.
        let (g, _) = abilene14(4);
        let jobs = jobs_for(&g, 8, 7, ArrivalModel::Poisson { rate: 0.8 });
        let cfg = SimConfig::paper(4);
        let a = run_simulation(&g, &jobs, &cfg).unwrap();
        let b = run_simulation(&g, &jobs, &cfg).unwrap();
        let ids: Vec<u32> = a.outcomes.keys().map(|j| j.0).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "outcome iteration must be ordered by JobId");
        assert_eq!(
            format!("{:?}", a.outcomes),
            format!("{:?}", b.outcomes),
            "two identical runs must render outcomes identically"
        );
    }

    #[test]
    fn shrink_policy_moves_partial_volume() {
        let mut g = Graph::new();
        let ns = g.add_nodes(2);
        g.add_link_pair(ns[0], ns[1], 1);
        let jobs: Vec<Job> = (0..4)
            .map(|i| Job::new(JobId(i), 0.0, ns[0], ns[1], 300.0, 0.0, 4.0))
            .collect();
        let cfg = SimConfig::paper(1); // ShrinkDemands default
        let r = run_simulation(&g, &jobs, &cfg).unwrap();
        // Network can move at most 4 of the 8 requested units.
        assert!(r.goodput() < 0.75);
        assert!(r.volume_moved > 0.0);
    }
}
