//! Streaming trace replay: the slice-by-slice simulation over a lazily
//! produced job sequence.
//!
//! [`run_simulation`](crate::run_simulation) keeps per-job state (outcome,
//! original deadline, remaining demand) for the *whole* trace, so replaying
//! a million-job log costs O(trace) memory before the first slice runs.
//! [`run_simulation_streamed`] instead pulls jobs from an iterator as the
//! simulated clock reaches their arrival times and tracks only the jobs
//! currently in flight: memory follows the controller's active window, not
//! the trace length. The price is per-job resolution — the result is the
//! aggregate [`StreamReport`] (counts and volumes), not an outcome map.
//!
//! The engine also feeds the `mem.*` counter family: around every
//! controller invocation it snapshots [`obs::mem::stats`] and emits the
//! allocation deltas, so a replay under a tracking allocator records
//! whether steady-state allocation is flat (see
//! [`MemProfile`]). Without [`obs::mem::TrackingAlloc`]
//! installed the deltas are all zero and the profile is inert.

use crate::engine::SimConfig;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::io::Write;
use wavesched_core::controller::{Controller, InvocationResult};
use wavesched_lp::SolveError;
use wavesched_net::Graph;
use wavesched_obs as obs;
use wavesched_workload::{Job, JobId};

/// Allocation-flatness evidence from one streamed replay.
///
/// Per-invocation allocated-byte deltas are averaged over the first and
/// last [`MemProfile::WINDOW`] invocations (after a one-window warmup the
/// two means should agree for a memory-lean controller — the grid, arenas
/// and scratch no longer grow with the simulated clock).
#[derive(Debug, Clone, Copy, Default)]
pub struct MemProfile {
    /// Number of invocation deltas sampled.
    pub samples: usize,
    /// Mean bytes allocated per invocation over the first window (after
    /// skipping the first window as warmup; 0 when too few samples).
    pub early_mean_alloc_bytes: f64,
    /// Mean bytes allocated per invocation over the last window.
    pub late_mean_alloc_bytes: f64,
    /// Process-wide peak of live bytes, as seen at the last invocation.
    pub peak_live_bytes: u64,
}

impl MemProfile {
    /// Window length (in invocations) for the early/late means.
    pub const WINDOW: usize = 64;
}

/// Aggregate results of a streamed replay.
///
/// The streaming counterpart of [`SimReport`](crate::SimReport): per-job
/// outcomes are folded into counts as jobs retire, so the report is O(1)
/// in trace length.
#[derive(Debug, Clone, Default)]
pub struct StreamReport {
    /// Jobs pulled from the input stream.
    pub jobs_seen: usize,
    /// Jobs whose full demand was delivered.
    pub completed: usize,
    /// Completed jobs that met their originally requested end time.
    pub on_time: usize,
    /// Jobs rejected at admission.
    pub rejected: usize,
    /// Jobs whose window elapsed with demand unmet.
    pub expired: usize,
    /// Jobs still in flight when the slice cap stopped the run.
    pub unfinished: usize,
    /// Total normalized demand volume delivered.
    pub volume_moved: f64,
    /// Total normalized demand volume requested (all jobs seen).
    pub volume_requested: f64,
    /// Controller invocations performed.
    pub invocations: usize,
    /// Slices simulated.
    pub slices: usize,
    /// Most jobs ever simultaneously in flight — the quantity that bounds
    /// the engine's memory.
    pub peak_active: usize,
    /// Per-invocation allocation profile (all-zero without a tracking
    /// allocator).
    pub mem: MemProfile,
}

impl StreamReport {
    /// Fraction of seen jobs that completed.
    pub fn completion_rate(&self) -> f64 {
        if self.jobs_seen == 0 {
            0.0
        } else {
            self.completed as f64 / self.jobs_seen as f64
        }
    }

    /// Fraction of requested volume that was delivered.
    pub fn goodput(&self) -> f64 {
        if self.volume_requested == 0.0 {
            0.0
        } else {
            self.volume_moved / self.volume_requested
        }
    }
}

/// A job currently in flight, from admission to retirement.
struct InFlight {
    remaining: f64,
    original_end: f64,
}

/// Runs the periodic-controller simulation over a lazily produced job
/// stream, holding only in-flight state.
///
/// `jobs` must yield jobs in nondecreasing arrival order (as
/// [`JobStream`](wavesched_workload::JobStream) and
/// [`TraceReader`](wavesched_workload::TraceReader) over a recorded trace
/// do); a job arriving out of order is still dispatched, just at the next
/// invocation after it is pulled.
///
/// When `decision_log` is given, one line per controller decision is
/// written: invocation summaries and per-job retirement events. The log
/// contains scheduling outcomes only — no timings, no allocation data —
/// so two replays of the same trace are byte-identical whenever their
/// schedules are, regardless of thread count or whether the input was
/// streamed or preloaded.
pub fn run_simulation_streamed(
    graph: &Graph,
    jobs: impl IntoIterator<Item = Job>,
    cfg: &SimConfig,
    mut decision_log: Option<&mut dyn Write>,
) -> Result<StreamReport, SolveError> {
    let _span = obs::span("sim_stream");
    let tau = cfg.controller.tau;
    let mut controller = Controller::new(graph.clone(), cfg.controller.clone());
    let mut it = jobs.into_iter().peekable();

    let mut report = StreamReport::default();
    let mut inflight: BTreeMap<JobId, InFlight> = BTreeMap::new();
    let mut current: Option<(
        wavesched_core::instance::Instance,
        wavesched_core::schedule::Schedule,
    )> = None;
    let mut batch: Vec<Job> = Vec::new();

    // Per-invocation allocated-byte deltas: first two windows (warmup +
    // early) and a rolling last window.
    let window = MemProfile::WINDOW;
    let mut early: Vec<u64> = Vec::with_capacity(2 * window);
    let mut late: VecDeque<u64> = VecDeque::with_capacity(window + 1);
    let mut log_err = false;
    let mut log = |line: std::fmt::Arguments<'_>| -> bool {
        if let Some(w) = decision_log.as_mut() {
            if w.write_fmt(line).and_then(|_| w.write_all(b"\n")).is_err() {
                return false;
            }
        }
        true
    };

    let mut slice = 0usize;
    while slice < cfg.max_slices {
        let _slice_span = obs::span("slice");
        obs::counter_add("sim.slices", 1);
        let now = slice as f64;

        if slice.is_multiple_of(tau) {
            batch.clear();
            while let Some(j) = it.peek() {
                if j.arrival <= now {
                    // lint: allow(lib-unwrap, reason = "peek just returned Some")
                    batch.push(it.next().expect("peeked"));
                } else {
                    break;
                }
            }
            report.jobs_seen += batch.len();
            for j in &batch {
                report.volume_requested += cfg.controller.instance.demand_units(j.size_gb);
            }

            let before = obs::mem::stats();
            let res: InvocationResult = controller.invoke(now, &batch)?;
            let after = obs::mem::stats();
            let alloc_delta = after.allocated_bytes - before.allocated_bytes;
            obs::counter_add("mem.bytes_allocated", alloc_delta);
            obs::counter_add("mem.bytes_freed", after.freed_bytes - before.freed_bytes);
            obs::record("mem.live_bytes", after.live_bytes());
            report.mem.peak_live_bytes = after.peak_live_bytes;
            report.mem.samples += 1;
            if early.len() < 2 * window {
                early.push(alloc_delta);
            }
            late.push_back(alloc_delta);
            if late.len() > window {
                late.pop_front();
            }
            report.invocations += 1;

            // Retirements the controller decided at this invocation.
            for id in controller.take_expired() {
                if inflight.remove(&id).is_some() {
                    report.expired += 1;
                    log_err |= !log(format_args!("expired {} at={now}", id.0));
                }
            }
            for id in controller.take_finished() {
                // Normally already retired by the completion check below;
                // this only catches jobs the controller finished without
                // the engine seeing the final delivery.
                if inflight.remove(&id).is_some() {
                    report.completed += 1;
                    log_err |= !log(format_args!("done {} at={now} on_time=?", id.0));
                }
            }
            for id in &res.rejected {
                report.rejected += 1;
                inflight.remove(id);
                log_err |= !log(format_args!("rejected {}", id.0));
            }
            for j in &batch {
                if res.rejected.contains(&j.id) {
                    continue;
                }
                inflight.insert(
                    j.id,
                    InFlight {
                        remaining: cfg.controller.instance.demand_units(j.size_gb),
                        original_end: j.end,
                    },
                );
            }
            report.peak_active = report.peak_active.max(inflight.len());
            log_err |= !log(format_args!(
                "invoke now={now} batch={} rejected={} active={}",
                batch.len(),
                res.rejected.len(),
                inflight.len(),
            ));
            current = Some((res.instance, res.schedule));
        }

        // Execute this slice of the current schedule (same arithmetic as
        // `run_simulation`, against the in-flight map).
        if let Some((inst, sched)) = &current {
            if slice < inst.grid.num_slices() {
                let len = inst.grid.len_of(slice);
                for (idx, job) in inst.jobs.iter().enumerate() {
                    let w = inst.vars.window(idx);
                    if !w.contains(&slice) {
                        continue;
                    }
                    let mut moved = 0.0;
                    for p in 0..inst.vars.paths_of(idx) {
                        let x = sched.x[inst.vars.var(idx, p, slice)];
                        if x > 0.0 {
                            moved += x * len;
                        }
                    }
                    if moved > 0.0 {
                        let Some(f) = inflight.get_mut(&job.id) else {
                            continue;
                        };
                        let deliver = moved.min(f.remaining);
                        f.remaining -= deliver;
                        report.volume_moved += deliver;
                        controller.record_transfer(job.id, deliver);
                        if f.remaining <= 1e-9 {
                            let at = inst.grid.end_of(slice);
                            let on_time = at <= f.original_end + 1e-9;
                            report.completed += 1;
                            report.on_time += usize::from(on_time);
                            inflight.remove(&job.id);
                            log_err |=
                                !log(format_args!("done {} at={at} on_time={on_time}", job.id.0));
                        }
                    }
                }
            }
        }

        slice += 1;

        // Drained: no more arrivals, nothing in flight.
        if it.peek().is_none() && inflight.is_empty() && report.invocations > 0 {
            break;
        }
    }

    if log_err {
        // Surfaced once rather than per line; a truncated log would fail
        // any downstream byte-comparison anyway.
        eprintln!("warning: decision log writer failed; log is incomplete");
    }

    report.unfinished = inflight.len();
    report.slices = slice;
    fn mean(xs: impl Iterator<Item = u64>) -> f64 {
        let (mut sum, mut n) = (0u128, 0usize);
        for x in xs {
            sum += x as u128;
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }
    // Skip the first window as warmup (arena growth, first-time pool
    // fills); compare the window after it against the rolling last one.
    if early.len() > window {
        report.mem.early_mean_alloc_bytes = mean(early[window..].iter().copied());
    }
    report.mem.late_mean_alloc_bytes = mean(late.iter().copied());
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_simulation;
    use crate::metrics::JobOutcome;
    use wavesched_net::abilene14;
    use wavesched_workload::{ArrivalModel, WorkloadConfig, WorkloadGenerator};

    fn workload(n: usize, seed: u64, rate: f64) -> WorkloadConfig {
        WorkloadConfig {
            num_jobs: n,
            seed,
            arrival: ArrivalModel::Poisson { rate },
            ..Default::default()
        }
    }

    #[test]
    fn streamed_matches_preloaded_aggregates() {
        let (g, _) = abilene14(4);
        let cfg = SimConfig {
            max_slices: 4000,
            ..SimConfig::paper(4)
        };
        let wl = workload(30, 17, 0.7);
        let preloaded = WorkloadGenerator::new(wl.clone()).generate(&g);
        let full = run_simulation(&g, &preloaded, &cfg).unwrap();
        let streamed =
            run_simulation_streamed(&g, WorkloadGenerator::new(wl).stream(&g), &cfg, None).unwrap();
        assert_eq!(streamed.jobs_seen, 30);
        // The two engines settle terminal expiries at slightly different
        // points of the τ-cycle, so the streamed run may stop one
        // invocation earlier.
        assert!(streamed.invocations.abs_diff(full.invocations) <= 1);
        assert!((streamed.volume_moved - full.volume_moved).abs() < 1e-6);
        assert!((streamed.volume_requested - full.volume_requested).abs() < 1e-6);
        let full_completed = full
            .outcomes
            .values()
            .filter(|o| matches!(o, JobOutcome::Completed { .. }))
            .count();
        assert_eq!(streamed.completed, full_completed);
        let full_on_time = full
            .outcomes
            .values()
            .filter(|o| matches!(o, JobOutcome::Completed { on_time: true, .. }))
            .count();
        assert_eq!(streamed.on_time, full_on_time);
        assert!(streamed.peak_active >= 1);
        assert!(streamed.peak_active <= 30);
    }

    #[test]
    fn decision_log_is_identical_streamed_vs_preloaded() {
        let (g, _) = abilene14(4);
        let cfg = SimConfig {
            max_slices: 4000,
            ..SimConfig::paper(4)
        };
        let wl = workload(25, 23, 0.9);
        let mut log_stream = Vec::new();
        run_simulation_streamed(
            &g,
            WorkloadGenerator::new(wl.clone()).stream(&g),
            &cfg,
            Some(&mut log_stream),
        )
        .unwrap();
        let preloaded = WorkloadGenerator::new(wl).generate(&g);
        let mut log_preload = Vec::new();
        run_simulation_streamed(&g, preloaded, &cfg, Some(&mut log_preload)).unwrap();
        assert!(!log_stream.is_empty());
        assert_eq!(
            log_stream, log_preload,
            "decision logs must be byte-identical"
        );
    }

    #[test]
    fn rejections_are_counted() {
        use wavesched_core::controller::OverloadPolicy;
        let mut g = Graph::new();
        let ns = g.add_nodes(2);
        g.add_link_pair(ns[0], ns[1], 1);
        let jobs: Vec<Job> = (0..6)
            .map(|i| Job::new(JobId(i), 0.0, ns[0], ns[1], 300.0, 0.0, 4.0))
            .collect();
        let mut cfg = SimConfig::paper(1);
        cfg.controller.policy = OverloadPolicy::Reject;
        let r = run_simulation_streamed(&g, jobs, &cfg, None).unwrap();
        assert!(r.rejected > 0);
        assert_eq!(r.jobs_seen, 6);
        assert_eq!(r.completed + r.rejected + r.expired + r.unfinished, 6);
    }

    #[test]
    fn report_rates_are_sane() {
        let r = StreamReport::default();
        assert_eq!(r.completion_rate(), 0.0);
        assert_eq!(r.goodput(), 0.0);
        assert!(!r.completion_rate().is_nan());
    }
}
