//! Property-based tests for the network substrate: Waxman generation,
//! Dijkstra optimality, and Yen's k-shortest-path invariants on random
//! graphs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;
use wavesched_net::{k_shortest_paths, shortest_path, waxman_network, Graph, NodeId, WaxmanConfig};

/// BFS hop distance, as an independent oracle for Dijkstra on unit weights.
fn bfs_hops(g: &Graph, src: NodeId, dst: NodeId) -> Option<usize> {
    let mut dist = vec![usize::MAX; g.num_nodes()];
    let mut q = VecDeque::new();
    dist[src.index()] = 0;
    q.push_back(src);
    while let Some(v) = q.pop_front() {
        if v == dst {
            return Some(dist[v.index()]);
        }
        for &e in g.out_edges(v) {
            let w = g.dst(e);
            if dist[w.index()] == usize::MAX {
                dist[w.index()] = dist[v.index()] + 1;
                q.push_back(w);
            }
        }
    }
    None
}

/// A random (not necessarily connected) digraph.
fn random_graph(seed: u64, n: usize, m: usize) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new();
    let nodes = g.add_nodes(n);
    for _ in 0..m {
        let a = rng.random_range(0..n);
        let mut b = rng.random_range(0..n);
        if a == b {
            b = (b + 1) % n;
        }
        g.add_link(nodes[a], nodes[b], 1 + rng.random_range(0..4));
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn waxman_always_connected_and_exact(
        seed in any::<u64>(),
        n in 3usize..40,
        extra in 0usize..30,
    ) {
        let max_pairs = n * (n - 1) / 2;
        let pairs = (n - 1 + extra).min(max_pairs);
        let g = waxman_network(&WaxmanConfig {
            nodes: n,
            link_pairs: pairs,
            wavelengths: 4,
            alpha: 0.15,
            seed,
        });
        prop_assert_eq!(g.num_nodes(), n);
        prop_assert_eq!(g.num_edges(), 2 * pairs);
        prop_assert!(g.is_strongly_connected());
        // No duplicate directed links.
        let mut seen: Vec<(u32, u32)> = g.edge_ids().map(|e| (g.src(e).0, g.dst(e).0)).collect();
        seen.sort();
        let before = seen.len();
        seen.dedup();
        prop_assert_eq!(before, seen.len());
    }

    #[test]
    fn dijkstra_matches_bfs(seed in any::<u64>(), n in 2usize..25, m in 1usize..80) {
        let g = random_graph(seed, n, m);
        let src = NodeId(0);
        let dst = NodeId((n - 1) as u32);
        if src == dst { return Ok(()); }
        let d = shortest_path(&g, src, dst).map(|p| p.len());
        prop_assert_eq!(d, bfs_hops(&g, src, dst));
    }

    #[test]
    fn yen_paths_invariants(seed in any::<u64>(), n in 3usize..15, m in 4usize..50, k in 1usize..8) {
        let g = random_graph(seed, n, m);
        let src = NodeId(0);
        let dst = NodeId((n - 1) as u32);
        let paths = k_shortest_paths(&g, src, dst, k);
        prop_assert!(paths.len() <= k);
        // Sorted by hops, simple, correct endpoints, pairwise distinct.
        for w in paths.windows(2) {
            prop_assert!(w[0].len() <= w[1].len());
            prop_assert!(w[0].edges() != w[1].edges());
        }
        for p in &paths {
            prop_assert_eq!(p.source(&g), src);
            prop_assert_eq!(p.target(&g), dst);
            let nodes = p.nodes(&g);
            let mut d = nodes.clone();
            d.sort();
            d.dedup();
            prop_assert_eq!(d.len(), nodes.len(), "loop in path");
        }
        // First path is THE shortest (matches Dijkstra).
        if let Some(first) = paths.first() {
            let d = shortest_path(&g, src, dst).unwrap().len();
            prop_assert_eq!(first.len(), d);
        } else {
            prop_assert!(shortest_path(&g, src, dst).is_none());
        }
    }
}
