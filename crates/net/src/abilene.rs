//! The Abilene (Internet2) backbone topologies used by the paper's Fig. 2.
//!
//! The canonical Abilene backbone has 11 PoPs and 14 bidirectional links
//! ([`abilene14`]). The paper describes its instance as "11 nodes and 20
//! pairs of links" without listing the 6 extra links; [`abilene20`] extends
//! the canonical topology with 6 deterministic augmenting chords so the
//! evaluation can run at the paper's stated size (see DESIGN.md,
//! substitutions).

use crate::graph::{Graph, NodeId};

/// The 11 Abilene PoPs, in the node order used by both topologies.
pub const POPS: [&str; 11] = [
    "Seattle",
    "Sunnyvale",
    "Los Angeles",
    "Denver",
    "Kansas City",
    "Houston",
    "Chicago",
    "Indianapolis",
    "Atlanta",
    "Washington DC",
    "New York",
];

/// Canonical link pairs of the Abilene backbone (indices into [`POPS`]).
const CORE_LINKS: [(usize, usize); 14] = [
    (0, 1),  // Seattle - Sunnyvale
    (0, 3),  // Seattle - Denver
    (1, 2),  // Sunnyvale - Los Angeles
    (1, 3),  // Sunnyvale - Denver
    (2, 5),  // Los Angeles - Houston
    (3, 4),  // Denver - Kansas City
    (4, 5),  // Kansas City - Houston
    (4, 7),  // Kansas City - Indianapolis
    (5, 8),  // Houston - Atlanta
    (6, 7),  // Chicago - Indianapolis
    (7, 8),  // Indianapolis - Atlanta
    (6, 10), // Chicago - New York
    (8, 9),  // Atlanta - Washington DC
    (9, 10), // Washington DC - New York
];

/// Six deterministic augmenting chords bringing the pair count to the
/// paper's stated 20. Chosen to shorten the longest shortest-paths without
/// duplicating core links.
const EXTRA_LINKS: [(usize, usize); 6] = [
    (0, 6),  // Seattle - Chicago
    (1, 4),  // Sunnyvale - Kansas City
    (2, 8),  // Los Angeles - Atlanta
    (3, 6),  // Denver - Chicago
    (5, 7),  // Houston - Indianapolis
    (8, 10), // Atlanta - New York
];

fn build(links: &[(usize, usize)], wavelengths: u32) -> (Graph, Vec<NodeId>) {
    let mut g = Graph::new();
    let nodes: Vec<NodeId> = POPS.iter().map(|&p| g.add_node(p)).collect();
    for &(a, b) in links {
        g.add_link_pair(nodes[a], nodes[b], wavelengths);
    }
    (g, nodes)
}

/// The canonical 11-node, 14-link-pair Abilene backbone.
pub fn abilene14(wavelengths: u32) -> (Graph, Vec<NodeId>) {
    build(&CORE_LINKS, wavelengths)
}

/// The paper-sized 11-node, 20-link-pair Abilene variant (canonical links
/// plus six deterministic augmenting chords).
pub fn abilene20(wavelengths: u32) -> (Graph, Vec<NodeId>) {
    let all: Vec<(usize, usize)> = CORE_LINKS
        .iter()
        .chain(EXTRA_LINKS.iter())
        .copied()
        .collect();
    build(&all, wavelengths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::shortest_path;

    #[test]
    fn abilene14_shape() {
        let (g, nodes) = abilene14(4);
        assert_eq!(g.num_nodes(), 11);
        assert_eq!(g.num_edges(), 28);
        assert!(g.is_strongly_connected());
        assert_eq!(g.node_name(nodes[0]), "Seattle");
        assert_eq!(g.node_name(nodes[10]), "New York");
    }

    #[test]
    fn abilene20_shape() {
        let (g, _) = abilene20(4);
        assert_eq!(g.num_nodes(), 11);
        assert_eq!(g.num_edges(), 40); // 20 pairs, the paper's size
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn no_duplicate_links() {
        let (g, _) = abilene20(4);
        let mut pairs: Vec<(u32, u32)> = g.edge_ids().map(|e| (g.src(e).0, g.dst(e).0)).collect();
        pairs.sort();
        let before = pairs.len();
        pairs.dedup();
        assert_eq!(before, pairs.len(), "duplicate directed link");
    }

    #[test]
    fn coast_to_coast_paths_exist() {
        let (g, nodes) = abilene14(4);
        let p = shortest_path(&g, nodes[0], nodes[10]).expect("Seattle -> New York");
        assert!(p.len() <= 5, "Abilene diameter too large: {}", p.len());
        let (g20, nodes20) = abilene20(4);
        let p20 = shortest_path(&g20, nodes20[0], nodes20[10]).unwrap();
        assert!(p20.len() <= p.len(), "chords should not lengthen paths");
    }
}
