//! Yen's algorithm for the k shortest loopless paths.
//!
//! Builds the per-job allowed path sets of the paper's formulations. The
//! paper reports that 4–8 paths per job capture most of the attainable
//! throughput; `ablation_paths` in the bench crate sweeps this.

use crate::dijkstra::{shortest_path_filtered, Weight};
use crate::graph::{Graph, NodeId, Path};
// BTreeSet rather than HashSet: iteration never feeds output here, but the
// ordering-sensitive crates ban hashed collections wholesale (hash-iter-order)
// so determinism reviews never have to reason about which uses are benign.
use std::collections::BTreeSet;

/// Computes up to `k` shortest simple paths from `src` to `dst`, ordered by
/// increasing weight (ties broken deterministically). Returns fewer than `k`
/// when the graph does not contain that many simple paths.
pub fn k_shortest_paths(g: &Graph, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
    k_shortest_paths_weighted(g, src, dst, k, Weight::Hops)
}

/// [`k_shortest_paths`] with an explicit edge weight.
pub fn k_shortest_paths_weighted(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    k: usize,
    weight: Weight,
) -> Vec<Path> {
    if k == 0 {
        return Vec::new();
    }
    let Some(first) = shortest_path_filtered(g, src, dst, weight, |_| true, |_| true) else {
        return Vec::new();
    };

    let path_weight = |p: &Path| -> f64 {
        match weight {
            Weight::Hops => p.len() as f64,
            Weight::Length => p.total_length(g),
        }
    };

    let mut accepted: Vec<Path> = vec![first];
    // Candidate pool: (weight, path). Deduplicated by edge sequence.
    let mut candidates: Vec<(f64, Path)> = Vec::new();
    let mut seen: BTreeSet<Vec<u32>> = BTreeSet::new();
    seen.insert(accepted[0].edges().iter().map(|e| e.0).collect());

    while accepted.len() < k {
        let Some(prev) = accepted.last().cloned() else {
            break; // unreachable: `accepted` starts non-empty and only grows
        };
        let prev_nodes = prev.nodes(g);

        // Spur from every node of the previous path except the destination.
        for i in 0..prev.len() {
            let spur_node = prev_nodes[i];
            let root_edges = &prev.edges()[..i];

            // Edges banned: the (i+1)-th edge of any accepted path sharing
            // the same root.
            let mut banned_edges = BTreeSet::new();
            for p in &accepted {
                if p.len() > i && p.edges()[..i] == *root_edges {
                    banned_edges.insert(p.edges()[i]);
                }
            }
            // Nodes banned: everything on the root before the spur node
            // (keeps the total path simple).
            let banned_nodes: BTreeSet<NodeId> = prev_nodes[..i].iter().copied().collect();

            let Some(spur) = shortest_path_filtered(
                g,
                spur_node,
                dst,
                weight,
                |e| !banned_edges.contains(&e),
                |v| !banned_nodes.contains(&v),
            ) else {
                continue;
            };

            let mut edges = root_edges.to_vec();
            edges.extend_from_slice(spur.edges());
            let key: Vec<u32> = edges.iter().map(|e| e.0).collect();
            if seen.insert(key) {
                let p = Path::from_edges_unchecked(edges);
                let w = path_weight(&p);
                candidates.push((w, p));
            }
        }

        // Pop the lightest candidate (deterministic tie-break on edges);
        // `min_by` is `None` exactly when the pool is exhausted.
        let Some(best) = candidates
            .iter()
            .enumerate()
            .min_by(|(_, (wa, pa)), (_, (wb, pb))| {
                wa.total_cmp(wb).then_with(|| pa.edges().cmp(pb.edges()))
            })
            .map(|(i, _)| i)
        else {
            break;
        };
        let (_, p) = candidates.swap_remove(best);
        accepted.push(p);
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// 0 -> 3 through a braided 5-node mesh with many alternatives.
    fn mesh() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let ns = g.add_nodes(5);
        for (a, b) in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (2, 4), (4, 3)] {
            g.add_link_pair(ns[a], ns[b], 4);
        }
        (g, ns)
    }

    #[test]
    fn first_path_is_shortest() {
        let (g, ns) = mesh();
        let ps = k_shortest_paths(&g, ns[0], ns[3], 4);
        assert!(!ps.is_empty());
        assert_eq!(ps[0].len(), 2); // 0-1-3 or 0-2-3
    }

    #[test]
    fn paths_are_sorted_and_distinct() {
        let (g, ns) = mesh();
        let ps = k_shortest_paths(&g, ns[0], ns[3], 8);
        for w in ps.windows(2) {
            assert!(w[0].len() <= w[1].len(), "not sorted by hop count");
            assert_ne!(w[0].edges(), w[1].edges(), "duplicate path");
        }
        // All start/end correctly and are simple.
        for p in &ps {
            assert_eq!(p.source(&g), ns[0]);
            assert_eq!(p.target(&g), ns[3]);
            let nodes = p.nodes(&g);
            let mut dedup = nodes.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), nodes.len(), "path has a loop: {nodes:?}");
        }
    }

    #[test]
    fn exhausts_small_graphs() {
        // Line graph: exactly one simple path.
        let mut g = Graph::new();
        let ns = g.add_nodes(3);
        g.add_link(ns[0], ns[1], 1);
        g.add_link(ns[1], ns[2], 1);
        let ps = k_shortest_paths(&g, ns[0], ns[2], 10);
        assert_eq!(ps.len(), 1);
    }

    #[test]
    fn disconnected_returns_empty() {
        let mut g = Graph::new();
        let ns = g.add_nodes(2);
        assert!(k_shortest_paths(&g, ns[0], ns[1], 3).is_empty());
    }

    #[test]
    fn k_zero() {
        let (g, ns) = mesh();
        assert!(k_shortest_paths(&g, ns[0], ns[3], 0).is_empty());
    }

    #[test]
    fn src_equals_dst_returns_empty() {
        // A zero-hop "transfer" has no path representation; asking for
        // paths from a node to itself must yield none, for any k.
        let (g, ns) = mesh();
        for k in [0, 1, 5] {
            assert!(
                k_shortest_paths(&g, ns[1], ns[1], k).is_empty(),
                "src == dst must return no paths (k = {k})"
            );
        }
    }

    #[test]
    fn counts_simple_paths_in_diamond() {
        // 0->1->3, 0->2->3, 0->1->2->3, 0->2->1->3 ... depends on edges.
        let mut g = Graph::new();
        let ns = g.add_nodes(4);
        g.add_link(ns[0], ns[1], 1);
        g.add_link(ns[0], ns[2], 1);
        g.add_link(ns[1], ns[3], 1);
        g.add_link(ns[2], ns[3], 1);
        g.add_link(ns[1], ns[2], 1);
        let ps = k_shortest_paths(&g, ns[0], ns[3], 10);
        // Simple paths: 013, 023, 0123. Exactly three.
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0].len(), 2);
        assert_eq!(ps[1].len(), 2);
        assert_eq!(ps[2].len(), 3);
    }
}
