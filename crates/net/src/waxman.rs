//! Waxman random topologies, BRITE-style.
//!
//! The paper generates its random networks with BRITE using Waxman's model:
//! nodes are placed on a plane and the probability of interconnecting two
//! nodes decays exponentially with their Euclidean distance
//! (`P(u,v) = beta * exp(-d(u,v) / (alpha * L))`, `L` the maximum distance).
//!
//! This implementation produces a *connected* network with an exact number
//! of bidirectional link pairs (the paper speaks of "100 nodes and 200 pairs
//! of links", i.e. average node degree 4): a Waxman-weighted random spanning
//! tree guarantees connectivity, then the remaining pairs are drawn without
//! replacement with probability proportional to their Waxman weight.

use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters for [`waxman_network`].
#[derive(Debug, Clone)]
pub struct WaxmanConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of bidirectional link pairs (must be at least `nodes - 1`).
    pub link_pairs: usize,
    /// Wavelengths provisioned on every link.
    pub wavelengths: u32,
    /// Waxman `alpha` (distance decay scale); BRITE's default is 0.15.
    pub alpha: f64,
    /// RNG seed for reproducible topologies.
    pub seed: u64,
}

impl WaxmanConfig {
    /// The paper's headline random network: 100 nodes, 200 link pairs
    /// (average node degree 4).
    pub fn paper_default(seed: u64) -> Self {
        WaxmanConfig {
            nodes: 100,
            link_pairs: 200,
            wavelengths: 4,
            alpha: 0.15,
            seed,
        }
    }
}

/// Generates a connected Waxman network per `cfg`.
///
/// # Panics
/// Panics if `link_pairs < nodes - 1` (cannot be connected) or exceeds the
/// complete graph size.
pub fn waxman_network(cfg: &WaxmanConfig) -> Graph {
    let n = cfg.nodes;
    assert!(n >= 2, "need at least two nodes");
    assert!(
        cfg.link_pairs >= n - 1,
        "need at least nodes-1 link pairs for connectivity"
    );
    assert!(
        cfg.link_pairs <= n * (n - 1) / 2,
        "more link pairs than node pairs"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Node placement on the unit square.
    let pos: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
        .collect();
    let dist = |a: usize, b: usize| -> f64 {
        let dx = pos[a].0 - pos[b].0;
        let dy = pos[a].1 - pos[b].1;
        (dx * dx + dy * dy).sqrt()
    };
    let mut max_d: f64 = 0.0;
    for a in 0..n {
        for b in (a + 1)..n {
            max_d = max_d.max(dist(a, b));
        }
    }
    let scale = cfg.alpha * max_d;
    let weight = |a: usize, b: usize| (-dist(a, b) / scale).exp();

    let mut g = Graph::new();
    let nodes = g.add_nodes(n);

    // `chosen[a][b]` over a < b.
    let mut chosen = vec![false; n * n];
    let mark = |chosen: &mut Vec<bool>, a: usize, b: usize| {
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        chosen[a * n + b] = true;
    };
    let is_marked = |chosen: &[bool], a: usize, b: usize| chosen[a.min(b) * n + a.max(b)];

    // Waxman-weighted random spanning tree: attach each node (in random
    // order) to an already-attached node drawn by weight.
    let mut order: Vec<usize> = (0..n).collect();
    // Fisher-Yates shuffle.
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    let mut attached = vec![order[0]];
    let mut pairs_used = 0usize;
    for &v in &order[1..] {
        let total: f64 = attached.iter().map(|&u| weight(u, v)).sum();
        let mut draw = rng.random_range(0.0..total);
        let mut pick = attached[attached.len() - 1];
        for &u in &attached {
            let w = weight(u, v);
            if draw < w {
                pick = u;
                break;
            }
            draw -= w;
        }
        g.add_link_pair(nodes[pick], nodes[v], cfg.wavelengths);
        mark(&mut chosen, pick, v);
        pairs_used += 1;
        attached.push(v);
    }

    // Remaining pairs: weighted sampling without replacement.
    let mut cand: Vec<(usize, usize, f64)> = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            if !is_marked(&chosen, a, b) {
                cand.push((a, b, weight(a, b)));
            }
        }
    }
    let mut total: f64 = cand.iter().map(|c| c.2).sum();
    while pairs_used < cfg.link_pairs {
        let mut draw = rng.random_range(0.0..total);
        let mut idx = cand.len() - 1;
        for (i, c) in cand.iter().enumerate() {
            if draw < c.2 {
                idx = i;
                break;
            }
            draw -= c.2;
        }
        let (a, b, w) = cand.swap_remove(idx);
        total -= w;
        g.add_link_pair(nodes[a], nodes[b], cfg.wavelengths);
        pairs_used += 1;
    }

    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_size_and_connected() {
        let cfg = WaxmanConfig {
            nodes: 40,
            link_pairs: 80,
            wavelengths: 8,
            alpha: 0.15,
            seed: 42,
        };
        let g = waxman_network(&cfg);
        assert_eq!(g.num_nodes(), 40);
        assert_eq!(g.num_edges(), 160); // 80 pairs = 160 directed edges
        assert!(g.is_strongly_connected());
        assert!(g.edge_ids().all(|e| g.wavelengths(e) == 8));
    }

    #[test]
    fn deterministic_by_seed() {
        let cfg = WaxmanConfig::paper_default(7);
        let g1 = waxman_network(&cfg);
        let g2 = waxman_network(&cfg);
        assert_eq!(g1.num_edges(), g2.num_edges());
        for e in g1.edge_ids() {
            assert_eq!(g1.src(e), g2.src(e));
            assert_eq!(g1.dst(e), g2.dst(e));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = waxman_network(&WaxmanConfig::paper_default(1));
        let g2 = waxman_network(&WaxmanConfig::paper_default(2));
        let same = g1
            .edge_ids()
            .zip(g2.edge_ids())
            .all(|(a, b)| g1.src(a) == g2.src(b) && g1.dst(a) == g2.dst(b));
        assert!(!same, "seeds 1 and 2 produced identical topologies");
    }

    #[test]
    fn paper_default_shape() {
        let g = waxman_network(&WaxmanConfig::paper_default(3));
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 400); // 200 pairs; average degree 4
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn minimum_tree_case() {
        let cfg = WaxmanConfig {
            nodes: 10,
            link_pairs: 9,
            wavelengths: 2,
            alpha: 0.15,
            seed: 5,
        };
        let g = waxman_network(&cfg);
        assert_eq!(g.num_edges(), 18);
        assert!(g.is_strongly_connected());
    }

    #[test]
    #[should_panic(expected = "connectivity")]
    fn too_few_links_panics() {
        let cfg = WaxmanConfig {
            nodes: 10,
            link_pairs: 5,
            wavelengths: 2,
            alpha: 0.15,
            seed: 5,
        };
        waxman_network(&cfg);
    }
}
