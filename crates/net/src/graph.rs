//! Directed graphs with wavelength-capacitated links, and simple paths.

use std::fmt;

/// Handle to a node of a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Handle to a directed edge (link) of a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// Index of the node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Index of the edge.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct EdgeData {
    src: NodeId,
    dst: NodeId,
    /// Number of wavelengths on this link (the paper's `C_e`).
    wavelengths: u32,
    /// Geometric length (used by weighted path searches; 1.0 by default).
    length: f64,
}

/// A directed graph whose edges are optical links carrying a number of
/// wavelengths.
///
/// Research-network topologies are bidirectional at the fiber level; use
/// [`Graph::add_link_pair`] to add both directions at once — the paper's
/// "pairs of links".
#[derive(Debug, Clone, Default)]
pub struct Graph {
    names: Vec<String>,
    edges: Vec<EdgeData>,
    out_adj: Vec<Vec<EdgeId>>,
    in_adj: Vec<Vec<EdgeId>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Adds a node with a display name; returns its handle.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.names.len() as u32);
        self.names.push(name.into());
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Adds `n` anonymously-named nodes; returns their handles.
    pub fn add_nodes(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|i| self.add_node(format!("v{i}"))).collect()
    }

    /// Adds a directed link from `src` to `dst` with the given number of
    /// wavelengths; returns its handle.
    pub fn add_link(&mut self, src: NodeId, dst: NodeId, wavelengths: u32) -> EdgeId {
        self.add_link_with_length(src, dst, wavelengths, 1.0)
    }

    /// Adds a directed link with an explicit geometric length.
    pub fn add_link_with_length(
        &mut self,
        src: NodeId,
        dst: NodeId,
        wavelengths: u32,
        length: f64,
    ) -> EdgeId {
        assert!(src.index() < self.names.len(), "src out of range");
        assert!(dst.index() < self.names.len(), "dst out of range");
        assert_ne!(src, dst, "self-loops are not valid optical links");
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeData {
            src,
            dst,
            wavelengths,
            length,
        });
        self.out_adj[src.index()].push(id);
        self.in_adj[dst.index()].push(id);
        id
    }

    /// Adds a bidirectional fiber (two directed links); returns both handles.
    pub fn add_link_pair(&mut self, a: NodeId, b: NodeId, wavelengths: u32) -> (EdgeId, EdgeId) {
        (
            self.add_link(a, b, wavelengths),
            self.add_link(b, a, wavelengths),
        )
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.names.len()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Display name of `n`.
    pub fn node_name(&self, n: NodeId) -> &str {
        &self.names[n.index()]
    }

    /// Source node of `e`.
    #[inline]
    pub fn src(&self, e: EdgeId) -> NodeId {
        self.edges[e.index()].src
    }

    /// Destination node of `e`.
    #[inline]
    pub fn dst(&self, e: EdgeId) -> NodeId {
        self.edges[e.index()].dst
    }

    /// Wavelength count of `e` (the paper's `C_e`).
    #[inline]
    pub fn wavelengths(&self, e: EdgeId) -> u32 {
        self.edges[e.index()].wavelengths
    }

    /// Re-provisions every link to carry `w` wavelengths. Used by the
    /// figure sweeps that vary wavelengths per link while holding total
    /// capacity constant.
    pub fn set_all_wavelengths(&mut self, w: u32) {
        for e in &mut self.edges {
            e.wavelengths = w;
        }
    }

    /// Geometric length of `e`.
    #[inline]
    pub fn length(&self, e: EdgeId) -> f64 {
        self.edges[e.index()].length
    }

    /// Outgoing edges of `n`.
    #[inline]
    pub fn out_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.out_adj[n.index()]
    }

    /// Incoming edges of `n`.
    #[inline]
    pub fn in_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.in_adj[n.index()]
    }

    /// Iterator over all node handles.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.names.len() as u32).map(NodeId)
    }

    /// Iterator over all edge handles.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// True if every node can reach every other node (strong connectivity).
    pub fn is_strongly_connected(&self) -> bool {
        let n = self.num_nodes();
        if n <= 1 {
            return true;
        }
        let reach = |start: NodeId, forward: bool| -> usize {
            let mut seen = vec![false; n];
            let mut stack = vec![start];
            seen[start.index()] = true;
            let mut count = 1;
            while let Some(v) = stack.pop() {
                let adj = if forward {
                    self.out_edges(v)
                } else {
                    self.in_edges(v)
                };
                for &e in adj {
                    let w = if forward { self.dst(e) } else { self.src(e) };
                    if !seen[w.index()] {
                        seen[w.index()] = true;
                        count += 1;
                        stack.push(w);
                    }
                }
            }
            count
        };
        reach(NodeId(0), true) == n && reach(NodeId(0), false) == n
    }
}

/// A simple (loop-free) directed path through a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    edges: Vec<EdgeId>,
}

impl Path {
    /// Builds a path from consecutive edges, validating continuity and
    /// simplicity against `g`.
    ///
    /// # Panics
    /// Panics if the edges do not form a simple connected path.
    pub fn new(g: &Graph, edges: Vec<EdgeId>) -> Self {
        assert!(!edges.is_empty(), "empty path");
        let mut seen_nodes = vec![g.src(edges[0])];
        for win in edges.windows(2) {
            assert_eq!(
                g.dst(win[0]),
                g.src(win[1]),
                "path edges are not consecutive"
            );
        }
        for &e in &edges {
            let d = g.dst(e);
            assert!(!seen_nodes.contains(&d), "path revisits node {d}");
            seen_nodes.push(d);
        }
        Path { edges }
    }

    /// Builds a path without validation (for internal use by search
    /// algorithms that guarantee the invariants).
    pub(crate) fn from_edges_unchecked(edges: Vec<EdgeId>) -> Self {
        Path { edges }
    }

    /// The edges of this path, in order.
    #[inline]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of hops.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if the path has no edges (never constructed by this crate).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// First node of the path.
    pub fn source(&self, g: &Graph) -> NodeId {
        g.src(self.edges[0])
    }

    /// Last node of the path.
    pub fn target(&self, g: &Graph) -> NodeId {
        // lint: allow(lib-unwrap, reason = "invariant: this crate never constructs an empty path (see is_empty docs)")
        g.dst(*self.edges.last().expect("invariant: non-empty path"))
    }

    /// The node sequence, source first.
    pub fn nodes(&self, g: &Graph) -> Vec<NodeId> {
        let mut v = Vec::with_capacity(self.edges.len() + 1);
        v.push(self.source(g));
        for &e in &self.edges {
            v.push(g.dst(e));
        }
        v
    }

    /// Total geometric length.
    pub fn total_length(&self, g: &Graph) -> f64 {
        self.edges.iter().map(|&e| g.length(e)).sum()
    }

    /// The bottleneck wavelength count along the path.
    pub fn bottleneck_wavelengths(&self, g: &Graph) -> u32 {
        self.edges
            .iter()
            .map(|&e| g.wavelengths(e))
            .min()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let ns = g.add_nodes(3);
        g.add_link_pair(ns[0], ns[1], 4);
        g.add_link_pair(ns[1], ns[2], 4);
        g.add_link_pair(ns[2], ns[0], 4);
        (g, ns)
    }

    #[test]
    fn build_and_adjacency() {
        let (g, ns) = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.out_edges(ns[0]).len(), 2);
        assert_eq!(g.in_edges(ns[0]).len(), 2);
        for e in g.edge_ids() {
            assert_eq!(g.wavelengths(e), 4);
            assert_ne!(g.src(e), g.dst(e));
        }
    }

    #[test]
    fn strong_connectivity() {
        let (g, _) = triangle();
        assert!(g.is_strongly_connected());

        let mut g2 = Graph::new();
        let ns = g2.add_nodes(3);
        g2.add_link(ns[0], ns[1], 1);
        g2.add_link(ns[1], ns[2], 1);
        assert!(!g2.is_strongly_connected());
    }

    #[test]
    fn set_all_wavelengths() {
        let (mut g, _) = triangle();
        g.set_all_wavelengths(16);
        assert!(g.edge_ids().all(|e| g.wavelengths(e) == 16));
    }

    #[test]
    fn path_construction_and_queries() {
        let (g, ns) = triangle();
        // edges: 0:(0->1) 1:(1->0) 2:(1->2) 3:(2->1) 4:(2->0) 5:(0->2)
        let p = Path::new(&g, vec![EdgeId(0), EdgeId(2)]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.source(&g), ns[0]);
        assert_eq!(p.target(&g), ns[2]);
        assert_eq!(p.nodes(&g), vec![ns[0], ns[1], ns[2]]);
        assert_eq!(p.bottleneck_wavelengths(&g), 4);
        assert!((p.total_length(&g) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not consecutive")]
    fn path_rejects_disconnected() {
        let (g, _) = triangle();
        // 0->1 then 2->1 is not consecutive.
        Path::new(&g, vec![EdgeId(0), EdgeId(3)]);
    }

    #[test]
    #[should_panic(expected = "revisits")]
    fn path_rejects_loops() {
        let (g, _) = triangle();
        // 0->1, 1->0 revisits node 0... wait source is 0; dst of second edge is 0.
        Path::new(&g, vec![EdgeId(0), EdgeId(1)]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn no_self_loops() {
        let mut g = Graph::new();
        let n = g.add_node("a");
        g.add_link(n, n, 1);
    }
}
