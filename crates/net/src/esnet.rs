//! An ESnet-style topology.
//!
//! The paper's motivation leans on DOE's ESnet (the network carrying most
//! U.S. science traffic). This module provides a 15-PoP abstraction of the
//! late-2000s ESnet backbone ring structure — two coast hubs, a northern
//! and a southern transcontinental path, and the Chicago/Atlanta exchange
//! points — suitable for experiments that want a second realistic research
//! network beside Abilene.
//!
//! Like all topologies in this crate the link list is a deterministic
//! constant; wavelength counts are provisioned by the caller.

use crate::graph::{Graph, NodeId};

/// The 15 ESnet-style PoPs, in node order.
pub const POPS: [&str; 15] = [
    "Seattle",       // 0
    "Sunnyvale",     // 1
    "Los Angeles",   // 2
    "Albuquerque",   // 3
    "El Paso",       // 4
    "Denver",        // 5
    "Kansas City",   // 6
    "Houston",       // 7
    "Chicago",       // 8
    "Nashville",     // 9
    "Atlanta",       // 10
    "Washington DC", // 11
    "New York",      // 12
    "Boston",        // 13
    "Brookhaven",    // 14
];

/// Link pairs of the ESnet-style backbone (indices into [`POPS`]).
const LINKS: [(usize, usize); 21] = [
    // Pacific segment.
    (0, 1), // Seattle - Sunnyvale
    (1, 2), // Sunnyvale - Los Angeles
    // Northern path.
    (0, 5), // Seattle - Denver
    (5, 6), // Denver - Kansas City
    (6, 8), // Kansas City - Chicago
    (1, 5), // Sunnyvale - Denver
    // Southern path.
    (2, 3),  // Los Angeles - Albuquerque
    (3, 4),  // Albuquerque - El Paso
    (4, 7),  // El Paso - Houston
    (7, 9),  // Houston - Nashville
    (9, 10), // Nashville - Atlanta
    (3, 5),  // Albuquerque - Denver (cross link)
    // Eastern seaboard.
    (10, 11), // Atlanta - Washington DC
    (11, 12), // Washington DC - New York
    (12, 13), // New York - Boston
    (12, 14), // New York - Brookhaven
    (13, 14), // Boston - Brookhaven (lab dual-homing)
    // Exchange core.
    (8, 12), // Chicago - New York
    (8, 9),  // Chicago - Nashville
    (8, 11), // Chicago - Washington DC
    (6, 7),  // Kansas City - Houston
];

/// Builds the ESnet-style backbone with `wavelengths` per link.
pub fn esnet(wavelengths: u32) -> (Graph, Vec<NodeId>) {
    let mut g = Graph::new();
    let nodes: Vec<NodeId> = POPS.iter().map(|&p| g.add_node(p)).collect();
    for &(a, b) in &LINKS {
        g.add_link_pair(nodes[a], nodes[b], wavelengths);
    }
    (g, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::shortest_path;
    use crate::yen::k_shortest_paths;

    #[test]
    fn shape_and_connectivity() {
        let (g, nodes) = esnet(4);
        assert_eq!(g.num_nodes(), 15);
        assert_eq!(g.num_edges(), 42); // 21 pairs
        assert!(g.is_strongly_connected());
        assert_eq!(g.node_name(nodes[14]), "Brookhaven");
    }

    #[test]
    fn no_duplicate_links() {
        let (g, _) = esnet(2);
        let mut pairs: Vec<(u32, u32)> = g.edge_ids().map(|e| (g.src(e).0, g.dst(e).0)).collect();
        pairs.sort();
        let before = pairs.len();
        pairs.dedup();
        assert_eq!(before, pairs.len());
    }

    #[test]
    fn coast_to_coast_diversity() {
        // Seattle -> Brookhaven should have at least 3 edge-disjoint-ish
        // alternatives thanks to the dual transcontinental paths.
        let (g, nodes) = esnet(4);
        let p = shortest_path(&g, nodes[0], nodes[14]).unwrap();
        assert!(p.len() <= 5, "diameter too big: {}", p.len());
        let ps = k_shortest_paths(&g, nodes[0], nodes[14], 4);
        assert_eq!(ps.len(), 4, "expected rich path diversity");
    }

    #[test]
    fn lab_dual_homing() {
        // Brookhaven reaches the backbone via both New York and Boston.
        let (g, nodes) = esnet(4);
        assert_eq!(g.out_edges(nodes[14]).len(), 2);
    }
}
