//! Graphviz DOT export for topologies and (optionally) loads.
//!
//! Operators debug wavelength plans visually; `to_dot` renders the network
//! and `to_dot_with_load` colors links by utilization so a schedule's hot
//! spots stand out (`dot -Tsvg network.dot > network.svg`).

use crate::graph::{EdgeId, Graph};
use std::fmt::Write as _;

/// Renders the topology as a Graphviz digraph. Bidirectional link pairs are
/// drawn once with `dir=both` when both directions exist with equal
/// wavelength counts.
pub fn to_dot(g: &Graph) -> String {
    to_dot_with_load(g, |_| None)
}

/// Like [`to_dot`], with a per-edge load fraction in `[0, 1]` used to color
/// edges from gray (idle) to red (saturated). Return `None` for unloaded
/// rendering of that edge.
pub fn to_dot_with_load(g: &Graph, load: impl Fn(EdgeId) -> Option<f64>) -> String {
    let mut out = String::from("digraph network {\n");
    out.push_str("  graph [overlap=false, splines=true];\n");
    out.push_str("  node [shape=ellipse, fontsize=10];\n");
    for n in g.nodes() {
        let _ = writeln!(out, "  n{} [label=\"{}\"];", n.0, g.node_name(n));
    }
    // Detect symmetric pairs to draw once.
    let mut drawn = vec![false; g.num_edges()];
    for e in g.edge_ids() {
        if drawn[e.index()] {
            continue;
        }
        let (s, d, w) = (g.src(e), g.dst(e), g.wavelengths(e));
        let reverse = g
            .out_edges(d)
            .iter()
            .copied()
            .find(|&r| g.dst(r) == s && !drawn[r.index()] && g.wavelengths(r) == w);
        let (dir, rev_load) = match reverse {
            Some(r) => {
                drawn[r.index()] = true;
                ("both", load(r))
            }
            None => ("forward", None),
        };
        drawn[e.index()] = true;
        let l = match (load(e), rev_load) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        };
        let color = match l {
            Some(f) => {
                let f = f.clamp(0.0, 1.0);
                // gray -> red ramp.
                format!(
                    "#{:02x}{:02x}{:02x}",
                    128 + (127.0 * f) as u8,
                    (128.0 * (1.0 - f)) as u8,
                    (128.0 * (1.0 - f)) as u8
                )
            }
            None => "#808080".to_string(),
        };
        let _ = writeln!(
            out,
            "  n{} -> n{} [dir={dir}, label=\"{w}λ\", color=\"{color}\"];",
            s.0, d.0
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abilene::abilene14;

    #[test]
    fn renders_nodes_and_pairs_once() {
        let (g, _) = abilene14(4);
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph network {"));
        assert!(dot.ends_with("}\n"));
        // 11 node label lines and 14 edge capacity labels.
        assert_eq!(dot.matches("[label=\"").count(), 11);
        assert_eq!(dot.matches("label=\"4λ\"").count(), 14);
        // 14 bidirectional edges drawn once.
        assert_eq!(dot.matches("dir=both").count(), 14);
        assert!(dot.contains("Seattle"));
        assert!(dot.contains("4λ"));
    }

    #[test]
    fn load_coloring() {
        let (g, _) = abilene14(4);
        let dot = to_dot_with_load(&g, |e| Some(if e.index() == 0 { 1.0 } else { 0.0 }));
        assert!(dot.contains("#ff0000"), "saturated edge should be red");
        assert!(dot.contains("#808080"), "idle edges should be gray");
    }

    #[test]
    fn asymmetric_edges_drawn_forward() {
        let mut g = Graph::new();
        let ns = g.add_nodes(2);
        g.add_link(ns[0], ns[1], 2);
        let dot = to_dot(&g);
        assert!(dot.contains("dir=forward"));
    }
}
