//! Cached allowed-path collections per (source, destination) pair.
//!
//! The paper's formulations reserve bandwidth only on an explicitly defined
//! set of allowed paths `P(s_i, d_i, j)` per job. This module computes and
//! caches the k shortest loopless paths per node pair, the policy used
//! throughout the paper's evaluation (4–8 paths per job).

use crate::graph::{Graph, NodeId, Path};
use crate::yen::k_shortest_paths;
use std::collections::BTreeMap;

/// A lazily-built cache of k-shortest paths per (source, destination).
///
/// Backed by a `BTreeMap` so that iterating the cache (debug dumps, future
/// serialization) visits pairs in a stable order — part of the workspace's
/// bit-identical-output guarantee (see `wavesched-lint`'s `hash-iter-order`).
#[derive(Debug, Clone)]
pub struct PathSet {
    k: usize,
    cache: BTreeMap<(NodeId, NodeId), Vec<Path>>,
}

impl PathSet {
    /// Creates an empty cache that will compute up to `k` paths per pair.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        PathSet {
            k,
            cache: BTreeMap::new(),
        }
    }

    /// The configured number of paths per pair.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Returns the allowed paths for `(src, dst)`, computing and caching
    /// them on first use. Empty when `dst` is unreachable from `src`.
    pub fn paths(&mut self, g: &Graph, src: NodeId, dst: NodeId) -> &[Path] {
        self.cache
            .entry((src, dst))
            .or_insert_with(|| k_shortest_paths(g, src, dst, self.k))
    }

    /// Precomputes the paths for every pair in `pairs`.
    pub fn warm(&mut self, g: &Graph, pairs: impl IntoIterator<Item = (NodeId, NodeId)>) {
        for (s, d) in pairs {
            self.paths(g, s, d);
        }
    }

    /// Number of cached pairs.
    pub fn cached_pairs(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abilene::abilene14;

    #[test]
    fn caches_and_returns_k() {
        let (g, nodes) = abilene14(4);
        let mut ps = PathSet::new(4);
        let paths = ps.paths(&g, nodes[0], nodes[10]).to_vec();
        assert!(!paths.is_empty());
        assert!(paths.len() <= 4);
        assert_eq!(ps.cached_pairs(), 1);
        // Second call hits the cache (same content).
        let again = ps.paths(&g, nodes[0], nodes[10]).to_vec();
        assert_eq!(paths.len(), again.len());
        assert_eq!(ps.cached_pairs(), 1);
    }

    #[test]
    fn warm_precomputes() {
        let (g, nodes) = abilene14(4);
        let mut ps = PathSet::new(2);
        ps.warm(&g, vec![(nodes[0], nodes[5]), (nodes[1], nodes[9])]);
        assert_eq!(ps.cached_pairs(), 2);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        PathSet::new(0);
    }
}
