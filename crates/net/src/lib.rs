//! # wavesched-net — network substrate
//!
//! Directed graphs with per-link wavelength capacities, the topologies used
//! in the paper's evaluation, and path machinery:
//!
//! * [`Graph`] — compact directed graph; links carry a wavelength count.
//! * [`waxman`] — BRITE-style Waxman random topologies ("100 to 400 nodes,
//!   average node degree 4" in the paper).
//! * [`abilene`] — the Abilene (Internet2) backbone instances.
//! * [`dijkstra`] — shortest paths.
//! * [`yen`] — Yen's k-shortest loopless paths, used to build the per-job
//!   allowed path sets `P(s_i, d_i, j)` (the paper finds 4–8 paths per job
//!   sufficient).
//! * [`pathset`] — cached allowed-path collections per (source, destination).

#![warn(missing_docs)]

pub mod abilene;
pub mod dijkstra;
pub mod dot;
pub mod esnet;
pub mod graph;
pub mod pathset;
pub mod waxman;
pub mod yen;

pub use abilene::{abilene14, abilene20};
pub use dijkstra::{shortest_path, shortest_path_weighted};
pub use dot::{to_dot, to_dot_with_load};
pub use esnet::esnet;
pub use graph::{EdgeId, Graph, NodeId, Path};
pub use pathset::PathSet;
pub use waxman::{waxman_network, WaxmanConfig};
pub use yen::k_shortest_paths;
