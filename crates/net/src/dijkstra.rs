//! Dijkstra shortest paths with optional edge/node exclusion (as needed by
//! Yen's spur computations).

use crate::graph::{EdgeId, Graph, NodeId, Path};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A min-heap entry ordered by total weight.
struct HeapItem {
    dist: f64,
    node: NodeId,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.node == other.node
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; tie-break on node id for determinism.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Edge weight functions for path searches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Weight {
    /// Every edge costs 1 (hop count). The default: the paper's formulations
    /// care about path diversity, not geometric length.
    #[default]
    Hops,
    /// Use the edge's geometric length.
    Length,
}

impl Weight {
    fn of(self, g: &Graph, e: EdgeId) -> f64 {
        match self {
            Weight::Hops => 1.0,
            Weight::Length => g.length(e),
        }
    }
}

/// Computes a shortest path from `src` to `dst`, or `None` if unreachable.
pub fn shortest_path(g: &Graph, src: NodeId, dst: NodeId) -> Option<Path> {
    shortest_path_filtered(g, src, dst, Weight::Hops, |_| true, |_| true)
}

/// Dijkstra with filters: only edges passing `edge_ok` and nodes passing
/// `node_ok` participate (the source and destination must pass `node_ok`).
pub fn shortest_path_filtered(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    weight: Weight,
    edge_ok: impl Fn(EdgeId) -> bool,
    node_ok: impl Fn(NodeId) -> bool,
) -> Option<Path> {
    if src == dst || !node_ok(src) || !node_ok(dst) {
        return None;
    }
    let n = g.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<EdgeId>> = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[src.index()] = 0.0;
    heap.push(HeapItem {
        dist: 0.0,
        node: src,
    });
    while let Some(HeapItem { dist: d, node: v }) = heap.pop() {
        if done[v.index()] {
            continue;
        }
        done[v.index()] = true;
        if v == dst {
            break;
        }
        for &e in g.out_edges(v) {
            if !edge_ok(e) {
                continue;
            }
            let w = g.dst(e);
            if done[w.index()] || !node_ok(w) {
                continue;
            }
            let nd = d + weight.of(g, e);
            if nd < dist[w.index()] {
                dist[w.index()] = nd;
                pred[w.index()] = Some(e);
                heap.push(HeapItem { dist: nd, node: w });
            }
        }
    }
    if !dist[dst.index()].is_finite() {
        return None;
    }
    // Reconstruct.
    let mut edges = Vec::new();
    let mut cur = dst;
    while cur != src {
        // lint: allow(lib-unwrap, reason = "invariant: dst has finite distance, so every node on the chain back to src was relaxed and has a predecessor")
        let e = pred[cur.index()].expect("invariant: predecessor chain intact");
        edges.push(e);
        cur = g.src(e);
    }
    edges.reverse();
    Some(Path::from_edges_unchecked(edges))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-node diamond: 0 -> {1,2} -> 3 plus a long direct 0 -> 3.
    fn diamond() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let ns = g.add_nodes(4);
        g.add_link(ns[0], ns[1], 1); // e0
        g.add_link(ns[1], ns[3], 1); // e1
        g.add_link(ns[0], ns[2], 1); // e2
        g.add_link(ns[2], ns[3], 1); // e3
        g.add_link_with_length(ns[0], ns[3], 1, 10.0); // e4 direct
        (g, ns)
    }

    #[test]
    fn finds_shortest_by_hops() {
        let (g, ns) = diamond();
        let p = shortest_path(&g, ns[0], ns[3]).unwrap();
        assert_eq!(p.len(), 1); // direct edge wins on hop count
        assert_eq!(p.source(&g), ns[0]);
        assert_eq!(p.target(&g), ns[3]);
    }

    #[test]
    fn weighted_avoids_long_edge() {
        let (g, ns) = diamond();
        let p =
            shortest_path_filtered(&g, ns[0], ns[3], Weight::Length, |_| true, |_| true).unwrap();
        assert_eq!(p.len(), 2); // 2 hops of length 1 beat the length-10 edge
    }

    #[test]
    fn respects_edge_filter() {
        let (g, ns) = diamond();
        // Ban the direct edge (e4): shortest becomes 2 hops.
        let p =
            shortest_path_filtered(&g, ns[0], ns[3], Weight::Hops, |e| e != EdgeId(4), |_| true)
                .unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn respects_node_filter() {
        let (g, ns) = diamond();
        // Ban node 1 and the direct edge: must route via node 2.
        let p = shortest_path_filtered(
            &g,
            ns[0],
            ns[3],
            Weight::Hops,
            |e| e != EdgeId(4),
            |v| v != ns[1],
        )
        .unwrap();
        assert_eq!(p.nodes(&g), vec![ns[0], ns[2], ns[3]]);
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = Graph::new();
        let ns = g.add_nodes(2);
        assert!(shortest_path(&g, ns[0], ns[1]).is_none());
    }

    #[test]
    fn same_node_is_none() {
        let (g, ns) = diamond();
        assert!(shortest_path(&g, ns[0], ns[0]).is_none());
    }
}
