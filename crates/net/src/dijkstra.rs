//! Dijkstra shortest paths with optional edge/node exclusion (as needed by
//! Yen's spur computations) and arbitrary per-link weight closures (as
//! needed by reduced-cost pricing in delayed column generation).
//!
//! ## Determinism
//!
//! Every search in this module is a pure function of the graph's
//! construction order, independent of thread count or platform:
//!
//! * frontier nodes with **equal distance settle in ascending node-id
//!   order** (the heap tie-breaks on node id — lowest wins);
//! * among **equal-cost predecessors** the first relaxation is kept
//!   (strict `<` improvement test), so ties resolve to the edge relaxed
//!   from the earliest-settled tail, in `out_edges` order.
//!
//! Reduced-cost pricing relies on this: two runs at different `WS_THREADS`
//! settings must propose byte-identical columns.

use crate::graph::{EdgeId, Graph, NodeId, Path};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A min-heap entry ordered by total weight.
struct HeapItem {
    dist: f64,
    node: NodeId,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.node == other.node
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; tie-break on node id for determinism.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Edge weight functions for path searches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Weight {
    /// Every edge costs 1 (hop count). The default: the paper's formulations
    /// care about path diversity, not geometric length.
    #[default]
    Hops,
    /// Use the edge's geometric length.
    Length,
}

impl Weight {
    fn of(self, g: &Graph, e: EdgeId) -> f64 {
        match self {
            Weight::Hops => 1.0,
            Weight::Length => g.length(e),
        }
    }
}

/// Computes a shortest path from `src` to `dst`, or `None` if unreachable.
pub fn shortest_path(g: &Graph, src: NodeId, dst: NodeId) -> Option<Path> {
    shortest_path_filtered(g, src, dst, Weight::Hops, |_| true, |_| true)
}

/// Dijkstra with filters: only edges passing `edge_ok` and nodes passing
/// `node_ok` participate (the source and destination must pass `node_ok`).
pub fn shortest_path_filtered(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    weight: Weight,
    edge_ok: impl Fn(EdgeId) -> bool,
    node_ok: impl Fn(NodeId) -> bool,
) -> Option<Path> {
    shortest_path_weighted(g, src, dst, |e| weight.of(g, e), edge_ok, node_ok).map(|(_, path)| path)
}

/// Dijkstra under an arbitrary non-negative per-link weight closure,
/// returning the total weight alongside the path. This is the kernel
/// reduced-cost pricing uses: the closure evaluates the capacity-row dual
/// of each link (clamped to zero), and the returned total is the pricer's
/// lower estimate of the column's dual load.
///
/// Ties are broken deterministically — see the module docs: equal-distance
/// nodes settle lowest-id first, equal-cost predecessors resolve to the
/// first relaxation. Weights must be non-negative and finite; negative
/// weights break Dijkstra's invariant (debug builds assert).
pub fn shortest_path_weighted(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    weight: impl Fn(EdgeId) -> f64,
    edge_ok: impl Fn(EdgeId) -> bool,
    node_ok: impl Fn(NodeId) -> bool,
) -> Option<(f64, Path)> {
    if src == dst || !node_ok(src) || !node_ok(dst) {
        return None;
    }
    let n = g.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<EdgeId>> = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[src.index()] = 0.0;
    heap.push(HeapItem {
        dist: 0.0,
        node: src,
    });
    while let Some(HeapItem { dist: d, node: v }) = heap.pop() {
        if done[v.index()] {
            continue;
        }
        done[v.index()] = true;
        if v == dst {
            break;
        }
        for &e in g.out_edges(v) {
            if !edge_ok(e) {
                continue;
            }
            let w = g.dst(e);
            if done[w.index()] || !node_ok(w) {
                continue;
            }
            let we = weight(e);
            debug_assert!(we >= 0.0 && we.is_finite(), "edge weight must be >= 0");
            let nd = d + we;
            if nd < dist[w.index()] {
                dist[w.index()] = nd;
                pred[w.index()] = Some(e);
                heap.push(HeapItem { dist: nd, node: w });
            }
        }
    }
    if !dist[dst.index()].is_finite() {
        return None;
    }
    // Reconstruct.
    let mut edges = Vec::new();
    let mut cur = dst;
    while cur != src {
        // lint: allow(lib-unwrap, reason = "invariant: dst has finite distance, so every node on the chain back to src was relaxed and has a predecessor")
        let e = pred[cur.index()].expect("invariant: predecessor chain intact");
        edges.push(e);
        cur = g.src(e);
    }
    edges.reverse();
    Some((dist[dst.index()], Path::from_edges_unchecked(edges)))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-node diamond: 0 -> {1,2} -> 3 plus a long direct 0 -> 3.
    fn diamond() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let ns = g.add_nodes(4);
        g.add_link(ns[0], ns[1], 1); // e0
        g.add_link(ns[1], ns[3], 1); // e1
        g.add_link(ns[0], ns[2], 1); // e2
        g.add_link(ns[2], ns[3], 1); // e3
        g.add_link_with_length(ns[0], ns[3], 1, 10.0); // e4 direct
        (g, ns)
    }

    #[test]
    fn finds_shortest_by_hops() {
        let (g, ns) = diamond();
        let p = shortest_path(&g, ns[0], ns[3]).unwrap();
        assert_eq!(p.len(), 1); // direct edge wins on hop count
        assert_eq!(p.source(&g), ns[0]);
        assert_eq!(p.target(&g), ns[3]);
    }

    #[test]
    fn weighted_avoids_long_edge() {
        let (g, ns) = diamond();
        let p =
            shortest_path_filtered(&g, ns[0], ns[3], Weight::Length, |_| true, |_| true).unwrap();
        assert_eq!(p.len(), 2); // 2 hops of length 1 beat the length-10 edge
    }

    #[test]
    fn respects_edge_filter() {
        let (g, ns) = diamond();
        // Ban the direct edge (e4): shortest becomes 2 hops.
        let p =
            shortest_path_filtered(&g, ns[0], ns[3], Weight::Hops, |e| e != EdgeId(4), |_| true)
                .unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn respects_node_filter() {
        let (g, ns) = diamond();
        // Ban node 1 and the direct edge: must route via node 2.
        let p = shortest_path_filtered(
            &g,
            ns[0],
            ns[3],
            Weight::Hops,
            |e| e != EdgeId(4),
            |v| v != ns[1],
        )
        .unwrap();
        assert_eq!(p.nodes(&g), vec![ns[0], ns[2], ns[3]]);
    }

    #[test]
    fn weighted_closure_returns_distance() {
        let (g, ns) = diamond();
        let (d, p) =
            shortest_path_weighted(&g, ns[0], ns[3], |e| g.length(e), |_| true, |_| true).unwrap();
        assert_eq!(p.len(), 2);
        assert!((d - 2.0).abs() < 1e-12);
        // Zero-weight closures are legal (all-slack duals).
        let (d0, p0) =
            shortest_path_weighted(&g, ns[0], ns[3], |_| 0.0, |_| true, |_| true).unwrap();
        assert_eq!(d0, 0.0);
        assert_eq!(p0.source(&g), ns[0]);
        assert_eq!(p0.target(&g), ns[3]);
    }

    /// Two equal-cost routes 0->1->3 and 0->2->3: the tie must always
    /// resolve through node 1 (lowest node id settles first), regardless
    /// of edge insertion order.
    #[test]
    fn tie_breaks_toward_lowest_node_id() {
        // Insertion order A: via-1 edges first.
        let mut ga = Graph::new();
        let na = ga.add_nodes(4);
        ga.add_link(na[0], na[1], 1);
        ga.add_link(na[1], na[3], 1);
        ga.add_link(na[0], na[2], 1);
        ga.add_link(na[2], na[3], 1);
        // Insertion order B: via-2 edges first.
        let mut gb = Graph::new();
        let nb = gb.add_nodes(4);
        gb.add_link(nb[0], nb[2], 1);
        gb.add_link(nb[2], nb[3], 1);
        gb.add_link(nb[0], nb[1], 1);
        gb.add_link(nb[1], nb[3], 1);
        for (g, ns) in [(&ga, &na), (&gb, &nb)] {
            let p = shortest_path(g, ns[0], ns[3]).unwrap();
            assert_eq!(
                p.nodes(g),
                vec![ns[0], ns[1], ns[3]],
                "equal-cost tie must settle through the lowest node id"
            );
            let (_, pw) =
                shortest_path_weighted(g, ns[0], ns[3], |_| 1.0, |_| true, |_| true).unwrap();
            assert_eq!(pw.nodes(g), vec![ns[0], ns[1], ns[3]]);
        }
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = Graph::new();
        let ns = g.add_nodes(2);
        assert!(shortest_path(&g, ns[0], ns[1]).is_none());
    }

    #[test]
    fn same_node_is_none() {
        let (g, ns) = diamond();
        assert!(shortest_path(&g, ns[0], ns[0]).is_none());
    }
}
