//! Proves steady-state controller invocations allocate O(active window),
//! independent of how far the simulated clock has advanced.
//!
//! Before the active-window grid, every invocation materialized slice
//! bounds from time 0 to the horizon — `Instance` construction at
//! `now ≈ 100 000` allocated ~800 KB of grid alone, growing without bound
//! as a replay progressed. With windowed builds and the engine-owned
//! [`BuildArena`](wavesched_core::BuildArena), an invocation's allocation
//! bill depends only on the jobs in flight. This test wraps the system
//! allocator in a byte-counting shim (same thread-gated pattern as
//! `crates/lp/tests/alloc.rs`), replays the identical workload in an era
//! starting at `now = 0` and an era starting at `now = 100 000`, and
//! asserts the steady-state per-invocation byte counts match.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use wavesched_core::controller::{Controller, ControllerConfig};
use wavesched_net::abilene14;
use wavesched_workload::{Job, JobId};

/// System allocator with a byte counter for allocation events
/// (deallocations are free; acquiring memory is what must stay flat).
/// Thread-gated so harness-thread printing is not charged.
struct CountingAlloc;

static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn count_bytes(n: usize) {
    let _ = COUNTING.try_with(|c| {
        if c.get() {
            ALLOC_BYTES.fetch_add(n as u64, Ordering::Relaxed);
        }
    });
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_bytes(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_bytes(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs 12 controller invocations whose clock starts at `base`, feeding
/// three fresh jobs per period, and returns the mean bytes allocated per
/// invocation over the post-warmup half.
///
/// The workloads of the two eras are identical up to the `base` time
/// shift, so any difference in the means is allocation that scales with
/// the absolute clock.
fn era_mean_invocation_bytes(base: f64) -> f64 {
    let (g, _) = abilene14(4);
    let nodes: Vec<_> = g.nodes().collect();
    let cfg = ControllerConfig::paper(4);
    let tau = cfg.tau as f64;
    let mut c = Controller::new(g.clone(), cfg);

    let mut id = 0u32;
    let mut samples = Vec::new();
    for k in 0..12u32 {
        let now = base + f64::from(k) * tau;
        let batch: Vec<Job> = (0..3)
            .map(|_| {
                id += 1;
                let src = nodes[id as usize % nodes.len()];
                let dst = nodes[(id as usize + 5) % nodes.len()];
                Job::new(JobId(id), now, src, dst, 30.0, now, now + 12.0)
            })
            .collect();

        let before = ALLOC_BYTES.load(Ordering::SeqCst);
        COUNTING.with(|cell| cell.set(true));
        let res = c.invoke(now, &batch);
        COUNTING.with(|cell| cell.set(false));
        let bytes = ALLOC_BYTES.load(Ordering::SeqCst) - before;
        res.expect("invocation must solve");
        samples.push(bytes);
    }
    let tail = &samples[6..];
    tail.iter().sum::<u64>() as f64 / tail.len() as f64
}

#[test]
fn invocation_allocation_is_independent_of_clock() {
    let early = era_mean_invocation_bytes(0.0);
    let late = era_mean_invocation_bytes(100_000.0);
    // Identical workloads shifted in time should allocate identically;
    // 64 KB of slack absorbs allocator/collection noise. The regression
    // this guards against is ~800 KB per invocation of grid bounds alone.
    assert!(
        late <= early + 64_000.0,
        "steady-state invocation allocations grew with the clock: \
         {early:.0} B/invocation at era 0 vs {late:.0} B/invocation at era 100000"
    );
}
