//! Differential testing: delayed column generation against the monolithic
//! full-materialization solves, on randomized instances.
//!
//! The two paths share the simplex engine but nothing of the model build:
//! the monolithic side enumerates every `(job, path, slice)` Yen column up
//! front, the column-generation side grows a restricted master one priced
//! column at a time. Agreement on objectives is therefore strong evidence
//! that the pricing loop's optimality certificate (no out-of-pool column
//! with positive reduced cost) is implemented correctly.
//!
//! * With the [`ExhaustivePricer`] the path universes coincide, so Stage-1
//!   `Z*`, the Stage-2 weighted objective, and RET's `b̂` must all match
//!   the monolithic results to tolerance.
//! * With the [`ReducedCostPricer`] the universe is *all* simple paths — a
//!   superset of the Yen set — so Stage-1 `Z*` must be at least the
//!   monolithic optimum (minus tolerance).

use proptest::prelude::*;
use wavesched_core::colgen::{CgMaster, ColGenConfig, PricerChoice};
use wavesched_core::instance::{Instance, InstanceConfig};
use wavesched_core::ret::{solve_ret, solve_ret_colgen, RetConfig};
use wavesched_core::stage1::{solve_stage1, solve_stage1_colgen};
use wavesched_core::stage2::{solve_stage2, solve_stage2_colgen, WeightPolicy};
use wavesched_net::{abilene14, waxman_network, Graph, PathSet, WaxmanConfig};
use wavesched_workload::{Job, WorkloadConfig, WorkloadGenerator};

const TOL: f64 = 1e-6;

fn workload(g: &Graph, n_jobs: usize, seed: u64) -> Vec<Job> {
    WorkloadGenerator::new(WorkloadConfig {
        num_jobs: n_jobs,
        seed,
        ..Default::default()
    })
    .generate(g)
}

fn monolithic(g: &Graph, jobs: &[Job], cfg: &InstanceConfig) -> Instance {
    let mut ps = PathSet::new(cfg.paths_per_job);
    Instance::build(g, jobs, cfg, &mut ps)
}

fn cg_master(g: &Graph, jobs: &[Job], cfg: &InstanceConfig, pricer: PricerChoice) -> CgMaster {
    let demands: Vec<f64> = jobs.iter().map(|j| cfg.demand_units(j.size_gb)).collect();
    let cg = ColGenConfig {
        pricer,
        ..ColGenConfig::default()
    };
    CgMaster::build(g, jobs, demands, cfg, &cg).expect("master builds")
}

/// Stage-1 + Stage-2 agreement on one instance: exhaustive-pricer column
/// generation must match the monolithic objectives; reduced-cost pricing
/// (superset universe) must be at least as good at Stage 1.
fn check_pipeline_agreement(g: &Graph, jobs: &[Job], cfg: &InstanceConfig, label: &str) {
    let inst = monolithic(g, jobs, cfg);
    let mono1 = solve_stage1(&inst).expect("monolithic stage 1");

    let mut master = cg_master(g, jobs, cfg, PricerChoice::Exhaustive);
    let mut pricer = PricerChoice::Exhaustive.build(cfg.paths_per_job);
    let z_cg = solve_stage1_colgen(&mut master, pricer.as_mut()).expect("cg stage 1");
    assert!(
        (z_cg - mono1.z_star).abs() <= TOL * (1.0 + mono1.z_star.abs()),
        "{label}: stage-1 mismatch cg={z_cg} monolithic={}",
        mono1.z_star
    );

    // The restricted master held a subset of the monolithic columns.
    assert!(
        master.pool().num_cols() <= inst.vars.len(),
        "{label}: pool {} exceeds monolithic {}",
        master.pool().num_cols(),
        inst.vars.len()
    );

    let mono2 = solve_stage2(&inst, mono1.z_star, 0.1).expect("monolithic stage 2");
    let sol2 = solve_stage2_colgen(
        &mut master,
        pricer.as_mut(),
        z_cg,
        0.1,
        &WeightPolicy::DemandProportional,
    )
    .expect("cg stage 2");
    assert!(
        (sol2.objective - mono2.objective).abs() <= 1e-5 * (1.0 + mono2.objective.abs()),
        "{label}: stage-2 mismatch cg={} monolithic={}",
        sol2.objective,
        mono2.objective
    );

    let mut rc_master = cg_master(g, jobs, cfg, PricerChoice::ReducedCost);
    let mut rc_pricer = PricerChoice::ReducedCost.build(cfg.paths_per_job);
    let z_rc = solve_stage1_colgen(&mut rc_master, rc_pricer.as_mut()).expect("rc stage 1");
    assert!(
        z_rc >= mono1.z_star - TOL * (1.0 + mono1.z_star.abs()),
        "{label}: reduced-cost pricer below Yen optimum: {z_rc} < {}",
        mono1.z_star
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random Waxman topologies and workloads: column generation agrees
    /// with full materialization on both pipeline stages.
    #[test]
    fn waxman_pipeline_agrees(
        nodes in 8usize..16,
        seed in 0u64..1_000,
        n_jobs in 1usize..8,
        wavelengths in 1u32..4,
    ) {
        let g = waxman_network(&WaxmanConfig {
            nodes,
            link_pairs: nodes * 2,
            wavelengths,
            alpha: 0.3,
            seed,
        });
        let jobs = workload(&g, n_jobs, seed.wrapping_mul(31).wrapping_add(7));
        let cfg = InstanceConfig::paper(wavelengths);
        check_pipeline_agreement(&g, &jobs, &cfg, &format!("waxman n={nodes} seed={seed}"));
    }

    /// The Abilene reference topology under random workloads.
    #[test]
    fn abilene_pipeline_agrees(seed in 0u64..1_000, n_jobs in 1usize..10) {
        let (g, _) = abilene14(4);
        let jobs = workload(&g, n_jobs, seed);
        let cfg = InstanceConfig::paper(4);
        check_pipeline_agreement(&g, &jobs, &cfg, &format!("abilene seed={seed}"));
    }

    /// RET differential: the column-generation bisection lands on the same
    /// fractional extension `b̂` as the monolithic search (identical probe
    /// sequence over the same Yen universe), and the final extension
    /// completes every job in both.
    #[test]
    fn ret_bisection_agrees(seed in 0u64..500, n_jobs in 2usize..7) {
        let (g, _) = abilene14(2);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: n_jobs,
            seed,
            size_gb: (50.0, 200.0),
            window: (2.0, 5.0),
            ..Default::default()
        })
        .generate(&g);
        let cfg = InstanceConfig::paper(2);
        let ret_cfg = RetConfig::default();
        let cg = ColGenConfig {
            pricer: PricerChoice::Exhaustive,
            ..ColGenConfig::default()
        };
        let mono = solve_ret(&g, &jobs, &cfg, &ret_cfg).expect("monolithic ret");
        let colgen = solve_ret_colgen(&g, &jobs, &cfg, &ret_cfg, &cg).expect("cg ret");
        match (&mono, &colgen) {
            (None, None) => {}
            (Some(m), Some((c, _))) => {
                prop_assert!(
                    (m.b_lp - c.b_lp).abs() <= 1e-9,
                    "b_lp mismatch: monolithic {} cg {}", m.b_lp, c.b_lp
                );
            }
            // Growth is capped at the b_max envelope on the CG side while
            // the monolithic path may take one final step past it (a
            // documented difference), so "monolithic completes, CG
            // doesn't" is possible only in that overhang; the reverse
            // direction would be a bug.
            (Some(m), None) => {
                prop_assert!(
                    m.b_final > ret_cfg.b_max,
                    "cg found nothing but monolithic finished at b={} <= b_max", m.b_final
                );
            }
            (None, Some((c, _))) => {
                prop_assert!(false, "monolithic found nothing but cg finished at b={}", c.b_final);
            }
        }
    }
}
