//! Shared LP-construction helpers used by the Stage-1, Stage-2 and SUB-RET
//! builders.

use crate::instance::Instance;
use wavesched_lp::{Col, Problem};

/// Adds one nonnegative column per decision variable, upper-bounded by the
/// bottleneck wavelength count of its path (a valid implied bound that
/// shrinks the search). Costs start at zero. Returns the columns, aligned
/// with the instance's `VarMap`.
pub(crate) fn add_assignment_cols(p: &mut Problem, inst: &Instance) -> Vec<Col> {
    let mut cols = Vec::with_capacity(inst.vars.len());
    for (_, job, path, _) in inst.vars.iter() {
        let bottleneck = inst.paths[job][path].bottleneck_wavelengths(&inst.graph) as f64;
        cols.push(p.add_col(0.0, bottleneck, 0.0));
    }
    cols
}

/// Adds the capacity rows (eq. 3): for every (edge, slice) pair crossed by
/// at least one allowed path, the total assignment is at most the edge's
/// wavelength count.
pub(crate) fn add_capacity_rows(p: &mut Problem, inst: &Instance, cols: &[Col]) {
    // Deterministic iteration order for reproducible solves.
    let mut keys: Vec<&(u32, u32)> = inst.capacity_groups.keys().collect();
    keys.sort();
    for key in keys {
        let vars = &inst.capacity_groups[key];
        let cap = inst.graph.wavelengths(wavesched_net::EdgeId(key.0)) as f64;
        let coeffs: Vec<(Col, f64)> = vars.iter().map(|&v| (cols[v as usize], 1.0)).collect();
        p.add_row(f64::NEG_INFINITY, cap, &coeffs);
    }
}

/// Coefficients of `sum_{p,j} x_i(p,j) * LEN(j)` for one job.
pub(crate) fn job_volume_coeffs(inst: &Instance, cols: &[Col], job: usize) -> Vec<(Col, f64)> {
    inst.vars
        .job_range(job)
        .map(|var| {
            let (_, _, slice) = inst.vars.triple(var);
            (cols[var], inst.grid.len_of(slice))
        })
        .collect()
}
