//! Shared LP-construction helpers used by the Stage-1, Stage-2 and SUB-RET
//! builders.
//!
//! Each helper writes into caller-provided scratch (normally a
//! [`BuildArena`](crate::arena::BuildArena)'s buffers) so repeated builds —
//! one per controller period — reuse one allocation instead of reallocating
//! per row.

use crate::instance::Instance;
use wavesched_lp::{Col, Problem};

/// Adds one nonnegative column per decision variable, upper-bounded by the
/// bottleneck wavelength count of its path (a valid implied bound that
/// shrinks the search). Costs start at zero. Fills `cols` (cleared first)
/// with the columns, aligned with the instance's `VarMap`.
pub(crate) fn add_assignment_cols(p: &mut Problem, inst: &Instance, cols: &mut Vec<Col>) {
    cols.clear();
    cols.reserve(inst.vars.len());
    for (_, job, path, _) in inst.vars.iter() {
        let bottleneck = inst.paths[job][path].bottleneck_wavelengths(&inst.graph) as f64;
        cols.push(p.add_col(0.0, bottleneck, 0.0));
    }
}

/// Adds the capacity rows (eq. 3): for every (edge, slice) pair crossed by
/// at least one allowed path, the total assignment is at most the edge's
/// wavelength count. Rows are added in sorted key order (`BTreeMap`
/// iteration), keeping solves reproducible.
pub(crate) fn add_capacity_rows(
    p: &mut Problem,
    inst: &Instance,
    cols: &[Col],
    scratch: &mut Vec<(Col, f64)>,
) {
    for (key, vars) in &inst.capacity_groups {
        let cap = inst.graph.wavelengths(wavesched_net::EdgeId(key.0)) as f64;
        scratch.clear();
        scratch.extend(vars.iter().map(|&v| (cols[v as usize], 1.0)));
        p.add_row(f64::NEG_INFINITY, cap, scratch);
    }
}

/// Fills `out` (cleared first) with the coefficients of
/// `sum_{p,j} x_i(p,j) * LEN(j)` for one job.
pub(crate) fn job_volume_coeffs(
    inst: &Instance,
    cols: &[Col],
    job: usize,
    out: &mut Vec<(Col, f64)>,
) {
    out.clear();
    out.extend(inst.vars.job_range(job).map(|var| {
        let (_, _, slice) = inst.vars.triple(var);
        (cols[var], inst.grid.len_of(slice))
    }));
}
