//! LPD and LPDAR — the paper's heuristic for integral wavelength
//! assignments (Section II-B and Algorithm 1).
//!
//! * **LPD** (*Linear Programming — Discretized*): truncate every fractional
//!   assignment down to the nearest integer. Cheap but wasteful: at small
//!   wavelength counts truncation discards a large share of the LP volume
//!   (the paper measures ~50% at 2 wavelengths per link).
//! * **LPDAR** (*LPD with Adjusted Rates*): after truncation, walk every
//!   (slice, job, path) and hand the path its bottleneck residual
//!   capacity — Algorithm 1 verbatim. This reclaims most of the truncated
//!   volume (≥ 90% of LP at 2 wavelengths in the paper).
//!
//! The paper fixes the visit order only implicitly ("for each time slice,
//! for each job, for each path"); [`AdjustOrder`] exposes that choice for
//! the `ablation_order` bench.
//!
//! **Caveat (not stated in the paper):** LPDAR does not guarantee the
//! Stage-2 fairness constraint (eq. 9). Truncation can leave a job below
//! its `(1-alpha) Z*` floor and the greedy adjustment may hand the
//! reclaimed capacity to other jobs. Consequently LPDAR's weighted
//! throughput can even exceed the *fairness-constrained* integer optimum;
//! the honest optimality reference is the capacity-only integer program
//! (see `tests/milp_crosscheck.rs` and the `ablation_exact` bench).

use crate::instance::Instance;
use crate::schedule::Schedule;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Job visit order used by the greedy adjustment within each time slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdjustOrder {
    /// The paper's implicit order: jobs as listed, paths as enumerated.
    Paper,
    /// Largest normalized demand first (mirrors the Stage-2 preference for
    /// large jobs).
    LargestJobFirst,
    /// Smallest normalized demand first.
    SmallestJobFirst,
    /// Deterministically shuffled with the given seed.
    Random(u64),
}

/// LPD: floor every assignment to an integer (paper step 2).
pub fn truncate(inst: &Instance, lp: &Schedule) -> Schedule {
    let x =
        lp.x.iter()
            .map(|&v| {
                // Guard against values sitting a hair under an integer due to
                // LP tolerance: 2.9999999995 truncates to 3, not 2.
                wavesched_lp::pos_or_zero((v + 1e-9).floor())
            })
            .collect();
    Schedule::from_values(inst, x)
}

/// Algorithm 1 verbatim: greedy bandwidth adjustment. Takes an *integral*
/// schedule and hands each (job, path) the full bottleneck residual of its
/// edges, slice by slice. Used by the throughput-maximization pipeline,
/// where over-delivery still counts toward the weighted objective
/// (`Z_i > 1` is allowed, paper Remark 2).
pub fn adjust_rates(inst: &Instance, base: &Schedule, order: AdjustOrder) -> Schedule {
    adjust_impl(inst, base, order, false)
}

/// Demand-aware Algorithm 1: like [`adjust_rates`] but a job stops taking
/// bandwidth once its full demand is met. This is the variant the RET loop
/// (Algorithm 2) needs: under SUB-RET, capacity handed to an
/// already-complete job is wasted, and the verbatim winner-takes-all greedy
/// can starve later jobs indefinitely, preventing Algorithm 2 from ever
/// terminating.
pub fn adjust_rates_capped(inst: &Instance, base: &Schedule, order: AdjustOrder) -> Schedule {
    adjust_impl(inst, base, order, true)
}

fn adjust_impl(inst: &Instance, base: &Schedule, order: AdjustOrder, capped: bool) -> Schedule {
    debug_assert!(base.is_integral(1e-6), "adjust_rates needs integral input");
    let mut sched = base.clone();
    let nedges = inst.graph.num_edges();
    let mut rb = vec![0i64; nedges];

    let job_order = job_order(inst, order);
    // Remaining deficit per job (demand units), used only when capped.
    let mut deficit: Vec<f64> = (0..inst.num_jobs())
        .map(|i| inst.demands[i] - sched.transferred(inst, i))
        .collect();

    // Slices before the grid's active window carry no variables, so the
    // greedy fill starts at the window (identical result, bounded work).
    for slice in inst.grid.first_slice()..inst.grid.num_slices() {
        // Residual wavelengths per edge at this slice.
        #[allow(clippy::needless_range_loop)] // e is an edge id, not a slice index
        for e in 0..nedges {
            rb[e] = inst.graph.wavelengths(wavesched_net::EdgeId(e as u32)) as i64;
        }
        for (var, job, path, s) in inst.vars.iter() {
            if s == slice {
                let used = sched.x[var] as i64;
                if used != 0 {
                    for &e in inst.paths[job][path].edges() {
                        rb[e.index()] -= used;
                    }
                }
            }
        }
        debug_assert!(rb.iter().all(|&v| v >= 0), "over-capacity input schedule");

        // Greedy fill in the configured order (paper eqs. 11–13).
        let len = inst.grid.len_of(slice);
        for &job in &job_order {
            if capped && deficit[job] <= 1e-9 {
                continue;
            }
            let w = inst.vars.window(job);
            if !w.contains(&slice) {
                continue;
            }
            for path in 0..inst.vars.paths_of(job) {
                let mut take = inst.paths[job][path]
                    .edges()
                    .iter()
                    .map(|&e| rb[e.index()])
                    .min()
                    .unwrap_or(0);
                if capped {
                    take = take.min((deficit[job] / len).ceil() as i64);
                }
                if take > 0 {
                    sched.x[inst.vars.var(job, path, slice)] += take as f64;
                    deficit[job] -= take as f64 * len;
                    for &e in inst.paths[job][path].edges() {
                        rb[e.index()] -= take;
                    }
                    if capped && deficit[job] <= 1e-9 {
                        break;
                    }
                }
            }
        }
    }
    sched
}

/// LPDAR: truncation followed by the verbatim greedy adjustment.
pub fn lpdar(inst: &Instance, lp: &Schedule, order: AdjustOrder) -> Schedule {
    adjust_rates(inst, &truncate(inst, lp), order)
}

/// LPDAR with the demand-aware adjustment (used by RET).
pub fn lpdar_capped(inst: &Instance, lp: &Schedule, order: AdjustOrder) -> Schedule {
    adjust_rates_capped(inst, &truncate(inst, lp), order)
}

fn job_order(inst: &Instance, order: AdjustOrder) -> Vec<usize> {
    let mut jobs: Vec<usize> = (0..inst.num_jobs()).collect();
    match order {
        AdjustOrder::Paper => {}
        AdjustOrder::LargestJobFirst => {
            jobs.sort_by(|&a, &b| inst.demands[b].total_cmp(&inst.demands[a]));
        }
        AdjustOrder::SmallestJobFirst => {
            jobs.sort_by(|&a, &b| inst.demands[a].total_cmp(&inst.demands[b]));
        }
        AdjustOrder::Random(seed) => {
            let mut rng = StdRng::seed_from_u64(seed);
            for i in (1..jobs.len()).rev() {
                let j = rng.random_range(0..=i);
                jobs.swap(i, j);
            }
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceConfig;
    use crate::stage1::solve_stage1;
    use crate::stage2::solve_stage2;
    use wavesched_net::{abilene14, PathSet};
    use wavesched_workload::{WorkloadConfig, WorkloadGenerator};

    fn abilene_instance(n_jobs: usize, w: u32, seed: u64) -> Instance {
        let (g, _) = abilene14(w);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: n_jobs,
            seed,
            ..Default::default()
        })
        .generate(&g);
        let cfg = InstanceConfig::paper(w);
        let mut ps = PathSet::new(cfg.paths_per_job);
        Instance::build(&g, &jobs, &cfg, &mut ps)
    }

    fn lp_schedule(inst: &Instance) -> Schedule {
        let s1 = solve_stage1(inst).unwrap();
        solve_stage2(inst, s1.z_star, 0.1).unwrap().schedule
    }

    #[test]
    fn truncate_floors() {
        let inst = abilene_instance(6, 2, 5);
        let lp = lp_schedule(&inst);
        let lpd = truncate(&inst, &lp);
        assert!(lpd.is_integral(1e-9));
        for (a, b) in lpd.x.iter().zip(&lp.x) {
            assert!(*a <= b + 1e-6, "truncation increased a value");
            assert!(b - a < 1.0, "truncated by a full unit or more");
        }
    }

    #[test]
    fn lpd_le_lpdar_le_lp() {
        // The paper's ordering of the three solutions, per objective (7).
        for seed in [1, 2, 3, 4] {
            let inst = abilene_instance(10, 2, seed);
            let lp = lp_schedule(&inst);
            let lpd = truncate(&inst, &lp);
            let adj = adjust_rates(&inst, &lpd, AdjustOrder::Paper);
            let t_lp = lp.weighted_throughput(&inst);
            let t_lpd = lpd.weighted_throughput(&inst);
            let t_adj = adj.weighted_throughput(&inst);
            assert!(t_lpd <= t_adj + 1e-9, "seed {seed}: LPD > LPDAR");
            assert!(t_lpd <= t_lp + 1e-9, "seed {seed}: LPD > LP");
        }
    }

    #[test]
    fn lpdar_is_integral_and_feasible() {
        for seed in [7, 8] {
            let inst = abilene_instance(12, 4, seed);
            let lp = lp_schedule(&inst);
            let s = lpdar(&inst, &lp, AdjustOrder::Paper);
            assert!(s.is_integral(1e-9));
            assert!(
                s.max_capacity_violation(&inst) < 1e-9,
                "seed {seed}: capacity violated by {}",
                s.max_capacity_violation(&inst)
            );
        }
    }

    #[test]
    fn adjustment_saturates_bottlenecks() {
        // After Algorithm 1, no path within a window can have all-positive
        // residual on every edge (otherwise the greedy would have taken it).
        let inst = abilene_instance(8, 2, 9);
        let lp = lp_schedule(&inst);
        let s = lpdar(&inst, &lp, AdjustOrder::Paper);
        let nedges = inst.graph.num_edges();
        for slice in 0..inst.grid.num_slices() {
            let mut rb = vec![0i64; nedges];
            #[allow(clippy::needless_range_loop)] // e is an edge id
            for e in 0..nedges {
                rb[e] = inst.graph.wavelengths(wavesched_net::EdgeId(e as u32)) as i64;
            }
            for (var, job, path, s_) in inst.vars.iter() {
                if s_ == slice {
                    for &e in inst.paths[job][path].edges() {
                        rb[e.index()] -= s.x[var] as i64;
                    }
                }
            }
            for (_, job, path, s_) in inst.vars.iter() {
                if s_ == slice {
                    let min_rb = inst.paths[job][path]
                        .edges()
                        .iter()
                        .map(|&e| rb[e.index()])
                        .min()
                        .unwrap();
                    assert!(
                        min_rb <= 0,
                        "slice {slice}: residual {min_rb} left on a usable path"
                    );
                }
            }
        }
    }

    #[test]
    fn orders_permute_jobs() {
        let inst = abilene_instance(10, 2, 3);
        for order in [
            AdjustOrder::Paper,
            AdjustOrder::LargestJobFirst,
            AdjustOrder::SmallestJobFirst,
            AdjustOrder::Random(42),
        ] {
            let mut o = job_order(&inst, order);
            o.sort();
            assert_eq!(o, (0..inst.num_jobs()).collect::<Vec<_>>());
        }
        // Largest-first really sorts by demand.
        let o = job_order(&inst, AdjustOrder::LargestJobFirst);
        for w in o.windows(2) {
            assert!(inst.demands[w[0]] >= inst.demands[w[1]]);
        }
    }

    #[test]
    fn adjustment_on_zero_schedule_fills_network() {
        // Starting from zero, Algorithm 1 degenerates to pure greedy fill;
        // every job with a window must get something on a quiet network.
        let inst = abilene_instance(3, 4, 1);
        let z = Schedule::zero(&inst);
        let s = adjust_rates(&inst, &z, AdjustOrder::Paper);
        for i in 0..inst.num_jobs() {
            if !inst.vars.window(i).is_empty() {
                assert!(s.transferred(&inst, i) > 0.0, "job {i} got nothing");
            }
        }
        assert!(s.max_capacity_violation(&inst) < 1e-9);
    }
}
