//! Wavelength-assignment schedules and their metrics.
//!
//! A [`Schedule`] holds one value per [`VarMap`](crate::VarMap) variable —
//! fractional for LP solutions, integral for LPD/LPDAR — and computes the
//! quantities the paper's evaluation reports: per-job throughput `Z_i`
//! (eq. 6), weighted throughput (eq. 7), completion times, and capacity
//! feasibility.

use crate::instance::Instance;

/// A (possibly fractional) wavelength assignment for every decision
/// variable of an instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Assignment per variable, aligned with the instance's [`crate::VarMap`].
    pub x: Vec<f64>,
}

impl Schedule {
    /// The all-zero schedule.
    pub fn zero(inst: &Instance) -> Self {
        Schedule {
            x: vec![0.0; inst.vars.len()],
        }
    }

    /// Wraps raw variable values (must be aligned with the instance).
    pub fn from_values(inst: &Instance, x: Vec<f64>) -> Self {
        assert_eq!(x.len(), inst.vars.len(), "schedule length mismatch");
        Schedule { x }
    }

    /// Total data moved for `job`, in demand units: `sum_{p,j} x·LEN(j)`.
    pub fn transferred(&self, inst: &Instance, job: usize) -> f64 {
        let mut total = 0.0;
        for var in inst.vars.job_range(job) {
            let (_, _, slice) = inst.vars.triple(var);
            total += self.x[var] * inst.grid.len_of(slice);
        }
        total
    }

    /// The paper's per-job throughput `Z_i` (eq. 6).
    pub fn throughput(&self, inst: &Instance, job: usize) -> f64 {
        self.transferred(inst, job) / inst.demands[job]
    }

    /// The paper's weighted throughput (eq. 7):
    /// `sum_i Z_i D_i / sum_i D_i = total transferred / total demand`.
    pub fn weighted_throughput(&self, inst: &Instance) -> f64 {
        let total: f64 = (0..inst.num_jobs())
            .map(|i| self.transferred(inst, i))
            .sum();
        total / inst.total_demand()
    }

    /// Like [`Self::weighted_throughput`] but counting at most `D_i` per
    /// job — data beyond a job's demand is padding, not useful throughput.
    pub fn effective_throughput(&self, inst: &Instance) -> f64 {
        let total: f64 = (0..inst.num_jobs())
            .map(|i| self.transferred(inst, i).min(inst.demands[i]))
            .sum();
        total / inst.total_demand()
    }

    /// True if `job` receives its full demand (within `tol`).
    pub fn completes(&self, inst: &Instance, job: usize, tol: f64) -> bool {
        self.transferred(inst, job) + tol >= inst.demands[job]
    }

    /// Fraction of jobs completed in full.
    pub fn fraction_finished(&self, inst: &Instance, tol: f64) -> f64 {
        let done = (0..inst.num_jobs())
            .filter(|&i| self.completes(inst, i, tol))
            .count();
        done as f64 / inst.num_jobs().max(1) as f64
    }

    /// Completion time of `job`: the end time of the slice in which its
    /// cumulative transfer first reaches its demand. `None` when the job
    /// never completes under this schedule.
    pub fn completion_time(&self, inst: &Instance, job: usize, tol: f64) -> Option<f64> {
        let w = inst.vars.window(job);
        if w.is_empty() {
            return None;
        }
        let need = inst.demands[job] - tol;
        let mut acc = 0.0;
        for slice in w.clone() {
            let len = inst.grid.len_of(slice);
            for p in 0..inst.vars.paths_of(job) {
                acc += self.x[inst.vars.var(job, p, slice)] * len;
            }
            if acc >= need {
                return Some(inst.grid.end_of(slice));
            }
        }
        None
    }

    /// Mean completion time over the jobs that complete (the paper's
    /// "average end time", Fig. 4, in slice units). `None` if no job
    /// completes.
    pub fn average_end_time(&self, inst: &Instance, tol: f64) -> Option<f64> {
        let times: Vec<f64> = (0..inst.num_jobs())
            .filter_map(|i| self.completion_time(inst, i, tol))
            .collect();
        if times.is_empty() {
            None
        } else {
            Some(times.iter().sum::<f64>() / times.len() as f64)
        }
    }

    /// Largest capacity violation over all (edge, slice) pairs; 0.0 when
    /// the schedule is link-feasible.
    pub fn max_capacity_violation(&self, inst: &Instance) -> f64 {
        let mut worst: f64 = 0.0;
        for (&(e, _slice), vars) in &inst.capacity_groups {
            let used: f64 = vars.iter().map(|&v| self.x[v as usize]).sum();
            let cap = inst.graph.wavelengths(wavesched_net::EdgeId(e)) as f64;
            worst = worst.max(used - cap);
        }
        worst
    }

    /// True if every assignment is a nonnegative integer (within `tol`).
    pub fn is_integral(&self, tol: f64) -> bool {
        self.x
            .iter()
            .all(|&v| v >= -tol && (v - v.round()).abs() <= tol)
    }

    /// The operational trim of paper Remark 2: where a job is assigned more
    /// than its demand, release the excess wavelengths (latest slices
    /// first) while keeping the job complete. Integral schedules stay
    /// integral; feasibility can only improve.
    pub fn trim_to_demand(&self, inst: &Instance) -> Schedule {
        let mut out = self.clone();
        for i in 0..inst.num_jobs() {
            let mut excess = out.transferred(inst, i) - inst.demands[i];
            if excess <= 0.0 {
                continue;
            }
            let w = inst.vars.window(i);
            'outer: for slice in w.clone().rev() {
                let len = inst.grid.len_of(slice);
                for p in 0..inst.vars.paths_of(i) {
                    let var = inst.vars.var(i, p, slice);
                    let x = out.x[var];
                    if x <= 0.0 {
                        continue;
                    }
                    // Whole wavelengths releasable without going below the
                    // demand.
                    let release = (excess / len).floor().min(x);
                    if release > 0.0 {
                        out.x[var] -= release;
                        excess -= release * len;
                    }
                    if excess < len {
                        // Can't release another whole wavelength-slice here;
                        // later (earlier) slices may have shorter lengths,
                        // but on uniform grids we are done.
                        if excess <= 0.0 {
                            break 'outer;
                        }
                    }
                }
            }
        }
        out
    }

    /// Mean link utilization over (edge, slice) pairs that carry any
    /// allowed path, as a fraction of wavelengths.
    pub fn mean_utilization(&self, inst: &Instance) -> f64 {
        if inst.capacity_groups.is_empty() {
            return 0.0;
        }
        let mut acc = 0.0;
        for (&(e, _), vars) in &inst.capacity_groups {
            let used: f64 = vars.iter().map(|&v| self.x[v as usize]).sum();
            let cap = inst.graph.wavelengths(wavesched_net::EdgeId(e)) as f64;
            acc += (used / cap).min(1.0);
        }
        acc / inst.capacity_groups.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceConfig;
    use wavesched_net::{abilene14, PathSet};
    use wavesched_workload::{Job, JobId};

    /// One job, Seattle -> Sunnyvale (adjacent), window [0, 4).
    fn one_job_instance() -> Instance {
        let (g, nodes) = abilene14(4);
        let job = Job::new(JobId(0), 0.0, nodes[0], nodes[1], 75.0, 0.0, 4.0);
        let cfg = InstanceConfig::paper(4); // 5 Gbps per lambda, 60 s slices
        let mut ps = PathSet::new(cfg.paths_per_job);
        Instance::build(&g, &[job], &cfg, &mut ps)
    }

    #[test]
    fn transferred_and_throughput() {
        let inst = one_job_instance();
        // Demand: 75 GB / (5 Gbps * 60 s / 8) = 75 / 37.5 = 2 units.
        assert!((inst.demands[0] - 2.0).abs() < 1e-9);
        let mut s = Schedule::zero(&inst);
        // Assign 1 wavelength on path 0 in slices 0 and 1.
        let w = inst.vars.window(0);
        s.x[inst.vars.var(0, 0, w.start)] = 1.0;
        s.x[inst.vars.var(0, 0, w.start + 1)] = 1.0;
        assert!((s.transferred(&inst, 0) - 2.0).abs() < 1e-9);
        assert!((s.throughput(&inst, 0) - 1.0).abs() < 1e-9);
        assert!(s.completes(&inst, 0, 1e-9));
        assert_eq!(s.completion_time(&inst, 0, 1e-9), Some(2.0));
        assert!(s.is_integral(1e-9));
        assert_eq!(s.fraction_finished(&inst, 1e-9), 1.0);
    }

    #[test]
    fn incomplete_job() {
        let inst = one_job_instance();
        let mut s = Schedule::zero(&inst);
        s.x[inst.vars.var(0, 0, 0)] = 0.5;
        assert!(!s.completes(&inst, 0, 1e-9));
        assert_eq!(s.completion_time(&inst, 0, 1e-9), None);
        assert!(!s.is_integral(1e-9));
        assert_eq!(s.average_end_time(&inst, 1e-9), None);
        assert!((s.weighted_throughput(&inst) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn capacity_violation_detected() {
        let inst = one_job_instance();
        let mut s = Schedule::zero(&inst);
        // 4 wavelengths available; assign 6 on one path/slice.
        s.x[inst.vars.var(0, 0, 0)] = 6.0;
        assert!((s.max_capacity_violation(&inst) - 2.0).abs() < 1e-9);
        s.x[inst.vars.var(0, 0, 0)] = 4.0;
        assert_eq!(s.max_capacity_violation(&inst), 0.0);
    }

    #[test]
    fn trim_releases_excess_only() {
        let inst = one_job_instance();
        let mut s = Schedule::zero(&inst);
        for j in inst.vars.window(0) {
            s.x[inst.vars.var(0, 0, j)] = 4.0; // 16 units vs demand 2
        }
        let t = s.trim_to_demand(&inst);
        assert!(t.completes(&inst, 0, 1e-9));
        assert!((t.transferred(&inst, 0) - 2.0).abs() < 1e-9);
        assert!(t.is_integral(1e-9));
        // Early slices keep their assignment (trim works backwards).
        assert!(t.x[inst.vars.var(0, 0, 0)] > 0.0);
        // A schedule without excess is untouched.
        let t2 = t.trim_to_demand(&inst);
        assert_eq!(t.x, t2.x);
    }

    #[test]
    fn effective_caps_overdelivery() {
        let inst = one_job_instance();
        let mut s = Schedule::zero(&inst);
        for j in inst.vars.window(0) {
            s.x[inst.vars.var(0, 0, j)] = 4.0; // far more than demand 2
        }
        assert!(s.weighted_throughput(&inst) > 1.0);
        assert!((s.effective_throughput(&inst) - 1.0).abs() < 1e-9);
    }
}
